//! # resemble
//!
//! Umbrella crate for the ReSemble reproduction (SC 2022: "ReSemble:
//! Reinforced Ensemble Framework for Data Prefetching"). Re-exports the
//! workspace crates under one roof so examples and downstream users can
//! depend on a single package:
//!
//! * [`trace`] — trace records, synthetic SPEC/GAP-like workload
//!   generators, autocorrelation analysis
//! * [`sim`] — ChampSim-like cache-hierarchy + OoO-core timing simulator
//! * [`nn`] — minimal MLP library (the controller network)
//! * [`prefetch`] — BO, SPP, ISB, Domino, VLDP, stride/stream, and a
//!   Voyager-like neural prefetcher
//! * [`core`] — the ReSemble RL ensemble framework itself (DQN and
//!   tabular controllers, lazy sampling, SBP(E) baseline)
//! * [`stats`] — metrics and reporting helpers
//! * [`serve`] — online prefetch-decision service (length-prefixed TCP
//!   protocol, sharded microbatching workers, latency telemetry)
//!
//! ```
//! use resemble::prelude::*;
//!
//! let mut app = app_by_name("433.milc", 42).unwrap();
//! let trace = app.source.collect_n(100);
//! assert_eq!(trace.len(), 100);
//! ```

pub use resemble_core as core;
pub use resemble_nn as nn;
pub use resemble_prefetch as prefetch;
pub use resemble_serve as serve;
pub use resemble_sim as sim;
pub use resemble_stats as stats;
pub use resemble_trace as trace;

/// Common imports for examples and quick experiments.
pub mod prelude {
    pub use resemble_core::*;
    pub use resemble_prefetch::{
        paper_bank, voyager_bank, BestOffset, Domino, GhbDc, Isb, Markov, NeuralTemporalPrefetcher,
        NextLine, PredictionKind, Prefetcher, PrefetcherBank, Spp, Stems, Stms, Streamer,
        StridePrefetcher, Vldp,
    };
    pub use resemble_sim::MultiCoreEngine;
    pub use resemble_sim::{run_pair, Engine, PrefetchTiming, SimConfig, SimStats};
    pub use resemble_stats::{geo_mean, mean, Table};
    pub use resemble_trace::gen::{app_by_name, suite_by_name, TraceSource, SUITE_NAMES};
    pub use resemble_trace::{MemAccess, BLOCK_BITS, PAGE_BITS};
}
