//! Offline stand-in for `serde`.
//!
//! The workspace serializes result structs to JSON (via
//! `serde_json::to_string_pretty`) and never deserializes into typed
//! values, so [`Serialize`] is a direct JSON writer and [`Deserialize`] a
//! marker trait. The derive macros (re-exported from `serde_derive`, as
//! upstream does) cover non-generic named-field structs and unit enums —
//! every shape derived in this repository.

// The derive macros emit `::serde::…` paths; this alias lets them
// resolve inside this crate's own test target too.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Write `self` as JSON onto `out`.
pub trait Serialize {
    /// Append the compact JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// Marker for types that declare a JSON-readable shape.
///
/// Typed deserialization is not implemented; readers go through
/// `serde_json::Value`.
pub trait Deserialize {}

/// Escape `s` as the contents of a JSON string literal onto `out`.
pub fn escape_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

impl_serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                if self.is_finite() {
                    // Ryu-style shortest representation via Display; JSON
                    // has no NaN/Inf, emit null for them (as serde_json
                    // does for f64::NAN under arbitrary_precision off).
                    out.push_str(&self.to_string());
                } else {
                    out.push_str("null");
                }
            }
        }
    )*};
}
impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        escape_str(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        escape_str(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

fn serialize_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, v) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        v.serialize_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        serialize_seq(self.iter(), out);
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}
impl_serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: AsRef<str>, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn serialize_json(&self, out: &mut String) {
        // Deterministic output: sort keys.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.as_ref().cmp(b.0.as_ref()));
        out.push('{');
        for (i, (k, v)) in entries.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_str(k.as_ref(), out);
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_str(k.as_ref(), out);
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_json<T: Serialize + ?Sized>(v: &T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s);
        s
    }

    #[test]
    fn primitives() {
        assert_eq!(to_json(&42u64), "42");
        assert_eq!(to_json(&-3i32), "-3");
        assert_eq!(to_json(&true), "true");
        assert_eq!(to_json(&1.5f64), "1.5");
        assert_eq!(to_json(&f64::NAN), "null");
        assert_eq!(to_json("a\"b\n"), "\"a\\\"b\\n\"");
    }

    #[test]
    fn containers() {
        assert_eq!(to_json(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(to_json(&(1u8, "x".to_string())), "[1,\"x\"]");
        assert_eq!(to_json(&Some(5u8)), "5");
        assert_eq!(to_json(&Option::<u8>::None), "null");
    }

    #[derive(Serialize, Deserialize)]
    struct Point {
        x: u32,
        label: String,
    }

    #[derive(Serialize, Deserialize, Clone, Copy)]
    enum Mode {
        Fast,
        Slow,
    }

    #[test]
    fn derived_struct_and_enum() {
        let p = Point {
            x: 7,
            label: "seven".into(),
        };
        assert_eq!(to_json(&p), "{\"x\":7,\"label\":\"seven\"}");
        assert_eq!(to_json(&Mode::Fast), "\"Fast\"");
        assert_eq!(to_json(&Mode::Slow), "\"Slow\"");
    }
}
