//! Offline stand-in for `serde_json`.
//!
//! Serialization rides on the stand-in `serde::Serialize` JSON writer;
//! [`to_string_pretty`] re-formats the compact encoding with a token-level
//! pretty printer. Reading back goes through the dynamic [`Value`] type
//! ([`from_str`]), which is all the workspace's consumers (the perf gate's
//! baseline check) need.

use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

/// Result alias matching upstream's signature shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (2-space indent, the
/// upstream default).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let compact = to_string(value)?;
    Ok(pretty(&compact))
}

/// Token-level pretty printer over a compact JSON encoding.
fn pretty(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let push_newline = |out: &mut String, indent: usize| {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    };
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                let close = if c == '{' { '}' } else { ']' };
                if chars.peek() == Some(&close) {
                    out.push(close);
                    chars.next();
                } else {
                    indent += 1;
                    push_newline(&mut out, indent);
                }
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                push_newline(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                push_newline(&mut out, indent);
            }
            ':' => {
                out.push_str(": ");
            }
            _ => out.push(c),
        }
    }
    out
}

/// A dynamically-typed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64, as upstream does for untyped reads).
    Number(f64),
    /// String
    String(String),
    /// Array
    Array(Vec<Value>),
    /// Object (sorted keys)
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects; `Value::Null` otherwise (upstream's
    /// `index` semantics, without the panic).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// As f64 if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// As u64 if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// As str if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As array slice if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// Parse a JSON document into a [`Value`].
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("non-utf8 number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("non-utf8 \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("non-utf8 string"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let v = from_str(r#"{"a": [1, 2.5, null], "b": "x\ny", "c": true}"#).unwrap();
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("c"), Some(&Value::Bool(true)));
    }

    #[test]
    fn pretty_print_shape() {
        let s = to_string_pretty(&vec![1u32, 2]).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
        let compact = to_string(&vec![1u32, 2]).unwrap();
        assert_eq!(compact, "[1,2]");
    }

    #[test]
    fn pretty_then_parse_roundtrips() {
        let pretty = to_string_pretty(&(1u8, "a:b{c}".to_string(), 2.25f64)).unwrap();
        let v = from_str(&pretty).unwrap();
        assert_eq!(v.as_array().unwrap()[1].as_str(), Some("a:b{c}"));
        assert_eq!(v.as_array().unwrap()[2].as_f64(), Some(2.25));
    }
}
