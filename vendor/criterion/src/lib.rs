//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's `harness = false` benches use
//! — [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple wall-clock measurement
//! loop: a short calibration pass picks an iteration count per sample,
//! then the median over samples is reported as ns/iter. Understands the
//! harness flags cargo passes (`--test` runs every benchmark once so
//! `cargo test --benches` stays fast; `--quick` shrinks measurement time
//! for CI smoke runs; `--bench` and filter strings work as upstream).

use std::time::{Duration, Instant};

/// Identity function the optimizer cannot see through.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How a run was invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full measurement (`cargo bench`).
    Bench,
    /// Reduced measurement (`--quick`).
    Quick,
    /// One iteration per benchmark (`cargo test` over harness=false).
    Test,
}

/// Top-level benchmark driver.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut mode = Mode::Bench;
        let mut filter = None;
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--test" => mode = Mode::Test,
                "--quick" => mode = Mode::Quick,
                // Harness flags cargo/criterion accept; no-ops here.
                "--bench" | "--nocapture" | "--verbose" | "-v" | "--noplot" => {}
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Self {
            mode,
            filter,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkName, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_benchmark_name();
        self.run_one(&name, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            sample_size: None,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: &mut F) {
        self.run_sized(name, self.default_sample_size, f);
    }

    fn run_sized<F: FnMut(&mut Bencher)>(&mut self, name: &str, samples: usize, f: &mut F) {
        if let Some(flt) = &self.filter {
            if !name.contains(flt.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            mode: self.mode,
            samples: match self.mode {
                Mode::Bench => samples.max(5),
                Mode::Quick => 5,
                Mode::Test => 1,
            },
            ns_per_iter: 0.0,
        };
        f(&mut b);
        match self.mode {
            Mode::Test => println!("test {name} ... ok"),
            _ => println!("{name}  time: {:>12.1} ns/iter", b.ns_per_iter),
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measurement samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Set the target measurement time (accepted for API compatibility;
    /// the stand-in sizes runs by sample count).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkName, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_benchmark_name());
        let samples = self.sample_size.unwrap_or(self.c.default_sample_size);
        self.c.run_sized(&name, samples, &mut f);
        self
    }

    /// Run one benchmark with an input value (upstream
    /// `bench_with_input`).
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkName,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    samples: usize,
    ns_per_iter: f64,
}

impl Bencher {
    /// Measure `f`, called repeatedly; records median ns per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.mode == Mode::Test {
            black_box(f());
            return;
        }
        // Calibrate: how many iterations fit in ~1ms?
        let start = Instant::now();
        let mut calib_iters = 0u64;
        while start.elapsed() < Duration::from_millis(1) {
            black_box(f());
            calib_iters += 1;
        }
        let per_sample = calib_iters.max(1);
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.ns_per_iter = samples_ns[samples_ns.len() / 2];
    }
}

/// Parameterized benchmark identifier.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only form (inside a group).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

/// Things usable as a benchmark name.
pub trait IntoBenchmarkName {
    /// Render the display name.
    fn into_benchmark_name(self) -> String;
}

impl IntoBenchmarkName for &str {
    fn into_benchmark_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkName for String {
    fn into_benchmark_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_benchmark_name(self) -> String {
        self.name
    }
}

/// Bundle benchmark functions under one group runner, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("t/add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(5);
        g.bench_function(BenchmarkId::from_parameter("x"), |b| b.iter(|| 3u64));
        g.bench_with_input(BenchmarkId::new("with", 7), &7u64, |b, &i| b.iter(|| i * 2));
        g.finish();
    }

    #[test]
    fn runs_in_test_mode_quickly() {
        let mut c = Criterion {
            mode: Mode::Test,
            filter: None,
            default_sample_size: 20,
        };
        let t = Instant::now();
        sample_bench(&mut c);
        assert!(t.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn measures_in_quick_mode() {
        let mut c = Criterion {
            mode: Mode::Quick,
            filter: Some("t/add".into()),
            default_sample_size: 20,
        };
        sample_bench(&mut c);
    }
}
