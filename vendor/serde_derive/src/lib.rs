//! Derive macros for the offline serde stand-in.
//!
//! Implemented directly over `proc_macro::TokenStream` (no syn/quote — the
//! build environment cannot download crates). Supports exactly the shapes
//! this workspace derives on: non-generic structs with named fields and
//! non-generic enums with unit variants. Anything else panics at compile
//! time with a clear message so the gap is visible immediately.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed derive input: the type name and its shape.
enum Shape {
    /// Named-field struct with its field identifiers.
    Struct(Vec<String>),
    /// Enum with its unit-variant identifiers.
    Enum(Vec<String>),
}

/// Walk the derive input and extract (type name, shape).
fn parse(input: TokenStream) -> (String, Shape) {
    let mut iter = input.into_iter().peekable();
    let mut kind: Option<String> = None;
    let mut name: Option<String> = None;
    let mut body: Option<TokenStream> = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: consume the following [...] group.
                iter.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                match s.as_str() {
                    "pub" => {
                        // Consume an optional (crate)/(super) restriction.
                        if let Some(TokenTree::Group(g)) = iter.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                iter.next();
                            }
                        }
                    }
                    "struct" | "enum" => kind = Some(s),
                    _ if kind.is_some() && name.is_none() => name = Some(s),
                    _ => {}
                }
            }
            TokenTree::Punct(p) if p.as_char() == '<' && name.is_some() => {
                panic!("serde stand-in derive: generic types are not supported")
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace && name.is_some() => {
                body = Some(g.stream());
                break;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis && name.is_some() => {
                panic!("serde stand-in derive: tuple structs are not supported")
            }
            _ => {}
        }
    }
    let kind = kind.expect("derive input must be a struct or enum");
    let name = name.expect("derive input must name a type");
    let body = body.expect("derive input must have a braced body");
    let items = top_level_idents(body, kind == "enum");
    if kind == "struct" {
        (name, Shape::Struct(items))
    } else {
        (name, Shape::Enum(items))
    }
}

/// First identifier of each comma-separated chunk of `body`, skipping
/// attributes and visibility — i.e. field names, or enum variant names.
/// Commas nested in angle brackets (`HashMap<K, V>`) don't split chunks.
fn top_level_idents(body: TokenStream, is_enum: bool) -> Vec<String> {
    let mut out = Vec::new();
    let mut angle_depth: i32 = 0;
    let mut want_ident = true;
    let mut iter = body.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '#' if want_ident => {
                    iter.next(); // attribute group
                }
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => want_ident = true,
                _ => {}
            },
            TokenTree::Ident(id) if want_ident => {
                let s = id.to_string();
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                } else {
                    out.push(s);
                    want_ident = false;
                }
            }
            TokenTree::Group(g) if !want_ident && is_enum => {
                if matches!(g.delimiter(), Delimiter::Parenthesis | Delimiter::Brace) {
                    panic!("serde stand-in derive: enum variants with data are not supported")
                }
            }
            _ => {}
        }
    }
    out
}

/// `#[derive(Serialize)]`: emit a JSON writer for the type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse(input);
    let mut code = String::new();
    code.push_str(&format!(
        "impl ::serde::Serialize for {name} {{\n fn serialize_json(&self, out: &mut ::std::string::String) {{\n"
    ));
    match shape {
        Shape::Struct(fields) => {
            code.push_str(" out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    code.push_str(" out.push(',');\n");
                }
                code.push_str(&format!(
                    " out.push_str(\"\\\"{f}\\\":\");\n ::serde::Serialize::serialize_json(&self.{f}, out);\n"
                ));
            }
            code.push_str(" out.push('}');\n");
        }
        Shape::Enum(variants) => {
            assert!(
                !variants.is_empty(),
                "serde stand-in derive: cannot serialize an empty enum"
            );
            code.push_str(" match self {\n");
            for v in &variants {
                code.push_str(&format!(" {name}::{v} => out.push_str(\"\\\"{v}\\\"\"),\n"));
            }
            code.push_str(" }\n");
        }
    }
    code.push_str(" }\n}\n");
    code.parse().expect("generated Serialize impl must parse")
}

/// `#[derive(Deserialize)]`: emit the marker impl.
///
/// Nothing in the workspace deserializes into typed structs (JSON is read
/// back through `serde_json::Value`), so the trait is a marker here.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, _shape) = parse(input);
    format!("impl ::serde::Deserialize for {name} {{}}\n")
        .parse()
        .expect("generated Deserialize impl must parse")
}
