//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! this workspace vendors the narrow slice of the rand 0.8 API it actually
//! uses: a seedable deterministic generator ([`rngs::StdRng`]), the
//! [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`, and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — statistically strong for simulation workloads and fully
//! deterministic per seed, which is all the reproduction needs (trace
//! generators, controller exploration, and test fixtures derive everything
//! from explicit seeds). Streams differ from upstream `StdRng` (ChaCha12);
//! all in-repo fixtures were calibrated against this generator.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (high word of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (the only constructor the workspace uses).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw output
/// (the `rand` `Standard` distribution, reduced to what is used here).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounded sampling (Lemire); span == 0 means
                // the full 2^64 range of a u64-wide type.
                let v = if span == 0 {
                    rng.next_u64()
                } else {
                    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
                };
                (self.start as u64).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                let v = if span == 0 {
                    rng.next_u64()
                } else {
                    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
                };
                (lo as u64).wrapping_add(v) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty => $std:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32 => f32, f64 => f64);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution (uniform over
    /// the type for integers/bool, uniform in `[0, 1)` for floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range`. Panics on an empty range.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    ///
    /// Stands in for `rand::rngs::StdRng`; the output stream differs from
    /// upstream's ChaCha12 but has the same contract the workspace relies
    /// on: identical seeds give identical streams on every platform.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure for
            // xoshiro generators (Blackman & Vigna).
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait (`rand::seq::SliceRandom` subset).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let v = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let f = r.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits={hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
