//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), [`any`], numeric-range and tuple
//! strategies, [`collection::vec`], and the `prop_assert*` macros. Cases
//! are generated from a fixed per-case seed, so failures reproduce
//! deterministically; there is no shrinking — the failing case index and
//! the assertion message locate the input instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Run configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Per-case deterministic generator handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Generator for case number `case` of a property; fixed seed schedule
    /// so every run sees the same inputs.
    pub fn for_case(case: u32) -> Self {
        Self(StdRng::seed_from_u64(0x5EED_0000_0000 + case as u64))
    }
}

/// A value generator. Unlike upstream there is no shrink tree; `new_value`
/// directly produces one random instance.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Produce one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.0.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.gen::<f32>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.gen::<f64>()
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy yielding exactly `value` every case (upstream's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_range_float {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_range_float!(f32, f64);

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.new_value(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec()`]: an exact size or a half-open
    /// range of sizes.
    pub trait IntoSizeRange {
        /// Draw a length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            rng.0.gen_range(self.clone())
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            rng.0.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` of a length drawn from `size`.
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    /// `vec(element, size)`: vectors of `element` values.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick_len(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Everything a `proptest!` test body needs in scope.
pub mod prelude {
    pub use crate::collection::vec as prop_vec;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestRng,
    };
}

/// Assert within a property; failure panics with the formatted message
/// (no shrinking — the case seed in the test name output reproduces it).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random instantiations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(case);
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in 1usize..=4, f in 0.0f32..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_tuples(v in prop_vec((any::<u8>(), any::<bool>()), 2..20)) {
            prop_assert!(v.len() >= 2 && v.len() < 20);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in any::<u64>()) {
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case(3);
        let mut b = TestRng::for_case(3);
        let s = any::<u64>();
        assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
    }
}
