//! Hybrid-workload demo: the paper's core motivation is that applications
//! interleave pattern classes and no single prefetcher wins everywhere.
//! This example builds a phase-switching workload (stream → pointer chase
//! → stride), runs every individual prefetcher plus SBP(E) and ReSemble,
//! and prints how the RL controller's action mix tracks the phases.
//!
//! Run with: `cargo run --release --example hybrid_workload`

use resemble::core::baselines::SbpE;
use resemble::prelude::*;
use resemble::trace::gen::{PhasedGen, PointerChaseGen, StreamGen, StrideGen};

const PHASE_LEN: usize = 15_000;
const MEASURE: usize = 90_000;

fn workload(seed: u64) -> Box<dyn TraceSource + Send> {
    Box::new(PhasedGen::new(
        vec![
            Box::new(StreamGen::new(seed, 2, 4096, 8)),
            Box::new(PointerChaseGen::new(seed ^ 1, 6, 2500, 8).with_header_interval(3)),
            Box::new(StrideGen::new(seed ^ 2, &[4, 4, 8], 8192, 8)),
        ],
        PHASE_LEN,
        8,
    ))
}

fn run(pf: Option<&mut dyn Prefetcher>, seed: u64) -> SimStats {
    let mut engine = Engine::new(SimConfig::harness());
    let mut src = workload(seed);
    engine.run(&mut *src, pf, 0, MEASURE)
}

fn main() {
    let seed = 7;
    let baseline = run(None, seed);
    println!("phase-switching workload: stream | pointer-chase | stride, {PHASE_LEN} accesses per phase\n");
    println!(
        "{:<12} {:>9} {:>9} {:>12}",
        "prefetcher", "accuracy", "coverage", "IPC improve"
    );

    let report = |name: &str, stats: SimStats| {
        println!(
            "{:<12} {:>8.1}% {:>8.1}% {:>11.1}%",
            name,
            stats.accuracy() * 100.0,
            stats.coverage() * 100.0,
            stats.ipc_improvement_over(&baseline)
        );
    };

    report("bo", run(Some(&mut BestOffset::new()), seed));
    report("spp", run(Some(&mut Spp::new()), seed));
    report("isb", run(Some(&mut Isb::new()), seed));
    report("domino", run(Some(&mut Domino::new()), seed));
    report("sbp_e", run(Some(&mut SbpE::from_paper()), seed));

    let mut resemble = ResembleMlp::new(paper_bank(), ResembleConfig::fast(), seed);
    let stats = run(Some(&mut resemble), seed);
    report("resemble", stats);

    println!("\nReSemble action mix per 1K-window (BO/SPP/ISB/Domino/NP), sampled:");
    let windows = &resemble.stats.window_actions;
    for (i, w) in windows
        .iter()
        .enumerate()
        .step_by(windows.len().max(10) / 10)
    {
        let labels = ["BO", "SPP", "ISB", "Dom", "NP"];
        let dominant = w
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(j, _)| labels[j])
            .unwrap_or("-");
        println!("  window {i:>3}: {w:?}  dominant: {dominant}");
    }
    println!("\nExpected: the dominant action follows the phases — spatial members in");
    println!("stream/stride phases, ISB in the pointer-chase phase.");
}
