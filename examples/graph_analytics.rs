//! Graph-analytics demo: run the three GAP-like kernels (BFS, PageRank,
//! Connected Components) over a synthetic power-law graph and compare how
//! the individual prefetchers and ReSemble handle the characteristic mix
//! of sequential CSR scans and data-dependent property gathers.
//!
//! Run with: `cargo run --release --example graph_analytics`

use resemble::prelude::*;
use resemble::trace::gen::{GraphGen, GraphKernel};

fn kernel_source(kernel: GraphKernel, seed: u64) -> GraphGen {
    GraphGen::new(seed, 300_000, 12, kernel, 4)
}

fn main() {
    let seed = 11;
    let (warmup, measure) = (15_000, 50_000);
    println!("GAP-like kernels over a 300K-vertex synthetic power-law graph\n");
    for (name, kernel) in [
        ("bfs", GraphKernel::Bfs),
        ("pagerank", GraphKernel::PageRank),
        ("cc", GraphKernel::ConnectedComponents),
    ] {
        let mut engine = Engine::new(SimConfig::harness());
        let mut src = kernel_source(kernel, seed);
        let baseline = engine.run(&mut src, None, warmup, measure);

        println!(
            "[{name}] baseline IPC {:.3}, MPKI {:.1}",
            baseline.ipc(),
            baseline.mpki()
        );
        println!(
            "  {:<10} {:>9} {:>9} {:>12}",
            "prefetcher", "accuracy", "coverage", "IPC improve"
        );
        let run_pf = |label: &str, pf: &mut dyn Prefetcher| {
            let mut engine = Engine::new(SimConfig::harness());
            let mut src = kernel_source(kernel, seed);
            let s = engine.run(&mut src, Some(pf), warmup, measure);
            println!(
                "  {:<10} {:>8.1}% {:>8.1}% {:>11.1}%",
                label,
                s.accuracy() * 100.0,
                s.coverage() * 100.0,
                s.ipc_improvement_over(&baseline)
            );
        };
        run_pf("bo", &mut BestOffset::new());
        run_pf("spp", &mut Spp::new());
        run_pf("isb", &mut Isb::new());
        let mut ensemble = ResembleMlp::new(paper_bank(), ResembleConfig::fast(), seed);
        run_pf("resemble", &mut ensemble);
        println!();
    }
    println!("Expected: spatial prefetchers (BO/SPP) cover the offsets/edges scans;");
    println!("the property gathers remain hard (the paper's GAP rewards in Table VI");
    println!("are an order of magnitude below SPEC); ReSemble tracks the best member.");
}
