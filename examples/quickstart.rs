//! Quickstart: build the paper's ReSemble ensemble (BO + SPP + ISB +
//! Domino under the MLP controller), run it through the timing simulator
//! on a synthetic SPEC-like workload, and print the three evaluation
//! metrics next to a no-prefetch baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use resemble::prelude::*;

fn main() {
    let app = "433.milc";
    let seed = 42;
    let (warmup, measure) = (20_000, 60_000);

    // Baseline: no prefetching.
    let mut engine = Engine::new(SimConfig::harness());
    let mut src = app_by_name(app, seed).expect("known app").source;
    let baseline = engine.run(&mut *src, None, warmup, measure);

    // The paper's ensemble: four prefetchers + MLP/DQN controller.
    let mut resemble = ResembleMlp::new(paper_bank(), ResembleConfig::fast(), seed);
    let mut engine = Engine::new(SimConfig::harness());
    let mut src = app_by_name(app, seed).expect("known app").source;
    let stats = engine.run(&mut *src, Some(&mut resemble), warmup, measure);

    println!("app: {app} ({measure} measured accesses after {warmup} warmup)");
    println!(
        "baseline:  IPC {:.3}, LLC MPKI {:.2}",
        baseline.ipc(),
        baseline.mpki()
    );
    println!(
        "resemble:  IPC {:.3}, LLC MPKI {:.2}",
        stats.ipc(),
        stats.mpki()
    );
    println!();
    println!("prefetch accuracy:   {:.1}%", stats.accuracy() * 100.0);
    println!("prefetch coverage:   {:.1}%", stats.coverage() * 100.0);
    println!(
        "IPC improvement:     {:.1}%",
        stats.ipc_improvement_over(&baseline)
    );
    println!();
    println!(
        "controller: {} accesses seen, mean reward/1K-window {:.1}, actions {:?} (BO/SPP/ISB/Domino/NP)",
        resemble.stats.accesses(),
        resemble.stats.mean_window_reward(),
        resemble.stats.action_counts,
    );
}
