//! Extending ReSemble with your own prefetcher: the framework is "open to
//! architectures equipped with various numbers and types of prefetchers"
//! (paper §V) — any `Prefetcher` implementation can join the bank, and the
//! controller dimensions itself from the bank size.
//!
//! This example adds a toy "mirror" prefetcher (prefetches the block at
//! the mirrored offset within the page — nearly useless by design) next to
//! two real ones, and shows the controller learning to ignore it.
//!
//! Run with: `cargo run --release --example custom_prefetcher`

use resemble::prelude::*;
use resemble::trace::gen::StreamGen;
use resemble::trace::record::{block_of, BLOCKS_PER_PAGE, PAGE_SIZE};

/// A deliberately weak prefetcher: mirrors the block offset within its
/// page (offset k → offset 63−k).
struct MirrorPrefetcher;

impl Prefetcher for MirrorPrefetcher {
    fn name(&self) -> &'static str {
        "mirror"
    }

    fn kind(&self) -> PredictionKind {
        PredictionKind::Spatial
    }

    fn on_access(&mut self, access: &MemAccess, _hit: bool, out: &mut Vec<u64>) {
        let page_base = access.addr & !(PAGE_SIZE - 1);
        let offset = block_of(access.addr) % BLOCKS_PER_PAGE;
        let mirrored = BLOCKS_PER_PAGE - 1 - offset;
        out.push(page_base + mirrored * 64);
    }

    fn budget_bytes(&self) -> usize {
        0
    }

    fn reset(&mut self) {}
}

fn main() {
    // A three-member bank: the controller config must match its size.
    let bank = PrefetcherBank::new(vec![
        Box::new(NextLine::new(2)),
        Box::new(MirrorPrefetcher),
        Box::new(Isb::new()),
    ]);
    let cfg = ResembleConfig {
        batch_size: 32,
        ..ResembleConfig::for_inputs(3)
    };
    let mut ensemble = ResembleMlp::new(bank, cfg, 9);

    let mut engine = Engine::new(SimConfig::harness());
    let mut src = StreamGen::new(3, 2, 4096, 8);
    let baseline = {
        let mut e2 = Engine::new(SimConfig::harness());
        let mut s2 = StreamGen::new(3, 2, 4096, 8);
        e2.run(&mut s2, None, 10_000, 50_000)
    };
    let stats = engine.run(&mut src, Some(&mut ensemble), 10_000, 50_000);

    println!("bank: next_line + mirror (toy) + isb, on a streaming workload");
    println!(
        "accuracy {:.1}%, coverage {:.1}%, IPC improvement {:.1}%",
        stats.accuracy() * 100.0,
        stats.coverage() * 100.0,
        stats.ipc_improvement_over(&baseline)
    );
    let c = &ensemble.stats.action_counts;
    println!("action counts [next_line, mirror, isb, NP]: {c:?}");
    let useful = c[0];
    let useless = c[1];
    println!(
        "controller prefers next_line over the mirror prefetcher: {} ({useful} vs {useless})",
        useful > useless
    );
}
