//! Integration tests for the §VIII future-work extensions: multi-core,
//! quantization, oracle headroom, and the widened prefetcher zoo.

use resemble::core::{oracle_selection, ResembleConfig, ResembleMlp};
use resemble::prelude::*;
use resemble::trace::gen::{Kernel, KernelGen};

#[test]
fn multicore_heterogeneous_mix_prefers_per_core_ensembles() {
    // Two cores, one spatial app one temporal app: per-core ReSemble must
    // improve both versus no prefetching.
    let mk_srcs = || -> Vec<Box<dyn TraceSource + Send>> {
        vec![
            app_by_name("433.milc", 42).unwrap().source,
            app_by_name("623.xalancbmk", 42).unwrap().source,
        ]
    };
    let mut mc = MultiCoreEngine::new(SimConfig::harness(), 2);
    let mut none: Vec<Option<Box<dyn Prefetcher + Send>>> = vec![None, None];
    let base = mc.run(&mut mk_srcs(), &mut none, 10_000, 30_000);
    let mut mc = MultiCoreEngine::new(SimConfig::harness(), 2);
    let mut pfs: Vec<Option<Box<dyn Prefetcher + Send>>> = (0..2)
        .map(|i| {
            Some(Box::new(ResembleMlp::new(
                paper_bank(),
                ResembleConfig::fast(),
                42 + i,
            )) as Box<dyn Prefetcher + Send>)
        })
        .collect();
    let with = mc.run(&mut mk_srcs(), &mut pfs, 10_000, 30_000);
    for c in 0..2 {
        assert!(
            with[c].ipc() > base[c].ipc(),
            "core {c}: {} vs {}",
            with[c].ipc(),
            base[c].ipc()
        );
    }
}

#[test]
fn quantized_frozen_controller_remains_effective() {
    let mut engine = Engine::new(SimConfig::harness());
    let mut src = app_by_name("433.milc", 42).unwrap().source;
    let base = engine.run(&mut *src, None, 20_000, 20_000);

    let mut ctl = ResembleMlp::new(paper_bank(), ResembleConfig::fast(), 42);
    let mut engine = Engine::new(SimConfig::harness());
    let mut src = app_by_name("433.milc", 42).unwrap().source;
    {
        let pf: &mut dyn Prefetcher = &mut ctl;
        let _ = engine.run(&mut *src, Some(pf), 0, 20_000);
    }
    let rms = ctl.quantize_and_freeze(16);
    assert!(rms < 1e-3, "16-bit quantization error {rms}");
    let s = {
        let pf: &mut dyn Prefetcher = &mut ctl;
        engine.run(&mut *src, Some(pf), 0, 20_000)
    };
    assert!(
        s.ipc_improvement_over(&base) > 10.0,
        "frozen 16-bit controller: {:.1}%",
        s.ipc_improvement_over(&base)
    );
}

#[test]
fn oracle_bounds_hold_on_real_bank() {
    let trace = app_by_name("621.wrf", 42).unwrap().source.collect_n(20_000);
    let mut bank = paper_bank();
    let r = oracle_selection(&trace, &mut bank, 256);
    // Bounds: every member <= oracle <= covered <= accesses.
    for (i, &h) in r.per_member_hits.iter().enumerate() {
        assert!(h <= r.oracle_hits, "member {i}");
    }
    assert!(r.oracle_hits <= r.covered_accesses);
    assert!(r.covered_accesses <= r.accesses);
    // On wrf-like strides the spatial members dominate.
    assert!(
        r.per_member_hits[1] > r.per_member_hits[2],
        "SPP should beat ISB on wrf"
    );
}

#[test]
fn kernel_workloads_run_through_the_full_stack() {
    for k in [
        Kernel::MatMul { n: 96 },
        Kernel::MergeSort { n: 1 << 12 },
        Kernel::HashJoin {
            build: 40_000,
            probe: 1 << 20,
        },
        Kernel::Stencil2D { n: 192 },
    ] {
        let mut engine = Engine::new(SimConfig::test_small());
        let mut src = KernelGen::new(k, 7, 4);
        let base = engine.run(&mut src, None, 2_000, 10_000);
        let mut engine = Engine::new(SimConfig::test_small());
        let mut src = KernelGen::new(k, 7, 4);
        let mut spp = Spp::new();
        let s = engine.run(&mut src, Some(&mut spp), 2_000, 10_000);
        assert_eq!(s.demand_accesses, 10_000, "{k:?}");
        // Every kernel has some regular component SPP can cover.
        assert!(
            s.prefetches_useful > 0,
            "{k:?}: SPP should find structure (useful={})",
            s.prefetches_useful
        );
        assert!(s.ipc() >= base.ipc() * 0.95, "{k:?} must not badly regress");
    }
}

#[test]
fn widened_zoo_members_behave_on_their_home_patterns() {
    // STMS on a global repeating sequence; STeMS on region footprints;
    // Markov/GHB on their canonical patterns — end-to-end through the sim.
    let run = |app: &str, pf: &mut dyn Prefetcher| -> SimStats {
        let mut engine = Engine::new(SimConfig::harness());
        let mut src = app_by_name(app, 42).unwrap().source;
        engine.run(&mut *src, Some(pf), 15_000, 30_000)
    };
    let mut stms = Stms::new();
    let s = run("471.omnetpp", &mut stms);
    assert!(
        s.accuracy() > 0.5,
        "STMS on repeating chase: {:.2}",
        s.accuracy()
    );
    let mut markov = Markov::new();
    let s = run("471.omnetpp", &mut markov);
    assert!(
        s.accuracy() > 0.5,
        "Markov on repeating chase: {:.2}",
        s.accuracy()
    );
    let mut ghb = GhbDc::new();
    let s = run("621.wrf", &mut ghb);
    assert!(s.prefetches_issued > 0, "GHB on strides must engage");
}
