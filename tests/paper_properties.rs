//! Integration tests asserting the specific qualitative properties each
//! paper figure/table claims, at reduced scale.

use resemble::core::baselines::SbpE;
use resemble::core::overhead::{
    mlp_param_count, table_direct_entries, table_token_entries, LatencyEstimate, StorageEstimate,
};
use resemble::prelude::*;
use resemble::trace::analysis::{pc_grouped_autocorrelation, summarize_acf, trace_autocorrelation};

/// Fig 1a/1b: streaming apps autocorrelate; irregular apps only per-PC.
#[test]
fn fig1_autocorrelation_shapes() {
    let milc = app_by_name("433.milc", 3).unwrap().source.collect_n(20_000);
    let omnet = app_by_name("471.omnetpp", 3)
        .unwrap()
        .source
        .collect_n(20_000);
    let m_raw = summarize_acf(&trace_autocorrelation(&milc, 40));
    let o_raw = summarize_acf(&trace_autocorrelation(&omnet, 40));
    let o_grp = summarize_acf(&pc_grouped_autocorrelation(&omnet, 40));
    assert!(m_raw.peak_abs > 0.5, "milc raw {}", m_raw.peak_abs);
    assert!(o_raw.peak_abs < 0.2, "omnetpp raw {}", o_raw.peak_abs);
    assert!(o_grp.peak_abs > 0.3, "omnetpp grouped {}", o_grp.peak_abs);
}

/// Fig 11 mechanism: low-throughput controllers issue fewer prefetches and
/// cannot beat the idealized configuration.
#[test]
fn fig11_latency_hurts_low_throughput_more() {
    let run = |latency: u64, high_tp: bool| -> SimStats {
        let mut cfg = SimConfig::harness();
        cfg.prefetch_timing = PrefetchTiming {
            latency,
            high_throughput: high_tp,
        };
        let mut ctl = ResembleMlp::new(paper_bank(), ResembleConfig::fast(), 42);
        let mut engine = Engine::new(cfg);
        let mut src = app_by_name("433.milc", 42).unwrap().source;
        engine.run(&mut *src, Some(&mut ctl), 10_000, 30_000)
    };
    let ideal = run(0, true);
    let hi40 = run(40, true);
    let lo40 = run(40, false);
    assert!(lo40.prefetches_issued < hi40.prefetches_issued);
    assert!(lo40.ipc() <= ideal.ipc() + 1e-9);
    assert!(hi40.ipc() <= ideal.ipc() + 1e-9);
}

/// §V-C1: SBP(E) exhibits response lag after a phase change while the
/// per-access controller re-decides each access.
#[test]
fn sbp_switches_slower_than_per_access_selection() {
    use resemble::trace::gen::{PhasedGen, PointerChaseGen, StreamGen};
    let mk = || -> Box<dyn TraceSource + Send> {
        Box::new(PhasedGen::new(
            vec![
                Box::new(StreamGen::new(5, 2, 4096, 8)),
                Box::new(PointerChaseGen::new(6, 6, 2500, 8)),
            ],
            12_000,
            8,
        ))
    };
    let mut sbp = SbpE::from_paper();
    let mut engine = Engine::new(SimConfig::harness());
    let mut src = mk();
    engine.run(&mut *src, Some(&mut sbp as &mut dyn Prefetcher), 0, 48_000);
    // The sandbox selector must have switched at least once per phase
    // boundary but orders of magnitude less often than per-access.
    assert!(sbp.switches >= 2, "switches={}", sbp.switches);
    assert!(
        sbp.switches < 2_000,
        "greedy selector thrashing: {}",
        sbp.switches
    );
    // More than one member must have been selected for meaningful spans.
    let used = sbp.selections.iter().filter(|&&c| c > 1_000).count();
    assert!(used >= 2, "selections={:?}", sbp.selections);
}

/// Table II budgets match the paper.
#[test]
fn table2_budgets() {
    let bank = paper_bank();
    let budgets: Vec<usize> = (0..bank.len())
        .map(|i| bank.member(i).budget_bytes())
        .collect();
    assert_eq!(budgets[0], 4 * 1024); // BO 4KB
    assert!((5_300..5_500).contains(&budgets[1])); // SPP 5.3KB
    assert_eq!(budgets[2], 8 * 1024); // ISB 8KB
    assert!((2_400..2_500).contains(&budgets[3])); // Domino 2.4KB
}

/// Table IV: the size relationships the paper reports.
#[test]
fn table4_model_size_relationships() {
    let (s, h, a) = (4, 100, 5);
    let mlp = mlp_param_count(s, h, a);
    assert_eq!(mlp, 1005);
    let direct4 = table_direct_entries(4, s, a);
    let direct8 = table_direct_entries(8, s, a);
    assert!(direct8 > direct4);
    assert!(direct4 as usize > table_token_entries(a, 3730));
    assert!((mlp as u128) < direct4);
}

/// Table VII/VIII: latency and storage in the paper's ballpark.
#[test]
fn table7_and_8_overheads() {
    let cfg = ResembleConfig::default();
    let lat = LatencyEstimate::for_config(&cfg);
    assert!(
        (15..=25).contains(&lat.total()),
        "total latency {}",
        lat.total()
    );
    let st = StorageEstimate::for_config(&cfg);
    assert_eq!(st.mlp_bytes, 4020); // ≈ paper's 4.2KB
    assert!((33_000..36_500).contains(&st.replay_bytes)); // ≈ 34.8KB
}

/// Table VI direction: the MLP's windowed rewards beat the tabular
/// variant's on an irregular app (the paper's first observation).
#[test]
fn table6_mlp_beats_tabular_on_irregular_app() {
    let run_mlp = || {
        let mut ctl = ResembleMlp::new(paper_bank(), ResembleConfig::fast(), 42);
        let mut engine = Engine::new(SimConfig::harness());
        let mut src = app_by_name("623.xalancbmk", 42).unwrap().source;
        engine.run(&mut *src, Some(&mut ctl as &mut dyn Prefetcher), 0, 50_000);
        ctl.stats.mean_window_reward()
    };
    let run_tab = || {
        let mut ctl = ResembleTabular::new(paper_bank(), ResembleConfig::fast(), 8, 42);
        let mut engine = Engine::new(SimConfig::harness());
        let mut src = app_by_name("623.xalancbmk", 42).unwrap().source;
        engine.run(&mut *src, Some(&mut ctl as &mut dyn Prefetcher), 0, 50_000);
        ctl.stats.mean_window_reward()
    };
    let (mlp, tab) = (run_mlp(), run_tab());
    assert!(
        mlp > tab,
        "MLP reward {mlp:.1} should beat tabular {tab:.1}"
    );
}

/// Fig 12 direction: the Voyager-like neural prefetcher is strong on
/// irregular traces but not uniformly best.
#[test]
fn fig12_voyager_profile() {
    let run = |app: &str, pf: &mut dyn Prefetcher| -> (SimStats, SimStats) {
        let mut engine = Engine::new(SimConfig::harness());
        let mut src = app_by_name(app, 42).unwrap().source;
        let base = engine.run(&mut *src, None, 15_000, 40_000);
        let mut engine = Engine::new(SimConfig::harness());
        let mut src = app_by_name(app, 42).unwrap().source;
        let s = engine.run(&mut *src, Some(pf), 15_000, 40_000);
        (base, s)
    };
    // Strong on the irregular app...
    let (base, v) = run("471.omnetpp", &mut NeuralTemporalPrefetcher::new(42));
    let v_irr = v.ipc_improvement_over(&base);
    assert!(v_irr > 5.0, "voyager on omnetpp: {v_irr:.1}%");
    // ...but beaten by a spatial prefetcher on the streaming app.
    let (base_m, vm) = run("433.milc", &mut NeuralTemporalPrefetcher::new(42));
    let (_, sm) = run("433.milc", &mut Spp::new());
    assert!(
        sm.ipc_improvement_over(&base_m) > vm.ipc_improvement_over(&base_m),
        "SPP should beat Voyager on milc"
    );
}
