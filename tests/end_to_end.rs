//! End-to-end integration tests: the full pipeline (generator → simulator
//! → prefetcher/controller → metrics) reproduces the paper's qualitative
//! results on a reduced scale.

use resemble::core::baselines::SbpE;
use resemble::prelude::*;

const WARMUP: usize = 20_000;
const MEASURE: usize = 50_000;

fn run_app(app: &str, pf: Option<&mut dyn Prefetcher>, seed: u64) -> SimStats {
    let mut engine = Engine::new(SimConfig::harness());
    let mut src = app_by_name(app, seed).expect("known app").source;
    engine.run(&mut *src, pf, WARMUP, MEASURE)
}

#[test]
fn spatial_prefetchers_win_on_streaming_apps() {
    let seed = 42;
    let base = run_app("433.milc", None, seed);
    let spp = run_app("433.milc", Some(&mut Spp::new()), seed);
    let isb = run_app("433.milc", Some(&mut Isb::new()), seed);
    assert!(
        spp.ipc_improvement_over(&base) > isb.ipc_improvement_over(&base) + 5.0,
        "SPP {:.1}% vs ISB {:.1}%",
        spp.ipc_improvement_over(&base),
        isb.ipc_improvement_over(&base)
    );
}

#[test]
fn temporal_prefetchers_win_on_irregular_apps() {
    let seed = 42;
    let base = run_app("471.omnetpp", None, seed);
    let spp = run_app("471.omnetpp", Some(&mut Spp::new()), seed);
    let isb = run_app("471.omnetpp", Some(&mut Isb::new()), seed);
    assert!(
        isb.ipc_improvement_over(&base) > spp.ipc_improvement_over(&base) + 5.0,
        "ISB {:.1}% vs SPP {:.1}%",
        isb.ipc_improvement_over(&base),
        spp.ipc_improvement_over(&base)
    );
}

#[test]
fn resemble_tracks_the_best_member_on_both_pattern_classes() {
    // The headline claim at reduced scale: on a spatial app ReSemble gets
    // close to SPP; on a temporal app close to ISB — no individual
    // prefetcher does both.
    let seed = 42;
    for (app, best) in [("433.milc", "spp"), ("623.xalancbmk", "isb")] {
        let base = run_app(app, None, seed);
        let best_ipc = match best {
            "spp" => run_app(app, Some(&mut Spp::new()), seed).ipc_improvement_over(&base),
            _ => run_app(app, Some(&mut Isb::new()), seed).ipc_improvement_over(&base),
        };
        let mut ctl = ResembleMlp::new(paper_bank(), ResembleConfig::fast(), seed);
        let re = run_app(app, Some(&mut ctl), seed).ipc_improvement_over(&base);
        assert!(
            re > 0.55 * best_ipc,
            "{app}: ReSemble {re:.1}% should approach best member {best_ipc:.1}%"
        );
        // And the controller's dominant cumulative action is the best member.
        let counts = &ctl.stats.action_counts;
        let dominant = counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        let expect = if best == "spp" { 1 } else { 2 };
        assert_eq!(dominant, expect, "{app}: action counts {counts:?}");
    }
}

#[test]
fn resemble_beats_sbp_on_phase_interleaved_workload() {
    // The response-lag argument: on a phase-switching app (602.gcc-like),
    // the per-access RL controller should at least match the
    // sandbox-evaluated greedy ensemble.
    let seed = 42;
    let base = run_app("602.gcc", None, seed);
    let mut sbp = SbpE::from_paper();
    let sbp_ipc = run_app("602.gcc", Some(&mut sbp), seed).ipc_improvement_over(&base);
    let mut ctl = ResembleMlp::new(paper_bank(), ResembleConfig::fast(), seed);
    let re_ipc = run_app("602.gcc", Some(&mut ctl), seed).ipc_improvement_over(&base);
    assert!(
        re_ipc > 0.8 * sbp_ipc,
        "ReSemble {re_ipc:.1}% should be competitive with SBP(E) {sbp_ipc:.1}%"
    );
}

#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let mut ctl = ResembleMlp::new(paper_bank(), ResembleConfig::fast(), 7);
        let mut engine = Engine::new(SimConfig::harness());
        let mut src = app_by_name("654.roms", 7).expect("known app").source;
        let s = engine.run(&mut *src, Some(&mut ctl), 5_000, 15_000);
        (format!("{s:?}"), ctl.stats.action_counts.clone())
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn all_apps_simulate_cleanly_with_the_full_ensemble() {
    // Smoke over every generator with the complete stack (short windows).
    for &app in resemble::trace::gen::spec_like::APP_NAMES {
        let mut ctl = ResembleMlp::new(
            paper_bank(),
            ResembleConfig {
                batch_size: 8,
                ..ResembleConfig::default()
            },
            1,
        );
        let mut engine = Engine::new(SimConfig::test_small());
        let mut src = app_by_name(app, 1).expect("known app").source;
        let s = engine.run(&mut *src, Some(&mut ctl), 500, 2_000);
        assert_eq!(s.demand_accesses, 2_000, "{app}");
        assert!(s.cycles > 0 && s.ipc() > 0.0, "{app}: {s:?}");
    }
}

#[test]
fn tabular_variant_runs_and_learns_on_streams() {
    let seed = 42;
    let base = run_app("433.milc", None, seed);
    let mut ctl = ResembleTabular::new(paper_bank(), ResembleConfig::fast(), 8, seed);
    let s = run_app("433.milc", Some(&mut ctl), seed);
    assert!(
        s.ipc_improvement_over(&base) > 10.0,
        "ReSemble-T on milc: {:.1}%",
        s.ipc_improvement_over(&base)
    );
    assert!(ctl.agent().unique_states() > 0);
}

#[test]
fn voyager_bank_ensemble_runs() {
    let seed = 42;
    let base = run_app("471.omnetpp", None, seed);
    let mut ctl = ResembleMlp::new(voyager_bank(seed), ResembleConfig::fast(), seed);
    let s = run_app("471.omnetpp", Some(&mut ctl), seed);
    assert!(s.prefetches_issued > 0);
    assert!(s.ipc_improvement_over(&base) > 0.0);
}
