//! Determinism regression: the whole pipeline is seeded, so two runs with
//! identical inputs must be *bit-identical* — same simulator statistics
//! and same learned Q-values. This is the executable counterpart of the
//! `nondeterministic-iteration` / `wall-clock-in-sim` lint rules: the lint
//! proves no randomized-hasher iteration or host-time read exists in the
//! critical crates, and this test proves the end-to-end result actually
//! reproduces.

use resemble::prelude::*;

const WARMUP: usize = 10_000;
const MEASURE: usize = 25_000;
const APP: &str = "433.milc";
const SEED: u64 = 7;

/// One fresh MLP-controller run: stats plus a Q-value probe on a fixed
/// post-training state.
fn run_mlp() -> (SimStats, Vec<u32>) {
    let cfg = ResembleConfig::fast();
    let probe: Vec<f32> = (0..cfg.state_dim)
        .map(|i| 0.125 * (i as f32 + 1.0))
        .collect();
    let mut ctl = ResembleMlp::new(paper_bank(), cfg, SEED);
    let mut engine = Engine::new(SimConfig::harness());
    let mut src = app_by_name(APP, SEED).expect("known app").source;
    let stats = engine.run(&mut *src, Some(&mut ctl), WARMUP, MEASURE);
    // Compare float bits, not values: determinism means bit-identity.
    let q = ctl
        .agent_mut()
        .q_values(&probe)
        .iter()
        .map(|v| v.to_bits())
        .collect();
    (stats, q)
}

/// One fresh tabular-controller run: stats plus the Q-rows of the first
/// few state tokens.
fn run_tabular() -> (SimStats, Vec<u32>) {
    let mut ctl = ResembleTabular::new(paper_bank(), ResembleConfig::fast(), 4, SEED);
    let mut engine = Engine::new(SimConfig::harness());
    let mut src = app_by_name(APP, SEED).expect("known app").source;
    let stats = engine.run(&mut *src, Some(&mut ctl), WARMUP, MEASURE);
    // Tokens are allocated lazily, in first-seen order; a deterministic
    // run therefore yields the same token count AND the same rows.
    let tokens = ctl.agent().unique_states() as u32;
    let q = (0..tokens)
        .flat_map(|t| {
            ctl.agent()
                .q_row(t)
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        })
        .collect();
    (stats, q)
}

#[test]
fn mlp_controller_runs_are_bit_identical() {
    let (stats_a, q_a) = run_mlp();
    let (stats_b, q_b) = run_mlp();
    assert_eq!(
        format!("{stats_a:?}"),
        format!("{stats_b:?}"),
        "SimStats diverged between identical ReSemble-MLP runs"
    );
    assert_eq!(q_a, q_b, "Q-values diverged between identical runs");
    // Sanity: the probe actually trained (all-zero Q would vacuously pass).
    assert!(
        q_a.iter().any(|&b| b != 0),
        "probe Q-values are all zero; the determinism check is vacuous"
    );
}

#[test]
fn tabular_controller_runs_are_bit_identical() {
    let (stats_a, q_a) = run_tabular();
    let (stats_b, q_b) = run_tabular();
    assert_eq!(
        format!("{stats_a:?}"),
        format!("{stats_b:?}"),
        "SimStats diverged between identical ReSemble-T runs"
    );
    assert_eq!(q_a, q_b, "Q-rows diverged between identical runs");
    assert!(
        q_a.iter().any(|&b| b != 0),
        "probe Q-rows are all zero; the determinism check is vacuous"
    );
}

#[test]
fn served_session_is_bit_identical_to_offline_run() {
    // Serving the same access stream over the socket — microbatched by the
    // shard worker — must leave the controller in the same state and issue
    // the same prefetches as the plain sequential run, including the final
    // network parameters bit for bit.
    use resemble::serve::{offline_decisions, ServeClient, ServeConfig, Server, SessionModel};

    let trace: Vec<(MemAccess, bool)> = {
        let mut app = app_by_name(APP, SEED).expect("known app");
        app.source
            .collect_n(2_000)
            .into_iter()
            .enumerate()
            .map(|(i, a)| (a, i % 4 != 0))
            .collect()
    };

    let mut offline_model = SessionModel::build("resemble", SEED, true).expect("model builds");
    let offline = offline_decisions(&mut offline_model, &trace);

    let server = Server::start(ServeConfig::default(), SessionModel::default_builder())
        .expect("server starts");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    client.hello("resemble", SEED, true).expect("hello");
    let mut served: Vec<Vec<u64>> = vec![Vec::new(); trace.len()];
    let mut next_id = 0u32;
    for chunk in trace.chunks(32) {
        for (access, hit) in chunk {
            client.queue_access(next_id, 0, *access, *hit);
            next_id += 1;
        }
        client.flush().expect("flush");
        for _ in 0..chunk.len() {
            match client.recv().expect("recv").expect("reply") {
                resemble::serve::Reply::Decision { req_id, prefetches } => {
                    served[req_id as usize] = prefetches;
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }
    }
    client.queue_bye();
    client.flush().expect("flush bye");
    let _ = client.recv();
    let _ = server.shutdown();

    assert_eq!(
        served, offline,
        "served decisions diverged from offline run"
    );
}

#[test]
fn baseline_engine_runs_are_bit_identical() {
    // No controller in the loop: the engine + generator alone must also
    // reproduce exactly (catches nondeterminism below the ensemble layer).
    let run = || {
        let mut engine = Engine::new(SimConfig::harness());
        let mut src = app_by_name(APP, SEED).expect("known app").source;
        engine.run(&mut *src, None, WARMUP, MEASURE)
    };
    assert_eq!(format!("{:?}", run()), format!("{:?}", run()));
}
