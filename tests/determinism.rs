//! Determinism regression: the whole pipeline is seeded, so two runs with
//! identical inputs must be *bit-identical* — same simulator statistics
//! and same learned Q-values. This is the executable counterpart of the
//! `nondeterministic-iteration` / `wall-clock-in-sim` lint rules: the lint
//! proves no randomized-hasher iteration or host-time read exists in the
//! critical crates, and this test proves the end-to-end result actually
//! reproduces.

use resemble::prelude::*;

const WARMUP: usize = 10_000;
const MEASURE: usize = 25_000;
const APP: &str = "433.milc";
const SEED: u64 = 7;

/// One fresh MLP-controller run: stats plus a Q-value probe on a fixed
/// post-training state.
fn run_mlp() -> (SimStats, Vec<u32>) {
    let cfg = ResembleConfig::fast();
    let probe: Vec<f32> = (0..cfg.state_dim)
        .map(|i| 0.125 * (i as f32 + 1.0))
        .collect();
    let mut ctl = ResembleMlp::new(paper_bank(), cfg, SEED);
    let mut engine = Engine::new(SimConfig::harness());
    let mut src = app_by_name(APP, SEED).expect("known app").source;
    let stats = engine.run(&mut *src, Some(&mut ctl), WARMUP, MEASURE);
    // Compare float bits, not values: determinism means bit-identity.
    let q = ctl
        .agent_mut()
        .q_values(&probe)
        .iter()
        .map(|v| v.to_bits())
        .collect();
    (stats, q)
}

/// One fresh tabular-controller run: stats plus the Q-rows of the first
/// few state tokens.
fn run_tabular() -> (SimStats, Vec<u32>) {
    let mut ctl = ResembleTabular::new(paper_bank(), ResembleConfig::fast(), 4, SEED);
    let mut engine = Engine::new(SimConfig::harness());
    let mut src = app_by_name(APP, SEED).expect("known app").source;
    let stats = engine.run(&mut *src, Some(&mut ctl), WARMUP, MEASURE);
    // Tokens are allocated lazily, in first-seen order; a deterministic
    // run therefore yields the same token count AND the same rows.
    let tokens = ctl.agent().unique_states() as u32;
    let q = (0..tokens)
        .flat_map(|t| {
            ctl.agent()
                .q_row(t)
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        })
        .collect();
    (stats, q)
}

#[test]
fn mlp_controller_runs_are_bit_identical() {
    let (stats_a, q_a) = run_mlp();
    let (stats_b, q_b) = run_mlp();
    assert_eq!(
        format!("{stats_a:?}"),
        format!("{stats_b:?}"),
        "SimStats diverged between identical ReSemble-MLP runs"
    );
    assert_eq!(q_a, q_b, "Q-values diverged between identical runs");
    // Sanity: the probe actually trained (all-zero Q would vacuously pass).
    assert!(
        q_a.iter().any(|&b| b != 0),
        "probe Q-values are all zero; the determinism check is vacuous"
    );
}

#[test]
fn tabular_controller_runs_are_bit_identical() {
    let (stats_a, q_a) = run_tabular();
    let (stats_b, q_b) = run_tabular();
    assert_eq!(
        format!("{stats_a:?}"),
        format!("{stats_b:?}"),
        "SimStats diverged between identical ReSemble-T runs"
    );
    assert_eq!(q_a, q_b, "Q-rows diverged between identical runs");
    assert!(
        q_a.iter().any(|&b| b != 0),
        "probe Q-rows are all zero; the determinism check is vacuous"
    );
}

#[test]
fn baseline_engine_runs_are_bit_identical() {
    // No controller in the loop: the engine + generator alone must also
    // reproduce exactly (catches nondeterminism below the ensemble layer).
    let run = || {
        let mut engine = Engine::new(SimConfig::harness());
        let mut src = app_by_name(APP, SEED).expect("known app").source;
        engine.run(&mut *src, None, WARMUP, MEASURE)
    };
    assert_eq!(format!("{:?}", run()), format!("{:?}", run()));
}
