//! Property-based tests of the core data-structure invariants (proptest).

use proptest::collection::vec;
use proptest::prelude::*;
use resemble::core::preprocess::fold_hash;
use resemble::core::ReplayMemory;
use resemble::nn::{Activation, Matrix, Mlp};
use resemble::prefetch::NextLine;
use resemble::prelude::*;
use resemble::sim::{Cache, Lookup, ReferenceEngine};
use resemble::trace::gen::VecSource;
use resemble::trace::io::{read_trace, write_trace};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// fold_hash stays in range and is deterministic for any input.
    #[test]
    fn fold_hash_in_range(v in any::<u64>(), bits in 1u32..=32) {
        let h = fold_hash(v, bits);
        prop_assert!(h < (1u64 << bits));
        prop_assert_eq!(h, fold_hash(v, bits));
    }

    /// A cache never reports more lines than its capacity, and a filled
    /// block is immediately visible until evicted.
    #[test]
    fn cache_capacity_and_visibility(addrs in vec(any::<u64>(), 1..300)) {
        let mut cache = Cache::new("t", 8 * 4 * 64, 4); // 8 sets x 4 ways
        for &a in &addrs {
            cache.fill(a, false, false);
            prop_assert!(cache.contains(a), "just-filled block must be present");
            let hit = matches!(cache.access(a, false), Lookup::Hit { .. });
            prop_assert!(hit, "access to just-filled block must hit");
        }
    }

    /// Replay rewards are always 0 (NP), −1 (expired), or +k with
    /// 1 ≤ k ≤ number of issued blocks; valid transitions always carry a
    /// next state.
    #[test]
    fn replay_reward_invariants(
        ops in vec((any::<u8>(), any::<u8>()), 10..400),
        window in 2usize..32,
    ) {
        let mut m = ReplayMemory::new(64, window, 4);
        let mut assigned = Vec::new();
        let mut prev: Option<u64> = None;
        let mut ids = Vec::new();
        for (sel, blk) in ops {
            let blocks: Vec<u64> = match sel % 4 {
                0 => vec![],
                1 => vec![blk as u64],
                2 => vec![blk as u64, blk as u64 ^ 0x80],
                _ => vec![blk as u64, (blk as u64) + 300, (blk as u64) + 600],
            };
            let id = m.push(&[0.5; 4], (sel % 5) as usize, &blocks);
            if let Some(p) = prev {
                m.set_next_state(p, &[0.1; 4]);
            }
            prev = Some(id);
            ids.push((id, blocks.len()));
            m.on_access(blk as u64, &mut assigned);
        }
        for (id, n_blocks) in ids {
            if let Some(t) = m.get(id) {
                if let Some(r) = t.reward {
                    let ok = r == 0.0 || r == -1.0 || (r >= 1.0 && r <= n_blocks as f32);
                    prop_assert!(ok, "reward {r} for {n_blocks} blocks");
                }
                if t.is_valid() {
                    prop_assert!(t.next_state.is_some());
                }
            }
        }
    }

    /// The engine never panics, retires all instructions, and IPC stays in
    /// (0, width] for arbitrary short traces.
    #[test]
    fn engine_total_and_ipc_bounds(
        raw in vec((any::<u16>(), any::<u32>(), any::<bool>()), 20..200),
    ) {
        let trace: Vec<MemAccess> = raw
            .iter()
            .enumerate()
            .map(|(i, &(pc, addr, w))| MemAccess {
                instr_id: (i as u64) * 3,
                pc: pc as u64,
                addr: (addr as u64) << 6,
                is_write: w,
            })
            .collect();
        let n = trace.len();
        let mut engine = Engine::new(SimConfig::test_small());
        let stats = engine.run(&mut VecSource::new(trace), None, 0, n);
        prop_assert_eq!(stats.demand_accesses, n as u64);
        prop_assert!(stats.ipc() > 0.0);
        prop_assert!(stats.ipc() <= 4.0 + 1e-9);
        prop_assert!(stats.llc_demand_hits + stats.llc_demand_misses <= stats.l2_misses);
    }

    /// The optimized engine (flat event queues, flat cache, batched
    /// prefetcher callbacks) produces bit-identical `SimStats` to the
    /// heap-based seed implementation (`ReferenceEngine`) on arbitrary
    /// short traces — without a prefetcher and with one, and across the
    /// warmup/measurement boundary.
    #[test]
    fn engine_matches_reference_bit_for_bit(
        raw in vec((any::<u16>(), any::<u32>(), any::<bool>()), 20..250),
        gap in 1u64..6,
        warmup_pct in 0u64..60,
        mshrs in 1usize..6,
        with_pf in any::<bool>(),
    ) {
        let trace: Vec<MemAccess> = raw
            .iter()
            .enumerate()
            .map(|(i, &(pc, addr, w))| MemAccess {
                instr_id: (i as u64) * gap,
                pc: pc as u64,
                // Narrow the block range so sets collide and MSHRs fill.
                addr: ((addr as u64) % 0x4000) << 6,
                is_write: w,
            })
            .collect();
        let n = trace.len();
        let warmup = n * warmup_pct as usize / 100;
        let mut cfg = SimConfig::test_small();
        cfg.llc_mshrs = mshrs;
        let mut engine = Engine::new(cfg);
        let mut reference = ReferenceEngine::new(cfg);
        let (fast, slow) = if with_pf {
            let mut pf_a = NextLine::new(3);
            let mut pf_b = NextLine::new(3);
            (
                engine.run(
                    &mut VecSource::new(trace.clone()),
                    Some(&mut pf_a),
                    warmup,
                    n - warmup,
                ),
                reference.run(
                    &mut VecSource::new(trace),
                    Some(&mut pf_b),
                    warmup,
                    n - warmup,
                ),
            )
        } else {
            (
                engine.run(&mut VecSource::new(trace.clone()), None, warmup, n - warmup),
                reference.run(&mut VecSource::new(trace), None, warmup, n - warmup),
            )
        };
        prop_assert_eq!(format!("{fast:?}"), format!("{slow:?}"));
    }

    /// Trace IO round-trips arbitrary access sequences.
    #[test]
    fn trace_io_roundtrip(raw in vec((any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>()), 0..100)) {
        let mut trace: Vec<MemAccess> = raw
            .iter()
            .map(|&(i, pc, addr, w)| MemAccess { instr_id: i, pc, addr, is_write: w })
            .collect();
        trace.sort_by_key(|a| a.instr_id);
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        prop_assert_eq!(trace, back);
    }

    /// MLP forward never produces NaN for finite inputs in [0, 1].
    #[test]
    fn mlp_forward_finite(xs in vec(0.0f32..1.0, 4), seed in any::<u64>()) {
        let net = Mlp::new(&[4, 16, 5], Activation::Relu, seed);
        let out = net.predict(&xs);
        prop_assert!(out.iter().all(|v| v.is_finite()));
    }

    /// The minibatch GEMM forward is bit-identical to looping the
    /// per-sample forward over the same rows, across random layer
    /// shapes, batch sizes (including 0 and 1), and activations — the
    /// determinism contract of the batched DQN datapath.
    #[test]
    fn forward_batch_bit_identical_to_per_sample(
        in_dim in 1usize..6,
        hidden in 1usize..40,
        out_dim in 1usize..6,
        batch in 0usize..5,
        act_sel in 0usize..4,
        seed in any::<u64>(),
        xs_raw in vec(-2.0f32..2.0, 5 * 6),
    ) {
        let act = [Activation::Relu, Activation::Tanh, Activation::Sigmoid, Activation::Identity][act_sel];
        let net = Mlp::new(&[in_dim, hidden, out_dim], act, seed);
        let xs = Matrix::from_fn(batch, in_dim, |r, c| xs_raw[r * in_dim + c]);
        let mut bs = net.make_batch_scratch(batch);
        let out = net.forward_batch(&xs, &mut bs);
        prop_assert_eq!(out.rows(), batch);
        let mut scratch = net.make_scratch();
        for r in 0..batch {
            let expect = net.forward(xs.row(r), &mut scratch);
            for (c, (&b, &e)) in out.row(r).iter().zip(expect.iter()).enumerate() {
                prop_assert_eq!(b.to_bits(), e.to_bits(), "row {} col {}", r, c);
            }
        }
    }

    /// The minibatch backward pass accumulates gradient sums bit-identical
    /// to sequential per-sample backward calls over the same rows.
    #[test]
    fn backward_batch_bit_identical_to_per_sample(
        in_dim in 1usize..6,
        hidden in 1usize..40,
        out_dim in 1usize..6,
        batch in 0usize..5,
        act_sel in 0usize..4,
        seed in any::<u64>(),
        xs_raw in vec(-2.0f32..2.0, 5 * 6),
        og_raw in vec(-1.5f32..1.5, 5 * 6),
    ) {
        let act = [Activation::Relu, Activation::Tanh, Activation::Sigmoid, Activation::Identity][act_sel];
        let net = Mlp::new(&[in_dim, hidden, out_dim], act, seed);
        let xs = Matrix::from_fn(batch, in_dim, |r, c| xs_raw[r * in_dim + c]);
        // Sparse TD-style rows (one live action) and dense rows both occur.
        let og = Matrix::from_fn(batch, out_dim, |r, c| {
            if r % 2 == 0 && c != r % out_dim { 0.0 } else { og_raw[r * out_dim + c] }
        });
        let mut bs = net.make_batch_scratch(batch);
        net.forward_batch(&xs, &mut bs);
        let mut batch_grads = net.make_grad_buffer();
        net.backward_batch(&mut bs, &og, &mut batch_grads);
        let mut scratch = net.make_scratch();
        let mut seq_grads = net.make_grad_buffer();
        for r in 0..batch {
            net.forward(xs.row(r), &mut scratch);
            net.backward(&mut scratch, og.row(r), &mut seq_grads);
        }
        let (bsums, ssums) = (batch_grads.flat_sums(), seq_grads.flat_sums());
        prop_assert_eq!(bsums.len(), ssums.len());
        for (i, (b, s)) in bsums.iter().zip(&ssums).enumerate() {
            prop_assert_eq!(b.to_bits(), s.to_bits(), "grad elem {}", i);
        }
    }

    /// The ensemble controller issues at most the selected member's
    /// suggestion list and never panics on random access streams.
    #[test]
    fn controller_never_overissues(raw in vec((any::<u16>(), any::<u32>()), 50..300)) {
        let mut ctl = ResembleMlp::new(
            paper_bank(),
            ResembleConfig { batch_size: 4, ..ResembleConfig::default() },
            1,
        );
        let mut out = Vec::new();
        for (i, &(pc, addr)) in raw.iter().enumerate() {
            out.clear();
            let a = MemAccess::load(i as u64, pc as u64, (addr as u64) << 6);
            ctl.on_access(&a, false, &mut out);
            // Bank max degrees: BO 1, SPP 4, ISB 2, Domino 2.
            prop_assert!(out.len() <= 4, "issued {} suggestions", out.len());
        }
    }
}
