//! Minimal flag parsing for the harness binaries (no external CLI crate).
//!
//! Every figure/table binary accepts:
//! `--accesses N` (measurement accesses), `--warmup N`, `--seed S`,
//! `--apps a,b,c` (subset of app names), `--json PATH` (machine-readable
//! dump), `--jobs N` (sweep worker count; 0/unset falls back to
//! `RESEMBLE_JOBS`, then host cores — results are bit-identical at any
//! value, see DESIGN.md §9).

use std::collections::HashMap;

/// Flags every harness binary understands (see the module docs). Binaries
/// with extra flags pass them to [`Options::from_env_checked`] /
/// [`Options::warn_unknown`] on top of this set.
pub const COMMON_FLAGS: &[&str] = &["accesses", "warmup", "seed", "apps", "json", "jobs"];

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    flags: HashMap<String, String>,
}

impl Options {
    /// Parse `--key value` pairs from an argument iterator.
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut flags = HashMap::new();
        let mut args = args.peekable();
        while let Some(a) = args.next() {
            if let Some(key) = a.strip_prefix("--") {
                let val = match args.peek() {
                    Some(v) if !v.starts_with("--") => args.next().unwrap(),
                    _ => "true".to_string(),
                };
                flags.insert(key.to_string(), val);
            }
        }
        Self { flags }
    }

    /// Parse from the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse from the process arguments and warn (to stderr) about any
    /// `--key` outside [`COMMON_FLAGS`] ∪ `extra` — a typo like
    /// `--acesses` otherwise silently runs with the default value.
    pub fn from_env_checked(extra: &[&str]) -> Self {
        let o = Self::from_env();
        o.warn_unknown(extra);
        o
    }

    /// The parsed keys not in [`COMMON_FLAGS`] ∪ `extra`, sorted. Each one
    /// gets a stderr warning; callers mostly use the returned list in tests.
    pub fn warn_unknown(&self, extra: &[&str]) -> Vec<String> {
        let mut unknown: Vec<String> = self
            .flags
            .keys()
            .filter(|k| !COMMON_FLAGS.contains(&k.as_str()) && !extra.contains(&k.as_str()))
            .cloned()
            .collect();
        unknown.sort();
        for k in &unknown {
            eprintln!(
                "warning: unrecognized flag --{k} (known: {})",
                COMMON_FLAGS
                    .iter()
                    .chain(extra)
                    .map(|f| format!("--{f}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            );
        }
        unknown
    }

    /// A `usize` flag with default.
    pub fn usize(&self, key: &str, default: usize) -> usize {
        self.flags
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// A `u64` flag with default.
    pub fn u64(&self, key: &str, default: u64) -> u64 {
        self.flags
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// A string flag.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// A comma-separated list flag.
    pub fn list(&self, key: &str) -> Option<Vec<String>> {
        self.flags.get(key).map(|v| {
            v.split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect()
        })
    }

    /// A boolean flag (present or `--key true`).
    pub fn flag(&self, key: &str) -> bool {
        matches!(
            self.flags.get(key).map(String::as_str),
            Some("true") | Some("1")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(s: &str) -> Options {
        Options::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_kv_pairs_and_defaults() {
        let o = opts("--accesses 5000 --apps a,b --fast");
        assert_eq!(o.usize("accesses", 1), 5000);
        assert_eq!(o.usize("warmup", 7), 7);
        assert_eq!(o.list("apps"), Some(vec!["a".to_string(), "b".to_string()]));
        assert!(o.flag("fast"));
        assert!(!o.flag("slow"));
    }

    #[test]
    fn bad_numbers_fall_back() {
        let o = opts("--accesses nope");
        assert_eq!(o.usize("accesses", 42), 42);
    }

    #[test]
    fn unknown_flags_are_reported() {
        let o = opts("--accesses 100 --acesses 200 --only bo");
        assert_eq!(o.warn_unknown(&[]), vec!["acesses", "only"]);
        // A binary that documents --only sees just the typo.
        assert_eq!(o.warn_unknown(&["only"]), vec!["acesses"]);
        // All-known leaves nothing to report.
        assert!(opts("--seed 1 --json x.json").warn_unknown(&[]).is_empty());
    }
}
