//! Minimal flag parsing for the harness binaries (no external CLI crate).
//!
//! Every figure/table binary accepts:
//! `--accesses N` (measurement accesses), `--warmup N`, `--seed S`,
//! `--apps a,b,c` (subset of app names), `--json PATH` (machine-readable
//! dump), `--threads N`.

use std::collections::HashMap;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    flags: HashMap<String, String>,
}

impl Options {
    /// Parse `--key value` pairs from an argument iterator.
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut flags = HashMap::new();
        let mut args = args.peekable();
        while let Some(a) = args.next() {
            if let Some(key) = a.strip_prefix("--") {
                let val = match args.peek() {
                    Some(v) if !v.starts_with("--") => args.next().unwrap(),
                    _ => "true".to_string(),
                };
                flags.insert(key.to_string(), val);
            }
        }
        Self { flags }
    }

    /// Parse from the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// A `usize` flag with default.
    pub fn usize(&self, key: &str, default: usize) -> usize {
        self.flags
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// A `u64` flag with default.
    pub fn u64(&self, key: &str, default: u64) -> u64 {
        self.flags
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// A string flag.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// A comma-separated list flag.
    pub fn list(&self, key: &str) -> Option<Vec<String>> {
        self.flags.get(key).map(|v| {
            v.split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect()
        })
    }

    /// A boolean flag (present or `--key true`).
    pub fn flag(&self, key: &str) -> bool {
        matches!(
            self.flags.get(key).map(String::as_str),
            Some("true") | Some("1")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(s: &str) -> Options {
        Options::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_kv_pairs_and_defaults() {
        let o = opts("--accesses 5000 --apps a,b --fast");
        assert_eq!(o.usize("accesses", 1), 5000);
        assert_eq!(o.usize("warmup", 7), 7);
        assert_eq!(o.list("apps"), Some(vec!["a".to_string(), "b".to_string()]));
        assert!(o.flag("fast"));
        assert!(!o.flag("slow"));
    }

    #[test]
    fn bad_numbers_fall_back() {
        let o = opts("--accesses nope");
        assert_eq!(o.usize("accesses", 42), 42);
    }
}
