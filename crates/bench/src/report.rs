//! Paper reference values and comparison rendering.
//!
//! Each harness binary prints a "paper vs measured" table; the reference
//! numbers below are transcribed from the paper's §V-C3 results text (the
//! abstract quotes slightly different averages — 85.27/44.22/31.02 vs the
//! results text's 85.27/41.02/29.52; we reference the results text).

use resemble_stats::Table;

/// Per-prefetcher averages the paper reports (Figs 8–10 text).
#[derive(Debug, Clone, Copy)]
pub struct PaperAverages {
    /// factory key
    pub pf: &'static str,
    /// prefetch accuracy, percent
    pub accuracy: f64,
    /// prefetch coverage, percent
    pub coverage: f64,
    /// IPC improvement, percent
    pub ipc_improvement: f64,
}

/// The paper's reported averages for the main comparison (Figs 8–10).
pub const PAPER_MAIN: &[PaperAverages] = &[
    PaperAverages {
        pf: "bo",
        accuracy: 60.51,
        coverage: 27.04,
        ipc_improvement: 20.93,
    },
    PaperAverages {
        pf: "spp",
        accuracy: 77.90,
        coverage: 31.14,
        ipc_improvement: 22.67,
    },
    PaperAverages {
        pf: "isb",
        accuracy: 71.07,
        coverage: 20.36,
        ipc_improvement: 12.36,
    },
    PaperAverages {
        pf: "domino",
        accuracy: 43.25,
        coverage: 10.83,
        ipc_improvement: 4.91,
    },
    PaperAverages {
        pf: "sbp_e",
        accuracy: 82.05,
        coverage: 37.67,
        ipc_improvement: 25.33,
    },
    PaperAverages {
        pf: "resemble_t",
        accuracy: 83.94,
        coverage: 42.16,
        ipc_improvement: 29.26,
    },
    PaperAverages {
        pf: "resemble",
        accuracy: 85.27,
        coverage: 41.02,
        ipc_improvement: 29.52,
    },
];

/// Look up the paper's averages for a prefetcher key.
pub fn paper_average(pf: &str) -> Option<&'static PaperAverages> {
    PAPER_MAIN.iter().find(|p| p.pf == pf)
}

/// Table VI's reported average rewards (model, with_pc, suite → value).
pub const PAPER_TABLE_VI: &[(&str, bool, &str, f64)] = &[
    ("table4", false, "SPEC 06", 437.97),
    ("table4", false, "SPEC 17", 440.42),
    ("table4", false, "GAP", 19.93),
    ("table8", false, "SPEC 06", 430.49),
    ("table8", false, "SPEC 17", 457.08),
    ("table8", false, "GAP", 28.21),
    ("mlp", false, "SPEC 06", 459.99),
    ("mlp", false, "SPEC 17", 589.19),
    ("mlp", false, "GAP", 58.72),
    ("table4", true, "SPEC 06", 404.88),
    ("table4", true, "SPEC 17", 452.68),
    ("table4", true, "GAP", 19.72),
    ("table8", true, "SPEC 06", 492.30),
    ("table8", true, "SPEC 17", 451.42),
    ("table8", true, "GAP", 21.16),
    ("mlp", true, "SPEC 06", 348.35),
    ("mlp", true, "SPEC 17", 535.60),
    ("mlp", true, "GAP", 55.29),
];

/// Standard harness banner: what is being regenerated and against what.
pub fn banner(exp: &str, what: &str) {
    println!("==================================================================");
    println!("ReSemble reproduction — {exp}");
    println!("{what}");
    println!("Absolute numbers use a synthetic-workload ChampSim-like substrate;");
    println!("compare shapes/orderings against the paper, not exact values.");
    println!("==================================================================");
}

/// Render a percent as a fixed-width cell.
pub fn pct(v: f64) -> String {
    format!("{v:.2}%")
}

/// Build a paper-vs-measured table skeleton.
pub fn compare_table(metric: &str) -> Table {
    Table::new(vec![
        "prefetcher",
        &format!("{metric} (paper avg)"),
        &format!("{metric} (measured avg)"),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_present_for_main_lineup() {
        for &pf in crate::factory::MAIN_LINEUP {
            assert!(paper_average(pf).is_some(), "{pf} missing");
        }
    }

    #[test]
    fn paper_orderings_hold_internally() {
        // ReSemble beats SBP(E) beats best individual (SPP) on IPC.
        let r = paper_average("resemble").unwrap();
        let s = paper_average("sbp_e").unwrap();
        let spp = paper_average("spp").unwrap();
        assert!(r.ipc_improvement > s.ipc_improvement);
        assert!(s.ipc_improvement > spp.ipc_improvement);
    }

    #[test]
    fn table_vi_has_18_cells() {
        assert_eq!(PAPER_TABLE_VI.len(), 18);
    }
}
