//! Parallel sweep runner: (application × prefetcher) simulation jobs on
//! the deterministic `resemble-runtime` executor (DESIGN.md §9) — fixed
//! worker pool, ordered merge, panic isolation that names the failing
//! job, and results bit-identical to a serial run at any `--jobs N`.

use crate::factory;
use resemble_runtime::Sweep;
use resemble_sim::{Engine, SimConfig, SimStats};
use resemble_trace::gen::app_by_name;
use serde::{Deserialize, Serialize};

/// One (app, prefetcher) measurement with its no-prefetch baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Application name.
    pub app: String,
    /// Prefetcher name (factory key).
    pub pf: String,
    /// Baseline (no-prefetch) statistics on the identical trace window.
    pub baseline: SimStats,
    /// Statistics with the prefetcher active.
    pub with_pf: SimStats,
}

impl RunResult {
    /// Prefetch accuracy (%).
    pub fn accuracy_pct(&self) -> f64 {
        self.with_pf.accuracy() * 100.0
    }

    /// Prefetch coverage (%).
    pub fn coverage_pct(&self) -> f64 {
        self.with_pf.coverage() * 100.0
    }

    /// IPC improvement over the baseline (%).
    pub fn ipc_improvement_pct(&self) -> f64 {
        self.with_pf.ipc_improvement_over(&self.baseline)
    }

    /// MPKI reduction over the baseline (%).
    pub fn mpki_reduction_pct(&self) -> f64 {
        self.with_pf.mpki_reduction_over(&self.baseline)
    }
}

/// Sweep parameters shared by the harness binaries.
#[derive(Debug, Clone, Copy)]
pub struct SweepParams {
    /// Accesses of warmup (state training, unmeasured).
    pub warmup: usize,
    /// Accesses measured.
    pub measure: usize,
    /// Workload seed.
    pub seed: u64,
    /// Use the laptop-scale ReSemble training config.
    pub fast: bool,
    /// Simulator configuration.
    pub sim: SimConfig,
    /// Worker count (0 = `--jobs` unset: `RESEMBLE_JOBS`, then host
    /// cores — see `resemble_runtime::resolve_jobs`).
    pub jobs: usize,
}

impl Default for SweepParams {
    fn default() -> Self {
        Self {
            warmup: 20_000,
            measure: 80_000,
            seed: 42,
            fast: true,
            sim: SimConfig::harness(),
            jobs: 0,
        }
    }
}

/// One no-prefetch baseline simulation. The result depends only on
/// `(app, p.seed, p.sim, p.warmup, p.measure)` — never on the
/// prefetcher — which is what lets [`run_matrix`] compute it once per
/// app and share it across the whole matrix row.
fn run_baseline(app: &str, p: &SweepParams) -> SimStats {
    let mut src = app_by_name(app, p.seed).expect("valid app name").source;
    let mut engine = Engine::new(p.sim);
    engine.run(&mut *src, None, p.warmup, p.measure)
}

/// One measured simulation with `pf` active, on the identical trace
/// window as [`run_baseline`].
fn run_with_pf(app: &str, pf: &str, p: &SweepParams) -> SimStats {
    let mut src = app_by_name(app, p.seed).expect("valid app name").source;
    let mut engine = Engine::new(p.sim);
    let mut pref = factory::make(pf, p.seed, p.fast);
    engine.run(&mut *src, Some(&mut *pref), p.warmup, p.measure)
}

/// Run one (app, prefetcher) pair: identical traces for baseline and
/// prefetcher runs.
pub fn run_one(app: &str, pf: &str, p: &SweepParams) -> RunResult {
    RunResult {
        app: app.to_string(),
        pf: pf.to_string(),
        baseline: run_baseline(app, p),
        with_pf: run_with_pf(app, pf, p),
    }
}

/// Run the full `apps × pfs` matrix in parallel; results are returned in
/// `(app-major, pf-minor)` order regardless of completion order.
///
/// The no-prefetch baseline is computed **once per app** (not once per
/// job): whichever worker reaches an app's first job initializes that
/// app's `OnceLock`, and every other job for the same app reuses the
/// stored stats. The engine is deterministic, so the shared baseline is
/// bit-identical to what each job would have computed on its own.
pub fn run_matrix(apps: &[String], pfs: &[&str], p: &SweepParams) -> Vec<RunResult> {
    run_matrix_counted(apps, pfs, p, None)
}

/// [`run_matrix`] with an optional observer counting how many baseline
/// simulations actually execute. Test-only observability for the
/// once-per-app dedup; not part of the public API.
#[doc(hidden)]
pub fn run_matrix_counted(
    apps: &[String],
    pfs: &[&str],
    p: &SweepParams,
    baseline_runs: Option<&std::sync::atomic::AtomicUsize>,
) -> Vec<RunResult> {
    if apps.is_empty() || pfs.is_empty() {
        return Vec::new();
    }
    // One cell per app: the first worker to need an app's baseline runs
    // it; concurrent claimants for the same app block on `get_or_init`
    // rather than duplicating the simulation.
    let baselines: Vec<std::sync::OnceLock<SimStats>> =
        apps.iter().map(|_| std::sync::OnceLock::new()).collect();
    let mut sweep = Sweep::for_bin("run_matrix", p.jobs).base_seed(p.seed);
    for (ai, app) in apps.iter().enumerate() {
        for &pf in pfs {
            let baselines = &baselines;
            sweep.push(format!("{app}/{pf}"), move |_ctx| {
                let baseline = *baselines[ai].get_or_init(|| {
                    if let Some(c) = baseline_runs {
                        c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    run_baseline(app, p)
                });
                RunResult {
                    app: app.clone(),
                    pf: pf.to_string(),
                    baseline,
                    with_pf: run_with_pf(app, pf, p),
                }
            });
        }
    }
    let n = sweep.len();
    let outcome = sweep.try_run();
    // Panic isolation in the executor means every sibling still ran;
    // name the dead (app, pf) pairs instead of dying on an anonymous
    // unwrap.
    let dead: Vec<String> = outcome
        .failures()
        .iter()
        .map(|e| {
            let (app, pf) = e.key.split_once('/').unwrap_or((e.key.as_str(), "?"));
            format!("({app}, {pf})")
        })
        .collect();
    if !dead.is_empty() {
        panic!(
            "sweep worker panicked; no result for {} of {} jobs: {}",
            dead.len(),
            n,
            dead.join(", ")
        );
    }
    outcome
        .results
        .into_iter()
        .map(|r| r.expect("failures handled above"))
        .collect()
}

/// Write results as JSON when `--json PATH` was given.
pub fn maybe_write_json<T: Serialize>(path: Option<&str>, value: &T) {
    if let Some(path) = path {
        match serde_json::to_string_pretty(value) {
            Ok(s) => {
                if let Err(e) = std::fs::write(path, s) {
                    eprintln!("warning: could not write {path}: {e}");
                } else {
                    eprintln!("wrote {path}");
                }
            }
            Err(e) => eprintln!("warning: JSON serialization failed: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepParams {
        SweepParams {
            warmup: 500,
            measure: 2000,
            sim: SimConfig::test_small(),
            jobs: 2,
            ..Default::default()
        }
    }

    #[test]
    fn run_one_produces_consistent_stats() {
        let r = run_one("433.milc", "bo", &tiny());
        assert_eq!(r.baseline.demand_accesses, 2000);
        assert_eq!(r.with_pf.demand_accesses, 2000);
        assert_eq!(r.baseline.instructions, r.with_pf.instructions);
        assert!(r.with_pf.prefetches_issued > 0);
    }

    #[test]
    fn matrix_preserves_order_and_parallelizes() {
        let apps = vec!["433.milc".to_string(), "471.omnetpp".to_string()];
        let rs = run_matrix(&apps, &["bo", "isb"], &tiny());
        assert_eq!(rs.len(), 4);
        assert_eq!((rs[0].app.as_str(), rs[0].pf.as_str()), ("433.milc", "bo"));
        assert_eq!(
            (rs[3].app.as_str(), rs[3].pf.as_str()),
            ("471.omnetpp", "isb")
        );
    }

    #[test]
    #[should_panic(expected = "no result for 1 of 1 jobs: (no_such_app, bo)")]
    fn matrix_names_the_job_that_killed_its_worker() {
        let apps = vec!["no_such_app".to_string()];
        let _ = run_matrix(&apps, &["bo"], &tiny());
    }

    #[test]
    fn matrix_computes_each_baseline_once_with_identical_results() {
        let apps = vec!["433.milc".to_string(), "471.omnetpp".to_string()];
        // Once-per-app must hold at every worker count, including heavy
        // oversubscription where all four jobs race the two cells.
        for jobs in [2usize, 8] {
            let p = SweepParams { jobs, ..tiny() };
            let n = std::sync::atomic::AtomicUsize::new(0);
            let rs = run_matrix_counted(&apps, &["bo", "isb"], &p, Some(&n));
            assert_eq!(
                n.load(std::sync::atomic::Ordering::Relaxed),
                apps.len(),
                "baseline must run exactly once per app, not once per job (jobs={jobs})"
            );
            for r in &rs {
                let ser = run_one(&r.app, &r.pf, &tiny());
                assert_eq!(
                    format!("{:?}", r.baseline),
                    format!("{:?}", ser.baseline),
                    "shared baseline must be bit-identical to a per-job run"
                );
                assert_eq!(
                    format!("{:?}", r.with_pf),
                    format!("{:?}", ser.with_pf),
                    "dedup must not perturb the measured run"
                );
            }
        }
    }

    #[test]
    fn matrix_matches_serial_run() {
        let apps = vec!["433.milc".to_string()];
        let par = run_matrix(&apps, &["bo"], &tiny());
        let ser = run_one("433.milc", "bo", &tiny());
        assert_eq!(
            format!("{:?}", par[0].with_pf),
            format!("{:?}", ser.with_pf)
        );
    }
}
