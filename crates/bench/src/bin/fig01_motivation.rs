//! Figure 1 + Table I — the motivation study: (a) autocorrelation of the
//! four example traces, (b) autocorrelation grouped by PC, (c) performance
//! of the spatial prefetcher BO vs the temporal prefetcher ISB on those
//! applications, plus the Table I prefetcher taxonomy.

use resemble_bench::{report, runner, Options};
use resemble_stats::{render_series, Table};
use resemble_trace::analysis::{pc_grouped_autocorrelation, summarize_acf, trace_autocorrelation};
use resemble_trace::gen::app_by_name;

const APPS: &[&str] = &["433.milc", "471.omnetpp", "621.wrf", "623.xalancbmk"];

fn main() {
    let opts = Options::from_env_checked(&[]);
    let accesses = opts.usize("accesses", 40_000);
    let seed = opts.u64("seed", 42);
    report::banner(
        "Figure 1 / Table I",
        "Trace autocorrelation and BO-vs-ISB motivation study",
    );

    println!("--- Table I: prefetcher taxonomy ---");
    let mut t = Table::new(vec!["Type", "Examples", "Mechanism"]);
    t.row(vec![
        "Spatial",
        "BO, VLDP, SPP",
        "predict offsets within a spatial region",
    ]);
    t.row(vec![
        "Temporal",
        "ISB, STMS, Domino",
        "record and replay history misses in order",
    ]);
    t.row(vec![
        "Spatio-temporal",
        "STeMS",
        "temporal patterns + spatial-region offsets",
    ]);
    println!("{}", t.render());

    println!("--- Fig 1a/1b: autocorrelation of the block-address series ---");
    let mut acf_t = Table::new(vec![
        "app",
        "raw peak |AC|",
        "raw mean |AC|",
        "grouped-by-PC peak |AC|",
        "grouped mean |AC|",
    ]);
    let mut series_dump = String::new();
    for &app in APPS {
        let trace = app_by_name(app, seed)
            .expect("known app")
            .source
            .collect_n(accesses);
        let raw = trace_autocorrelation(&trace, 40);
        let grouped = pc_grouped_autocorrelation(&trace, 40);
        let rs = summarize_acf(&raw);
        let gs = summarize_acf(&grouped);
        acf_t.row(vec![
            app.to_string(),
            format!("{:.3}", rs.peak_abs),
            format!("{:.3}", rs.mean_abs),
            format!("{:.3}", gs.peak_abs),
            format!("{:.3}", gs.mean_abs),
        ]);
        series_dump.push_str(&render_series(&format!("{app} raw ACF"), &raw, 20));
        series_dump.push('\n');
        series_dump.push_str(&render_series(&format!("{app} grouped ACF"), &grouped, 20));
        series_dump.push('\n');
    }
    println!("{}", acf_t.render());
    println!("{series_dump}");
    println!("paper shape: 433.milc / 621.wrf show significant raw spikes; 471.omnetpp /");
    println!("623.xalancbmk do not, but gain large ACs once grouped by PC.\n");

    println!("--- Fig 1c: BO vs ISB per app ---");
    let params = runner::SweepParams {
        warmup: opts.usize("warmup", 20_000),
        measure: opts.usize("fig1c_accesses", 60_000),
        seed,
        ..Default::default()
    };
    let apps: Vec<String> = APPS.iter().map(|s| s.to_string()).collect();
    let results = runner::run_matrix(&apps, &["bo", "isb"], &params);
    let mut t = Table::new(vec![
        "app",
        "pf",
        "accuracy",
        "coverage",
        "MPKI red.",
        "IPC impr.",
    ]);
    for r in &results {
        t.row(vec![
            r.app.clone(),
            r.pf.clone(),
            report::pct(r.accuracy_pct()),
            report::pct(r.coverage_pct()),
            report::pct(r.mpki_reduction_pct()),
            report::pct(r.ipc_improvement_pct()),
        ]);
    }
    println!("{}", t.render());
    println!("paper shape: BO wins on 433.milc / 621.wrf; ISB wins on 471.omnetpp /");
    println!("623.xalancbmk.");
    runner::maybe_write_json(opts.str("json"), &results);
}
