//! Table IV — model sizes: the MLP parameter count vs direct-indexed and
//! tokenized Q-tables at 4- and 8-bit hashing. The tokenized rows use
//! *measured* unique-state counts from running the tabular controller over
//! the benchmark suite, exactly as the paper measured its 37.3K / 592K
//! entries.

use resemble_bench::{report, Options};
use resemble_core::overhead::{mlp_param_count, table_direct_entries, table_token_entries};
use resemble_core::{ResembleConfig, ResembleTabular};
use resemble_prefetch::{paper_bank, Prefetcher};
use resemble_sim::{Engine, SimConfig};
use resemble_stats::Table;
use resemble_trace::gen::app_by_name;

fn measured_unique_states(hash_bits: u32, accesses: usize, seed: u64) -> usize {
    // Run the tabular controller across a representative app mix and count
    // the union of tokenized states.
    let mut total = 0;
    for app in ["433.milc", "471.omnetpp", "gap.pr"] {
        let mut ctl = ResembleTabular::new(paper_bank(), ResembleConfig::fast(), hash_bits, seed);
        let mut engine = Engine::new(SimConfig::harness());
        let mut src = app_by_name(app, seed).expect("known app").source;
        let _ = engine.run(
            &mut *src,
            Some(&mut ctl as &mut dyn Prefetcher),
            0,
            accesses,
        );
        total += ctl.agent().unique_states();
    }
    total / 3
}

fn main() {
    let opts = Options::from_env_checked(&[]);
    let accesses = opts.usize("accesses", 40_000);
    let seed = opts.u64("seed", 42);
    report::banner(
        "Table IV",
        "Model size: MLP vs direct and tokenized Q-tables",
    );
    let cfg = ResembleConfig::default();
    let (s, h, a) = (cfg.state_dim, cfg.hidden_dim, cfg.action_dim);

    let mut t = Table::new(vec![
        "Model",
        "Config",
        "#Param/Entries (measured)",
        "paper",
    ]);
    t.row(vec![
        "MLP".to_string(),
        format!("H={h}"),
        mlp_param_count(s, h, a).to_string(),
        "1.05K".into(),
    ]);
    for (bits, paper) in [(4u32, "328K"), (8, "21.5G")] {
        t.row(vec![
            "Table (direct)".to_string(),
            format!("B={bits}"),
            table_direct_entries(bits, s, a).to_string(),
            paper.into(),
        ]);
    }
    for (bits, paper) in [(4u32, "37.3K"), (8, "592K")] {
        let unique = measured_unique_states(bits, accesses, seed);
        t.row(vec![
            "Table (token)".to_string(),
            format!("B={bits}, {unique} unique states over {accesses} accesses"),
            table_token_entries(a, unique).to_string(),
            paper.into(),
        ]);
    }
    println!("{}", t.render());
    println!("shape: tokenization collapses the direct table by orders of magnitude;");
    println!("4-bit hashing yields far fewer unique states than 8-bit; the MLP is");
    println!("smaller than every tabular variant. (The paper's unique-state counts");
    println!("come from 80M-access traces; ours grow with trace length.)");
}
