//! Table IV — model sizes: the MLP parameter count vs direct-indexed and
//! tokenized Q-tables at 4- and 8-bit hashing. The tokenized rows use
//! *measured* unique-state counts from running the tabular controller over
//! the benchmark suite, exactly as the paper measured its 37.3K / 592K
//! entries.
//!
//! Every (hash bits, probe app) run is one job on the deterministic
//! executor (DESIGN.md §9); each hash width is a reduce group averaging
//! its apps, so the table prints bit-identically at any `--jobs N`.

use resemble_bench::{report, Options};
use resemble_core::overhead::{mlp_param_count, table_direct_entries, table_token_entries};
use resemble_core::{ResembleConfig, ResembleTabular};
use resemble_prefetch::{paper_bank, Prefetcher};
use resemble_runtime::Sweep;
use resemble_sim::{Engine, SimConfig};
use resemble_stats::Table;
use resemble_trace::gen::app_by_name;

/// The representative app mix whose tokenized-state counts are averaged.
const PROBE_APPS: &[&str] = &["433.milc", "471.omnetpp", "gap.pr"];

fn unique_states_on(app: &str, hash_bits: u32, accesses: usize, seed: u64) -> usize {
    let mut ctl = ResembleTabular::new(paper_bank(), ResembleConfig::fast(), hash_bits, seed);
    let mut engine = Engine::new(SimConfig::harness());
    let mut src = app_by_name(app, seed).expect("known app").source;
    let _ = engine.run(
        &mut *src,
        Some(&mut ctl as &mut dyn Prefetcher),
        0,
        accesses,
    );
    ctl.agent().unique_states()
}

fn main() {
    let opts = Options::from_env_checked(&[]);
    let accesses = opts.usize("accesses", 40_000);
    let seed = opts.u64("seed", 42);
    let jobs = opts.usize("jobs", 0);
    report::banner(
        "Table IV",
        "Model size: MLP vs direct and tokenized Q-tables",
    );

    // One reduce group per hash width, averaging the probe apps' counts.
    let mut sweep = Sweep::for_bin("table04_model_size", jobs).base_seed(seed);
    for bits in [4u32, 8] {
        for &app in PROBE_APPS {
            sweep.push_in(format!("B{bits}"), format!("B{bits}/{app}"), move |_| {
                unique_states_on(app, bits, accesses, seed)
            });
        }
    }
    let uniques = sweep.run_reduced(|_, parts| parts.iter().sum::<usize>() / parts.len());
    let cfg = ResembleConfig::default();
    let (s, h, a) = (cfg.state_dim, cfg.hidden_dim, cfg.action_dim);

    let mut t = Table::new(vec![
        "Model",
        "Config",
        "#Param/Entries (measured)",
        "paper",
    ]);
    t.row(vec![
        "MLP".to_string(),
        format!("H={h}"),
        mlp_param_count(s, h, a).to_string(),
        "1.05K".into(),
    ]);
    for (bits, paper) in [(4u32, "328K"), (8, "21.5G")] {
        t.row(vec![
            "Table (direct)".to_string(),
            format!("B={bits}"),
            table_direct_entries(bits, s, a).to_string(),
            paper.into(),
        ]);
    }
    for ((bits, paper), unique) in [(4u32, "37.3K"), (8, "592K")].into_iter().zip(uniques) {
        t.row(vec![
            "Table (token)".to_string(),
            format!("B={bits}, {unique} unique states over {accesses} accesses"),
            table_token_entries(a, unique).to_string(),
            paper.into(),
        ]);
    }
    println!("{}", t.render());
    println!("shape: tokenization collapses the direct table by orders of magnitude;");
    println!("4-bit hashing yields far fewer unique states than 8-bit; the MLP is");
    println!("smaller than every tabular variant. (The paper's unique-state counts");
    println!("come from 80M-access traces; ours grow with trace length.)");
}
