//! Ablation studies for the design choices DESIGN.md §5 flags: MLP hash
//! bits, lazy sampling, role switching, replay/batch sizing, the reward
//! window W, and the ε schedule. Each study varies one knob of the MLP
//! controller and reports mean window reward plus IPC improvement on a
//! two-app probe (one spatial-friendly, one temporal-friendly).
//!
//! Every (study, variant, probe app) simulation is one job on the
//! deterministic executor (DESIGN.md §9); each variant is a reduce group
//! averaging its probe apps, so the tables print bit-identically at any
//! `--jobs N`.
//!
//! Usage: `cargo run --release -p resemble-bench --bin ablations`
//! (`--only hashbits|lazy|roleswitch|replay|window|epsilon`).

use resemble_bench::{report, Options};
use resemble_core::{ResembleConfig, ResembleMlp};
use resemble_prefetch::{paper_bank, Prefetcher};
use resemble_runtime::Sweep;
use resemble_sim::{Engine, SimConfig};
use resemble_stats::{mean, Table};
use resemble_trace::gen::app_by_name;

const PROBE_APPS: &[&str] = &["433.milc", "623.xalancbmk"];

struct Outcome {
    reward: f64,
    ipc_improvement: f64,
}

/// One probe app under one variant config: (window reward, IPC improvement).
fn run_cfg_app(cfg: ResembleConfig, app: &str, accesses: usize, seed: u64) -> (f64, f64) {
    let baseline = {
        let mut engine = Engine::new(SimConfig::harness());
        let mut src = app_by_name(app, seed).expect("known app").source;
        engine.run(&mut *src, None, accesses / 3, accesses)
    };
    let mut ctl = ResembleMlp::new(paper_bank(), cfg, seed);
    let mut engine = Engine::new(SimConfig::harness());
    let mut src = app_by_name(app, seed).expect("known app").source;
    let stats = engine.run(
        &mut *src,
        Some(&mut ctl as &mut dyn Prefetcher),
        accesses / 3,
        accesses,
    );
    (
        ctl.stats.mean_window_reward(),
        stats.ipc_improvement_over(&baseline),
    )
}

struct Study {
    name: &'static str,
    header: &'static str,
    variants: Vec<(String, ResembleConfig)>,
}

fn main() {
    let opts = Options::from_env_checked(&["only"]);
    let accesses = opts.usize("accesses", 45_000);
    let seed = opts.u64("seed", 42);
    let jobs = opts.usize("jobs", 0);
    let only = opts.str("only").map(str::to_string);
    let run = |n: &str| only.is_none() || only.as_deref() == Some(n);
    report::banner(
        "Ablations",
        "One-knob studies of the DESIGN.md §5 design choices",
    );
    let base = ResembleConfig::fast();

    let mut studies: Vec<Study> = Vec::new();
    if run("hashbits") {
        studies.push(Study {
            name: "MLP preprocessing hash bits",
            header: "hash bits",
            variants: [8u32, 16, 24]
                .iter()
                .map(|&b| {
                    (
                        format!("{b}"),
                        ResembleConfig {
                            hash_bits: b,
                            ..base
                        },
                    )
                })
                .collect(),
        });
    }
    if run("lazy") {
        // "No lazy sampling" approximated by a 1-access reward window:
        // rewards finalize almost immediately (usually as −1), so training
        // consumes unreliable feedback — the failure mode lazy sampling
        // prevents.
        studies.push(Study {
            name: "lazy sampling (reward window honored) vs immediate finalization",
            header: "variant",
            variants: vec![
                ("lazy (W=256)".to_string(), base),
                (
                    "immediate (W=1)".to_string(),
                    ResembleConfig { window: 1, ..base },
                ),
            ],
        });
    }
    if run("roleswitch") {
        studies.push(Study {
            name: "target-net role-switch interval I_t",
            header: "I_t",
            variants: [5u64, 20, 100, 1000]
                .iter()
                .map(|&it| {
                    (
                        format!("{it}"),
                        ResembleConfig {
                            target_update_interval: it,
                            ..base
                        },
                    )
                })
                .collect(),
        });
    }
    if run("replay") {
        studies.push(Study {
            name: "replay capacity / batch size",
            header: "R / batch",
            variants: vec![
                ("R=2000 batch=32 (fast)".to_string(), base),
                (
                    "R=2000 batch=256 (paper)".to_string(),
                    ResembleConfig {
                        batch_size: 256,
                        ..base
                    },
                ),
                (
                    "R=256 batch=32".to_string(),
                    ResembleConfig {
                        replay_capacity: 256,
                        ..base
                    },
                ),
                (
                    "R=8000 batch=32".to_string(),
                    ResembleConfig {
                        replay_capacity: 8000,
                        ..base
                    },
                ),
            ],
        });
    }
    if run("window") {
        studies.push(Study {
            name: "reward window W",
            header: "W",
            variants: [32usize, 128, 256, 1024]
                .iter()
                .map(|&w| (format!("{w}"), ResembleConfig { window: w, ..base }))
                .collect(),
        });
    }
    if run("epsilon") {
        studies.push(Study {
            name: "ε decay constant",
            header: "decay",
            variants: [20.0f64, 80.0, 400.0, 4000.0]
                .iter()
                .map(|&d| {
                    (
                        format!("{d}"),
                        ResembleConfig {
                            eps_decay: d,
                            ..base
                        },
                    )
                })
                .collect(),
        });
    }

    // One reduce group per (study, variant), pushed in print order so the
    // streamed reduce hands back outcomes exactly as the tables need them.
    let mut sweep = Sweep::for_bin("ablations", jobs).base_seed(seed);
    for (si, st) in studies.iter().enumerate() {
        for (vi, (label, cfg)) in st.variants.iter().enumerate() {
            for &app in PROBE_APPS {
                let cfg = *cfg;
                sweep.push_in(
                    format!("{si}/{vi}"),
                    format!("{}/{label}/{app}", st.name),
                    move |_| run_cfg_app(cfg, app, accesses, seed),
                );
            }
        }
    }
    let outcomes = sweep.run_reduced(|_, parts| {
        let (rewards, ipcs): (Vec<f64>, Vec<f64>) = parts.into_iter().unzip();
        Outcome {
            reward: mean(&rewards),
            ipc_improvement: mean(&ipcs),
        }
    });

    let mut outcomes = outcomes.into_iter();
    for st in &studies {
        println!("--- ablation: {} ---", st.name);
        let mut t = Table::new(vec![st.header, "mean window reward", "IPC improvement"]);
        for (label, _) in &st.variants {
            let o = outcomes.next().expect("one outcome per variant");
            t.row(vec![
                label.clone(),
                format!("{:.1}", o.reward),
                format!("{:.2}%", o.ipc_improvement),
            ]);
        }
        println!("{}", t.render());
    }
}
