//! Ablation studies for the design choices DESIGN.md §5 flags: MLP hash
//! bits, lazy sampling, role switching, replay/batch sizing, the reward
//! window W, and the ε schedule. Each study varies one knob of the MLP
//! controller and reports mean window reward plus IPC improvement on a
//! two-app probe (one spatial-friendly, one temporal-friendly).
//!
//! Usage: `cargo run --release -p resemble-bench --bin ablations`
//! (`--only hashbits|lazy|roleswitch|replay|window|epsilon`).

use resemble_bench::{report, Options};
use resemble_core::{ResembleConfig, ResembleMlp};
use resemble_prefetch::{paper_bank, Prefetcher};
use resemble_sim::{Engine, SimConfig};
use resemble_stats::{mean, Table};
use resemble_trace::gen::app_by_name;

const PROBE_APPS: &[&str] = &["433.milc", "623.xalancbmk"];

struct Outcome {
    reward: f64,
    ipc_improvement: f64,
}

fn run_cfg(cfg: ResembleConfig, accesses: usize, seed: u64) -> Outcome {
    let mut rewards = Vec::new();
    let mut ipcs = Vec::new();
    for &app in PROBE_APPS {
        let baseline = {
            let mut engine = Engine::new(SimConfig::harness());
            let mut src = app_by_name(app, seed).expect("known app").source;
            engine.run(&mut *src, None, accesses / 3, accesses)
        };
        let mut ctl = ResembleMlp::new(paper_bank(), cfg, seed);
        let mut engine = Engine::new(SimConfig::harness());
        let mut src = app_by_name(app, seed).expect("known app").source;
        let stats = engine.run(
            &mut *src,
            Some(&mut ctl as &mut dyn Prefetcher),
            accesses / 3,
            accesses,
        );
        rewards.push(ctl.stats.mean_window_reward());
        ipcs.push(stats.ipc_improvement_over(&baseline));
    }
    Outcome {
        reward: mean(&rewards),
        ipc_improvement: mean(&ipcs),
    }
}

fn study(
    name: &str,
    header: &str,
    variants: Vec<(String, ResembleConfig)>,
    accesses: usize,
    seed: u64,
) {
    println!("--- ablation: {name} ---");
    let mut t = Table::new(vec![header, "mean window reward", "IPC improvement"]);
    for (label, cfg) in variants {
        let o = run_cfg(cfg, accesses, seed);
        t.row(vec![
            label,
            format!("{:.1}", o.reward),
            format!("{:.2}%", o.ipc_improvement),
        ]);
    }
    println!("{}", t.render());
}

fn main() {
    let opts = Options::from_env_checked(&["only"]);
    let accesses = opts.usize("accesses", 45_000);
    let seed = opts.u64("seed", 42);
    let only = opts.str("only").map(str::to_string);
    let run = |n: &str| only.is_none() || only.as_deref() == Some(n);
    report::banner(
        "Ablations",
        "One-knob studies of the DESIGN.md §5 design choices",
    );
    let base = ResembleConfig::fast();

    if run("hashbits") {
        study(
            "MLP preprocessing hash bits",
            "hash bits",
            [8u32, 16, 24]
                .iter()
                .map(|&b| {
                    (
                        format!("{b}"),
                        ResembleConfig {
                            hash_bits: b,
                            ..base
                        },
                    )
                })
                .collect(),
            accesses,
            seed,
        );
    }
    if run("lazy") {
        // "No lazy sampling" approximated by a 1-access reward window:
        // rewards finalize almost immediately (usually as −1), so training
        // consumes unreliable feedback — the failure mode lazy sampling
        // prevents.
        study(
            "lazy sampling (reward window honored) vs immediate finalization",
            "variant",
            vec![
                ("lazy (W=256)".to_string(), base),
                (
                    "immediate (W=1)".to_string(),
                    ResembleConfig { window: 1, ..base },
                ),
            ],
            accesses,
            seed,
        );
    }
    if run("roleswitch") {
        study(
            "target-net role-switch interval I_t",
            "I_t",
            [5u64, 20, 100, 1000]
                .iter()
                .map(|&it| {
                    (
                        format!("{it}"),
                        ResembleConfig {
                            target_update_interval: it,
                            ..base
                        },
                    )
                })
                .collect(),
            accesses,
            seed,
        );
    }
    if run("replay") {
        study(
            "replay capacity / batch size",
            "R / batch",
            vec![
                ("R=2000 batch=32 (fast)".to_string(), base),
                (
                    "R=2000 batch=256 (paper)".to_string(),
                    ResembleConfig {
                        batch_size: 256,
                        ..base
                    },
                ),
                (
                    "R=256 batch=32".to_string(),
                    ResembleConfig {
                        replay_capacity: 256,
                        ..base
                    },
                ),
                (
                    "R=8000 batch=32".to_string(),
                    ResembleConfig {
                        replay_capacity: 8000,
                        ..base
                    },
                ),
            ],
            accesses,
            seed,
        );
    }
    if run("window") {
        study(
            "reward window W",
            "W",
            [32usize, 128, 256, 1024]
                .iter()
                .map(|&w| (format!("{w}"), ResembleConfig { window: w, ..base }))
                .collect(),
            accesses,
            seed,
        );
    }
    if run("epsilon") {
        study(
            "ε decay constant",
            "decay",
            [20.0f64, 80.0, 400.0, 4000.0]
                .iter()
                .map(|&d| {
                    (
                        format!("{d}"),
                        ResembleConfig {
                            eps_decay: d,
                            ..base
                        },
                    )
                })
                .collect(),
            accesses,
            seed,
        );
    }
}
