//! Table VI — average rewards of 1K-access windows for six controller
//! configurations (tabular 4-bit / 8-bit / MLP, each with and without the
//! PC feature) across the three benchmark suites.
//!
//! Every (configuration, suite, app) simulation is one job on the
//! deterministic executor (DESIGN.md §9); each (configuration, suite)
//! cell is a reduce group averaging its apps, so the table prints
//! bit-identically at any `--jobs N`.

use resemble_bench::{report, Options};
use resemble_core::{EnsembleStats, ResembleConfig, ResembleMlp, ResembleTabular};
use resemble_prefetch::{paper_bank, Prefetcher};
use resemble_runtime::Sweep;
use resemble_sim::{Engine, SimConfig};
use resemble_stats::{mean, Table};
use resemble_trace::gen::suite::SUITES;

const MODELS: &[&str] = &["table4", "table8", "mlp"];

/// Run one controller configuration over one app; returns the mean
/// per-1K-window reward.
fn run_app(model: &str, with_pc: bool, app: &str, accesses: usize, seed: u64) -> f64 {
    let cfg = ResembleConfig {
        with_pc,
        ..ResembleConfig::fast()
    };
    let mut engine = Engine::new(SimConfig::harness());
    let mut src = resemble_trace::gen::app_by_name(app, seed)
        .expect("known app")
        .source;
    let stats: EnsembleStats = match model {
        "table4" => {
            let mut ctl = ResembleTabular::new(paper_bank(), cfg, 4, seed);
            engine.run(
                &mut *src,
                Some(&mut ctl as &mut dyn Prefetcher),
                0,
                accesses,
            );
            ctl.stats.clone()
        }
        "table8" => {
            let mut ctl = ResembleTabular::new(paper_bank(), cfg, 8, seed);
            engine.run(
                &mut *src,
                Some(&mut ctl as &mut dyn Prefetcher),
                0,
                accesses,
            );
            ctl.stats.clone()
        }
        "mlp" => {
            let mut ctl = ResembleMlp::new(paper_bank(), cfg, seed);
            engine.run(
                &mut *src,
                Some(&mut ctl as &mut dyn Prefetcher),
                0,
                accesses,
            );
            ctl.stats.clone()
        }
        _ => unreachable!("model"),
    };
    stats.mean_window_reward()
}

fn main() {
    let opts = Options::from_env_checked(&[]);
    let accesses = opts.usize("accesses", 60_000);
    let seed = opts.u64("seed", 42);
    let jobs = opts.usize("jobs", 0);
    report::banner(
        "Table VI",
        "Average rewards of 1K-access windows, six configurations x three suites",
    );
    println!("(rewards here credit every issued-prefetch hit; see DESIGN.md §1 on the");
    println!(" multi-suggestion reward generalization — compare orderings, not magnitudes)\n");

    // One reduce group per (configuration, suite) table cell.
    let mut sweep = Sweep::for_bin("table06_rewards", jobs).base_seed(seed);
    for &with_pc in &[false, true] {
        for &model in MODELS {
            for suite in SUITES {
                for &app in suite.apps {
                    sweep.push_in(
                        format!("{model}/pc={with_pc}/{}", suite.name),
                        format!("{model}/pc={with_pc}/{}/{app}", suite.name),
                        move |_| run_app(model, with_pc, app, accesses, seed),
                    );
                }
            }
        }
    }
    let mut cells = sweep.run_reduced(|_, vals| mean(&vals)).into_iter();

    let mut t = Table::new(vec!["Model", "PC", "SPEC 06", "SPEC 17", "GAP"]);
    let mut measured: Vec<(String, bool, Vec<f64>)> = Vec::new();
    for &with_pc in &[false, true] {
        for &model in MODELS {
            let row_vals: Vec<f64> = (0..SUITES.len())
                .map(|_| cells.next().expect("one cell per (config, suite)"))
                .collect();
            let label = match model {
                "table4" => "Table: 4-bit hash",
                "table8" => "Table: 8-bit hash",
                _ => "MLP",
            };
            t.row(vec![
                label.to_string(),
                if with_pc { "yes" } else { "no" }.to_string(),
                format!("{:.2}", row_vals[0]),
                format!("{:.2}", row_vals[1]),
                format!("{:.2}", row_vals[2]),
            ]);
            measured.push((model.to_string(), with_pc, row_vals));
        }
    }
    println!("{}", t.render());

    println!("--- paper values (Table VI) ---");
    let mut p = Table::new(vec!["Model", "PC", "SPEC 06", "SPEC 17", "GAP"]);
    for &with_pc in &[false, true] {
        for model in ["table4", "table8", "mlp"] {
            let vals: Vec<f64> = resemble_bench::report::PAPER_TABLE_VI
                .iter()
                .filter(|(m, pc, _, _)| *m == model && *pc == with_pc)
                .map(|&(_, _, _, v)| v)
                .collect();
            p.row(vec![
                model.to_string(),
                if with_pc { "yes" } else { "no" }.to_string(),
                format!("{:.2}", vals[0]),
                format!("{:.2}", vals[1]),
                format!("{:.2}", vals[2]),
            ]);
        }
    }
    println!("{}", p.render());

    // Shape checks from the paper's three observations.
    let get = |m: &str, pc: bool| -> &Vec<f64> {
        &measured
            .iter()
            .find(|(mm, mpc, _)| mm == m && *mpc == pc)
            .unwrap()
            .2
    };
    let mlp = get("mlp", false);
    let t8 = get("table8", false);
    let gap_small = mlp[2] < mlp[0] && mlp[2] < mlp[1];
    println!("shape checks:");
    println!(
        "  MLP (no PC) >= 8-bit table on every suite: {}",
        mlp.iter().zip(t8).all(|(a, b)| a >= b)
    );
    println!("  GAP rewards far below SPEC rewards (paper: 58.7 vs 460/589): {gap_small}");
    runner_json(&opts, &measured);
}

fn runner_json(opts: &Options, measured: &[(String, bool, Vec<f64>)]) {
    resemble_bench::runner::maybe_write_json(opts.str("json"), &measured);
}
