//! Figures 8, 9, 10 — the paper's headline comparison: prefetch accuracy,
//! prefetch coverage, and IPC improvement of BO, SPP, ISB, Domino, SBP(E),
//! ReSemble-T, and ReSemble across all benchmark apps.
//!
//! Usage: `cargo run --release -p resemble-bench --bin fig08_10_main`
//! (optional: `--accesses N --warmup N --apps a,b --json out.json`).

use resemble_bench::{factory, report, runner, Options};
use resemble_stats::{mean, Table};
use resemble_trace::gen::spec_like::APP_NAMES;

fn main() {
    let opts = Options::from_env_checked(&[]);
    let params = runner::SweepParams {
        warmup: opts.usize("warmup", 20_000),
        measure: opts.usize("accesses", 80_000),
        seed: opts.u64("seed", 42),
        jobs: opts.usize("jobs", 0),
        ..Default::default()
    };
    let apps: Vec<String> = opts
        .list("apps")
        .unwrap_or_else(|| APP_NAMES.iter().map(|s| s.to_string()).collect());
    report::banner(
        "Figures 8-10",
        "Prefetch accuracy / coverage / IPC improvement, all prefetchers x all apps",
    );
    println!(
        "apps: {} | warmup {} + measure {} accesses | seed {}\n",
        apps.len(),
        params.warmup,
        params.measure,
        params.seed
    );

    let results = runner::run_matrix(&apps, factory::MAIN_LINEUP, &params);

    // Per-app tables for each metric.
    for (metric, value) in [
        ("Fig 8: prefetch accuracy", 0usize),
        ("Fig 9: prefetch coverage", 1),
        ("Fig 10: IPC improvement", 2),
    ] {
        println!("--- {metric} ---");
        let mut header: Vec<String> = vec!["app".into()];
        header.extend(
            factory::MAIN_LINEUP
                .iter()
                .map(|p| factory::label(p).to_string()),
        );
        let mut t = Table::new(header);
        for app in &apps {
            let mut row = vec![app.clone()];
            for &pf in factory::MAIN_LINEUP {
                let r = results
                    .iter()
                    .find(|r| &r.app == app && r.pf == pf)
                    .expect("matrix complete");
                let v = match value {
                    0 => r.accuracy_pct(),
                    1 => r.coverage_pct(),
                    _ => r.ipc_improvement_pct(),
                };
                row.push(report::pct(v));
            }
            t.row(row);
        }
        // Averages + paper row.
        let mut avg_row = vec!["AVG (measured)".to_string()];
        let mut paper_row = vec!["AVG (paper)".to_string()];
        for &pf in factory::MAIN_LINEUP {
            let vals: Vec<f64> = results
                .iter()
                .filter(|r| r.pf == pf)
                .map(|r| match value {
                    0 => r.accuracy_pct(),
                    1 => r.coverage_pct(),
                    _ => r.ipc_improvement_pct(),
                })
                .collect();
            avg_row.push(report::pct(mean(&vals)));
            let p = report::paper_average(pf).expect("paper values");
            paper_row.push(report::pct(match value {
                0 => p.accuracy,
                1 => p.coverage,
                _ => p.ipc_improvement,
            }));
        }
        t.row(avg_row);
        t.row(paper_row);
        println!("{}", t.render());
    }

    // Headline ordering checks (the "shape" the paper claims).
    let avg_ipc = |pf: &str| -> f64 {
        mean(
            &results
                .iter()
                .filter(|r| r.pf == pf)
                .map(|r| r.ipc_improvement_pct())
                .collect::<Vec<_>>(),
        )
    };
    let (re, rt, sbp) = (avg_ipc("resemble"), avg_ipc("resemble_t"), avg_ipc("sbp_e"));
    let best_ind = factory::MAIN_LINEUP[..4]
        .iter()
        .map(|p| avg_ipc(p))
        .fold(f64::NEG_INFINITY, f64::max);
    println!("shape checks:");
    println!(
        "  ReSemble > SBP(E):           {} ({re:.2} vs {sbp:.2})",
        re > sbp
    );
    println!(
        "  ReSemble > best individual:  {} ({re:.2} vs {best_ind:.2})",
        re > best_ind
    );
    println!(
        "  ReSemble-T > best individual:{} ({rt:.2} vs {best_ind:.2})",
        rt > best_ind
    );

    runner::maybe_write_json(opts.str("json"), &results);
}
