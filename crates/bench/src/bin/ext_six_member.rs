//! Extension: ReSemble is "a versatile framework that is open to
//! architectures equipped with various numbers and types of prefetchers"
//! (paper §V). This study scales the ensemble from 2 to 7 members —
//! adding VLDP, STMS, and STeMS (completing the Table I taxonomy) to the
//! paper's four — and measures how controller quality scales with the
//! action space.
//!
//! Every (ensemble width, app) simulation is one job on the deterministic
//! executor (DESIGN.md §9); each width is a reduce group averaging its
//! apps, so the table prints bit-identically at any `--jobs N`.

use resemble_bench::{report, Options};
use resemble_core::{ResembleConfig, ResembleMlp};
use resemble_prefetch::{
    BestOffset, Domino, Isb, Prefetcher, PrefetcherBank, Spp, Stems, Stms, Vldp,
};
use resemble_runtime::Sweep;
use resemble_sim::{Engine, SimConfig};
use resemble_stats::{mean, Table};
use resemble_trace::gen::app_by_name;

const APPS: &[&str] = &[
    "433.milc",
    "471.omnetpp",
    "621.wrf",
    "623.xalancbmk",
    "654.roms",
];

fn bank_of(n: usize) -> PrefetcherBank {
    let mut members: Vec<Box<dyn Prefetcher + Send>> = vec![
        Box::new(BestOffset::new()),
        Box::new(Isb::new()),
        Box::new(Spp::new()),
        Box::new(Domino::new()),
        Box::new(Vldp::new()),
        Box::new(Stms::new()),
        Box::new(Stems::new()),
    ];
    members.truncate(n);
    PrefetcherBank::new(members)
}

/// One (ensemble width, app) cell: (accuracy %, IPC improvement).
fn run_cell(n: usize, app: &str, warmup: usize, measure: usize, seed: u64) -> (f64, f64) {
    let mut engine = Engine::new(SimConfig::harness());
    let mut src = app_by_name(app, seed).expect("known app").source;
    let base = engine.run(&mut *src, None, warmup, measure);
    let mut ctl = ResembleMlp::new(
        bank_of(n),
        ResembleConfig {
            batch_size: 32,
            ..ResembleConfig::for_inputs(n)
        },
        seed,
    );
    let mut engine = Engine::new(SimConfig::harness());
    let mut src = app_by_name(app, seed).expect("known app").source;
    let s = engine.run(
        &mut *src,
        Some(&mut ctl as &mut dyn Prefetcher),
        warmup,
        measure,
    );
    (s.accuracy() * 100.0, s.ipc_improvement_over(&base))
}

fn main() {
    let opts = Options::from_env_checked(&[]);
    let warmup = opts.usize("warmup", 15_000);
    let measure = opts.usize("accesses", 40_000);
    let seed = opts.u64("seed", 42);
    let jobs = opts.usize("jobs", 0);
    report::banner(
        "Extension: ensemble width",
        "ReSemble with 2..7 input prefetchers (BO, ISB, +SPP, +Domino, +VLDP, +STMS, +STeMS)",
    );

    // One reduce group per ensemble width, averaging its apps.
    let mut sweep = Sweep::for_bin("ext_six_member", jobs).base_seed(seed);
    for n in 2..=7usize {
        for &app in APPS {
            sweep.push_in(format!("n{n}"), format!("n{n}/{app}"), move |_| {
                run_cell(n, app, warmup, measure, seed)
            });
        }
    }
    let rows = sweep.run_reduced(|_, parts| {
        let (accs, ipcs): (Vec<f64>, Vec<f64>) = parts.into_iter().unzip();
        (mean(&accs), mean(&ipcs))
    });

    let mut t = Table::new(vec![
        "members",
        "bank",
        "mean accuracy",
        "mean IPC improvement",
    ]);
    for (n, (acc, ipc)) in (2..=7usize).zip(rows) {
        t.row(vec![
            n.to_string(),
            bank_of(n).names().join("+"),
            format!("{acc:.1}%"),
            report::pct(ipc),
        ]);
    }
    println!("{}", t.render());
    println!("expected shape: performance jumps once both a strong spatial (SPP) and a");
    println!("strong temporal (ISB) member are present, then stays roughly flat — extra");
    println!("members widen the action space without new coverage, and the controller");
    println!("must learn to ignore them.");
}
