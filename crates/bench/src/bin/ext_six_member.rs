//! Extension: ReSemble is "a versatile framework that is open to
//! architectures equipped with various numbers and types of prefetchers"
//! (paper §V). This study scales the ensemble from 2 to 7 members —
//! adding VLDP, STMS, and STeMS (completing the Table I taxonomy) to the
//! paper's four — and measures how controller quality scales with the
//! action space.

use resemble_bench::{report, Options};
use resemble_core::{ResembleConfig, ResembleMlp};
use resemble_prefetch::{
    BestOffset, Domino, Isb, Prefetcher, PrefetcherBank, Spp, Stems, Stms, Vldp,
};
use resemble_sim::{Engine, SimConfig};
use resemble_stats::{mean, Table};
use resemble_trace::gen::app_by_name;

const APPS: &[&str] = &[
    "433.milc",
    "471.omnetpp",
    "621.wrf",
    "623.xalancbmk",
    "654.roms",
];

fn bank_of(n: usize) -> PrefetcherBank {
    let mut members: Vec<Box<dyn Prefetcher + Send>> = vec![
        Box::new(BestOffset::new()),
        Box::new(Isb::new()),
        Box::new(Spp::new()),
        Box::new(Domino::new()),
        Box::new(Vldp::new()),
        Box::new(Stms::new()),
        Box::new(Stems::new()),
    ];
    members.truncate(n);
    PrefetcherBank::new(members)
}

fn main() {
    let opts = Options::from_env_checked(&[]);
    let warmup = opts.usize("warmup", 15_000);
    let measure = opts.usize("accesses", 40_000);
    let seed = opts.u64("seed", 42);
    report::banner(
        "Extension: ensemble width",
        "ReSemble with 2..7 input prefetchers (BO, ISB, +SPP, +Domino, +VLDP, +STMS, +STeMS)",
    );

    let mut t = Table::new(vec![
        "members",
        "bank",
        "mean accuracy",
        "mean IPC improvement",
    ]);
    for n in 2..=7 {
        let mut accs = Vec::new();
        let mut ipcs = Vec::new();
        for &app in APPS {
            let mut engine = Engine::new(SimConfig::harness());
            let mut src = app_by_name(app, seed).expect("known app").source;
            let base = engine.run(&mut *src, None, warmup, measure);
            let bank = bank_of(n);
            let names = bank.names().join("+");
            let _ = names;
            let mut ctl = ResembleMlp::new(
                bank,
                ResembleConfig {
                    batch_size: 32,
                    ..ResembleConfig::for_inputs(n)
                },
                seed,
            );
            let mut engine = Engine::new(SimConfig::harness());
            let mut src = app_by_name(app, seed).expect("known app").source;
            let s = engine.run(
                &mut *src,
                Some(&mut ctl as &mut dyn Prefetcher),
                warmup,
                measure,
            );
            accs.push(s.accuracy() * 100.0);
            ipcs.push(s.ipc_improvement_over(&base));
        }
        let bank_names = bank_of(n).names().join("+");
        t.row(vec![
            n.to_string(),
            bank_names,
            format!("{:.1}%", mean(&accs)),
            report::pct(mean(&ipcs)),
        ]);
    }
    println!("{}", t.render());
    println!("expected shape: performance jumps once both a strong spatial (SPP) and a");
    println!("strong temporal (ISB) member are present, then stays roughly flat — extra");
    println!("members widen the action space without new coverage, and the controller");
    println!("must learn to ignore them.");
}
