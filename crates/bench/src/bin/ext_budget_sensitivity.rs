//! Extension (paper §VIII future work): "sensitivity to varying budgets".
//! Sweeps the input prefetchers' table capacities — ISB AMC entries,
//! Domino correlation entries, SPP pattern-table entries — and measures
//! how the ensemble's performance degrades as its inputs get weaker.

use resemble_bench::{report, Options};
use resemble_core::{ResembleConfig, ResembleMlp};
use resemble_prefetch::{BestOffset, Domino, Isb, Prefetcher, PrefetcherBank, Spp};
use resemble_sim::{Engine, SimConfig};
use resemble_stats::{mean, Table};
use resemble_trace::gen::app_by_name;

const APPS: &[&str] = &["433.milc", "471.omnetpp", "623.xalancbmk"];

fn bank_with_budget(isb_entries: usize, domino_entries: usize, spp_pt: usize) -> PrefetcherBank {
    PrefetcherBank::new(vec![
        Box::new(BestOffset::new()),
        Box::new(Spp::with_params(256, spp_pt, 0.25, 4)),
        Box::new(Isb::with_params(isb_entries, 2)),
        Box::new(Domino::with_params(domino_entries, 2)),
    ])
}

fn run_point(
    isb_entries: usize,
    domino_entries: usize,
    spp_pt: usize,
    warmup: usize,
    measure: usize,
    seed: u64,
) -> (f64, f64) {
    let mut ipcs = Vec::new();
    let mut covs = Vec::new();
    for &app in APPS {
        let mut engine = Engine::new(SimConfig::harness());
        let mut src = app_by_name(app, seed).expect("known app").source;
        let base = engine.run(&mut *src, None, warmup, measure);
        let mut ctl = ResembleMlp::new(
            bank_with_budget(isb_entries, domino_entries, spp_pt),
            ResembleConfig::fast(),
            seed,
        );
        let mut engine = Engine::new(SimConfig::harness());
        let mut src = app_by_name(app, seed).expect("known app").source;
        let s = engine.run(
            &mut *src,
            Some(&mut ctl as &mut dyn Prefetcher),
            warmup,
            measure,
        );
        ipcs.push(s.ipc_improvement_over(&base));
        covs.push(s.coverage() * 100.0);
    }
    (mean(&ipcs), mean(&covs))
}

fn main() {
    let opts = Options::from_env_checked(&[]);
    let warmup = opts.usize("warmup", 15_000);
    let measure = opts.usize("accesses", 40_000);
    let seed = opts.u64("seed", 42);
    report::banner(
        "Extension: budget sensitivity",
        "ReSemble performance vs input-prefetcher table budgets",
    );

    println!("--- temporal metadata budget (ISB AMC / Domino entries) ---");
    let mut t = Table::new(vec!["entries", "coverage", "IPC improvement"]);
    for shift in [11usize, 13, 15, 17, 19] {
        let n = 1 << shift;
        let (ipc, cov) = run_point(n, n, 512, warmup, measure, seed);
        t.row(vec![
            format!("2^{shift} = {n}"),
            format!("{cov:.1}%"),
            report::pct(ipc),
        ]);
    }
    println!("{}", t.render());

    println!("--- SPP pattern-table entries (Table II default 512) ---");
    let mut t = Table::new(vec!["PT entries", "coverage", "IPC improvement"]);
    for pt in [64usize, 256, 512, 2048] {
        let (ipc, cov) = run_point(1 << 19, 1 << 19, pt, warmup, measure, seed);
        t.row(vec![pt.to_string(), format!("{cov:.1}%"), report::pct(ipc)]);
    }
    println!("{}", t.render());

    println!("expected shape: performance grows with the temporal metadata budget");
    println!("(the irregular apps' footprints need large mappings) and saturates;");
    println!("SPP's small PT suffices (signatures are compact).");
}
