//! Extension (paper §VIII future work): "sensitivity to varying budgets".
//! Sweeps the input prefetchers' table capacities — ISB AMC entries,
//! Domino correlation entries, SPP pattern-table entries — and measures
//! how the ensemble's performance degrades as its inputs get weaker.
//!
//! Every (budget point, app) simulation is one job on the deterministic
//! executor (DESIGN.md §9); each point is a reduce group averaging its
//! apps, so both tables print bit-identically at any `--jobs N`.

use resemble_bench::{report, Options};
use resemble_core::{ResembleConfig, ResembleMlp};
use resemble_prefetch::{BestOffset, Domino, Isb, Prefetcher, PrefetcherBank, Spp};
use resemble_runtime::Sweep;
use resemble_sim::{Engine, SimConfig};
use resemble_stats::{mean, Table};
use resemble_trace::gen::app_by_name;

const APPS: &[&str] = &["433.milc", "471.omnetpp", "623.xalancbmk"];

fn bank_with_budget(isb_entries: usize, domino_entries: usize, spp_pt: usize) -> PrefetcherBank {
    PrefetcherBank::new(vec![
        Box::new(BestOffset::new()),
        Box::new(Spp::with_params(256, spp_pt, 0.25, 4)),
        Box::new(Isb::with_params(isb_entries, 2)),
        Box::new(Domino::with_params(domino_entries, 2)),
    ])
}

/// One app at one budget point: (IPC improvement, coverage %).
fn run_point_app(
    app: &str,
    isb_entries: usize,
    domino_entries: usize,
    spp_pt: usize,
    warmup: usize,
    measure: usize,
    seed: u64,
) -> (f64, f64) {
    let mut engine = Engine::new(SimConfig::harness());
    let mut src = app_by_name(app, seed).expect("known app").source;
    let base = engine.run(&mut *src, None, warmup, measure);
    let mut ctl = ResembleMlp::new(
        bank_with_budget(isb_entries, domino_entries, spp_pt),
        ResembleConfig::fast(),
        seed,
    );
    let mut engine = Engine::new(SimConfig::harness());
    let mut src = app_by_name(app, seed).expect("known app").source;
    let s = engine.run(
        &mut *src,
        Some(&mut ctl as &mut dyn Prefetcher),
        warmup,
        measure,
    );
    (s.ipc_improvement_over(&base), s.coverage() * 100.0)
}

fn main() {
    let opts = Options::from_env_checked(&[]);
    let warmup = opts.usize("warmup", 15_000);
    let measure = opts.usize("accesses", 40_000);
    let seed = opts.u64("seed", 42);
    let jobs = opts.usize("jobs", 0);
    report::banner(
        "Extension: budget sensitivity",
        "ReSemble performance vs input-prefetcher table budgets",
    );

    // (group key, isb/domino entries, spp PT entries), temporal sweep
    // first, then the SPP sweep — print order below matches push order.
    let temporal_shifts = [11usize, 13, 15, 17, 19];
    let spp_points = [64usize, 256, 512, 2048];
    let mut sweep = Sweep::for_bin("ext_budget_sensitivity", jobs).base_seed(seed);
    for &shift in &temporal_shifts {
        let n = 1 << shift;
        for &app in APPS {
            sweep.push_in(
                format!("temporal/2^{shift}"),
                format!("temporal/2^{shift}/{app}"),
                move |_| run_point_app(app, n, n, 512, warmup, measure, seed),
            );
        }
    }
    for &pt in &spp_points {
        for &app in APPS {
            sweep.push_in(
                format!("spp_pt/{pt}"),
                format!("spp_pt/{pt}/{app}"),
                move |_| run_point_app(app, 1 << 19, 1 << 19, pt, warmup, measure, seed),
            );
        }
    }
    let points = sweep.run_reduced(|_, parts| {
        let (ipcs, covs): (Vec<f64>, Vec<f64>) = parts.into_iter().unzip();
        (mean(&ipcs), mean(&covs))
    });
    let mut points = points.into_iter();

    println!("--- temporal metadata budget (ISB AMC / Domino entries) ---");
    let mut t = Table::new(vec!["entries", "coverage", "IPC improvement"]);
    for &shift in &temporal_shifts {
        let n = 1usize << shift;
        let (ipc, cov) = points.next().expect("one point per temporal budget");
        t.row(vec![
            format!("2^{shift} = {n}"),
            format!("{cov:.1}%"),
            report::pct(ipc),
        ]);
    }
    println!("{}", t.render());

    println!("--- SPP pattern-table entries (Table II default 512) ---");
    let mut t = Table::new(vec!["PT entries", "coverage", "IPC improvement"]);
    for &pt in &spp_points {
        let (ipc, cov) = points.next().expect("one point per PT size");
        t.row(vec![pt.to_string(), format!("{cov:.1}%"), report::pct(ipc)]);
    }
    println!("{}", t.render());

    println!("expected shape: performance grows with the temporal metadata budget");
    println!("(the irregular apps' footprints need large mappings) and saturates;");
    println!("SPP's small PT suffices (signatures are compact).");
}
