//! Figure 7 — case study of the controllers' actions: per-1K-window action
//! distributions (which input prefetcher was selected, or NP) for the
//! MLP-based and tabular controllers.
//!
//! Every (app, model) simulation is one job on the deterministic executor
//! (DESIGN.md §9), so the tables print bit-identically at any `--jobs N`.

use resemble_bench::{report, Options};
use resemble_core::{ResembleConfig, ResembleMlp, ResembleTabular};
use resemble_prefetch::{paper_bank, Prefetcher};
use resemble_runtime::Sweep;
use resemble_sim::{Engine, SimConfig};
use resemble_stats::Table;
use serde::Serialize;

const APPS: &[&str] = &["433.lbm", "471.omnetpp", "621.wrf", "623.xalancbmk"];
const MODELS: &[&str] = &["mlp", "table8"];
const ACTIONS: &[&str] = &["BO", "SPP", "ISB", "Domino", "NP"];

#[derive(Serialize)]
struct ActionLog {
    app: String,
    model: String,
    window_actions: Vec<Vec<u32>>,
}

fn run(model: &str, app: &str, accesses: usize, seed: u64) -> Vec<Vec<u32>> {
    let mut engine = Engine::new(SimConfig::harness());
    let mut src = resemble_trace::gen::app_by_name(app, seed)
        .expect("known app")
        .source;
    if model == "mlp" {
        let mut ctl = ResembleMlp::new(paper_bank(), ResembleConfig::fast(), seed);
        engine.run(
            &mut *src,
            Some(&mut ctl as &mut dyn Prefetcher),
            0,
            accesses,
        );
        ctl.stats.window_actions.clone()
    } else {
        let mut ctl = ResembleTabular::new(paper_bank(), ResembleConfig::fast(), 8, seed);
        engine.run(
            &mut *src,
            Some(&mut ctl as &mut dyn Prefetcher),
            0,
            accesses,
        );
        ctl.stats.window_actions.clone()
    }
}

fn main() {
    let opts = Options::from_env_checked(&[]);
    let accesses = opts.usize("accesses", 60_000);
    let seed = opts.u64("seed", 42);
    let jobs = opts.usize("jobs", 0);
    report::banner(
        "Figure 7",
        "Per-window action distributions of MLP vs tabular controllers",
    );

    let mut sweep = Sweep::for_bin("fig07_actions", jobs).base_seed(seed);
    for &app in APPS {
        for &model in MODELS {
            sweep.push(format!("{app}/{model}"), move |_| {
                run(model, app, accesses, seed)
            });
        }
    }
    let mut results = sweep.run().into_iter();

    let mut logs = Vec::new();
    for &app in APPS {
        println!("=== {app} ===");
        for &model in MODELS {
            let windows = results.next().expect("one action log per job");
            logs.push(ActionLog {
                app: app.to_string(),
                model: model.to_string(),
                window_actions: windows.clone(),
            });
            // Print a handful of windows spread over the run plus the
            // dominant-action share per phase.
            let mut t = Table::new(vec![
                "window", "BO", "SPP", "ISB", "Domino", "NP", "dominant",
            ]);
            let n = windows.len();
            for w in [0, n / 4, n / 2, 3 * n / 4, n.saturating_sub(1)] {
                if w >= n {
                    continue;
                }
                let row = &windows[w];
                let dom = row
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &c)| c)
                    .map(|(i, _)| ACTIONS[i])
                    .unwrap_or("-");
                let mut cells = vec![w.to_string()];
                cells.extend(row.iter().map(|c| c.to_string()));
                cells.push(dom.to_string());
                t.row(cells);
            }
            // Late-phase dominant-action share (adaptability metric).
            let late = &windows[n.saturating_sub(5)..];
            let mut sums = [0u64; 5];
            for w in late {
                for (i, &c) in w.iter().enumerate() {
                    sums[i] += c as u64;
                }
            }
            let total: u64 = sums.iter().sum();
            let best = sums.iter().max().copied().unwrap_or(0);
            println!(
                "[{model}] late dominant-action share: {:.0}%",
                100.0 * best as f64 / total.max(1) as f64
            );
            println!("{}", t.render());
        }
    }
    println!("paper shape: the MLP selects the per-app optimal prefetcher at a higher");
    println!("rate within windows and switches faster at phase changes than the table.");
    resemble_bench::runner::maybe_write_json(opts.str("json"), &logs);
}
