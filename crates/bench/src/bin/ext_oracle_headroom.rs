//! Extension analysis: how much of the *ensemble opportunity* does the
//! learned controller capture? For each app we compute (a) the hit rate
//! of the best static member, (b) the offline per-access oracle (any
//! member's top-1 hits within W — an upper bound no realizable controller
//! can exceed), and (c) ReSemble's achieved top-1 hit rate, all over the
//! same trace and window.
//!
//! Each app is one job on the deterministic executor (DESIGN.md §9), so
//! the table prints bit-identically at any `--jobs N`.

use resemble_bench::{report, Options};
use resemble_core::{oracle_selection, ResembleConfig, ResembleMlp};
use resemble_prefetch::{paper_bank, Prefetcher};
use resemble_runtime::Sweep;
use resemble_stats::Table;
use resemble_trace::gen::app_by_name;
use resemble_trace::record::block_of;
use resemble_trace::util::FxHashMap;

const APPS: &[&str] = &[
    "433.milc",
    "433.lbm",
    "471.omnetpp",
    "621.wrf",
    "623.xalancbmk",
];

/// One app: (best-static, oracle, achieved) top-1 hit rates.
fn run_app(app: &str, accesses: usize, window: usize, seed: u64) -> (f64, f64, f64) {
    let trace = app_by_name(app, seed)
        .expect("known app")
        .source
        .collect_n(accesses);
    // Oracle over a cold bank.
    let mut bank = paper_bank();
    let oracle = oracle_selection(&trace, &mut bank, window);

    // ReSemble over the identical trace (controller-level, no timing).
    let mut positions: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    for (i, a) in trace.iter().enumerate() {
        positions
            .entry(block_of(a.addr))
            .or_default()
            .push(i as u32);
    }
    let hits_within = |block: u64, after: usize| -> bool {
        let Some(ps) = positions.get(&block) else {
            return false;
        };
        let idx = ps.partition_point(|&p| p as usize <= after);
        ps.get(idx)
            .map(|&p| (p as usize) <= after + window)
            .unwrap_or(false)
    };
    let mut ctl = ResembleMlp::new(paper_bank(), ResembleConfig::fast(), seed);
    let mut out = Vec::new();
    let mut achieved = 0u64;
    for (i, a) in trace.iter().enumerate() {
        out.clear();
        ctl.on_access(a, false, &mut out);
        if let Some(&p) = out.first() {
            if hits_within(block_of(p), i) {
                achieved += 1;
            }
        }
    }
    let best = oracle.best_static_hits() as f64 / oracle.accesses as f64;
    let orc = oracle.oracle_hit_rate();
    let ach = achieved as f64 / oracle.accesses as f64;
    (best, orc, ach)
}

fn main() {
    let opts = Options::from_env_checked(&["window"]);
    let accesses = opts.usize("accesses", 50_000);
    let seed = opts.u64("seed", 42);
    let window = opts.usize("window", 256);
    let jobs = opts.usize("jobs", 0);
    report::banner(
        "Extension: oracle headroom",
        "Best-static vs per-access-oracle vs learned-controller hit rates",
    );

    let mut sweep = Sweep::for_bin("ext_oracle_headroom", jobs).base_seed(seed);
    for &app in APPS {
        sweep.push(app, move |_| run_app(app, accesses, window, seed));
    }
    let rates = sweep.run();

    let mut t = Table::new(vec![
        "app",
        "best static",
        "oracle (upper bound)",
        "ReSemble achieved",
        "headroom captured",
    ]);
    for (&app, (best, orc, ach)) in APPS.iter().zip(rates) {
        // With <1% headroom the ratio is numerically meaningless.
        let captured = if orc - best > 0.01 {
            format!(
                "{:.0}%",
                ((ach - best) / (orc - best)).clamp(-1.0, 1.0) * 100.0
            )
        } else {
            "n/a (no headroom)".to_string()
        };
        t.row(vec![
            app.to_string(),
            format!("{:.1}%", best * 100.0),
            format!("{:.1}%", orc * 100.0),
            format!("{:.1}%", ach * 100.0),
            captured,
        ]);
    }
    println!("{}", t.render());
    println!("\"headroom captured\" = (achieved − best-static) / (oracle − best-static);");
    println!("100% means the controller fully realizes the adaptive-selection");
    println!("opportunity, 0% means it does no better than the best fixed choice.");
    println!("(ReSemble spends part of the trace exploring and learning, so early");
    println!("accesses depress its achieved rate.)");
}
