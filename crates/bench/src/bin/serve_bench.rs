//! Serving throughput benchmark: replay synthetic access streams from
//! concurrent loopback clients against an in-process `resemble-serve`
//! instance, once microbatched and once with the batch window forced to 1,
//! and report the decision throughput, latency percentiles, and speedup.
//!
//! ```text
//! serve_bench --sessions 8 --accesses 4000 --model resemble_frozen \
//!             --hisess-sessions 1000 --json BENCH_serve.json
//! ```
//!
//! The default model is `resemble_frozen` (inference-only serving, the
//! deployment configuration): its decision windows are unbounded, so the
//! microbatched phase exercises the full `forward_batch` datapath that the
//! batch-of-1 phase pays per decision. Decisions are bit-identical across
//! the two phases (and to an offline run) — the loopback tests pin that;
//! this binary measures what the batching buys.
//!
//! The high-session scenario (ISSUE 6) then opens ~1k concurrent
//! closed-loop sessions that all Hello with the *same* frozen key and
//! measures cross-session pooled decision windows against per-session
//! batching. With one request in flight per session, per-session batches
//! degenerate to single rows; pooling shares one `forward_batch` across
//! every ready same-key session per shard visit.
//!
//! The int8 scenario (`--int8-rows`/`--int8-iters`) drives the pooled
//! `WeightPool` forward path in-process on `resemble_frozen_wide` states,
//! once in f32 and once through the `--quantize-frozen` int8 datapath,
//! and reports the throughput ratio plus the measured argmax decision
//! agreement between the two.
//!
//! `--check` gates every serving metric with `perf_gate`-style messages:
//! the microbatch speedup (≥1.5x), the pool speedup (≥1.5x), the pooled
//! p99 latency (≤250ms), the int8 pooled-forward speedup (≥1.5x,
//! skipped with a warning when the kernels dispatched scalar — int8 wins
//! come from the vector GEMM, so a scalar host would gate noise), and
//! the int8 wide-tier speedup (Avx512 tier forced vs scalar forced on
//! the same int8 pooled forward, ≥2.0x, skipped with a named warning on
//! hosts without avx512f+avx512bw).

use resemble_bench::cli::Options;
use resemble_bench::runner::maybe_write_json;
use resemble_serve::{Reply, ServeClient, ServeConfig, Server, SessionModel, TelemetrySnapshot};
use resemble_trace::gen::stream::StreamGen;
use resemble_trace::gen::TraceSource;
use resemble_trace::MemAccess;
use serde::Serialize;
use std::sync::{Barrier, OnceLock};
use std::time::Instant;

/// One measured serving phase.
#[derive(Debug, Serialize)]
struct PhaseReport {
    max_batch: usize,
    elapsed_s: f64,
    decisions_per_s: f64,
    snapshot: TelemetrySnapshot,
}

/// The full benchmark output (`BENCH_serve.json`).
#[derive(Debug, Serialize)]
struct BenchReport {
    /// SIMD kernel backend runtime dispatch selected (also present in
    /// each phase snapshot), so the numbers are attributable to an ISA.
    kernel_backend: String,
    model: String,
    sessions: usize,
    accesses_per_session: usize,
    shards: usize,
    seed: u64,
    microbatched: PhaseReport,
    batch_of_1: PhaseReport,
    /// Microbatched ÷ batch-of-1 decision throughput.
    speedup: f64,
    high_session: HighSessionReport,
    int8: Int8Report,
}

/// The int8 quantized-serving scenario: the pooled `WeightPool` forward
/// path measured in-process (no sockets — this isolates the datapath the
/// `--quantize-frozen` flag swaps) on frozen wide-model states, f32 vs
/// int8, plus the decision-agreement delta between the two.
#[derive(Debug, Serialize)]
struct Int8Report {
    model: String,
    /// Pooled window rows per forward call.
    rows: usize,
    /// Timed forward calls per datapath.
    iters: usize,
    f32_rows_per_s: f64,
    int8_rows_per_s: f64,
    /// int8 ÷ f32 pooled forward throughput.
    int8_speedup: f64,
    /// Fraction of rows whose argmax decision matches between the f32
    /// and int8 forward passes (1.0 = every decision identical).
    decision_agreement: f64,
    /// Whether `--check` gates the speedup: false when the kernels
    /// dispatched scalar, where int8 has no vector GEMM to win with.
    gated: bool,
    /// Int8 pooled forward rows/s with the Avx512 tier forced; 0.0 when
    /// the host lacks the tier (avx512f+avx512bw).
    avx512_rows_per_s: f64,
    /// Int8 pooled forward rows/s with the scalar backend forced — the
    /// denominator of `avx512_vs_scalar`, measured in the same process.
    scalar_rows_per_s: f64,
    /// Avx512-tier over scalar int8 pooled forward throughput: what the
    /// wide int8 lanes (VNNI where detected) buy the serving hot path.
    /// 0.0 when the tier is unavailable.
    avx512_vs_scalar: f64,
    /// `Some(reason)` when `avx512_vs_scalar` is skipped on this host —
    /// named in the `--check` warning, `perf_gate`-style.
    avx512_skip: Option<String>,
}

/// Run the int8 scenario: one warm `WeightPool` per datapath, `iters`
/// timed pooled forwards over the same `rows`-row state window.
fn run_int8_scenario(model: &str, rows: usize, iters: usize, seed: u64) -> Int8Report {
    use resemble_nn::quant::argmax_row;
    use resemble_nn::Matrix;
    use resemble_serve::pool::{SessionKey, WeightPool};

    let template = SessionModel::build(model, seed, true).expect("int8 scenario model builds");
    let dim = template
        .inference_net()
        .expect("int8 scenario model has an inference net")
        .input_dim();
    let states = Matrix::from_fn(rows, dim, |r, c| {
        ((r * dim + c) as f64 * 0.173).sin() as f32
    });
    let key = SessionKey {
        model: model.to_string(),
        seed,
        fast: true,
    };
    let mut f32_pool = WeightPool::new(4);
    let mut int8_pool = WeightPool::new(4).quantized(true);
    let mut qf = Matrix::default();
    let mut qi = Matrix::default();
    // Warm both entries (weight clone + quantization) outside the timed
    // window, and take the agreement measurement from the warm outputs.
    assert!(f32_pool.forward_into(&key, &template, &states, &mut qf));
    assert!(int8_pool.forward_into(&key, &template, &states, &mut qi));
    let agree = (0..rows)
        .filter(|&r| argmax_row(qf.row(r)) == argmax_row(qi.row(r)))
        .count();
    let t = Instant::now();
    for _ in 0..iters {
        f32_pool.forward_into(&key, &template, &states, &mut qf);
    }
    let f32_s = t.elapsed().as_secs_f64().max(1e-9);
    let t = Instant::now();
    for _ in 0..iters {
        int8_pool.forward_into(&key, &template, &states, &mut qi);
    }
    let int8_s = t.elapsed().as_secs_f64().max(1e-9);
    let total_rows = (rows * iters) as f64;
    // Wide-tier leg: the same int8 pooled forward under the forced
    // Avx512 tier vs forced scalar (outputs are byte-identical across
    // backends, so only the clock differs). Forcing — rather than
    // reading the ambient dispatch — means a `RESEMBLE_SIMD` override
    // cannot hide a wide-lane regression on a capable host.
    use resemble_nn::simd::{self, KernelBackend};
    let (avx512_rows_per_s, scalar_rows_per_s, avx512_vs_scalar, avx512_skip) =
        if KernelBackend::Avx512.is_available() {
            let mut timed = |be: KernelBackend| {
                let _guard = simd::force(be);
                // Warm outside the timed window: the pool re-quantizes on
                // first touch after a backend switch only if evicted; the
                // forward itself is the thing being timed.
                int8_pool.forward_into(&key, &template, &states, &mut qi);
                let t = Instant::now();
                for _ in 0..iters {
                    int8_pool.forward_into(&key, &template, &states, &mut qi);
                }
                total_rows / t.elapsed().as_secs_f64().max(1e-9)
            };
            let scalar_rate = timed(KernelBackend::Scalar);
            let avx512_rate = timed(KernelBackend::Avx512);
            (
                avx512_rate,
                scalar_rate,
                avx512_rate / scalar_rate.max(1e-9),
                None,
            )
        } else {
            (
                0.0,
                0.0,
                0.0,
                Some(format!(
                    "host lacks the avx512 tier (needs avx512f+avx512bw; detected features: {})",
                    simd::capabilities().summary()
                )),
            )
        };
    Int8Report {
        model: model.to_string(),
        rows,
        iters,
        f32_rows_per_s: total_rows / f32_s,
        int8_rows_per_s: total_rows / int8_s,
        int8_speedup: f32_s / int8_s,
        decision_agreement: agree as f64 / rows.max(1) as f64,
        gated: resemble_nn::simd::dispatched().name() != "scalar",
        avx512_rows_per_s,
        scalar_rows_per_s,
        avx512_vs_scalar,
        avx512_skip,
    }
}

/// One high-session-count phase: many concurrent sessions sharing one
/// frozen Hello key, each trickling a small request window.
#[derive(Debug, Serialize)]
struct HighSessionPhase {
    cross_session: bool,
    elapsed_s: f64,
    decisions_per_s: f64,
    latency_us_p99: u64,
    snapshot: TelemetrySnapshot,
}

/// The high-session scenario (ISSUE 6): ~1k concurrent frozen sessions,
/// measured once with cross-session pooled decision windows and once
/// with per-session batching only. Same clients, same traces — the delta
/// is what sharing one `forward_batch` across sessions buys.
#[derive(Debug, Serialize)]
struct HighSessionReport {
    model: String,
    sessions: usize,
    accesses_per_session: usize,
    /// Requests each session keeps in flight (small on purpose: a big
    /// per-session window would let per-session batching catch up).
    window: usize,
    shards: usize,
    io_threads: usize,
    /// RLIMIT_NOFILE actually in effect (after the best-effort raise).
    nofile_limit: u64,
    pooled: HighSessionPhase,
    per_session: HighSessionPhase,
    /// Pooled ÷ per-session decision throughput.
    pool_speedup: f64,
}

/// Best-effort raise of RLIMIT_NOFILE toward `target` (the scenario
/// needs ~2 fds per session), returning the limit now in effect.
fn raise_nofile_limit(target: u64) -> u64 {
    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }
    const RLIMIT_NOFILE: i32 = 7;
    // SAFETY: every call takes a pointer to a live, #[repr(C)] `RLimit`
    // local in this block, valid for the duration of the call.
    // lint:allow(unsafe-undocumented): one isolated rlimit adjustment in a bench binary — not worth widening the [[unsafe-allowed]] file set
    unsafe {
        let mut r = RLimit { cur: 0, max: 0 };
        if getrlimit(RLIMIT_NOFILE, &mut r) != 0 {
            return 1024;
        }
        if r.cur < target {
            let want = RLimit {
                cur: target.min(r.max),
                max: r.max,
            };
            let _ = setrlimit(RLIMIT_NOFILE, &want);
            if getrlimit(RLIMIT_NOFILE, &mut r) != 0 {
                return 1024;
            }
        }
        r.cur
    }
}

fn session_trace(seed: u64, n: usize) -> Vec<(MemAccess, bool)> {
    let mut gen = StreamGen::new(seed, 4, 1024, 0).with_write_ratio(0.2);
    gen.collect_n(n)
        .into_iter()
        .enumerate()
        .map(|(i, a)| (a, i % 3 == 0))
        .collect()
}

/// Drive one client session to completion with `window` requests in
/// flight, returning the number of decisions received.
fn drive_session(
    addr: std::net::SocketAddr,
    model: &str,
    seed: u64,
    trace: &[(MemAccess, bool)],
    window: usize,
) -> u64 {
    let mut client = ServeClient::connect(addr).expect("connect");
    client.hello(model, seed, true).expect("hello accepted");
    let (mut next, mut awaiting, mut decisions) = (0usize, 0usize, 0u64);
    while next < trace.len() || awaiting > 0 {
        while next < trace.len() && awaiting < window {
            let (access, hit) = trace[next];
            client.queue_access(next as u32, 0, access, hit);
            next += 1;
            awaiting += 1;
        }
        client.flush().expect("flush");
        match client.recv().expect("recv").expect("reply before EOF") {
            Reply::Decision { .. } => {
                decisions += 1;
                awaiting -= 1;
            }
            Reply::Busy { .. } => awaiting -= 1,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    client.queue_bye();
    client.flush().expect("flush bye");
    while let Some(reply) = client.recv().expect("recv goodbye") {
        if matches!(reply, Reply::Goodbye { .. }) {
            break;
        }
    }
    decisions
}

fn run_phase(
    model: &str,
    sessions: usize,
    accesses: usize,
    shards: usize,
    seed: u64,
    max_batch: usize,
) -> PhaseReport {
    let server = Server::start(
        ServeConfig {
            shards,
            max_batch,
            queue_cap: 256,
            ..ServeConfig::default()
        },
        SessionModel::default_builder(),
    )
    .expect("server starts");
    let addr = server.local_addr();
    let start = Instant::now();
    let served: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..sessions)
            .map(|i| {
                s.spawn(move || {
                    let trace = session_trace(seed + i as u64, accesses);
                    drive_session(addr, model, seed + i as u64, &trace, 64)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    });
    let elapsed = start.elapsed().as_secs_f64();
    let snapshot = server.shutdown();
    assert_eq!(
        snapshot.decisions, served,
        "telemetry vs client decision count"
    );
    PhaseReport {
        max_batch,
        elapsed_s: elapsed,
        decisions_per_s: served as f64 / elapsed.max(1e-9),
        snapshot,
    }
}

/// The high-session scenario's shape, shared verbatim by the pooled and
/// per-session runs (which differ only in `cross_session`).
struct HighSessionSetup<'a> {
    model: &'a str,
    sessions: usize,
    accesses: usize,
    window: usize,
    shards: usize,
    io_threads: usize,
    seed: u64,
}

/// Run the high-session scenario once. Every session Hellos with the
/// *same* `(model, seed, fast)` key — the frozen weights are shared — but
/// streams its own trace. Drivers are bulk-synchronous: each owns a block
/// of sessions and per round sends `window` accesses on every one, then
/// collects the replies, so ~`sessions` sessions are concurrently ready
/// at all times.
fn run_high_session_phase(setup: &HighSessionSetup, cross_session: bool) -> HighSessionPhase {
    let &HighSessionSetup {
        model,
        sessions,
        accesses,
        window,
        shards,
        io_threads,
        seed,
    } = setup;
    let server = Server::start(
        ServeConfig {
            shards,
            max_batch: 64,
            queue_cap: 256,
            io_threads,
            cross_session,
            ..ServeConfig::default()
        },
        SessionModel::default_builder(),
    )
    .expect("server starts");
    let addr = server.local_addr();
    let drivers = 16usize.min(sessions.max(1));
    let barrier = Barrier::new(drivers);
    let t0: OnceLock<Instant> = OnceLock::new();
    let served: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..drivers)
            .map(|d| {
                let barrier = &barrier;
                let t0 = &t0;
                s.spawn(move || {
                    let lo = sessions * d / drivers;
                    let hi = sessions * (d + 1) / drivers;
                    let mut clients: Vec<ServeClient> = Vec::with_capacity(hi - lo);
                    let mut traces: Vec<Vec<(MemAccess, bool)>> = Vec::with_capacity(hi - lo);
                    for i in lo..hi {
                        let mut c = ServeClient::connect(addr).expect("connect");
                        c.hello(model, seed, true).expect("hello accepted");
                        clients.push(c);
                        traces.push(session_trace(seed + 1 + i as u64 * 7919, accesses));
                    }
                    // Setup (connects + per-session model builds) is
                    // excluded from the measured window.
                    barrier.wait();
                    let _ = t0.set(Instant::now());
                    let mut decisions = 0u64;
                    let mut pos = 0usize;
                    while pos < accesses {
                        let take = window.min(accesses - pos);
                        for (c, trace) in clients.iter_mut().zip(traces.iter()) {
                            for k in 0..take {
                                let (access, hit) = trace[pos + k];
                                c.queue_access((pos + k) as u32, 0, access, hit);
                            }
                            c.flush().expect("flush");
                        }
                        for c in clients.iter_mut() {
                            for _ in 0..take {
                                match c.recv().expect("recv").expect("reply before EOF") {
                                    Reply::Decision { .. } => decisions += 1,
                                    Reply::Busy { .. } => {}
                                    other => panic!("unexpected reply {other:?}"),
                                }
                            }
                        }
                        pos += take;
                    }
                    for c in clients.iter_mut() {
                        c.queue_bye();
                        c.flush().expect("flush bye");
                        while let Some(reply) = c.recv().expect("recv goodbye") {
                            if matches!(reply, Reply::Goodbye { .. }) {
                                break;
                            }
                        }
                    }
                    decisions
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("driver")).sum()
    });
    let elapsed = t0
        .get()
        .map(|t| t.elapsed().as_secs_f64())
        .unwrap_or(f64::MIN_POSITIVE);
    let snapshot = server.shutdown();
    assert_eq!(
        snapshot.decisions, served,
        "telemetry vs client decision count"
    );
    HighSessionPhase {
        cross_session,
        elapsed_s: elapsed,
        decisions_per_s: served as f64 / elapsed.max(1e-9),
        latency_us_p99: snapshot.latency_us_p99,
        snapshot,
    }
}

fn main() {
    let opts = Options::from_env_checked(&[
        "sessions",
        "model",
        "shards",
        "check",
        "io-threads",
        "hisess-sessions",
        "hisess-accesses",
        "hisess-window",
        "hisess-model",
        "int8-rows",
        "int8-iters",
    ]);
    let sessions = opts.usize("sessions", 8);
    let accesses = opts.usize("accesses", 4000);
    let shards = opts.usize("shards", 2);
    let seed = opts.u64("seed", 42);
    let model = opts.str("model").unwrap_or("resemble_frozen").to_string();
    let json = opts.str("json").map(str::to_string);

    let kernel_backend = resemble_nn::simd::dispatched().name().to_string();
    eprintln!(
        "serve_bench: model={model} sessions={sessions} accesses={accesses} shards={shards} kernel={kernel_backend}"
    );
    let microbatched = run_phase(&model, sessions, accesses, shards, seed, 64);
    let batch_of_1 = run_phase(&model, sessions, accesses, shards, seed, 1);
    let speedup = microbatched.decisions_per_s / batch_of_1.decisions_per_s.max(1e-9);

    // High-session scenario: ~1k concurrent frozen sessions sharing one
    // Hello key, pooled vs per-session batching.
    let hisess_req = opts.usize("hisess-sessions", 1000);
    let hisess_accesses = opts.usize("hisess-accesses", 32);
    // Closed-loop clients: each session has one request in flight (it
    // sends the next access only after receiving the decision), which is
    // the realistic serving regime at high session counts — per-session
    // batches degenerate to 1 row, cross-session pooling recovers the
    // batched GEMM.
    let hisess_window = opts.usize("hisess-window", 1).max(1);
    let hisess_model = opts
        .str("hisess-model")
        .unwrap_or("resemble_frozen_wide")
        .to_string();
    // One shard and one I/O thread by default: sessions pool per shard,
    // so a single worker gathering every ready session is the cleanest
    // (and least scheduling-sensitive) pooled-vs-per-session comparison.
    let io_threads = opts.usize("io-threads", 1);
    let hisess_shards = 1;
    let nofile_limit = raise_nofile_limit(hisess_req as u64 * 2 + 256);
    let fd_budget = usize::try_from(nofile_limit.saturating_sub(128) / 2).unwrap_or(hisess_req);
    let hisess_sessions = hisess_req.min(fd_budget).max(1);
    if hisess_sessions < hisess_req {
        eprintln!(
            "serve_bench: RLIMIT_NOFILE={nofile_limit} caps the high-session scenario at \
             {hisess_sessions} sessions (requested {hisess_req})"
        );
    }
    eprintln!(
        "serve_bench: high-session scenario: model={hisess_model} sessions={hisess_sessions} \
         accesses={hisess_accesses} window={hisess_window} io_threads={io_threads}"
    );
    let setup = HighSessionSetup {
        model: &hisess_model,
        sessions: hisess_sessions,
        accesses: hisess_accesses,
        window: hisess_window,
        shards: hisess_shards,
        io_threads,
        seed,
    };
    let pooled = run_high_session_phase(&setup, true);
    let per_session = run_high_session_phase(&setup, false);
    let pool_speedup = pooled.decisions_per_s / per_session.decisions_per_s.max(1e-9);

    // Int8 quantized-serving scenario: the pooled forward datapath on the
    // same wide frozen model the high-session scenario serves.
    let int8_rows = opts.usize("int8-rows", 256).max(1);
    let int8_iters = opts.usize("int8-iters", 400).max(1);
    let int8 = run_int8_scenario(&hisess_model, int8_rows, int8_iters, seed);
    let high_session = HighSessionReport {
        model: hisess_model,
        sessions: hisess_sessions,
        accesses_per_session: hisess_accesses,
        window: hisess_window,
        shards: hisess_shards,
        io_threads,
        nofile_limit,
        pooled,
        per_session,
        pool_speedup,
    };

    println!(
        "microbatched : {:>10.0} decisions/s  (mean batch {:.1}, p50/p95/p99 = {}/{}/{} us)",
        microbatched.decisions_per_s,
        microbatched.snapshot.mean_batch,
        microbatched.snapshot.latency_us_p50,
        microbatched.snapshot.latency_us_p95,
        microbatched.snapshot.latency_us_p99,
    );
    println!(
        "batch-of-1   : {:>10.0} decisions/s  (mean batch {:.1}, p50/p95/p99 = {}/{}/{} us)",
        batch_of_1.decisions_per_s,
        batch_of_1.snapshot.mean_batch,
        batch_of_1.snapshot.latency_us_p50,
        batch_of_1.snapshot.latency_us_p95,
        batch_of_1.snapshot.latency_us_p99,
    );
    println!("speedup      : {speedup:.2}x");
    println!(
        "pooled       : {:>10.0} decisions/s  ({} sessions, {} pool batches, mean pooled {:.1}, p99 = {} us)",
        high_session.pooled.decisions_per_s,
        high_session.sessions,
        high_session.pooled.snapshot.pool_batches,
        high_session.pooled.snapshot.pool_sessions as f64
            / (high_session.pooled.snapshot.pool_batches.max(1)) as f64,
        high_session.pooled.latency_us_p99,
    );
    println!(
        "per-session  : {:>10.0} decisions/s  (p99 = {} us)",
        high_session.per_session.decisions_per_s, high_session.per_session.latency_us_p99,
    );
    println!("pool speedup : {pool_speedup:.2}x");
    println!(
        "int8 pooled  : {:>10.0} rows/s vs f32 {:>10.0} rows/s = {:.2}x  (agreement {:.4}, {} rows x {} iters)",
        int8.int8_rows_per_s,
        int8.f32_rows_per_s,
        int8.int8_speedup,
        int8.decision_agreement,
        int8.rows,
        int8.iters,
    );
    match &int8.avx512_skip {
        None => println!(
            "int8 avx512  : {:>10.0} rows/s vs scalar {:>10.0} rows/s = {:.2}x",
            int8.avx512_rows_per_s, int8.scalar_rows_per_s, int8.avx512_vs_scalar,
        ),
        Some(reason) => println!("int8 avx512  : not measured ({reason})"),
    }

    let report = BenchReport {
        kernel_backend,
        model,
        sessions,
        accesses_per_session: accesses,
        shards,
        seed,
        microbatched,
        batch_of_1,
        speedup,
        high_session,
        int8,
    };
    maybe_write_json(json.as_deref(), &report);

    if opts.flag("check") {
        let mut failures: Vec<String> = Vec::new();
        let hs = &report.high_session;
        // (metric label, report key, measured value, required minimum,
        //  skip reason) — the same shape (and failure phrasing) as
        // perf_gate's `--check`, so one grep pattern covers both gates.
        let gated = [
            ("microbatch", "speedup", report.speedup, 1.5, None::<String>),
            (
                "cross-session pool",
                "pool_speedup",
                hs.pool_speedup,
                1.5,
                None,
            ),
            (
                "int8 pooled forward",
                "int8_speedup",
                report.int8.int8_speedup,
                1.5,
                (!report.int8.gated).then(|| "scalar-dispatched kernels".to_string()),
            ),
            (
                "int8 avx512 pooled forward",
                "avx512_vs_scalar",
                report.int8.avx512_vs_scalar,
                2.0,
                report.int8.avx512_skip.clone(),
            ),
        ];
        for (label, key, measured, min_required, skip) in gated {
            if let Some(reason) = skip {
                eprintln!("warning: {label} speedup not measured ({reason}); not gated");
                continue;
            }
            println!("check [{label}]: required {min_required:.2}x, measured {measured:.2}x");
            if measured < min_required {
                failures.push(format!(
                    "metric `{key}` ({label}) below its absolute minimum: measured \
                     {measured:.2}x < required {min_required:.2}x, short by {:.2}x ({:.1}%)",
                    min_required - measured,
                    (min_required - measured) / min_required * 100.0
                ));
            }
        }
        let (p99, p99_max) = (hs.pooled.latency_us_p99, 250_000u64);
        println!("check [pooled p99]: allowed {p99_max} us, measured {p99} us");
        if p99 > p99_max {
            failures.push(format!(
                "metric `pooled.latency_us_p99` (pooled p99) above its absolute maximum: \
                 measured {p99} us > allowed {p99_max} us, over by {} us ({:.1}%)",
                p99 - p99_max,
                (p99 - p99_max) as f64 / p99_max as f64 * 100.0
            ));
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("FAIL: {f}");
            }
            std::process::exit(1);
        }
        println!("serve gate OK");
    }
}
