//! Serving throughput benchmark: replay synthetic access streams from
//! concurrent loopback clients against an in-process `resemble-serve`
//! instance, once microbatched and once with the batch window forced to 1,
//! and report the decision throughput, latency percentiles, and speedup.
//!
//! ```text
//! serve_bench --sessions 8 --accesses 4000 --model resemble_frozen \
//!             --json BENCH_serve.json
//! ```
//!
//! The default model is `resemble_frozen` (inference-only serving, the
//! deployment configuration): its decision windows are unbounded, so the
//! microbatched phase exercises the full `forward_batch` datapath that the
//! batch-of-1 phase pays per decision. Decisions are bit-identical across
//! the two phases (and to an offline run) — the loopback tests pin that;
//! this binary measures what the batching buys.

use resemble_bench::cli::Options;
use resemble_bench::runner::maybe_write_json;
use resemble_serve::{Reply, ServeClient, ServeConfig, Server, SessionModel, TelemetrySnapshot};
use resemble_trace::gen::stream::StreamGen;
use resemble_trace::gen::TraceSource;
use resemble_trace::MemAccess;
use serde::Serialize;
use std::time::Instant;

/// One measured serving phase.
#[derive(Debug, Serialize)]
struct PhaseReport {
    max_batch: usize,
    elapsed_s: f64,
    decisions_per_s: f64,
    snapshot: TelemetrySnapshot,
}

/// The full benchmark output (`BENCH_serve.json`).
#[derive(Debug, Serialize)]
struct BenchReport {
    /// SIMD kernel backend runtime dispatch selected (also present in
    /// each phase snapshot), so the numbers are attributable to an ISA.
    kernel_backend: String,
    model: String,
    sessions: usize,
    accesses_per_session: usize,
    shards: usize,
    seed: u64,
    microbatched: PhaseReport,
    batch_of_1: PhaseReport,
    /// Microbatched ÷ batch-of-1 decision throughput.
    speedup: f64,
}

fn session_trace(seed: u64, n: usize) -> Vec<(MemAccess, bool)> {
    let mut gen = StreamGen::new(seed, 4, 1024, 0).with_write_ratio(0.2);
    gen.collect_n(n)
        .into_iter()
        .enumerate()
        .map(|(i, a)| (a, i % 3 == 0))
        .collect()
}

/// Drive one client session to completion with `window` requests in
/// flight, returning the number of decisions received.
fn drive_session(
    addr: std::net::SocketAddr,
    model: &str,
    seed: u64,
    trace: &[(MemAccess, bool)],
    window: usize,
) -> u64 {
    let mut client = ServeClient::connect(addr).expect("connect");
    client.hello(model, seed, true).expect("hello accepted");
    let (mut next, mut awaiting, mut decisions) = (0usize, 0usize, 0u64);
    while next < trace.len() || awaiting > 0 {
        while next < trace.len() && awaiting < window {
            let (access, hit) = trace[next];
            client.queue_access(next as u32, 0, access, hit);
            next += 1;
            awaiting += 1;
        }
        client.flush().expect("flush");
        match client.recv().expect("recv").expect("reply before EOF") {
            Reply::Decision { .. } => {
                decisions += 1;
                awaiting -= 1;
            }
            Reply::Busy { .. } => awaiting -= 1,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    client.queue_bye();
    client.flush().expect("flush bye");
    while let Some(reply) = client.recv().expect("recv goodbye") {
        if matches!(reply, Reply::Goodbye { .. }) {
            break;
        }
    }
    decisions
}

fn run_phase(
    model: &str,
    sessions: usize,
    accesses: usize,
    shards: usize,
    seed: u64,
    max_batch: usize,
) -> PhaseReport {
    let server = Server::start(
        ServeConfig {
            shards,
            max_batch,
            queue_cap: 256,
            ..ServeConfig::default()
        },
        SessionModel::default_builder(),
    )
    .expect("server starts");
    let addr = server.local_addr();
    let start = Instant::now();
    let served: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..sessions)
            .map(|i| {
                s.spawn(move || {
                    let trace = session_trace(seed + i as u64, accesses);
                    drive_session(addr, model, seed + i as u64, &trace, 64)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    });
    let elapsed = start.elapsed().as_secs_f64();
    let snapshot = server.shutdown();
    assert_eq!(
        snapshot.decisions, served,
        "telemetry vs client decision count"
    );
    PhaseReport {
        max_batch,
        elapsed_s: elapsed,
        decisions_per_s: served as f64 / elapsed.max(1e-9),
        snapshot,
    }
}

fn main() {
    let opts = Options::from_env_checked(&["sessions", "model", "shards", "check"]);
    let sessions = opts.usize("sessions", 8);
    let accesses = opts.usize("accesses", 4000);
    let shards = opts.usize("shards", 2);
    let seed = opts.u64("seed", 42);
    let model = opts.str("model").unwrap_or("resemble_frozen").to_string();
    let json = opts.str("json").map(str::to_string);

    let kernel_backend = resemble_nn::simd::dispatched().name().to_string();
    eprintln!(
        "serve_bench: model={model} sessions={sessions} accesses={accesses} shards={shards} kernel={kernel_backend}"
    );
    let microbatched = run_phase(&model, sessions, accesses, shards, seed, 64);
    let batch_of_1 = run_phase(&model, sessions, accesses, shards, seed, 1);
    let speedup = microbatched.decisions_per_s / batch_of_1.decisions_per_s.max(1e-9);

    println!(
        "microbatched : {:>10.0} decisions/s  (mean batch {:.1}, p50/p95/p99 = {}/{}/{} us)",
        microbatched.decisions_per_s,
        microbatched.snapshot.mean_batch,
        microbatched.snapshot.latency_us_p50,
        microbatched.snapshot.latency_us_p95,
        microbatched.snapshot.latency_us_p99,
    );
    println!(
        "batch-of-1   : {:>10.0} decisions/s  (mean batch {:.1}, p50/p95/p99 = {}/{}/{} us)",
        batch_of_1.decisions_per_s,
        batch_of_1.snapshot.mean_batch,
        batch_of_1.snapshot.latency_us_p50,
        batch_of_1.snapshot.latency_us_p95,
        batch_of_1.snapshot.latency_us_p99,
    );
    println!("speedup      : {speedup:.2}x");

    let report = BenchReport {
        kernel_backend,
        model,
        sessions,
        accesses_per_session: accesses,
        shards,
        seed,
        microbatched,
        batch_of_1,
        speedup,
    };
    maybe_write_json(json.as_deref(), &report);

    if opts.flag("check") && speedup < 1.5 {
        eprintln!("FAIL: microbatch speedup {speedup:.2}x is below the 1.5x floor");
        std::process::exit(1);
    }
}
