//! Figure 12 / §VI-B — incorporating an NN-based prefetcher: Domino is
//! replaced by the Voyager-like neural temporal prefetcher, and ReSemble
//! is compared against each input prefetcher alone and against the
//! Domino-bank ReSemble of the main evaluation. Averages are geometric
//! means, as in the paper's Fig 12.

use resemble_bench::{factory, report, runner, Options};
use resemble_stats::{geo_mean, Table};
use resemble_trace::gen::spec_like::APP_NAMES;

fn main() {
    let opts = Options::from_env_checked(&[]);
    let params = runner::SweepParams {
        warmup: opts.usize("warmup", 20_000),
        measure: opts.usize("accesses", 60_000),
        seed: opts.u64("seed", 42),
        ..Default::default()
    };
    let apps: Vec<String> = opts.list("apps").unwrap_or_else(|| {
        // The paper's Fig 12 uses a case subset plus the average.
        vec![
            "433.milc",
            "471.omnetpp",
            "621.wrf",
            "623.xalancbmk",
            "gap.pr",
        ]
        .into_iter()
        .map(String::from)
        .collect()
    });
    assert!(
        apps.iter().all(|a| APP_NAMES.contains(&a.as_str())),
        "unknown app name"
    );
    report::banner(
        "Figure 12",
        "ReSemble with the Voyager-like neural prefetcher as input",
    );

    let results = runner::run_matrix(&apps, factory::VOYAGER_LINEUP, &params);

    let mut t = Table::new({
        let mut h = vec!["app".to_string()];
        h.extend(
            factory::VOYAGER_LINEUP
                .iter()
                .map(|p| factory::label(p).to_string()),
        );
        h
    });
    for app in &apps {
        let mut row = vec![app.clone()];
        for &pf in factory::VOYAGER_LINEUP {
            let r = results
                .iter()
                .find(|r| &r.app == app && r.pf == pf)
                .expect("complete");
            row.push(report::pct(r.ipc_improvement_pct()));
        }
        t.row(row);
    }
    // Geometric-mean row over (100% + improvement) factors.
    let mut avg = vec!["GEO-AVG".to_string()];
    let mut avg_map = Vec::new();
    for &pf in factory::VOYAGER_LINEUP {
        let factors: Vec<f64> = results
            .iter()
            .filter(|r| r.pf == pf)
            .map(|r| 1.0 + r.ipc_improvement_pct() / 100.0)
            .collect();
        let g = (geo_mean(&factors) - 1.0) * 100.0;
        avg.push(report::pct(g));
        avg_map.push((pf, g));
    }
    t.row(avg);
    println!("{}", t.render());
    println!("(IPC improvement; paper: ReSemble+Voyager 36.22%, +4.71 over Voyager");
    println!(" alone, +5.10 over Domino-bank ReSemble)");

    let get = |pf: &str| avg_map.iter().find(|(p, _)| *p == pf).unwrap().1;
    println!("shape checks:");
    println!(
        "  ReSemble+V >= Voyager alone:      {} ({:.2} vs {:.2})",
        get("resemble_v") >= get("voyager"),
        get("resemble_v"),
        get("voyager")
    );
    println!(
        "  ReSemble+V >= Domino-bank ReSemble: {} ({:.2} vs {:.2})",
        get("resemble_v") >= get("resemble"),
        get("resemble_v"),
        get("resemble")
    );
    println!(
        "  Voyager not uniformly best (some app where another pf wins): {}",
        apps.iter().any(|app| {
            let v = results
                .iter()
                .find(|r| &r.app == app && r.pf == "voyager")
                .unwrap();
            results
                .iter()
                .filter(|r| &r.app == app && r.pf != "voyager")
                .any(|r| r.ipc_improvement_pct() > v.ipc_improvement_pct())
        })
    );
    resemble_bench::runner::maybe_write_json(opts.str("json"), &results);
}
