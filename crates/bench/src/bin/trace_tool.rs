//! Trace utility mirroring the paper artifact's file-based flow: generate
//! a named workload trace to a text file, analyze a trace file (Fig 1
//! style), or replay a trace file through the simulator with a chosen
//! prefetcher.
//!
//! ```text
//! trace_tool --gen 433.milc --accesses 50000 --out milc.trace
//! trace_tool --analyze milc.trace
//! trace_tool --replay milc.trace --pf resemble --warmup 10000
//! ```

use resemble_bench::{factory, Options};
use resemble_sim::{Engine, SimConfig};
use resemble_stats::Table;
use resemble_trace::analysis::{pc_grouped_autocorrelation, summarize_acf, trace_autocorrelation};
use resemble_trace::gen::{app_by_name, TraceSource, VecSource};
use resemble_trace::io::{read_trace, write_trace};
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn main() {
    let opts = Options::from_env_checked(&["analyze", "gen", "out", "pf", "replay"]);
    let seed = opts.u64("seed", 42);

    if let Some(app) = opts.str("gen") {
        let accesses = opts.usize("accesses", 50_000);
        let out = opts.str("out").unwrap_or("trace.txt").to_string();
        let trace = app_by_name(app, seed)
            .unwrap_or_else(|| panic!("unknown app '{app}'"))
            .source
            .collect_n(accesses);
        let f = File::create(&out).expect("create output file");
        write_trace(&mut BufWriter::new(f), &trace).expect("write trace");
        println!("wrote {} accesses of {app} to {out}", trace.len());
        return;
    }

    if let Some(path) = opts.str("analyze") {
        let f = File::open(path).expect("open trace file");
        let trace = read_trace(BufReader::new(f)).expect("parse trace");
        let raw = summarize_acf(&trace_autocorrelation(&trace, 40));
        let grouped = summarize_acf(&pc_grouped_autocorrelation(&trace, 40));
        let pcs: std::collections::HashSet<u64> = trace.iter().map(|a| a.pc).collect();
        let blocks: std::collections::HashSet<u64> = trace.iter().map(|a| a.block()).collect();
        let mut t = Table::new(vec!["metric", "value"]);
        t.row(vec!["accesses".to_string(), trace.len().to_string()]);
        t.row(vec!["unique PCs".to_string(), pcs.len().to_string()]);
        t.row(vec!["unique blocks".to_string(), blocks.len().to_string()]);
        t.row(vec![
            "footprint".to_string(),
            format!("{:.1} KB", blocks.len() as f64 * 64.0 / 1024.0),
        ]);
        t.row(vec![
            "raw ACF peak".to_string(),
            format!("{:.3}", raw.peak_abs),
        ]);
        t.row(vec![
            "grouped ACF peak".to_string(),
            format!("{:.3}", grouped.peak_abs),
        ]);
        println!("{}", t.render());
        return;
    }

    if let Some(path) = opts.str("replay") {
        let pf_name = opts.str("pf").unwrap_or("resemble").to_string();
        let warmup = opts.usize("warmup", 10_000);
        let f = File::open(path).expect("open trace file");
        let trace = read_trace(BufReader::new(f)).expect("parse trace");
        let n = trace.len().saturating_sub(warmup);
        let baseline = {
            let mut engine = Engine::new(SimConfig::harness());
            engine.run(&mut VecSource::new(trace.clone()), None, warmup, n)
        };
        let mut pf = factory::make(&pf_name, seed, true);
        let mut engine = Engine::new(SimConfig::harness());
        let stats = engine.run(&mut VecSource::new(trace), Some(&mut *pf), warmup, n);
        println!(
            "{pf_name}: accuracy {:.1}%  coverage {:.1}%  IPC {:.3} (baseline {:.3}, +{:.1}%)",
            stats.accuracy() * 100.0,
            stats.coverage() * 100.0,
            stats.ipc(),
            baseline.ipc(),
            stats.ipc_improvement_over(&baseline)
        );
        return;
    }

    eprintln!("usage: trace_tool --gen <app> [--accesses N --out FILE]");
    eprintln!("       trace_tool --analyze <FILE>");
    eprintln!("       trace_tool --replay <FILE> [--pf NAME --warmup N]");
    std::process::exit(2);
}
