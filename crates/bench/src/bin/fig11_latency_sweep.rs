//! Figure 11 — controller-latency sensitivity: ReSemble's accuracy,
//! coverage and IPC improvement with inference latency 0–40 cycles, under
//! a pipelined controller ("High TP", one inference per cycle) and an
//! unpipelined one ("Low TP", one inference per `latency` cycles).
//!
//! All (sweep point × app) simulations run as one job graph on the
//! deterministic executor (DESIGN.md §9): each point is a reduce group
//! whose per-app results average as soon as the group's last job commits,
//! so the printed tables are bit-identical at any `--jobs N`.

use resemble_bench::{report, runner, Options};
use resemble_runtime::Sweep;
use resemble_sim::{PrefetchTiming, SimConfig};
use resemble_stats::{mean, Table};
use serde::Serialize;

const APPS: &[&str] = &["433.milc", "471.omnetpp", "621.wrf", "623.xalancbmk"];

#[derive(Serialize)]
struct SweepPoint {
    latency: u64,
    high_tp: bool,
    accuracy: f64,
    coverage: f64,
    ipc_improvement: f64,
}

fn main() {
    let opts = Options::from_env_checked(&[]);
    let measure = opts.usize("accesses", 40_000);
    let warmup = opts.usize("warmup", 20_000);
    let seed = opts.u64("seed", 42);
    let jobs = opts.usize("jobs", 0);
    report::banner(
        "Figure 11",
        "ReSemble performance vs controller latency (high/low throughput)",
    );

    let mut specs: Vec<(u64, bool)> = Vec::new();
    for &high_tp in &[true, false] {
        for latency in [0u64, 10, 20, 30, 40] {
            specs.push((latency, high_tp));
        }
    }

    // One job per (sweep point, app); one reduce group per sweep point,
    // plus a final group for the paper's SBP(E) zero-latency reference.
    let mut sweep = Sweep::for_bin("fig11_latency_sweep", jobs).base_seed(seed);
    for &(latency, high_tp) in &specs {
        let group = format!("lat{latency}_{}", if high_tp { "high" } else { "low" });
        for &app in APPS {
            let mut sim = SimConfig::harness();
            sim.prefetch_timing = PrefetchTiming {
                latency,
                high_throughput: high_tp,
            };
            let params = runner::SweepParams {
                warmup,
                measure,
                seed,
                sim,
                ..Default::default()
            };
            sweep.push_in(group.clone(), format!("{group}/{app}"), move |_| {
                runner::run_one(app, "resemble", &params)
            });
        }
    }
    for &app in APPS {
        let params = runner::SweepParams {
            warmup,
            measure,
            seed,
            ..Default::default()
        };
        sweep.push_in("sbp_e_ref", format!("sbp_e_ref/{app}"), move |_| {
            runner::run_one(app, "sbp_e", &params)
        });
    }
    let mut groups = sweep.run_reduced(|_, results| {
        (
            mean(&results.iter().map(|r| r.accuracy_pct()).collect::<Vec<_>>()),
            mean(&results.iter().map(|r| r.coverage_pct()).collect::<Vec<_>>()),
            mean(
                &results
                    .iter()
                    .map(|r| r.ipc_improvement_pct())
                    .collect::<Vec<_>>(),
            ),
        )
    });
    let (_, _, sbp_ipc) = groups.pop().expect("sbp_e reference group");

    let mut points = Vec::new();
    let mut t = Table::new(vec![
        "latency",
        "TP",
        "accuracy",
        "coverage",
        "IPC improvement",
    ]);
    for (&(latency, high_tp), &(acc, cov, ipc)) in specs.iter().zip(&groups) {
        t.row(vec![
            format!("{latency} cyc"),
            if high_tp { "high" } else { "low" }.to_string(),
            report::pct(acc),
            report::pct(cov),
            report::pct(ipc),
        ]);
        points.push(SweepPoint {
            latency,
            high_tp,
            accuracy: acc,
            coverage: cov,
            ipc_improvement: ipc,
        });
    }
    println!("{}", t.render());

    println!("SBP(E) reference IPC improvement: {}", report::pct(sbp_ipc));

    let hi: Vec<&SweepPoint> = points.iter().filter(|p| p.high_tp).collect();
    let lo: Vec<&SweepPoint> = points.iter().filter(|p| !p.high_tp).collect();
    println!("shape checks:");
    println!(
        "  high-TP degrades gently with latency:        {}",
        hi.last().unwrap().ipc_improvement >= 0.6 * hi[0].ipc_improvement
    );
    println!(
        "  low-TP falls below high-TP at high latency:  {}",
        lo.last().unwrap().ipc_improvement < hi.last().unwrap().ipc_improvement
    );
    println!(
        "  high-TP at 20 cyc still competitive with SBP: {}",
        hi[2].ipc_improvement >= sbp_ipc * 0.8
    );
    resemble_bench::runner::maybe_write_json(opts.str("json"), &points);
}
