//! Figure 11 — controller-latency sensitivity: ReSemble's accuracy,
//! coverage and IPC improvement with inference latency 0–40 cycles, under
//! a pipelined controller ("High TP", one inference per cycle) and an
//! unpipelined one ("Low TP", one inference per `latency` cycles).

use resemble_bench::{report, runner, Options};
use resemble_sim::{PrefetchTiming, SimConfig};
use resemble_stats::{mean, Table};
use serde::Serialize;

const APPS: &[&str] = &["433.milc", "471.omnetpp", "621.wrf", "623.xalancbmk"];

#[derive(Serialize)]
struct SweepPoint {
    latency: u64,
    high_tp: bool,
    accuracy: f64,
    coverage: f64,
    ipc_improvement: f64,
}

fn main() {
    let opts = Options::from_env_checked(&[]);
    let measure = opts.usize("accesses", 40_000);
    let warmup = opts.usize("warmup", 20_000);
    let seed = opts.u64("seed", 42);
    report::banner(
        "Figure 11",
        "ReSemble performance vs controller latency (high/low throughput)",
    );

    let apps: Vec<String> = APPS.iter().map(|s| s.to_string()).collect();
    let mut points = Vec::new();
    let mut t = Table::new(vec![
        "latency",
        "TP",
        "accuracy",
        "coverage",
        "IPC improvement",
    ]);
    for &high_tp in &[true, false] {
        for latency in [0u64, 10, 20, 30, 40] {
            let mut sim = SimConfig::harness();
            sim.prefetch_timing = PrefetchTiming {
                latency,
                high_throughput: high_tp,
            };
            let params = runner::SweepParams {
                warmup,
                measure,
                seed,
                sim,
                ..Default::default()
            };
            let results = runner::run_matrix(&apps, &["resemble"], &params);
            let acc = mean(&results.iter().map(|r| r.accuracy_pct()).collect::<Vec<_>>());
            let cov = mean(&results.iter().map(|r| r.coverage_pct()).collect::<Vec<_>>());
            let ipc = mean(
                &results
                    .iter()
                    .map(|r| r.ipc_improvement_pct())
                    .collect::<Vec<_>>(),
            );
            t.row(vec![
                format!("{latency} cyc"),
                if high_tp { "high" } else { "low" }.to_string(),
                report::pct(acc),
                report::pct(cov),
                report::pct(ipc),
            ]);
            points.push(SweepPoint {
                latency,
                high_tp,
                accuracy: acc,
                coverage: cov,
                ipc_improvement: ipc,
            });
        }
    }
    println!("{}", t.render());

    // SBP(E) reference at zero latency (the paper's comparison line).
    let params = runner::SweepParams {
        warmup,
        measure,
        seed,
        ..Default::default()
    };
    let sbp = runner::run_matrix(&apps, &["sbp_e"], &params);
    let sbp_ipc = mean(
        &sbp.iter()
            .map(|r| r.ipc_improvement_pct())
            .collect::<Vec<_>>(),
    );
    println!("SBP(E) reference IPC improvement: {}", report::pct(sbp_ipc));

    let hi: Vec<&SweepPoint> = points.iter().filter(|p| p.high_tp).collect();
    let lo: Vec<&SweepPoint> = points.iter().filter(|p| !p.high_tp).collect();
    println!("shape checks:");
    println!(
        "  high-TP degrades gently with latency:        {}",
        hi.last().unwrap().ipc_improvement >= 0.6 * hi[0].ipc_improvement
    );
    println!(
        "  low-TP falls below high-TP at high latency:  {}",
        lo.last().unwrap().ipc_improvement < hi.last().unwrap().ipc_improvement
    );
    println!(
        "  high-TP at 20 cyc still competitive with SBP: {}",
        hi[2].ipc_improvement >= sbp_ipc * 0.8
    );
    resemble_bench::runner::maybe_write_json(opts.str("json"), &points);
}
