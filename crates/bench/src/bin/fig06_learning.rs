//! Figure 6 — case study of the online learning process: per-1K-window
//! reward curves over the first 400K accesses (scaled to the harness trace
//! length) for the MLP-based controller and the tabular variants, on the
//! four case-study applications.
//!
//! Every (app, model) simulation is one job on the deterministic executor
//! (DESIGN.md §9), so the curves print bit-identically at any `--jobs N`.

use resemble_bench::{report, Options};
use resemble_core::{ResembleConfig, ResembleMlp, ResembleTabular};
use resemble_prefetch::{paper_bank, Prefetcher};
use resemble_runtime::Sweep;
use resemble_sim::{Engine, SimConfig};
use resemble_stats::{render_series, smooth};
use serde::Serialize;

const APPS: &[&str] = &["433.lbm", "471.omnetpp", "621.wrf", "623.xalancbmk"];
const MODELS: &[&str] = &["mlp", "table8", "table4"];

#[derive(Serialize)]
struct Curve {
    app: String,
    model: String,
    window_rewards: Vec<f64>,
}

/// One (app, model) run: the per-1K-window reward curve.
fn run_model(app: &str, model: &str, accesses: usize, seed: u64) -> Vec<f64> {
    let mut engine = Engine::new(SimConfig::harness());
    let mut src = resemble_trace::gen::app_by_name(app, seed)
        .expect("known app")
        .source;
    match model {
        "mlp" => {
            let mut ctl = ResembleMlp::new(paper_bank(), ResembleConfig::fast(), seed);
            engine.run(
                &mut *src,
                Some(&mut ctl as &mut dyn Prefetcher),
                0,
                accesses,
            );
            ctl.stats.window_rewards.clone()
        }
        _ => {
            let bits = if model == "table8" { 8 } else { 4 };
            let mut ctl = ResembleTabular::new(paper_bank(), ResembleConfig::fast(), bits, seed);
            engine.run(
                &mut *src,
                Some(&mut ctl as &mut dyn Prefetcher),
                0,
                accesses,
            );
            ctl.stats.window_rewards.clone()
        }
    }
}

fn main() {
    let opts = Options::from_env_checked(&[]);
    let accesses = opts.usize("accesses", 60_000);
    let seed = opts.u64("seed", 42);
    let jobs = opts.usize("jobs", 0);
    report::banner(
        "Figure 6",
        "Learning curves: per-1K-window rewards (smoothed by 10)",
    );

    let mut sweep = Sweep::for_bin("fig06_learning", jobs).base_seed(seed);
    for &app in APPS {
        for &model in MODELS {
            sweep.push(format!("{app}/{model}"), move |_| {
                run_model(app, model, accesses, seed)
            });
        }
    }
    let mut results = sweep.run().into_iter();

    let mut curves: Vec<Curve> = Vec::new();
    for &app in APPS {
        println!("=== {app} ===");
        for &model in MODELS {
            let rewards = results.next().expect("one curve per job");
            let smoothed = smooth(&rewards, 10);
            println!("{}", render_series(&format!("{model:7}"), &smoothed, 25));
            let late = &rewards[rewards.len().saturating_sub(10)..];
            let late_mean = late.iter().sum::<f64>() / late.len().max(1) as f64;
            println!("         late mean reward/window: {late_mean:.1}");
            curves.push(Curve {
                app: app.to_string(),
                model: model.to_string(),
                window_rewards: rewards,
            });
        }
        println!();
    }
    println!("paper shape: the MLP curve dominates the tabular curves on the irregular");
    println!("apps (471.omnetpp, 623.xalancbmk) and is the most stable on 433.lbm;");
    println!("8-bit tabular beats 4-bit where they differ.");
    resemble_bench::runner::maybe_write_json(opts.str("json"), &curves);
}
