//! Extension (paper §VIII future work): hardware-implementation study.
//! Trains the MLP controller online, then quantizes both networks to
//! n-bit fixed point and freezes them, measuring how inference-only
//! deployment at each precision affects rewards and IPC. Table VIII
//! assumes 16-bit weights; this sweep shows how much lower the datapath
//! could go.

use resemble_bench::{report, Options};
use resemble_core::{ResembleConfig, ResembleMlp};
use resemble_prefetch::{paper_bank, Prefetcher};
use resemble_sim::{Engine, SimConfig};
use resemble_stats::{mean, Table};
use resemble_trace::gen::app_by_name;

const APPS: &[&str] = &["433.milc", "623.xalancbmk"];

/// Train for `train` accesses, quantize+freeze at `bits`, then measure.
/// `bits == 0` means "leave full precision and keep training" (reference).
fn run(bits: u32, train: usize, measure: usize, seed: u64) -> (f64, f64) {
    let mut ipcs = Vec::new();
    let mut rewards = Vec::new();
    for &app in APPS {
        let mut engine = Engine::new(SimConfig::harness());
        let mut src = app_by_name(app, seed).expect("known app").source;
        let base = engine.run(&mut *src, None, train, measure);

        let mut ctl = ResembleMlp::new(paper_bank(), ResembleConfig::fast(), seed);
        let mut engine = Engine::new(SimConfig::harness());
        let mut src = app_by_name(app, seed).expect("known app").source;
        // Training phase (warmup window).
        {
            let pf: &mut dyn Prefetcher = &mut ctl;
            let _ = engine.run(&mut *src, Some(pf), 0, train);
        }
        if bits > 0 {
            ctl.quantize_and_freeze(bits);
        }
        let windows_before = ctl.stats.window_rewards.len();
        // Measurement phase: engine.run re-marks the boundary itself.
        let s = {
            let pf: &mut dyn Prefetcher = &mut ctl;
            engine.run(&mut *src, Some(pf), 0, measure)
        };
        ipcs.push(s.ipc_improvement_over(&base));
        let late = &ctl.stats.window_rewards[windows_before..];
        rewards.push(late.iter().sum::<f64>() / late.len().max(1) as f64);
    }
    (mean(&ipcs), mean(&rewards))
}

fn main() {
    let opts = Options::from_env_checked(&[]);
    let train = opts.usize("warmup", 20_000);
    let measure = opts.usize("accesses", 40_000);
    let seed = opts.u64("seed", 42);
    report::banner(
        "Extension: controller quantization",
        "Train online at f32, deploy frozen at n-bit fixed point",
    );

    let mut t = Table::new(vec!["precision", "mean window reward", "IPC improvement"]);
    let (ipc_ref, rew_ref) = run(0, train, measure, seed);
    t.row(vec![
        "f32 + online training (reference)".to_string(),
        format!("{rew_ref:.1}"),
        report::pct(ipc_ref),
    ]);
    let mut results = Vec::new();
    for bits in [16u32, 12, 8, 6, 4] {
        let (ipc, rew) = run(bits, train, measure, seed);
        results.push((bits, ipc));
        t.row(vec![
            format!("{bits}-bit frozen"),
            format!("{rew:.1}"),
            report::pct(ipc),
        ]);
    }
    println!("{}", t.render());
    let ipc16 = results.iter().find(|(b, _)| *b == 16).unwrap().1;
    let ipc4 = results.iter().find(|(b, _)| *b == 4).unwrap().1;
    println!("shape checks:");
    println!(
        "  16-bit frozen ≈ full-precision reference (Table VIII's assumption): {}",
        (ipc16 - ipc_ref).abs() < 0.25 * ipc_ref.abs().max(1.0)
    );
    println!(
        "  precision floor visible by 4 bits: {}",
        ipc4 <= ipc16 + 1e-9
    );
}
