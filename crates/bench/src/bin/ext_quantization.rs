//! Extension (paper §VIII future work): hardware-implementation study.
//! Trains the MLP controller online, then quantizes both networks to
//! n-bit fixed point and freezes them, measuring how inference-only
//! deployment at each precision affects rewards and IPC. Table VIII
//! assumes 16-bit weights; this sweep shows how much lower the datapath
//! could go.
//!
//! Every (precision, app) simulation is one job on the deterministic
//! executor (DESIGN.md §9); each precision is a reduce group averaging
//! its probe apps, so the table prints bit-identically at any `--jobs N`.

use resemble_bench::{report, Options};
use resemble_core::{ResembleConfig, ResembleMlp};
use resemble_prefetch::{paper_bank, Prefetcher};
use resemble_runtime::Sweep;
use resemble_sim::{Engine, SimConfig};
use resemble_stats::{mean, Table};
use resemble_trace::gen::app_by_name;

const APPS: &[&str] = &["433.milc", "623.xalancbmk"];

/// One probe app: train for `train` accesses, quantize+freeze at `bits`,
/// then measure. `bits == 0` means "leave full precision and keep
/// training" (reference). Returns (IPC improvement, late mean reward).
fn run_one(bits: u32, app: &str, train: usize, measure: usize, seed: u64) -> (f64, f64) {
    let mut engine = Engine::new(SimConfig::harness());
    let mut src = app_by_name(app, seed).expect("known app").source;
    let base = engine.run(&mut *src, None, train, measure);

    let mut ctl = ResembleMlp::new(paper_bank(), ResembleConfig::fast(), seed);
    let mut engine = Engine::new(SimConfig::harness());
    let mut src = app_by_name(app, seed).expect("known app").source;
    // Training phase (warmup window).
    {
        let pf: &mut dyn Prefetcher = &mut ctl;
        let _ = engine.run(&mut *src, Some(pf), 0, train);
    }
    if bits > 0 {
        ctl.quantize_and_freeze(bits);
    }
    let windows_before = ctl.stats.window_rewards.len();
    // Measurement phase: engine.run re-marks the boundary itself.
    let s = {
        let pf: &mut dyn Prefetcher = &mut ctl;
        engine.run(&mut *src, Some(pf), 0, measure)
    };
    let late = &ctl.stats.window_rewards[windows_before..];
    let reward = late.iter().sum::<f64>() / late.len().max(1) as f64;
    (s.ipc_improvement_over(&base), reward)
}

const PRECISIONS: &[u32] = &[0, 16, 12, 8, 6, 4];

fn main() {
    let opts = Options::from_env_checked(&[]);
    let train = opts.usize("warmup", 20_000);
    let measure = opts.usize("accesses", 40_000);
    let seed = opts.u64("seed", 42);
    let jobs = opts.usize("jobs", 0);
    report::banner(
        "Extension: controller quantization",
        "Train online at f32, deploy frozen at n-bit fixed point",
    );

    // One reduce group per precision, averaging its probe apps.
    let mut sweep = Sweep::for_bin("ext_quantization", jobs).base_seed(seed);
    for &bits in PRECISIONS {
        for &app in APPS {
            sweep.push_in(format!("{bits}"), format!("{bits}bit/{app}"), move |_| {
                run_one(bits, app, train, measure, seed)
            });
        }
    }
    let reduced = sweep.run_reduced(|_, parts| {
        let (ipcs, rewards): (Vec<f64>, Vec<f64>) = parts.into_iter().unzip();
        (mean(&ipcs), mean(&rewards))
    });
    let mut reduced = reduced.into_iter();

    let mut t = Table::new(vec!["precision", "mean window reward", "IPC improvement"]);
    let (ipc_ref, rew_ref) = reduced.next().expect("reference row");
    t.row(vec![
        "f32 + online training (reference)".to_string(),
        format!("{rew_ref:.1}"),
        report::pct(ipc_ref),
    ]);
    let mut results = Vec::new();
    for &bits in &PRECISIONS[1..] {
        let (ipc, rew) = reduced.next().expect("one row per precision");
        results.push((bits, ipc));
        t.row(vec![
            format!("{bits}-bit frozen"),
            format!("{rew:.1}"),
            report::pct(ipc),
        ]);
    }
    println!("{}", t.render());
    let ipc16 = results.iter().find(|(b, _)| *b == 16).unwrap().1;
    let ipc4 = results.iter().find(|(b, _)| *b == 4).unwrap().1;
    println!("shape checks:");
    println!(
        "  16-bit frozen ≈ full-precision reference (Table VIII's assumption): {}",
        (ipc16 - ipc_ref).abs() < 0.25 * ipc_ref.abs().max(1.0)
    );
    println!(
        "  precision floor visible by 4 bits: {}",
        ipc4 <= ipc16 + 1e-9
    );
}
