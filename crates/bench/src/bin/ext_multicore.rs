//! Extension (paper §VIII future work): ensemble prefetching on a
//! multi-core architecture. Four cores with private L1/L2 and per-core
//! ReSemble controllers share the LLC and DRAM; we compare no-prefetch,
//! per-core SPP, and per-core ReSemble, on a heterogeneous app mix (one
//! pattern class per core) — the setting where ensemble selection should
//! matter most, since each core needs a *different* prefetcher.
//!
//! Each prefetcher configuration (none / SPP / ReSemble) is one job on the
//! deterministic executor (DESIGN.md §9), so the three 4-core simulations
//! run concurrently and the table prints bit-identically at any `--jobs N`.

use resemble_bench::{report, Options};
use resemble_core::{ResembleConfig, ResembleMlp};
use resemble_prefetch::{paper_bank, Prefetcher, Spp};
use resemble_runtime::Sweep;
use resemble_sim::{MultiCoreEngine, SimConfig};
use resemble_stats::{mean, Table};
use resemble_trace::gen::{app_by_name, TraceSource};

const CORE_APPS: &[&str] = &["433.milc", "471.omnetpp", "621.wrf", "623.xalancbmk"];

fn sources(seed: u64) -> Vec<Box<dyn TraceSource + Send>> {
    CORE_APPS
        .iter()
        .map(|app| app_by_name(app, seed).expect("known app").source)
        .collect()
}

fn run_variant(
    variant: &str,
    seed: u64,
    warmup: usize,
    measure: usize,
) -> Vec<resemble_sim::SimStats> {
    let n = CORE_APPS.len();
    let mut prefetchers: Vec<Option<Box<dyn Prefetcher + Send>>> = match variant {
        "none" => (0..n).map(|_| None).collect(),
        "spp" => (0..n)
            .map(|_| Some(Box::new(Spp::new()) as Box<dyn Prefetcher + Send>))
            .collect(),
        _ => (0..n)
            .map(|i| {
                Some(Box::new(ResembleMlp::new(
                    paper_bank(),
                    ResembleConfig::fast(),
                    seed + i as u64,
                )) as Box<dyn Prefetcher + Send>)
            })
            .collect(),
    };
    let mut mc = MultiCoreEngine::new(SimConfig::harness(), n);
    let mut srcs = sources(seed);
    mc.run(&mut srcs, &mut prefetchers, warmup, measure)
}

fn main() {
    let opts = Options::from_env_checked(&[]);
    let warmup = opts.usize("warmup", 15_000);
    let measure = opts.usize("accesses", 40_000);
    let seed = opts.u64("seed", 42);
    let jobs = opts.usize("jobs", 0);
    report::banner(
        "Extension: multi-core",
        "4 cores (one app each) sharing LLC+DRAM; per-core controllers",
    );

    let mut sweep = Sweep::for_bin("ext_multicore", jobs).base_seed(seed);
    for variant in ["none", "spp", "resemble"] {
        sweep.push(variant, move |_| {
            run_variant(variant, seed, warmup, measure)
        });
    }
    let mut results = sweep.run().into_iter();
    let base = results.next().expect("none variant");
    let spp_stats = results.next().expect("spp variant");
    let res_stats = results.next().expect("resemble variant");

    let mut t = Table::new(vec![
        "core / app",
        "baseline IPC",
        "SPP IPC improve",
        "ReSemble IPC improve",
    ]);
    let mut spp_impr = Vec::new();
    let mut res_impr = Vec::new();
    for (c, app) in CORE_APPS.iter().enumerate() {
        let si = spp_stats[c].ipc_improvement_over(&base[c]);
        let ri = res_stats[c].ipc_improvement_over(&base[c]);
        spp_impr.push(si);
        res_impr.push(ri);
        t.row(vec![
            format!("{c} / {app}"),
            format!("{:.3}", base[c].ipc()),
            report::pct(si),
            report::pct(ri),
        ]);
    }
    t.row(vec![
        "MEAN".to_string(),
        format!(
            "{:.3}",
            mean(&base.iter().map(|s| s.ipc()).collect::<Vec<_>>())
        ),
        report::pct(mean(&spp_impr)),
        report::pct(mean(&res_impr)),
    ]);
    println!("{}", t.render());
    println!("shape checks:");
    println!(
        "  per-core ReSemble beats uniform SPP on mean IPC improvement: {}",
        mean(&res_impr) > mean(&spp_impr)
    );
    println!(
        "  ReSemble helps the temporal cores where SPP cannot (cores 1,3): {}",
        res_impr[1] > spp_impr[1] && res_impr[3] > spp_impr[3]
    );
}
