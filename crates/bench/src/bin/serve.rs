//! `resemble-serve` front-end: a long-running prefetch-decision service
//! over the full bench prefetcher registry.
//!
//! ```text
//! serve --addr 127.0.0.1:7071 --shards 4 --max-batch 64 --queue-cap 256 \
//!       --io-threads 2 --pool-rows 4096 --checkpoint-dir ckpts/ \
//!       --snapshot telemetry.jsonl --snapshot-secs 5
//! ```
//!
//! `--checkpoint-dir` enables warm restarts: every MLP session saves its
//! learned state on Bye, and a later Hello with the same
//! `(model, seed, fast)` resumes from the saved file. Cross-session
//! batching of frozen same-key sessions is on by default; disable with
//! `--no-cross-session`. `--quantize-frozen` opts pooled frozen windows
//! into the int8 quantized datapath: deterministic (bit-identical across
//! backends and reruns) but not bit-identical to f32 decisions.
//!
//! The model names a client's Hello can request are the serve registry
//! ("resemble", "resemble_frozen", ...) plus everything `factory::make`
//! knows (isb, domino, voyager, resemble_t, ...). SIGINT/SIGTERM trigger
//! the graceful drain: stop accepting, flush every session queue (each
//! in-flight request gets a Decision or TimedOut reply), then exit with a
//! final telemetry snapshot on stdout.

use resemble_bench::cli::Options;
use resemble_bench::factory;
use resemble_serve::{signal, ModelBuilder, ServeConfig, Server, SessionModel};
use std::sync::Arc;
use std::time::Duration;

/// A builder over the union of the serve registry (which routes the MLP
/// controller through the batched decision-window path) and the bench
/// factory (everything else, served sequentially).
fn full_builder() -> ModelBuilder {
    Arc::new(|model: &str, seed: u64, fast: bool| {
        SessionModel::build(model, seed, fast).or_else(|err| {
            factory::try_make(model, seed, fast)
                .map(SessionModel::Boxed)
                .ok_or(err)
        })
    })
}

fn main() {
    let opts = Options::from_env_checked(&[
        "addr",
        "shards",
        "max-batch",
        "queue-cap",
        "snapshot",
        "snapshot-secs",
        "io-threads",
        "no-cross-session",
        "pool-rows",
        "checkpoint-dir",
        "quantize-frozen",
    ]);
    let cfg = ServeConfig {
        addr: opts.str("addr").unwrap_or("127.0.0.1:7071").to_string(),
        shards: opts.usize("shards", 2),
        max_batch: opts.usize("max-batch", 64),
        queue_cap: opts.usize("queue-cap", 256),
        snapshot_path: opts.str("snapshot").map(Into::into),
        snapshot_every: Duration::from_secs(opts.u64("snapshot-secs", 5)),
        io_threads: opts.usize("io-threads", 2),
        cross_session: !opts.flag("no-cross-session"),
        pool_rows: opts.usize("pool-rows", 4096),
        checkpoint_dir: opts.str("checkpoint-dir").map(Into::into),
        quantize_frozen: opts.flag("quantize-frozen"),
    };
    signal::install();
    let server = match Server::start(cfg, full_builder()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: could not start server: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "resemble-serve listening on {} (kernel backend: {})",
        server.local_addr(),
        resemble_nn::simd::dispatched()
    );
    while !signal::triggered() && !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("draining...");
    let snap = server.shutdown();
    match serde_json::to_string_pretty(&snap) {
        Ok(s) => println!("{s}"),
        Err(e) => eprintln!("warning: final snapshot serialization failed: {e}"),
    }
}
