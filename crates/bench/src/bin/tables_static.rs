//! Tables II, III, V, VII, VIII — the configuration and analytic-overhead
//! tables. These are exact (no simulation): prefetcher budgets, framework
//! hyper-parameters, simulator parameters, the Eq. 14 latency estimate,
//! and the storage estimate.
//!
//! One binary covers all five (they share no workload); the per-table
//! binaries `table02_budgets` … `table08_storage` named in DESIGN.md are
//! provided as thin aliases via the `--only` flag. Each table renders as
//! one job on the deterministic executor (DESIGN.md §9) and is printed in
//! commit order, so stdout is bit-identical at any `--jobs N`.

use resemble_bench::{report, Options};
use resemble_core::overhead::{LatencyEstimate, StorageEstimate};
use resemble_core::ResembleConfig;
use resemble_prefetch::paper_bank;
use resemble_runtime::Sweep;
use resemble_sim::SimConfig;
use resemble_stats::Table;
use std::fmt::Write;

fn table02() -> String {
    let mut out = String::from("--- Table II: input prefetcher budgets ---\n");
    let bank = paper_bank();
    let mut t = Table::new(vec![
        "Prefetcher",
        "Budget (paper)",
        "budget_bytes() (measured)",
    ]);
    let paper = ["4KB", "5.3KB", "8KB", "2.4KB"];
    for (i, name) in bank.names().iter().enumerate() {
        t.row(vec![
            name.to_string(),
            paper[i].to_string(),
            format!("{:.1}KB", bank.member(i).budget_bytes() as f64 / 1024.0),
        ]);
    }
    t.row(vec![
        "total".to_string(),
        "19.7KB".to_string(),
        format!("{:.1}KB", bank.budget_bytes() as f64 / 1024.0),
    ]);
    writeln!(out, "{}", t.render()).unwrap();
    out
}

fn table03() -> String {
    let mut out = String::from("--- Table III: ReSemble framework configuration ---\n");
    let cfg = ResembleConfig::default();
    let mut t = Table::new(vec!["Configuration", "Value"]);
    for (k, v) in cfg.table_iii_rows() {
        t.row(vec![k, v]);
    }
    writeln!(out, "{}", t.render()).unwrap();
    writeln!(
        out,
        "(α = 0.05 from our grid search; the paper grid-searches but does not report α)\n"
    )
    .unwrap();
    out
}

fn table05() -> String {
    let mut out =
        String::from("--- Table V: simulation parameters (paper-scale and harness-scale) ---\n");
    for (label, cfg) in [
        ("Table V (paper)", SimConfig::default()),
        ("harness (8x scaled)", SimConfig::harness()),
    ] {
        writeln!(out, "[{label}]").unwrap();
        let mut t = Table::new(vec!["Parameter", "Value"]);
        for (k, v) in cfg.table_v_rows() {
            t.row(vec![k, v]);
        }
        writeln!(out, "{}", t.render()).unwrap();
    }
    out
}

fn table07() -> String {
    let mut out = String::from("--- Table VII: inference latency estimate (Eq. 14) ---\n");
    let est = LatencyEstimate::for_config(&ResembleConfig::default());
    let mut t = Table::new(vec!["Phase", "Cycles (Eq. 14)", "Cycles (paper)"]);
    t.row(vec![
        "T_h (hash)".to_string(),
        est.t_hash.to_string(),
        "2".into(),
    ]);
    t.row(vec![
        "T_n (norm)".to_string(),
        est.t_norm.to_string(),
        "1".into(),
    ]);
    t.row(vec![
        "T_mm hidden".to_string(),
        est.t_mm_hidden.to_string(),
        "5".into(),
    ]);
    t.row(vec![
        "T_mm output".to_string(),
        est.t_mm_out.to_string(),
        "9".into(),
    ]);
    t.row(vec![
        "T_av x2".to_string(),
        est.t_act.to_string(),
        "2".into(),
    ]);
    t.row(vec![
        "T_qv (argmax)".to_string(),
        est.t_qv.to_string(),
        "3".into(),
    ]);
    t.row(vec![
        "Total".to_string(),
        est.total().to_string(),
        "22".into(),
    ]);
    writeln!(out, "{}", t.render()).unwrap();
    writeln!(
        out,
        "(the paper's per-phase matrix-multiply cycles include fixed-point multiplier"
    )
    .unwrap();
    writeln!(
        out,
        " stages beyond the printed ⌈1+log2·⌉ adder-tree formula; see EXPERIMENTS.md)\n"
    )
    .unwrap();
    out
}

fn table08() -> String {
    let mut out = String::from("--- Table VIII: storage overhead ---\n");
    let est = StorageEstimate::for_config(&ResembleConfig::default());
    let mut t = Table::new(vec!["Structure", "Size (measured)", "Size (paper)"]);
    t.row(vec![
        "MLP (2 nets, 16-bit)".to_string(),
        format!("{:.2}KB", est.mlp_bytes as f64 / 1024.0),
        "4.2KB".into(),
    ]);
    t.row(vec![
        "Replay memory (off chip)".to_string(),
        format!("{:.2}KB", est.replay_bytes as f64 / 1024.0),
        "34.8KB".into(),
    ]);
    t.row(vec![
        "Total".to_string(),
        format!("{:.2}KB", est.total() as f64 / 1024.0),
        "39.0KB".into(),
    ]);
    writeln!(out, "{}", t.render()).unwrap();
    out
}

/// A table renderer: returns the fully formatted table text.
type TableFn = fn() -> String;

fn main() {
    let opts = Options::from_env_checked(&["only"]);
    report::banner(
        "Tables II / III / V / VII / VIII",
        "Configuration and analytic-overhead tables",
    );
    let only = opts.str("only").map(str::to_string);
    let run = |name: &str| only.is_none() || only.as_deref() == Some(name);
    let tables: &[(&str, TableFn)] = &[
        ("table02", table02),
        ("table03", table03),
        ("table05", table05),
        ("table07", table07),
        ("table08", table08),
    ];
    let mut sweep = Sweep::for_bin("tables_static", opts.usize("jobs", 0));
    for &(name, render) in tables {
        if run(name) {
            sweep.push(name, move |_| render());
        }
    }
    for rendered in sweep.run() {
        print!("{rendered}");
    }
}
