//! Tables II, III, V, VII, VIII — the configuration and analytic-overhead
//! tables. These are exact (no simulation): prefetcher budgets, framework
//! hyper-parameters, simulator parameters, the Eq. 14 latency estimate,
//! and the storage estimate.
//!
//! One binary covers all five (they share no workload); the per-table
//! binaries `table02_budgets` … `table08_storage` named in DESIGN.md are
//! provided as thin aliases via the `--only` flag.

use resemble_bench::{report, Options};
use resemble_core::overhead::{LatencyEstimate, StorageEstimate};
use resemble_core::ResembleConfig;
use resemble_prefetch::paper_bank;
use resemble_sim::SimConfig;
use resemble_stats::Table;

fn table02() {
    println!("--- Table II: input prefetcher budgets ---");
    let bank = paper_bank();
    let mut t = Table::new(vec![
        "Prefetcher",
        "Budget (paper)",
        "budget_bytes() (measured)",
    ]);
    let paper = ["4KB", "5.3KB", "8KB", "2.4KB"];
    for (i, name) in bank.names().iter().enumerate() {
        t.row(vec![
            name.to_string(),
            paper[i].to_string(),
            format!("{:.1}KB", bank.member(i).budget_bytes() as f64 / 1024.0),
        ]);
    }
    t.row(vec![
        "total".to_string(),
        "19.7KB".to_string(),
        format!("{:.1}KB", bank.budget_bytes() as f64 / 1024.0),
    ]);
    println!("{}", t.render());
}

fn table03() {
    println!("--- Table III: ReSemble framework configuration ---");
    let cfg = ResembleConfig::default();
    let mut t = Table::new(vec!["Configuration", "Value"]);
    for (k, v) in cfg.table_iii_rows() {
        t.row(vec![k, v]);
    }
    println!("{}", t.render());
    println!("(α = 0.05 from our grid search; the paper grid-searches but does not report α)\n");
}

fn table05() {
    println!("--- Table V: simulation parameters (paper-scale and harness-scale) ---");
    for (label, cfg) in [
        ("Table V (paper)", SimConfig::default()),
        ("harness (8x scaled)", SimConfig::harness()),
    ] {
        println!("[{label}]");
        let mut t = Table::new(vec!["Parameter", "Value"]);
        for (k, v) in cfg.table_v_rows() {
            t.row(vec![k, v]);
        }
        println!("{}", t.render());
    }
}

fn table07() {
    println!("--- Table VII: inference latency estimate (Eq. 14) ---");
    let est = LatencyEstimate::for_config(&ResembleConfig::default());
    let mut t = Table::new(vec!["Phase", "Cycles (Eq. 14)", "Cycles (paper)"]);
    t.row(vec![
        "T_h (hash)".to_string(),
        est.t_hash.to_string(),
        "2".into(),
    ]);
    t.row(vec![
        "T_n (norm)".to_string(),
        est.t_norm.to_string(),
        "1".into(),
    ]);
    t.row(vec![
        "T_mm hidden".to_string(),
        est.t_mm_hidden.to_string(),
        "5".into(),
    ]);
    t.row(vec![
        "T_mm output".to_string(),
        est.t_mm_out.to_string(),
        "9".into(),
    ]);
    t.row(vec![
        "T_av x2".to_string(),
        est.t_act.to_string(),
        "2".into(),
    ]);
    t.row(vec![
        "T_qv (argmax)".to_string(),
        est.t_qv.to_string(),
        "3".into(),
    ]);
    t.row(vec![
        "Total".to_string(),
        est.total().to_string(),
        "22".into(),
    ]);
    println!("{}", t.render());
    println!("(the paper's per-phase matrix-multiply cycles include fixed-point multiplier");
    println!(" stages beyond the printed ⌈1+log2·⌉ adder-tree formula; see EXPERIMENTS.md)\n");
}

fn table08() {
    println!("--- Table VIII: storage overhead ---");
    let est = StorageEstimate::for_config(&ResembleConfig::default());
    let mut t = Table::new(vec!["Structure", "Size (measured)", "Size (paper)"]);
    t.row(vec![
        "MLP (2 nets, 16-bit)".to_string(),
        format!("{:.2}KB", est.mlp_bytes as f64 / 1024.0),
        "4.2KB".into(),
    ]);
    t.row(vec![
        "Replay memory (off chip)".to_string(),
        format!("{:.2}KB", est.replay_bytes as f64 / 1024.0),
        "34.8KB".into(),
    ]);
    t.row(vec![
        "Total".to_string(),
        format!("{:.2}KB", est.total() as f64 / 1024.0),
        "39.0KB".into(),
    ]);
    println!("{}", t.render());
}

fn main() {
    let opts = Options::from_env_checked(&["only"]);
    report::banner(
        "Tables II / III / V / VII / VIII",
        "Configuration and analytic-overhead tables",
    );
    let only = opts.str("only");
    let run = |name: &str| only.is_none() || only == Some(name);
    if run("table02") {
        table02();
    }
    if run("table03") {
        table03();
    }
    if run("table05") {
        table05();
    }
    if run("table07") {
        table07();
    }
    if run("table08") {
        table08();
    }
}
