//! perf_gate — simulator-throughput regression gate.
//!
//! Runs the Figs 8–10 workload matrix (every app × the main prefetcher
//! lineup, plus a no-prefetcher engine-core job per app) on **both** the
//! optimized [`Engine`] and the seed [`ReferenceEngine`], on identical
//! pre-materialized traces. For every job it records wall time and
//! accesses/sec for each engine, verifies the two produce bit-identical
//! `SimStats`, and writes the whole report to `BENCH_sim.json`.
//!
//! Modes:
//! * default — measure, print the table, write `--json` (default
//!   `BENCH_sim.json`).
//! * `--write-baseline` — additionally write the committed baseline file
//!   (`crates/bench/perf_baseline.json`) from this run's speedups.
//! * `--check` — compare against the committed baseline and exit non-zero
//!   if the engine-core speedup regressed more than 10% below it, or fell
//!   under `--min-speedup` (default 1.5), or any job's stats diverged.
//!
//! The gate compares *speedup over the in-process reference engine*, not
//! absolute accesses/sec, so the committed baseline is portable across
//! machines: both engines see the same hardware and the ratio isolates
//! the code, not the host.
//!
//! The **gated** metric is the geo-mean speedup of the no-prefetcher
//! ("none") jobs — single-core accesses/sec of the simulator itself vs
//! the seed engine. Jobs with RL ensemble controllers spend most of
//! their wall time in prefetcher code that is byte-identical in both
//! engines, so their ratios hover near 1x regardless of how fast the
//! simulator is; they are reported (and stats-checked) but not gated.
//!
//! Usage: `cargo run --release -p resemble-bench --bin perf_gate --
//! [--check] [--write-baseline] [--accesses N] [--warmup N] [--reps N]
//! [--apps a,b] [--json PATH] [--baseline PATH] [--min-speedup X]`

use resemble_bench::{factory, report, Options};
use resemble_sim::{Engine, ReferenceEngine, SimConfig, SimStats};
use resemble_stats::{geo_mean, Table};
use resemble_trace::gen::spec_like::APP_NAMES;
use resemble_trace::gen::VecSource;
use resemble_trace::{MemAccess, TraceSource};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Timing of one (app, prefetcher) job on both engines.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct JobReport {
    app: String,
    pf: String,
    accesses: usize,
    engine_secs: f64,
    reference_secs: f64,
    engine_aps: f64,
    reference_aps: f64,
    speedup: f64,
    stats_match: bool,
}

/// The full machine-readable report (`BENCH_sim.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct GateReport {
    warmup: usize,
    measure: usize,
    seed: u64,
    reps: usize,
    jobs: Vec<JobReport>,
    total_accesses: usize,
    engine_secs: f64,
    reference_secs: f64,
    /// total work / total time, both engines, whole matrix.
    aggregate_speedup: f64,
    geo_mean_speedup: f64,
    /// Geo-mean speedup of the no-prefetcher jobs: the gated headline
    /// ("single-core accesses/sec of the simulator vs the seed engine").
    engine_core_speedup: f64,
}

/// The committed regression baseline (speedups only: machine-portable).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Baseline {
    engine_core_speedup: f64,
    aggregate_speedup: f64,
    geo_mean_speedup: f64,
}

fn materialize(app: &str, seed: u64, n: usize) -> Vec<MemAccess> {
    let mut src = resemble_trace::gen::app_by_name(app, seed)
        .expect("valid app name")
        .source;
    let mut v = Vec::with_capacity(n);
    while v.len() < n {
        let Some(a) = src.next_access() else { break };
        v.push(a);
    }
    v
}

/// One timed run of `trace` through a fresh engine (source built before
/// the timer); returns (wall seconds, measured stats).
fn time_run<E, R>(trace: &[MemAccess], mut run: R) -> (f64, SimStats)
where
    R: FnMut(VecSource) -> (E, SimStats),
{
    let src = VecSource::new(trace.to_vec());
    let t0 = Instant::now();
    let (_engine, s) = run(src);
    (t0.elapsed().as_secs_f64(), s)
}

fn main() {
    let opts = Options::from_env();
    let warmup = opts.usize("warmup", 10_000);
    let measure = opts.usize("accesses", 40_000);
    let seed = opts.u64("seed", 42);
    let reps = opts.usize("reps", 3).max(1);
    let min_speedup = opts
        .str("min-speedup")
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.5);
    let check = opts.flag("check");
    let write_baseline = opts.flag("write-baseline");
    let json_path = opts.str("json").unwrap_or("BENCH_sim.json").to_string();
    let baseline_path = opts
        .str("baseline")
        .unwrap_or("crates/bench/perf_baseline.json")
        .to_string();
    let apps: Vec<String> = opts
        .list("apps")
        .unwrap_or_else(|| APP_NAMES.iter().map(|s| s.to_string()).collect());
    // "none" isolates the engine core; the rest is the Figs 8–10 lineup.
    let pfs: Vec<String> = opts.list("pfs").unwrap_or_else(|| {
        let mut v = vec!["none".to_string()];
        v.extend(factory::MAIN_LINEUP.iter().map(|s| s.to_string()));
        v
    });

    // Validate names up front: a typo should produce a usage error, not
    // a panic mid-matrix.
    for app in &apps {
        if !APP_NAMES.contains(&app.as_str()) {
            eprintln!(
                "error: unknown app '{app}' (valid: {})",
                APP_NAMES.join(", ")
            );
            std::process::exit(2);
        }
    }
    for pf in &pfs {
        if pf != "none" && !factory::MAIN_LINEUP.contains(&pf.as_str()) {
            eprintln!(
                "error: unknown prefetcher '{pf}' (valid: none, {})",
                factory::MAIN_LINEUP.join(", ")
            );
            std::process::exit(2);
        }
    }

    report::banner(
        "perf gate",
        "optimized Engine vs seed ReferenceEngine, Figs 8-10 workload matrix",
    );
    println!(
        "apps: {} | pfs: {} | warmup {warmup} + measure {measure} | seed {seed} | best of {reps}\n",
        apps.len(),
        pfs.len()
    );

    let cfg = SimConfig::harness();
    let n = warmup + measure;

    // Untimed warm-up spin: the first measured job otherwise pays the
    // CPU's frequency ramp and cold instruction-cache/page-table costs,
    // which can swing a 5 ms engine-core run by tens of percent.
    if let Some(app0) = apps.first() {
        let trace = materialize(app0, seed, n);
        for _ in 0..2 {
            let _ = time_run(&trace, |mut src| {
                let mut e = Engine::new(cfg);
                let s = e.run(&mut src, None, warmup, measure);
                (e, s)
            });
            let _ = time_run(&trace, |mut src| {
                let mut e = ReferenceEngine::new(cfg);
                let s = e.run(&mut src, None, warmup, measure);
                (e, s)
            });
        }
    }

    let mut jobs = Vec::new();
    for app in &apps {
        let trace = materialize(app, seed, n);
        for pf in pfs.iter().map(|p| p.as_str()) {
            // Reps alternate engine/reference so drift in the host's speed
            // (frequency scaling, noisy neighbours) hits both engines
            // alike and cancels out of the best-of ratio. The gated
            // engine-core jobs finish in milliseconds, so they get a
            // higher rep floor for free; the RL-controller jobs dominate
            // wall time and keep the requested rep count.
            let job_reps = if pf == "none" { reps.max(7) } else { reps };
            let mut engine_secs = f64::INFINITY;
            let mut reference_secs = f64::INFINITY;
            let mut fast_stats = SimStats::default();
            let mut slow_stats = SimStats::default();
            for _ in 0..job_reps {
                let (es, fs) = time_run(&trace, |mut src| {
                    let mut e = Engine::new(cfg);
                    let s = match pf {
                        "none" => e.run(&mut src, None, warmup, measure),
                        _ => {
                            let mut p = factory::make(pf, seed, true);
                            e.run(&mut src, Some(&mut *p), warmup, measure)
                        }
                    };
                    (e, s)
                });
                let (rs, ss) = time_run(&trace, |mut src| {
                    let mut e = ReferenceEngine::new(cfg);
                    let s = match pf {
                        "none" => e.run(&mut src, None, warmup, measure),
                        _ => {
                            let mut p = factory::make(pf, seed, true);
                            e.run(&mut src, Some(&mut *p), warmup, measure)
                        }
                    };
                    (e, s)
                });
                engine_secs = engine_secs.min(es);
                reference_secs = reference_secs.min(rs);
                fast_stats = fs;
                slow_stats = ss;
            }
            let stats_match = format!("{fast_stats:?}") == format!("{slow_stats:?}");
            jobs.push(JobReport {
                app: app.clone(),
                pf: pf.to_string(),
                accesses: n,
                engine_secs,
                reference_secs,
                engine_aps: n as f64 / engine_secs,
                reference_aps: n as f64 / reference_secs,
                speedup: reference_secs / engine_secs,
                stats_match,
            });
        }
    }

    let total_accesses: usize = jobs.iter().map(|j| j.accesses).sum();
    let engine_secs: f64 = jobs.iter().map(|j| j.engine_secs).sum();
    let reference_secs: f64 = jobs.iter().map(|j| j.reference_secs).sum();
    let speedups: Vec<f64> = jobs.iter().map(|j| j.speedup).collect();
    let mut core_speedups: Vec<f64> = jobs
        .iter()
        .filter(|j| j.pf == "none")
        .map(|j| j.speedup)
        .collect();
    if core_speedups.is_empty() {
        // `--pfs` without "none": gate on whatever was measured.
        core_speedups = speedups.clone();
    }
    let rep = GateReport {
        warmup,
        measure,
        seed,
        reps,
        total_accesses,
        engine_secs,
        reference_secs,
        aggregate_speedup: reference_secs / engine_secs,
        geo_mean_speedup: geo_mean(&speedups),
        engine_core_speedup: geo_mean(&core_speedups),
        jobs,
    };

    // Per-app table: accesses/sec (engine), speedup per prefetcher column.
    let mut header: Vec<String> = vec!["app".into(), "Macc/s".into()];
    header.extend(pfs.iter().map(|p| {
        format!(
            "x {}",
            if p == "none" {
                "engine"
            } else {
                factory::label(p)
            }
        )
    }));
    let mut t = Table::new(header);
    for app in &apps {
        let mut row = vec![app.clone()];
        // Throughput column: the engine-core job if present, else the
        // first job of this app.
        let core = rep
            .jobs
            .iter()
            .find(|j| &j.app == app && j.pf == "none")
            .or_else(|| rep.jobs.iter().find(|j| &j.app == app))
            .expect("matrix complete");
        row.push(format!("{:.2}", core.engine_aps / 1e6));
        for pf in &pfs {
            let j = rep
                .jobs
                .iter()
                .find(|j| &j.app == app && &j.pf == pf)
                .expect("matrix complete");
            row.push(format!(
                "{:.2}{}",
                j.speedup,
                if j.stats_match { "" } else { " !STATS" }
            ));
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!(
        "aggregate: {:.2} Macc/s engine vs {:.2} Macc/s reference over {} jobs",
        rep.total_accesses as f64 / rep.engine_secs / 1e6,
        rep.total_accesses as f64 / rep.reference_secs / 1e6,
        rep.jobs.len()
    );
    println!(
        "engine-core speedup (gated): {:.2}x geo-mean over {} apps (target >= {min_speedup:.2}x)",
        rep.engine_core_speedup,
        core_speedups.len()
    );
    println!(
        "full matrix: {:.2}x aggregate, {:.2}x geo-mean (reported, not gated)",
        rep.aggregate_speedup, rep.geo_mean_speedup
    );

    if let Err(e) = std::fs::write(
        &json_path,
        serde_json::to_string_pretty(&rep).expect("report serializes"),
    ) {
        eprintln!("warning: could not write {json_path}: {e}");
    } else {
        eprintln!("wrote {json_path}");
    }

    let mut failures = Vec::new();
    let mismatches: Vec<String> = rep
        .jobs
        .iter()
        .filter(|j| !j.stats_match)
        .map(|j| format!("{}/{}", j.app, j.pf))
        .collect();
    if !mismatches.is_empty() {
        failures.push(format!(
            "SimStats diverged from the reference engine on: {}",
            mismatches.join(", ")
        ));
    }

    if write_baseline {
        let b = Baseline {
            engine_core_speedup: rep.engine_core_speedup,
            aggregate_speedup: rep.aggregate_speedup,
            geo_mean_speedup: rep.geo_mean_speedup,
        };
        std::fs::write(
            &baseline_path,
            serde_json::to_string_pretty(&b).expect("baseline serializes"),
        )
        .expect("baseline written");
        eprintln!("wrote {baseline_path}");
    }

    if check {
        // The vendored serde_json deserializes into a dynamic Value.
        match std::fs::read_to_string(&baseline_path)
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok())
            .and_then(|v| v.get("engine_core_speedup").and_then(|x| x.as_f64()))
        {
            Some(baseline_speedup) => {
                let floor = baseline_speedup * 0.9;
                println!(
                    "check: baseline {:.2}x, 10% floor {:.2}x, measured {:.2}x",
                    baseline_speedup, floor, rep.engine_core_speedup
                );
                if rep.engine_core_speedup < floor {
                    failures.push(format!(
                        "throughput regressed >10% vs baseline: {:.2}x < {:.2}x",
                        rep.engine_core_speedup, floor
                    ));
                }
                if rep.engine_core_speedup < min_speedup {
                    failures.push(format!(
                        "engine-core speedup {:.2}x below required {min_speedup:.2}x",
                        rep.engine_core_speedup
                    ));
                }
            }
            None => failures.push(format!("missing or unreadable baseline {baseline_path}")),
        }
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("perf gate OK");
}
