//! perf_gate — simulator-throughput regression gate.
//!
//! Runs the Figs 8–10 workload matrix (every app × the main prefetcher
//! lineup, plus a no-prefetcher engine-core job per app) on **both** the
//! optimized [`Engine`] and the seed [`ReferenceEngine`], on identical
//! pre-materialized traces. For every job it records wall time and
//! accesses/sec for each engine, verifies the two produce bit-identical
//! `SimStats`, and writes the whole report to `BENCH_sim.json`.
//!
//! After the matrix, a **controller-throughput** section times the full
//! ReSemble MLP configuration (batch 256, Table III) end-to-end through
//! the optimized engine twice — once per DQN [`Datapath`]: the batched
//! minibatch-GEMM datapath vs the scalar per-sample reference — on a
//! small app subset, verifying the two produce bit-identical `SimStats`
//! (the datapaths are bit-identical by construction, so any divergence is
//! a kernel bug).
//!
//! After the controller section, a **kernel-throughput** section times
//! the raw batched kernel path (forward + backward minibatch on the
//! controller-shaped `[4, 100, 5]` MLP at batch 256) once per SIMD
//! backend available on the host, forced via `resemble_nn::simd::force`.
//! The gated ratio is dispatched-backend steps/s over scalar steps/s —
//! the direct measure of what the runtime-dispatched kernels buy.
//!
//! Modes:
//! * default — measure, print the tables, write `--json` (default
//!   `BENCH_sim.json`).
//! * `--write-baseline` — additionally write the committed baseline file
//!   (`crates/bench/perf_baseline.json`) from this run's speedups.
//! * `--check` — compare against the committed baseline and exit non-zero
//!   if either gated speedup regressed more than 10% below its baseline,
//!   or fell under its minimum (`--min-speedup`, default 1.5, for the
//!   engine core; `--min-controller-speedup`, default 2.0, for the
//!   controller), or any job's stats diverged.
//!
//! The gate compares *speedup over an in-process reference*, not absolute
//! accesses/sec, so the committed baseline is portable across machines:
//! both sides of each ratio see the same hardware and the ratio isolates
//! the code, not the host.
//!
//! After the kernel section, a **parallel-sweep** section times the
//! identical `run_matrix` workload serially (`jobs = 1`) and in parallel
//! (auto worker count) on the `resemble-runtime` executor, and checks the
//! two result sets for byte identity — the DESIGN.md §9 determinism
//! contract, enforced on real simulation jobs at every gate run.
//!
//! The **gated** metrics:
//! * `engine_core_speedup` — geo-mean speedup of the no-prefetcher
//!   ("none") jobs, optimized [`Engine`] vs seed [`ReferenceEngine`]:
//!   single-core accesses/sec of the simulator itself. RL-controller
//!   matrix jobs spend their wall time in prefetcher code byte-identical
//!   in both engines, so they are reported (and stats-checked) but not
//!   gated.
//! * `controller_speedup` — geo-mean accesses/sec ratio of the batched
//!   DQN datapath over the per-sample reference datapath on the
//!   controller jobs: the RL-controller hot path itself.
//! * `kernel_speedup` — dispatched-backend over scalar-backend steps/s
//!   on the raw batched kernel path (`--min-kernel-speedup`, default
//!   1.3). Gated only when the dispatched backend is not already
//!   scalar (so the gate stays green on hosts without SSE2/AVX2 and
//!   under `RESEMBLE_SIMD=scalar`) and the host has at least 2 cores
//!   (below that, background load lands entirely on the measured core
//!   and the ratio wobbles across the floor; `--write-baseline`
//!   preserves the committed value there).
//! * `kernel_avx512_speedup` — Avx512-tier over scalar steps/s
//!   (`--min-avx512-speedup`, default 1.1). Auto-skipped with a named
//!   warning on hosts without avx512f+avx512bw, and below 2 cores like
//!   the kernel metric; measured independently of the dispatched
//!   backend so a `RESEMBLE_SIMD` override cannot hide a wide-lane
//!   regression on a capable host.
//! * `matrix_speedup` — parallel over serial `run_matrix` wall-clock
//!   (`--min-matrix-speedup`, default 2.0). Gated only on hosts with at
//!   least 4 cores (auto-skipped below: the ratio would measure
//!   scheduling overhead, not parallelism); the serial/parallel
//!   byte-identity check runs at any core count.
//!
//! Usage: `cargo run --release -p resemble-bench --bin perf_gate --
//! [--check] [--write-baseline] [--accesses N] [--warmup N] [--reps N]
//! [--apps a,b] [--json PATH] [--baseline PATH] [--min-speedup X]
//! [--controller-apps a,b] [--controller-warmup N]
//! [--controller-accesses N] [--min-controller-speedup X]
//! [--no-controller] [--kernel-steps N] [--min-kernel-speedup X]
//! [--min-avx512-speedup X]
//! [--no-matrix] [--matrix-accesses N] [--matrix-warmup N]
//! [--min-matrix-speedup X]`

use resemble_bench::{factory, report, runner, Options};
use resemble_nn::simd;
use resemble_nn::{Activation, Matrix, Mlp};
use resemble_runtime::{host_parallelism, resolve_jobs};
use resemble_sim::{Engine, ReferenceEngine, SimConfig, SimStats};
use resemble_stats::{geo_mean, Table};
use resemble_trace::gen::spec_like::APP_NAMES;
use resemble_trace::gen::VecSource;
use resemble_trace::{MemAccess, TraceSource};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Timing of one (app, prefetcher) job on both engines.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct JobReport {
    app: String,
    pf: String,
    accesses: usize,
    engine_secs: f64,
    reference_secs: f64,
    engine_aps: f64,
    reference_aps: f64,
    speedup: f64,
    stats_match: bool,
}

/// Timing of one controller job: the batched DQN datapath vs the scalar
/// per-sample reference, both through the optimized engine on the full
/// ReSemble MLP configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ControllerJobReport {
    app: String,
    accesses: usize,
    batched_secs: f64,
    per_sample_secs: f64,
    batched_aps: f64,
    per_sample_aps: f64,
    speedup: f64,
    stats_match: bool,
}

/// Throughput of the raw batched kernel path under one forced backend.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct KernelBackendReport {
    backend: String,
    steps_per_sec: f64,
}

/// The kernel-throughput section: every backend available on this host,
/// measured on the same controller-shaped minibatch workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct KernelReport {
    /// Backend runtime dispatch selected (after `RESEMBLE_SIMD`).
    dispatched: String,
    sizes: Vec<usize>,
    batch: usize,
    steps: usize,
    backends: Vec<KernelBackendReport>,
    /// Dispatched-backend steps/s over scalar steps/s; 1.0 by definition
    /// when scalar *is* the dispatched backend.
    speedup: f64,
    /// Avx512-tier steps/s over scalar steps/s; 0.0 when the host lacks
    /// the tier (avx512f+avx512bw). Gated independently of `speedup` so
    /// the wide lanes can't silently rot back to AVX2 rates — and so a
    /// host whose dispatch was overridden still measures the tier.
    avx512_speedup: f64,
}

/// The parallel-sweep section: the identical `run_matrix` workload timed
/// serially (`jobs = 1`) and in parallel (`jobs = 0`, auto worker count)
/// on the `resemble-runtime` executor, with the two result sets checked
/// for byte identity (DESIGN.md §9).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct MatrixReport {
    apps: usize,
    pfs: usize,
    /// Host logical cores (`available_parallelism`).
    host_cores: usize,
    /// Worker count the parallel leg resolved to.
    workers: usize,
    /// Per-job trace length (warmup + measure).
    accesses: usize,
    serial_secs: f64,
    parallel_secs: f64,
    /// Serial wall-clock over parallel wall-clock: the fourth gated
    /// metric, on hosts with >= 4 cores (auto-skipped below).
    speedup: f64,
    /// Serialized results byte-identical between the two legs.
    results_match: bool,
}

/// The full machine-readable report (`BENCH_sim.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct GateReport {
    warmup: usize,
    measure: usize,
    seed: u64,
    reps: usize,
    jobs: Vec<JobReport>,
    total_accesses: usize,
    engine_secs: f64,
    reference_secs: f64,
    /// total work / total time, both engines, whole matrix.
    aggregate_speedup: f64,
    geo_mean_speedup: f64,
    /// Geo-mean speedup of the no-prefetcher jobs: the first gated metric
    /// ("single-core accesses/sec of the simulator vs the seed engine").
    engine_core_speedup: f64,
    /// Controller-path jobs (full ReSemble MLP config, batched vs
    /// per-sample DQN datapath). Empty under `--no-controller`.
    controller_jobs: Vec<ControllerJobReport>,
    /// Geo-mean controller-path speedup: the second gated metric
    /// ("RL-controller accesses/sec, batched GEMM datapath vs the scalar
    /// per-sample reference"). 0.0 under `--no-controller`.
    controller_speedup: f64,
    /// Geo-mean controller-path accesses/sec on the batched datapath.
    controller_aps: f64,
    /// Per-backend kernel throughput; `kernel.speedup` is the third
    /// gated metric ("dispatched SIMD backend vs scalar on the raw
    /// batched kernel path").
    kernel: KernelReport,
    /// Parallel-sweep timing; `matrix.speedup` is the fourth gated
    /// metric. `None` under `--no-matrix`.
    matrix: Option<MatrixReport>,
}

/// The committed regression baseline (speedups only: machine-portable).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Baseline {
    engine_core_speedup: f64,
    controller_speedup: f64,
    kernel_speedup: f64,
    kernel_avx512_speedup: f64,
    matrix_speedup: f64,
    aggregate_speedup: f64,
    geo_mean_speedup: f64,
}

fn materialize(app: &str, seed: u64, n: usize) -> Vec<MemAccess> {
    let mut src = resemble_trace::gen::app_by_name(app, seed)
        .expect("valid app name")
        .source;
    let mut v = Vec::with_capacity(n);
    while v.len() < n {
        let Some(a) = src.next_access() else { break };
        v.push(a);
    }
    v
}

/// One timed run of `trace` through a fresh engine (source built before
/// the timer); returns (wall seconds, measured stats).
fn time_run<E, R>(trace: &[MemAccess], mut run: R) -> (f64, SimStats)
where
    R: FnMut(VecSource) -> (E, SimStats),
{
    let src = VecSource::new(trace.to_vec());
    let t0 = Instant::now();
    let (_engine, s) = run(src);
    (t0.elapsed().as_secs_f64(), s)
}

/// Time the raw batched kernel path once per available SIMD backend:
/// one step = `forward_batch` + `backward_batch` on the
/// controller-shaped `[4, 100, 5]` MLP at batch 256. Each backend is
/// forced via [`simd::force`] on the same warm host, so the
/// dispatched/scalar ratio isolates the kernel code generation —
/// the outputs are bit-identical across backends by construction
/// (enforced by the nn crate's backend-sweep tests, not re-checked
/// here).
fn measure_kernels(reps: usize, steps: usize) -> KernelReport {
    let sizes = vec![4usize, 100, 5];
    let batch = 256usize;
    let net = Mlp::new(&sizes, Activation::Relu, 42);
    let xs = Matrix::from_fn(batch, sizes[0], |r, c| {
        ((r * 7 + c * 13) % 31) as f32 / 8.0 - 1.9
    });
    let out_grads = Matrix::from_fn(batch, sizes[2], |r, c| {
        ((r * 5 + c * 3) % 17) as f32 / 8.0 - 1.0
    });
    // Interleave backends within each rep (rather than timing all reps of
    // one backend back-to-back): a slow phase on a shared host then hits
    // every backend, and best-of over reps keeps the *ratios* stable even
    // when the absolute rates wobble.
    let avail = simd::available();
    let mut best = vec![f64::INFINITY; avail.len()];
    let mut states: Vec<_> = avail
        .iter()
        .map(|_| (net.make_batch_scratch(batch), net.make_grad_buffer()))
        .collect();
    // Rep 0 is an untimed warm-up (allocation, frequency ramp).
    for rep in 0..=reps.max(5) {
        for (i, &be) in avail.iter().enumerate() {
            let _guard = simd::force(be);
            let (scratch, grads) = &mut states[i];
            let t0 = Instant::now();
            for _ in 0..steps {
                let _ = net.forward_batch(&xs, scratch);
                net.backward_batch(scratch, &out_grads, grads);
                grads.clear();
            }
            let dt = t0.elapsed().as_secs_f64();
            if rep > 0 {
                best[i] = best[i].min(dt);
            }
        }
    }
    let backends: Vec<KernelBackendReport> = avail
        .iter()
        .zip(&best)
        .map(|(be, dt)| KernelBackendReport {
            backend: be.name().to_string(),
            steps_per_sec: steps as f64 / dt,
        })
        .collect();
    let rate = |name: &str| {
        backends
            .iter()
            .find(|b| b.backend == name)
            .map(|b| b.steps_per_sec)
            .unwrap_or(0.0)
    };
    let dispatched = simd::dispatched().name().to_string();
    let scalar_rate = rate("scalar");
    let speedup = if scalar_rate > 0.0 {
        rate(&dispatched) / scalar_rate
    } else {
        0.0
    };
    let avx512_speedup = if scalar_rate > 0.0 {
        rate("avx512") / scalar_rate
    } else {
        0.0
    };
    KernelReport {
        dispatched,
        sizes,
        batch,
        steps,
        backends,
        speedup,
        avx512_speedup,
    }
}

/// Time the identical `run_matrix` workload serially and in parallel.
/// Legs alternate within each rep so host-speed drift hits both alike
/// and cancels out of the best-of ratio, and the serialized results are
/// compared for byte identity — the executor's determinism contract,
/// checked on real simulation jobs every gate run.
fn measure_matrix(reps: usize, warmup: usize, measure: usize, seed: u64) -> MatrixReport {
    let apps: Vec<String> = APP_NAMES.iter().map(|s| s.to_string()).collect();
    let pfs = ["bo"];
    let params = |jobs: usize| runner::SweepParams {
        warmup,
        measure,
        seed,
        jobs,
        ..Default::default()
    };
    let mut serial_secs = f64::INFINITY;
    let mut parallel_secs = f64::INFINITY;
    let mut serial_out = String::new();
    let mut parallel_out = String::new();
    for _ in 0..reps.max(2) {
        let t0 = Instant::now();
        let rs = runner::run_matrix(&apps, &pfs, &params(1));
        serial_secs = serial_secs.min(t0.elapsed().as_secs_f64());
        serial_out = serde_json::to_string(&rs).expect("results serialize");
        let t0 = Instant::now();
        let rp = runner::run_matrix(&apps, &pfs, &params(0));
        parallel_secs = parallel_secs.min(t0.elapsed().as_secs_f64());
        parallel_out = serde_json::to_string(&rp).expect("results serialize");
    }
    MatrixReport {
        apps: apps.len(),
        pfs: pfs.len(),
        host_cores: host_parallelism(),
        workers: resolve_jobs(0),
        accesses: warmup + measure,
        serial_secs,
        parallel_secs,
        speedup: serial_secs / parallel_secs,
        results_match: serial_out == parallel_out,
    }
}

fn main() {
    let opts = Options::from_env_checked(&[
        "check",
        "no-controller",
        "write-baseline",
        "controller-apps",
        "pfs",
        "baseline",
        "min-controller-speedup",
        "min-speedup",
        "controller-accesses",
        "controller-warmup",
        "reps",
        "kernel-steps",
        "min-kernel-speedup",
        "min-avx512-speedup",
        "no-matrix",
        "matrix-accesses",
        "matrix-warmup",
        "min-matrix-speedup",
    ]);
    let warmup = opts.usize("warmup", 10_000);
    let measure = opts.usize("accesses", 40_000);
    let seed = opts.u64("seed", 42);
    let reps = opts.usize("reps", 3).max(1);
    let min_speedup = opts
        .str("min-speedup")
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.5);
    let min_controller_speedup = opts
        .str("min-controller-speedup")
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(2.0);
    let min_kernel_speedup = opts
        .str("min-kernel-speedup")
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.3);
    let min_avx512_speedup = opts
        .str("min-avx512-speedup")
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.1);
    let kernel_steps = opts.usize("kernel-steps", 200).max(1);
    let min_matrix_speedup = opts
        .str("min-matrix-speedup")
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(2.0);
    let matrix_warmup = opts.usize("matrix-warmup", 2_000);
    let matrix_measure = opts.usize("matrix-accesses", 10_000);
    let no_matrix = opts.flag("no-matrix");
    let controller_warmup = opts.usize("controller-warmup", 1_000);
    let controller_measure = opts.usize("controller-accesses", 5_000);
    let no_controller = opts.flag("no-controller");
    let controller_apps: Vec<String> = opts.list("controller-apps").unwrap_or_else(|| {
        ["433.milc", "471.omnetpp", "gap.pr"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    });
    let check = opts.flag("check");
    let write_baseline = opts.flag("write-baseline");
    let json_path = opts.str("json").unwrap_or("BENCH_sim.json").to_string();
    let baseline_path = opts
        .str("baseline")
        .unwrap_or("crates/bench/perf_baseline.json")
        .to_string();
    let apps: Vec<String> = opts
        .list("apps")
        .unwrap_or_else(|| APP_NAMES.iter().map(|s| s.to_string()).collect());
    // "none" isolates the engine core; the rest is the Figs 8–10 lineup.
    let pfs: Vec<String> = opts.list("pfs").unwrap_or_else(|| {
        let mut v = vec!["none".to_string()];
        v.extend(factory::MAIN_LINEUP.iter().map(|s| s.to_string()));
        v
    });

    // Validate names up front: a typo should produce a usage error, not
    // a panic mid-matrix.
    for app in apps.iter().chain(&controller_apps) {
        if !APP_NAMES.contains(&app.as_str()) {
            eprintln!(
                "error: unknown app '{app}' (valid: {})",
                APP_NAMES.join(", ")
            );
            std::process::exit(2);
        }
    }
    for pf in &pfs {
        if pf != "none" && !factory::MAIN_LINEUP.contains(&pf.as_str()) {
            eprintln!(
                "error: unknown prefetcher '{pf}' (valid: none, {})",
                factory::MAIN_LINEUP.join(", ")
            );
            std::process::exit(2);
        }
    }

    report::banner(
        "perf gate",
        "optimized Engine vs seed ReferenceEngine, Figs 8-10 workload matrix",
    );
    println!(
        "apps: {} | pfs: {} | warmup {warmup} + measure {measure} | seed {seed} | best of {reps}\n",
        apps.len(),
        pfs.len()
    );

    let cfg = SimConfig::harness();
    let n = warmup + measure;

    // Untimed warm-up spin: the first measured job otherwise pays the
    // CPU's frequency ramp and cold instruction-cache/page-table costs,
    // which can swing a 5 ms engine-core run by tens of percent.
    if let Some(app0) = apps.first() {
        let trace = materialize(app0, seed, n);
        for _ in 0..2 {
            let _ = time_run(&trace, |mut src| {
                let mut e = Engine::new(cfg);
                let s = e.run(&mut src, None, warmup, measure);
                (e, s)
            });
            let _ = time_run(&trace, |mut src| {
                let mut e = ReferenceEngine::new(cfg);
                let s = e.run(&mut src, None, warmup, measure);
                (e, s)
            });
        }
    }

    let mut jobs = Vec::new();
    for app in &apps {
        let trace = materialize(app, seed, n);
        for pf in pfs.iter().map(|p| p.as_str()) {
            // Reps alternate engine/reference so drift in the host's speed
            // (frequency scaling, noisy neighbours) hits both engines
            // alike and cancels out of the best-of ratio. The gated
            // engine-core jobs finish in milliseconds, so they get a
            // higher rep floor for free; the RL-controller jobs dominate
            // wall time and keep the requested rep count.
            let job_reps = if pf == "none" { reps.max(7) } else { reps };
            let mut engine_secs = f64::INFINITY;
            let mut reference_secs = f64::INFINITY;
            let mut fast_stats = SimStats::default();
            let mut slow_stats = SimStats::default();
            for _ in 0..job_reps {
                let (es, fs) = time_run(&trace, |mut src| {
                    let mut e = Engine::new(cfg);
                    let s = match pf {
                        "none" => e.run(&mut src, None, warmup, measure),
                        _ => {
                            let mut p = factory::make(pf, seed, true);
                            e.run(&mut src, Some(&mut *p), warmup, measure)
                        }
                    };
                    (e, s)
                });
                let (rs, ss) = time_run(&trace, |mut src| {
                    let mut e = ReferenceEngine::new(cfg);
                    let s = match pf {
                        "none" => e.run(&mut src, None, warmup, measure),
                        _ => {
                            let mut p = factory::make(pf, seed, true);
                            e.run(&mut src, Some(&mut *p), warmup, measure)
                        }
                    };
                    (e, s)
                });
                engine_secs = engine_secs.min(es);
                reference_secs = reference_secs.min(rs);
                fast_stats = fs;
                slow_stats = ss;
            }
            let stats_match = format!("{fast_stats:?}") == format!("{slow_stats:?}");
            jobs.push(JobReport {
                app: app.clone(),
                pf: pf.to_string(),
                accesses: n,
                engine_secs,
                reference_secs,
                engine_aps: n as f64 / engine_secs,
                reference_aps: n as f64 / reference_secs,
                speedup: reference_secs / engine_secs,
                stats_match,
            });
        }
    }

    // Controller-throughput section: the full ReSemble MLP configuration
    // (batch 256) through the optimized engine, batched vs per-sample DQN
    // datapath. Reps alternate datapaths so host-speed drift cancels out
    // of the best-of ratio, exactly like the matrix above.
    let mut controller_jobs: Vec<ControllerJobReport> = Vec::new();
    if !no_controller {
        let cn = controller_warmup + controller_measure;
        let controller_reps = reps.max(3);
        for app in &controller_apps {
            let trace = materialize(app, seed, cn);
            let mut batched_secs = f64::INFINITY;
            let mut per_sample_secs = f64::INFINITY;
            let mut batched_stats = SimStats::default();
            let mut per_sample_stats = SimStats::default();
            for _ in 0..controller_reps {
                let (bs, bstats) = time_run(&trace, |mut src| {
                    let mut e = Engine::new(cfg);
                    let mut p = factory::make("resemble", seed, false);
                    let s = e.run(
                        &mut src,
                        Some(&mut *p),
                        controller_warmup,
                        controller_measure,
                    );
                    (e, s)
                });
                let (rs, rstats) = time_run(&trace, |mut src| {
                    let mut e = Engine::new(cfg);
                    let mut p = factory::make("resemble_ref", seed, false);
                    let s = e.run(
                        &mut src,
                        Some(&mut *p),
                        controller_warmup,
                        controller_measure,
                    );
                    (e, s)
                });
                batched_secs = batched_secs.min(bs);
                per_sample_secs = per_sample_secs.min(rs);
                batched_stats = bstats;
                per_sample_stats = rstats;
            }
            let stats_match = format!("{batched_stats:?}") == format!("{per_sample_stats:?}");
            controller_jobs.push(ControllerJobReport {
                app: app.clone(),
                accesses: cn,
                batched_secs,
                per_sample_secs,
                batched_aps: cn as f64 / batched_secs,
                per_sample_aps: cn as f64 / per_sample_secs,
                speedup: per_sample_secs / batched_secs,
                stats_match,
            });
        }
    }

    // Kernel-throughput section: the raw batched kernel path, once per
    // available backend, on the now-warm host.
    let kernel = measure_kernels(reps, kernel_steps);

    // Parallel-sweep section: run_matrix serial vs parallel on the
    // now-warm host, plus the byte-identity check of the two result sets.
    let matrix = if no_matrix {
        None
    } else {
        Some(measure_matrix(reps, matrix_warmup, matrix_measure, seed))
    };

    let total_accesses: usize = jobs.iter().map(|j| j.accesses).sum();
    let engine_secs: f64 = jobs.iter().map(|j| j.engine_secs).sum();
    let reference_secs: f64 = jobs.iter().map(|j| j.reference_secs).sum();
    let speedups: Vec<f64> = jobs.iter().map(|j| j.speedup).collect();
    let mut core_speedups: Vec<f64> = jobs
        .iter()
        .filter(|j| j.pf == "none")
        .map(|j| j.speedup)
        .collect();
    if core_speedups.is_empty() {
        // `--pfs` without "none": gate on whatever was measured.
        core_speedups = speedups.clone();
    }
    let controller_speedups: Vec<f64> = controller_jobs.iter().map(|j| j.speedup).collect();
    let controller_apses: Vec<f64> = controller_jobs.iter().map(|j| j.batched_aps).collect();
    let rep = GateReport {
        warmup,
        measure,
        seed,
        reps,
        total_accesses,
        engine_secs,
        reference_secs,
        aggregate_speedup: reference_secs / engine_secs,
        geo_mean_speedup: geo_mean(&speedups),
        engine_core_speedup: geo_mean(&core_speedups),
        controller_speedup: if controller_speedups.is_empty() {
            0.0
        } else {
            geo_mean(&controller_speedups)
        },
        controller_aps: if controller_apses.is_empty() {
            0.0
        } else {
            geo_mean(&controller_apses)
        },
        controller_jobs,
        jobs,
        kernel,
        matrix,
    };

    // Per-app table: accesses/sec (engine), speedup per prefetcher column.
    let mut header: Vec<String> = vec!["app".into(), "Macc/s".into()];
    header.extend(pfs.iter().map(|p| {
        format!(
            "x {}",
            if p == "none" {
                "engine"
            } else {
                factory::label(p)
            }
        )
    }));
    let mut t = Table::new(header);
    for app in &apps {
        let mut row = vec![app.clone()];
        // Throughput column: the engine-core job if present, else the
        // first job of this app.
        let core = rep
            .jobs
            .iter()
            .find(|j| &j.app == app && j.pf == "none")
            .or_else(|| rep.jobs.iter().find(|j| &j.app == app))
            .expect("matrix complete");
        row.push(format!("{:.2}", core.engine_aps / 1e6));
        for pf in &pfs {
            let j = rep
                .jobs
                .iter()
                .find(|j| &j.app == app && &j.pf == pf)
                .expect("matrix complete");
            row.push(format!(
                "{:.2}{}",
                j.speedup,
                if j.stats_match { "" } else { " !STATS" }
            ));
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!(
        "aggregate: {:.2} Macc/s engine vs {:.2} Macc/s reference over {} jobs",
        rep.total_accesses as f64 / rep.engine_secs / 1e6,
        rep.total_accesses as f64 / rep.reference_secs / 1e6,
        rep.jobs.len()
    );
    println!(
        "engine-core speedup (gated): {:.2}x geo-mean over {} apps (target >= {min_speedup:.2}x)",
        rep.engine_core_speedup,
        core_speedups.len()
    );
    println!(
        "full matrix: {:.2}x aggregate, {:.2}x geo-mean (reported, not gated)",
        rep.aggregate_speedup, rep.geo_mean_speedup
    );

    if !rep.controller_jobs.is_empty() {
        let mut ct = Table::new(vec![
            "app",
            "kacc/s batched",
            "kacc/s per-sample",
            "speedup",
        ]);
        for j in &rep.controller_jobs {
            ct.row(vec![
                j.app.clone(),
                format!("{:.1}", j.batched_aps / 1e3),
                format!("{:.1}", j.per_sample_aps / 1e3),
                format!(
                    "{:.2}{}",
                    j.speedup,
                    if j.stats_match { "" } else { " !STATS" }
                ),
            ]);
        }
        println!("\ncontroller path (ReSemble MLP, batch 256, batched vs per-sample datapath):");
        println!("{}", ct.render());
        println!(
            "controller speedup (gated): {:.2}x geo-mean over {} apps (target >= {:.2}x), {:.1} kacc/s batched",
            rep.controller_speedup,
            rep.controller_jobs.len(),
            min_controller_speedup,
            rep.controller_aps / 1e3
        );
    }

    {
        let mut kt = Table::new(vec!["backend", "steps/s", "x scalar"]);
        let scalar_rate = rep
            .kernel
            .backends
            .iter()
            .find(|b| b.backend == "scalar")
            .map(|b| b.steps_per_sec)
            .unwrap_or(0.0);
        for b in &rep.kernel.backends {
            kt.row(vec![
                format!(
                    "{}{}",
                    b.backend,
                    if b.backend == rep.kernel.dispatched {
                        " (dispatched)"
                    } else {
                        ""
                    }
                ),
                format!("{:.0}", b.steps_per_sec),
                if scalar_rate > 0.0 {
                    format!("{:.2}", b.steps_per_sec / scalar_rate)
                } else {
                    "-".to_string()
                },
            ]);
        }
        println!(
            "\nkernel path ({:?} MLP, batch {}, forward+backward per step):",
            rep.kernel.sizes, rep.kernel.batch
        );
        println!("{}", kt.render());
        println!(
            "kernel speedup (gated when dispatched != scalar): {:.2}x dispatched ({}) vs scalar (target >= {min_kernel_speedup:.2}x)",
            rep.kernel.speedup, rep.kernel.dispatched
        );
        if rep.kernel.avx512_speedup > 0.0 {
            println!(
                "avx512 kernel speedup (gated on avx512 hosts): {:.2}x vs scalar (target >= {min_avx512_speedup:.2}x)",
                rep.kernel.avx512_speedup
            );
        } else {
            println!(
                "avx512 kernel tier not available on this host (detected features: {})",
                simd::capabilities().summary()
            );
        }
    }

    if let Some(m) = &rep.matrix {
        println!(
            "\nparallel sweep (run_matrix, {} apps x {} pfs, {} accesses/job, {} workers on {} cores):",
            m.apps, m.pfs, m.accesses, m.workers, m.host_cores
        );
        println!(
            "  serial {:.2}s vs parallel {:.2}s -> {:.2}x{}",
            m.serial_secs,
            m.parallel_secs,
            m.speedup,
            if m.results_match { "" } else { " !RESULTS" }
        );
        if m.host_cores >= 4 {
            println!(
                "matrix speedup (gated): {:.2}x parallel vs serial (target >= {min_matrix_speedup:.2}x)",
                m.speedup
            );
        } else {
            println!(
                "matrix speedup: {:.2}x — not gated on a {}-core host (gate needs >= 4 cores)",
                m.speedup, m.host_cores
            );
        }
    }

    if let Err(e) = std::fs::write(
        &json_path,
        serde_json::to_string_pretty(&rep).expect("report serializes"),
    ) {
        eprintln!("warning: could not write {json_path}: {e}");
    } else {
        eprintln!("wrote {json_path}");
    }

    let mut failures = Vec::new();
    let mismatches: Vec<String> = rep
        .jobs
        .iter()
        .filter(|j| !j.stats_match)
        .map(|j| format!("{}/{}", j.app, j.pf))
        .collect();
    if !mismatches.is_empty() {
        failures.push(format!(
            "SimStats diverged from the reference engine on: {}",
            mismatches.join(", ")
        ));
    }
    let dp_mismatches: Vec<String> = rep
        .controller_jobs
        .iter()
        .filter(|j| !j.stats_match)
        .map(|j| j.app.clone())
        .collect();
    if !dp_mismatches.is_empty() {
        failures.push(format!(
            "SimStats diverged between DQN datapaths on: {} (the batch kernels must be bit-identical)",
            dp_mismatches.join(", ")
        ));
    }
    // Byte identity between the serial and parallel sweep is an
    // unconditional invariant (DESIGN.md §9) — checked at any core
    // count, even where the speedup itself is not gated.
    if let Some(m) = &rep.matrix {
        if !m.results_match {
            failures.push(
                "parallel run_matrix results diverged from the serial run \
                 (the executor's ordered merge must make worker count invisible)"
                    .to_string(),
            );
        }
    }

    // A 1-core host cannot hold the kernel ratio steady: every burst of
    // background load lands on the measured core, and the interleaved
    // best-of has been observed wobbling ~1.24-1.33x against a 1.32x
    // baseline. Below 2 cores the kernel metrics are reported but not
    // gated, and --write-baseline preserves the committed values —
    // the same treatment the matrix metric gets below 4 cores.
    let kernel_cores_skip = (host_parallelism() < 2)
        .then(|| format!("host has {} core, gate needs >= 2", host_parallelism()));
    let avx512_skip = if simd::KernelBackend::Avx512.is_available() {
        kernel_cores_skip.clone()
    } else {
        Some(format!(
            "host lacks the avx512 tier (needs avx512f+avx512bw; detected features: {})",
            simd::capabilities().summary()
        ))
    };

    if write_baseline {
        if rep.controller_jobs.is_empty() {
            eprintln!("error: cannot write a baseline from a --no-controller run");
            std::process::exit(2);
        }
        if rep.kernel.dispatched == "scalar" {
            eprintln!(
                "error: cannot write a baseline from a scalar-dispatched run \
                 (RESEMBLE_SIMD=scalar or a host without SSE2): kernel_speedup \
                 would freeze at 1.0"
            );
            std::process::exit(2);
        }
        // Where a metric is not measurable on this host, keep the
        // committed value (or the absolute floor on a first write)
        // instead of freezing a meaningless number into the baseline.
        let kept_or = |key: &str, fallback: f64| {
            let kept = std::fs::read_to_string(&baseline_path)
                .ok()
                .and_then(|s| serde_json::from_str(&s).ok())
                .and_then(|v: serde_json::Value| v.get(key).and_then(|x| x.as_f64()))
                .unwrap_or(fallback);
            eprintln!(
                "warning: {key} not measurable on this host; keeping {kept:.2}x in the baseline"
            );
            kept
        };
        // Below 4 cores the parallel/serial ratio measures scheduling
        // overhead, not parallelism.
        let matrix_speedup = match &rep.matrix {
            Some(m) if m.host_cores >= 4 => m.speedup,
            _ => kept_or("matrix_speedup", min_matrix_speedup),
        };
        let kernel_speedup = if kernel_cores_skip.is_none() {
            rep.kernel.speedup
        } else {
            kept_or("kernel_speedup", min_kernel_speedup)
        };
        let kernel_avx512_speedup = if avx512_skip.is_none() {
            rep.kernel.avx512_speedup
        } else {
            kept_or("kernel_avx512_speedup", min_avx512_speedup)
        };
        let b = Baseline {
            engine_core_speedup: rep.engine_core_speedup,
            controller_speedup: rep.controller_speedup,
            kernel_speedup,
            kernel_avx512_speedup,
            matrix_speedup,
            aggregate_speedup: rep.aggregate_speedup,
            geo_mean_speedup: rep.geo_mean_speedup,
        };
        std::fs::write(
            &baseline_path,
            serde_json::to_string_pretty(&b).expect("baseline serializes"),
        )
        .expect("baseline written");
        eprintln!("wrote {baseline_path}");
    }

    if check {
        // The vendored serde_json deserializes into a dynamic Value.
        let baseline: Option<serde_json::Value> = std::fs::read_to_string(&baseline_path)
            .ok()
            .and_then(|s| serde_json::from_str(&s).ok());
        // (metric label, baseline key, measured value, required minimum,
        //  skip reason) — each gated metric fails independently on either
        // a >10% drop below its committed baseline or its absolute
        // minimum; a `Some` skip reason exempts it on this host.
        let matrix_skip = match &rep.matrix {
            None => Some("--no-matrix".to_string()),
            Some(m) if m.host_cores < 4 => {
                Some(format!("host has {} cores, gate needs >= 4", m.host_cores))
            }
            Some(_) => None,
        };
        let gated = [
            (
                "engine-core",
                "engine_core_speedup",
                rep.engine_core_speedup,
                min_speedup,
                None::<String>,
            ),
            (
                "controller",
                "controller_speedup",
                rep.controller_speedup,
                min_controller_speedup,
                no_controller.then(|| "--no-controller".to_string()),
            ),
            (
                "kernel",
                "kernel_speedup",
                rep.kernel.speedup,
                min_kernel_speedup,
                (rep.kernel.dispatched == "scalar")
                    .then(|| "scalar-dispatched kernels".to_string())
                    .or(kernel_cores_skip),
            ),
            (
                "kernel-avx512",
                "kernel_avx512_speedup",
                rep.kernel.avx512_speedup,
                min_avx512_speedup,
                avx512_skip,
            ),
            (
                "matrix",
                "matrix_speedup",
                rep.matrix.as_ref().map_or(0.0, |m| m.speedup),
                min_matrix_speedup,
                matrix_skip,
            ),
        ];
        for (label, key, measured, min_required, skip) in gated {
            if let Some(reason) = skip {
                eprintln!("warning: {label} speedup not gated ({reason})");
                continue;
            }
            match baseline
                .as_ref()
                .and_then(|v| v.get(key))
                .and_then(|x| x.as_f64())
            {
                Some(baseline_speedup) => {
                    let floor = baseline_speedup * 0.9;
                    println!(
                        "check [{label}]: baseline {baseline_speedup:.2}x, 10% floor {floor:.2}x, measured {measured:.2}x"
                    );
                    if measured < floor {
                        failures.push(format!(
                            "metric `{key}` ({label}) regressed vs baseline: measured \
                             {measured:.2}x < floor {floor:.2}x (baseline {baseline_speedup:.2}x \
                             - 10%), short by {:.2}x ({:.1}%)",
                            floor - measured,
                            (floor - measured) / floor * 100.0
                        ));
                    }
                    if measured < min_required {
                        failures.push(format!(
                            "metric `{key}` ({label}) below its absolute minimum: measured \
                             {measured:.2}x < required {min_required:.2}x, short by {:.2}x ({:.1}%)",
                            min_required - measured,
                            (min_required - measured) / min_required * 100.0
                        ));
                    }
                }
                None => failures.push(format!(
                    "missing '{key}' in baseline {baseline_path} (regenerate with --write-baseline)"
                )),
            }
        }
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("perf gate OK");
}
