//! Constructors for every prefetcher/controller the evaluation compares.

use resemble_core::{ResembleConfig, ResembleMlp, ResembleTabular, SbpE};
use resemble_prefetch::{
    paper_bank, voyager_bank, BestOffset, Domino, GhbDc, Isb, Markov, NeuralTemporalPrefetcher,
    Prefetcher, Spp, Stems, Stms, Streamer, StridePrefetcher, Vldp,
};

/// Evaluation order used by Figs 8–10: individual prefetchers, the non-RL
/// ensemble, then the two ReSemble variants.
pub const MAIN_LINEUP: &[&str] = &[
    "bo",
    "spp",
    "isb",
    "domino",
    "sbp_e",
    "resemble_t",
    "resemble",
];

/// The §VI-B lineup with the Voyager-like neural prefetcher.
pub const VOYAGER_LINEUP: &[&str] = &[
    "bo",
    "spp",
    "isb",
    "voyager",
    "sbp_e_v",
    "resemble",
    "resemble_v",
];

/// Build a prefetcher/controller by name.
///
/// `fast` selects the laptop-scale ReSemble training configuration
/// (batch 32; see `ResembleConfig::fast`). Panics on unknown names; use
/// [`try_make`] where an unknown name is recoverable (e.g. the serve
/// registry rejecting a client's Hello).
pub fn make(name: &str, seed: u64, fast: bool) -> Box<dyn Prefetcher + Send> {
    match try_make(name, seed, fast) {
        Some(p) => p,
        None => panic!("unknown prefetcher '{name}'"),
    }
}

/// Build a prefetcher/controller by name, or `None` if the name is not in
/// the registry.
pub fn try_make(name: &str, seed: u64, fast: bool) -> Option<Box<dyn Prefetcher + Send>> {
    let cfg = if fast {
        ResembleConfig::fast()
    } else {
        ResembleConfig::default()
    };
    Some(match name {
        "bo" => Box::new(BestOffset::new()),
        "spp" => Box::new(Spp::new()),
        "isb" => Box::new(Isb::new()),
        "domino" => Box::new(Domino::new()),
        "stms" => Box::new(Stms::new()),
        "stems" => Box::new(Stems::new()),
        "markov" => Box::new(Markov::new()),
        "ghb_dc" => Box::new(GhbDc::new()),
        "vldp" => Box::new(Vldp::new()),
        "stride" => Box::new(StridePrefetcher::default()),
        "streamer" => Box::new(Streamer::default()),
        "voyager" => Box::new(NeuralTemporalPrefetcher::new(seed)),
        "sbp_e" => Box::new(SbpE::from_paper()),
        "sbp_e_v" => Box::new(SbpE::new(voyager_bank(seed), 256)),
        "resemble" => Box::new(ResembleMlp::new(paper_bank(), cfg, seed)),
        "resemble_ref" => {
            // The scalar per-sample DQN datapath: the measurement baseline
            // for the controller-throughput perf gate. Bit-identical
            // behaviour to "resemble", slower training.
            let mut m = ResembleMlp::new(paper_bank(), cfg, seed);
            m.set_datapath(resemble_core::Datapath::PerSample);
            Box::new(m)
        }
        "resemble_t" => Box::new(ResembleTabular::new(paper_bank(), cfg, 8, seed)),
        "resemble_t4" => Box::new(ResembleTabular::new(paper_bank(), cfg, 4, seed)),
        "resemble_v" => Box::new(ResembleMlp::new(voyager_bank(seed), cfg, seed)),
        "resemble_pc" => Box::new(ResembleMlp::new(
            paper_bank(),
            ResembleConfig {
                with_pc: true,
                ..cfg
            },
            seed,
        )),
        _ => return None,
    })
}

/// Display label for a prefetcher name.
pub fn label(name: &str) -> &'static str {
    match name {
        "bo" => "BO",
        "spp" => "SPP",
        "isb" => "ISB",
        "domino" => "Domino",
        "stms" => "STMS",
        "stems" => "STeMS",
        "markov" => "Markov",
        "ghb_dc" => "GHB-G/DC",
        "vldp" => "VLDP",
        "stride" => "Stride",
        "streamer" => "Streamer",
        "voyager" => "Voyager*",
        "sbp_e" | "sbp_e_v" => "SBP(E)",
        "resemble" => "ReSemble",
        "resemble_ref" => "ReSemble(ref)",
        "resemble_t" => "ReSemble-T",
        "resemble_t4" => "ReSemble-T4",
        "resemble_v" => "ReSemble+V",
        "resemble_pc" => "ReSemble+PC",
        _ => "?",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lineup_names_construct() {
        for &n in MAIN_LINEUP.iter().chain(VOYAGER_LINEUP) {
            let p = make(n, 1, true);
            assert!(!p.name().is_empty());
            assert_ne!(label(n), "?");
        }
    }

    #[test]
    #[should_panic(expected = "unknown prefetcher")]
    fn unknown_name_panics() {
        let _ = make("nope", 1, true);
    }

    #[test]
    fn try_make_distinguishes_known_from_unknown() {
        assert!(try_make("bo", 1, true).is_some());
        assert!(try_make("nope", 1, true).is_none());
    }

    #[test]
    fn reference_datapath_controller_constructs() {
        let p = make("resemble_ref", 1, true);
        assert_eq!(p.name(), "resemble_ref");
        assert_eq!(label("resemble_ref"), "ReSemble(ref)");
    }
}
