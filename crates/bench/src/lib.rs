//! # resemble-bench
//!
//! Benchmark harness regenerating every table and figure of the ReSemble
//! paper (see DESIGN.md §3 for the experiment index). Each `src/bin/`
//! binary prints a paper-vs-measured comparison; `benches/` holds the
//! Criterion micro-benchmarks and per-figure smoke benchmarks.

#![warn(missing_docs)]

pub mod cli;
pub mod factory;
pub mod report;
pub mod runner;

pub use cli::Options;
pub use runner::{run_matrix, run_one, RunResult, SweepParams};
