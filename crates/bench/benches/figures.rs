//! Per-figure/table smoke benchmarks: one Criterion benchmark per
//! table/figure of the paper, each running a miniature version of the
//! corresponding experiment pipeline so `cargo bench` exercises every
//! regeneration path end to end. The full-size regenerations are the
//! `src/bin/*` harness binaries (see DESIGN.md §3).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use resemble_bench::runner::{run_one, SweepParams};
use resemble_core::overhead::{LatencyEstimate, StorageEstimate};
use resemble_core::{ResembleConfig, ResembleMlp, ResembleTabular};
use resemble_prefetch::{paper_bank, voyager_bank, Prefetcher};
use resemble_sim::{Engine, PrefetchTiming, SimConfig};
use resemble_trace::analysis::{pc_grouped_autocorrelation, trace_autocorrelation};
use resemble_trace::gen::app_by_name;

/// Tiny sweep parameters so each figure path runs in milliseconds.
fn tiny() -> SweepParams {
    SweepParams {
        warmup: 300,
        measure: 1500,
        sim: SimConfig::test_small(),
        jobs: 1,
        ..Default::default()
    }
}

fn small_cfg() -> ResembleConfig {
    ResembleConfig {
        batch_size: 8,
        hidden_dim: 32,
        ..ResembleConfig::default()
    }
}

fn fig01(c: &mut Criterion) {
    c.bench_function("figures/fig01_autocorrelation", |b| {
        let trace = app_by_name("471.omnetpp", 1)
            .unwrap()
            .source
            .collect_n(4000);
        b.iter(|| {
            let raw = trace_autocorrelation(&trace, 20);
            let grouped = pc_grouped_autocorrelation(&trace, 20);
            black_box((raw.len(), grouped.len()))
        })
    });
}

fn table04(c: &mut Criterion) {
    c.bench_function("figures/table04_unique_states", |b| {
        b.iter(|| {
            let mut ctl = ResembleTabular::new(paper_bank(), small_cfg(), 4, 1);
            let mut engine = Engine::new(SimConfig::test_small());
            let mut src = app_by_name("433.milc", 1).unwrap().source;
            engine.run(&mut *src, Some(&mut ctl as &mut dyn Prefetcher), 0, 1500);
            black_box(ctl.agent().unique_states())
        })
    });
}

fn table06_fig06_fig07(c: &mut Criterion) {
    c.bench_function("figures/table06_fig06_fig07_reward_windows", |b| {
        b.iter(|| {
            let mut ctl = ResembleMlp::new(paper_bank(), small_cfg(), 1);
            let mut engine = Engine::new(SimConfig::test_small());
            let mut src = app_by_name("623.xalancbmk", 1).unwrap().source;
            engine.run(&mut *src, Some(&mut ctl as &mut dyn Prefetcher), 0, 2000);
            black_box((
                ctl.stats.window_rewards.len(),
                ctl.stats.window_actions.len(),
            ))
        })
    });
}

fn fig08_10(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/fig08_10");
    g.sample_size(10);
    for pf in [
        "bo",
        "spp",
        "isb",
        "domino",
        "sbp_e",
        "resemble_t",
        "resemble",
    ] {
        g.bench_function(pf, |b| {
            b.iter(|| {
                let r = run_one("433.milc", pf, &tiny());
                black_box(r.with_pf.prefetches_issued)
            })
        });
    }
    g.finish();
}

fn fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/fig11_latency");
    g.sample_size(10);
    for (latency, tp) in [(0u64, true), (40, true), (40, false)] {
        g.bench_function(
            format!("lat{latency}_{}tp", if tp { "high" } else { "low" }),
            |b| {
                b.iter(|| {
                    let mut p = tiny();
                    p.sim.prefetch_timing = PrefetchTiming {
                        latency,
                        high_throughput: tp,
                    };
                    let r = run_one("433.milc", "resemble", &p);
                    black_box(r.with_pf.cycles)
                })
            },
        );
    }
    g.finish();
}

fn fig12(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures/fig12_voyager");
    g.sample_size(10);
    g.bench_function("resemble_v", |b| {
        b.iter(|| {
            let mut ctl = ResembleMlp::new(voyager_bank(1), small_cfg(), 1);
            let mut engine = Engine::new(SimConfig::test_small());
            let mut src = app_by_name("471.omnetpp", 1).unwrap().source;
            let s = engine.run(&mut *src, Some(&mut ctl as &mut dyn Prefetcher), 300, 1500);
            black_box(s.prefetches_issued)
        })
    });
    g.finish();
}

fn tables_analytic(c: &mut Criterion) {
    c.bench_function("figures/table07_08_overhead_models", |b| {
        b.iter(|| {
            let cfg = ResembleConfig::default();
            let l = LatencyEstimate::for_config(&cfg);
            let s = StorageEstimate::for_config(&cfg);
            black_box((l.total(), s.total()))
        })
    });
}

criterion_group!(
    figures,
    fig01,
    table04,
    table06_fig06_fig07,
    fig08_10,
    fig11,
    fig12,
    tables_analytic
);
criterion_main!(figures);
