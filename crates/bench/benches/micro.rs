//! Criterion micro-benchmarks of the hot components: controller inference
//! (the Table VII latency path), one training step, preprocessing hashes,
//! cache/DRAM access, replay operations, and each prefetcher's per-access
//! throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use resemble_bench::factory;
use resemble_core::preprocess::fold_hash;
use resemble_core::{Datapath, DqnAgent, ReplayMemory, ResembleConfig};
use resemble_nn::simd;
use resemble_nn::{Activation, Matrix, Mlp, Sgd};
use resemble_prefetch::{
    BestOffset, Domino, Isb, NextLine, Prefetcher, Spp, StridePrefetcher, Vldp,
};
use resemble_sim::{Cache, Dram, DramConfig, Engine, ReferenceEngine, SimConfig};
use resemble_trace::gen::{app_by_name, StreamGen};
use resemble_trace::MemAccess;

fn bench_mlp(c: &mut Criterion) {
    let cfg = ResembleConfig::default();
    let net = Mlp::new(
        &[cfg.input_dim(), cfg.hidden_dim, cfg.action_dim],
        Activation::Relu,
        1,
    );
    let mut scratch = net.make_scratch();
    let x = [0.1f32, 0.7, 0.3, 0.9];
    c.bench_function("mlp/inference_4x100x5", |b| {
        b.iter(|| {
            let out = net.forward(black_box(&x), &mut scratch);
            black_box(out[0])
        })
    });

    let mut train_net = net.clone();
    let mut grads = train_net.make_grad_buffer();
    let mut opt = Sgd::new(0.05);
    c.bench_function("mlp/train_step_batch32", |b| {
        b.iter(|| {
            for _ in 0..32 {
                let y = train_net.forward(&x, &mut scratch)[2];
                train_net.backward(&mut scratch, &[0.0, 0.0, y - 1.0, 0.0, 0.0], &mut grads);
            }
            train_net.apply_grads(&mut grads, &mut opt);
        })
    });
}

fn bench_controller(c: &mut Criterion) {
    // The minibatch-GEMM datapath vs the scalar per-sample datapath, at
    // kernel level (forward over a 32-row batch) and at training-step
    // level (DqnAgent::train_once on a fully-valid replay, batch 256).
    let mut group = c.benchmark_group("controller");
    let cfg = ResembleConfig::default();
    let net = Mlp::new(
        &[cfg.input_dim(), cfg.hidden_dim, cfg.action_dim],
        Activation::Relu,
        1,
    );
    const B: usize = 32;
    let xs = Matrix::from_fn(B, cfg.input_dim(), |r, col| {
        ((r * 7 + col) as f32 * 0.13).sin()
    });
    let mut scratch = net.make_scratch();
    group.bench_function("forward32_per_sample", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for r in 0..B {
                acc += net.forward(xs.row(r), &mut scratch)[0];
            }
            black_box(acc)
        })
    });
    let mut bscratch = net.make_batch_scratch(B);
    group.bench_function("forward32_batched", |b| {
        b.iter(|| {
            let out = net.forward_batch(black_box(&xs), &mut bscratch);
            black_box(out.get(0, 0))
        })
    });
    // Full training batch: the two GEMM passes of one SGD step.
    const TB: usize = 256;
    let txs = Matrix::from_fn(TB, cfg.input_dim(), |r, col| {
        ((r * 7 + col) as f32 * 0.13).sin()
    });
    let mut tscratch = net.make_batch_scratch(TB);
    group.bench_function("forward256_batched", |b| {
        b.iter(|| {
            let out = net.forward_batch(black_box(&txs), &mut tscratch);
            black_box(out.get(0, 0))
        })
    });
    let tnet = net.clone();
    let mut tgrads = tnet.make_grad_buffer();
    let og = Matrix::from_fn(
        TB,
        cfg.action_dim,
        |r, col| {
            if col == r % 5 {
                0.3
            } else {
                0.0
            }
        },
    );
    tnet.forward_batch(&txs, &mut tscratch);
    group.bench_function("backward256_batched", |b| {
        b.iter(|| {
            tnet.backward_batch(&mut tscratch, black_box(&og), &mut tgrads);
            black_box(tgrads.samples)
        })
    });
    // Per-backend variants of the two full-training-batch kernels: each
    // available SIMD backend is forced for the measurement's duration so
    // the report attributes GEMM throughput to an ISA (the unsuffixed
    // names above measure whatever runtime dispatch selected).
    for &be in simd::available() {
        group.bench_function(format!("forward256_batched_{be}"), |b| {
            let _guard = simd::force(be);
            b.iter(|| {
                let out = net.forward_batch(black_box(&txs), &mut tscratch);
                black_box(out.get(0, 0))
            })
        });
        group.bench_function(format!("backward256_batched_{be}"), |b| {
            let _guard = simd::force(be);
            b.iter(|| {
                tnet.backward_batch(&mut tscratch, black_box(&og), &mut tgrads);
                black_box(tgrads.samples)
            })
        });
    }
    for (label, dp) in [
        ("train_once_batched", Datapath::Batched),
        ("train_once_per_sample", Datapath::PerSample),
    ] {
        let mut agent = DqnAgent::new(cfg, 1);
        agent.set_datapath(dp);
        let mut replay = ReplayMemory::new(cfg.replay_capacity, cfg.window, cfg.input_dim());
        for i in 0..cfg.replay_capacity as u64 {
            let v = (i as f32 * 0.37).sin();
            let s = [v, 1.0 - v, v * v, 0.5];
            let id = replay.push(&s, (i % 5) as usize, &[]);
            replay.set_next_state(id, &s);
        }
        group.bench_function(label, |b| b.iter(|| agent.train_once(&replay)));
    }
    group.finish();
}

fn bench_preprocess(c: &mut Criterion) {
    c.bench_function("preprocess/fold_hash_16", |b| {
        b.iter(|| fold_hash(black_box(0xdead_beef_1234_5678), 16))
    });
}

fn bench_cache_and_dram(c: &mut Criterion) {
    let mut cache = Cache::new("llc", 1024 * 1024, 16);
    let mut i = 0u64;
    c.bench_function("sim/cache_access_miss_fill", |b| {
        b.iter(|| {
            i = i.wrapping_add(64);
            cache.access(black_box(i), false);
            cache.fill(i, false, false)
        })
    });
    // Hit path over a resident ring: the dominant probe in the engine's
    // hot loop (L1 hits are the bulk of every trace).
    let mut hit_cache = Cache::new("l1d", 64 * 1024, 12); // 85 sets: non-pow2 indexing
    for w in 0..128u64 {
        hit_cache.fill(0x10_0000 + w * 64, false, false);
    }
    let mut j = 0u64;
    c.bench_function("sim/cache_access_hit_85sets", |b| {
        b.iter(|| {
            j = (j + 1) % 128;
            black_box(hit_cache.access(0x10_0000 + j * 64, false))
        })
    });
    let mut dram = Dram::new(DramConfig::default());
    let mut block = 0u64;
    let mut cycle = 0u64;
    c.bench_function("sim/dram_access", |b| {
        b.iter(|| {
            block = block.wrapping_add(1);
            cycle += 4;
            dram.access(black_box(block), cycle)
        })
    });
}

fn bench_replay(c: &mut Criterion) {
    let mut replay = ReplayMemory::new(2000, 256, 4);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let mut assigned = Vec::new();
    let mut i = 0u64;
    c.bench_function("replay/push_access_cycle", |b| {
        b.iter(|| {
            i += 1;
            replay.on_access(black_box(i % 512), &mut assigned);
            let id = replay.push(&[0.1, 0.2, 0.3, 0.4], 0, &[i % 512 + 1]);
            replay.set_next_state(id, &[0.2, 0.3, 0.4, 0.5]);
        })
    });
    let mut ids = Vec::new();
    c.bench_function("replay/sample_batch32", |b| {
        b.iter(|| {
            replay.sample_into(32, &mut rng, &mut ids);
            black_box(ids.len())
        })
    });
}

fn bench_prefetchers(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefetcher_on_access");
    let mk: Vec<(&str, Box<dyn Prefetcher>)> = vec![
        ("next_line", Box::new(NextLine::new(1))),
        ("stride", Box::new(StridePrefetcher::default())),
        ("bo", Box::new(BestOffset::new())),
        ("spp", Box::new(Spp::new())),
        ("isb", Box::new(Isb::new())),
        ("domino", Box::new(Domino::new())),
        ("vldp", Box::new(Vldp::new())),
    ];
    for (name, mut pf) in mk {
        let mut out = Vec::new();
        let mut i = 0u64;
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                i += 1;
                // Mixed stream: mostly sequential with periodic jumps.
                let addr = if i.is_multiple_of(17) {
                    (i * 0x9E37) << 8
                } else {
                    0x10_0000 + i * 64
                };
                out.clear();
                pf.on_access(
                    &MemAccess::load(i, 0x400 + (i % 4) * 8, addr),
                    false,
                    &mut out,
                );
                black_box(out.len())
            })
        });
    }
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    // Whole-engine throughput on a streaming workload, optimized vs seed
    // reference — the micro view of what perf_gate measures end to end.
    let mut group = c.benchmark_group("engine_run");
    group.sample_size(10);
    let cfg = SimConfig::harness();
    const N: usize = 20_000;
    group.bench_function("optimized_stream_20k", |b| {
        b.iter(|| {
            let mut e = Engine::new(cfg);
            let mut src = StreamGen::new(1, 4, 4096, 10);
            black_box(e.run(&mut src, None, 0, N))
        })
    });
    group.bench_function("reference_stream_20k", |b| {
        b.iter(|| {
            let mut e = ReferenceEngine::new(cfg);
            let mut src = StreamGen::new(1, 4, 4096, 10);
            black_box(e.run(&mut src, None, 0, N))
        })
    });
    // An irregular app stresses the MSHR/event-queue paths harder.
    group.bench_function("optimized_mcf_20k", |b| {
        b.iter(|| {
            let mut e = Engine::new(cfg);
            let mut src = app_by_name("429.mcf", 1).expect("app").source;
            black_box(e.run(&mut *src, None, 0, N))
        })
    });
    group.finish();
}

fn bench_ensemble(c: &mut Criterion) {
    // Full ensemble controllers on the engine: the per-access cost of the
    // RL machinery (bank observation + inference + replay + training).
    let mut group = c.benchmark_group("ensemble_on_engine");
    group.sample_size(10);
    let cfg = SimConfig::harness();
    const N: usize = 10_000;
    for name in ["sbp_e", "resemble_t", "resemble"] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut e = Engine::new(cfg);
                let mut src = app_by_name("433.milc", 1).expect("app").source;
                let mut pf = factory::make(name, 1, true);
                black_box(e.run(&mut *src, Some(&mut *pf), 0, N))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mlp,
    bench_controller,
    bench_preprocess,
    bench_cache_and_dram,
    bench_replay,
    bench_prefetchers,
    bench_engine,
    bench_ensemble
);
criterion_main!(benches);
