//! The DESIGN.md §9 contract, end to end: every byte a sweep emits —
//! serialized results, derived CSV rows — is identical at `--jobs 1`,
//! `--jobs 2`, and `--jobs 8`. Worker count is a throughput knob, never
//! an output knob.

use resemble_bench::runner::{run_matrix, RunResult, SweepParams};
use resemble_prefetch::{Prefetcher, Spp};
use resemble_runtime::Sweep;
use resemble_sim::{Engine, SimConfig};

fn params(jobs: usize) -> SweepParams {
    SweepParams {
        warmup: 500,
        measure: 2500,
        sim: SimConfig::test_small(),
        jobs,
        ..Default::default()
    }
}

fn sweep_at(jobs: usize) -> Vec<RunResult> {
    let apps = vec![
        "433.milc".to_string(),
        "471.omnetpp".to_string(),
        "623.xalancbmk".to_string(),
    ];
    run_matrix(&apps, &["bo", "isb", "resemble_t"], &params(jobs))
}

/// The CSV shape the figure bins derive from a matrix: one row per
/// (app, pf) with the headline metrics at full float precision, so any
/// drift — reordering or numeric — flips bytes.
fn to_csv(results: &[RunResult]) -> String {
    let mut out = String::from("app,pf,accuracy,coverage,ipc_improvement,mpki_reduction\n");
    for r in results {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            r.app,
            r.pf,
            r.accuracy_pct(),
            r.coverage_pct(),
            r.ipc_improvement_pct(),
            r.mpki_reduction_pct()
        ));
    }
    out
}

#[test]
fn json_and_csv_outputs_are_byte_identical_across_jobs_1_2_8() {
    let serial = sweep_at(1);
    let serial_json = serde_json::to_string_pretty(&serial).unwrap();
    let serial_csv = to_csv(&serial);
    for jobs in [2usize, 8] {
        let par = sweep_at(jobs);
        assert_eq!(
            serial_json,
            serde_json::to_string_pretty(&par).unwrap(),
            "JSON bytes must not depend on worker count (jobs={jobs})"
        );
        assert_eq!(
            serial_csv,
            to_csv(&par),
            "CSV bytes must not depend on worker count (jobs={jobs})"
        );
    }
}

/// One engine run of the kind the Sweep-ported bins push as jobs
/// (ext_six_member, ext_quantization, table06_rewards): deterministic
/// given (app, pf, seed) only.
fn sweep_cell(app: &str, with_pf: bool, seed: u64) -> (f64, f64) {
    let mut engine = Engine::new(SimConfig::test_small());
    let mut src = resemble_trace::gen::app_by_name(app, seed)
        .expect("known app")
        .source;
    let stats = if with_pf {
        let mut pf = Spp::new();
        engine.run(&mut *src, Some(&mut pf as &mut dyn Prefetcher), 300, 1500)
    } else {
        engine.run(&mut *src, None, 300, 1500)
    };
    (stats.ipc(), stats.accuracy())
}

/// Mirrors the grouped shape the ported bins use: contiguous groups of
/// engine-run jobs, each group reduced to a table row as it completes.
fn grouped_sweep_at(jobs: usize) -> String {
    let apps = ["433.milc", "471.omnetpp"];
    let mut sweep = Sweep::quiet("determinism-grouped", jobs).base_seed(42);
    for with_pf in [false, true] {
        for &app in &apps {
            sweep.push_in(
                format!("pf={with_pf}"),
                format!("pf={with_pf}/{app}"),
                move |_| sweep_cell(app, with_pf, 42),
            );
        }
    }
    let rows = sweep.run_reduced(|group, parts| {
        let cells: Vec<String> = parts
            .iter()
            .map(|(ipc, acc)| format!("{ipc},{acc}"))
            .collect();
        format!("{group}:{}", cells.join(";"))
    });
    rows.join("\n")
}

#[test]
fn grouped_sweep_rows_are_byte_identical_across_jobs_1_2_8() {
    let serial = grouped_sweep_at(1);
    for jobs in [2usize, 8] {
        assert_eq!(
            serial,
            grouped_sweep_at(jobs),
            "grouped-reduce bytes must not depend on worker count (jobs={jobs})"
        );
    }
}

#[test]
fn env_override_matches_explicit_jobs() {
    // `jobs: 0` defers to RESEMBLE_JOBS; the bytes still must not move.
    // Env mutation is process-global, so keep it inside this one test.
    let serial = sweep_at(1);
    std::env::set_var("RESEMBLE_JOBS", "3");
    let via_env = sweep_at(0);
    std::env::remove_var("RESEMBLE_JOBS");
    assert_eq!(
        serde_json::to_string_pretty(&serial).unwrap(),
        serde_json::to_string_pretty(&via_env).unwrap(),
        "RESEMBLE_JOBS must change throughput only, never bytes"
    );
}
