//! The DESIGN.md §9 contract, end to end: every byte a sweep emits —
//! serialized results, derived CSV rows — is identical at `--jobs 1`,
//! `--jobs 2`, and `--jobs 8`. Worker count is a throughput knob, never
//! an output knob.

use resemble_bench::runner::{run_matrix, RunResult, SweepParams};
use resemble_sim::SimConfig;

fn params(jobs: usize) -> SweepParams {
    SweepParams {
        warmup: 500,
        measure: 2500,
        sim: SimConfig::test_small(),
        jobs,
        ..Default::default()
    }
}

fn sweep_at(jobs: usize) -> Vec<RunResult> {
    let apps = vec![
        "433.milc".to_string(),
        "471.omnetpp".to_string(),
        "623.xalancbmk".to_string(),
    ];
    run_matrix(&apps, &["bo", "isb", "resemble_t"], &params(jobs))
}

/// The CSV shape the figure bins derive from a matrix: one row per
/// (app, pf) with the headline metrics at full float precision, so any
/// drift — reordering or numeric — flips bytes.
fn to_csv(results: &[RunResult]) -> String {
    let mut out = String::from("app,pf,accuracy,coverage,ipc_improvement,mpki_reduction\n");
    for r in results {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            r.app,
            r.pf,
            r.accuracy_pct(),
            r.coverage_pct(),
            r.ipc_improvement_pct(),
            r.mpki_reduction_pct()
        ));
    }
    out
}

#[test]
fn json_and_csv_outputs_are_byte_identical_across_jobs_1_2_8() {
    let serial = sweep_at(1);
    let serial_json = serde_json::to_string_pretty(&serial).unwrap();
    let serial_csv = to_csv(&serial);
    for jobs in [2usize, 8] {
        let par = sweep_at(jobs);
        assert_eq!(
            serial_json,
            serde_json::to_string_pretty(&par).unwrap(),
            "JSON bytes must not depend on worker count (jobs={jobs})"
        );
        assert_eq!(
            serial_csv,
            to_csv(&par),
            "CSV bytes must not depend on worker count (jobs={jobs})"
        );
    }
}

#[test]
fn env_override_matches_explicit_jobs() {
    // `jobs: 0` defers to RESEMBLE_JOBS; the bytes still must not move.
    // Env mutation is process-global, so keep it inside this one test.
    let serial = sweep_at(1);
    std::env::set_var("RESEMBLE_JOBS", "3");
    let via_env = sweep_at(0);
    std::env::remove_var("RESEMBLE_JOBS");
    assert_eq!(
        serde_json::to_string_pretty(&serial).unwrap(),
        serde_json::to_string_pretty(&via_env).unwrap(),
        "RESEMBLE_JOBS must change throughput only, never bytes"
    );
}
