//! Multi-core simulation — the paper's §VIII future work ("ensemble
//! prefetching for multi-core architectures").
//!
//! N cores each have a private L1D/L2 and their own timing state (same
//! analytic OoO model as [`crate::engine::Engine`]) and share the LLC, its
//! MSHRs, and DRAM. Cores advance in round-robin access order — an
//! approximation of concurrent execution that preserves what matters for
//! the prefetching question: shared-LLC capacity contention, shared-MSHR
//! pressure, and DRAM bank interference between cores' demand and
//! prefetch streams. Each core may host its own prefetcher/controller
//! (the private-controller organization the paper hints at).

use crate::cache::{Cache, Lookup};
use crate::config::SimConfig;
use crate::dram::Dram;
use crate::queue::TimeQueue;
use crate::stats::SimStats;
use resemble_prefetch::{CacheEvent, Prefetcher};
use resemble_trace::record::{block_addr, block_of};
use resemble_trace::util::{FxHashMap, FxHashSet};
use resemble_trace::{MemAccess, TraceSource};
use std::collections::VecDeque;

/// Per-core private state.
struct Core {
    l1d: Cache,
    l2: Cache,
    retire_slots: u64,
    prev_instr: Option<u64>,
    first_instr: Option<u64>,
    rob_window: VecDeque<(u64, u64)>,
    rob_gate: u64,
    stats: SimStats,
    /// prefetches in flight issued by this core
    inflight_prefetch: FxHashMap<u64, u64>,
    unattributed: FxHashSet<u64>,
    pf_queue: TimeQueue<(u64, u64)>,
    inflight_demand: FxHashMap<u64, u64>,
    demand_queue: TimeQueue<(u64, u64)>,
    sugg: Vec<u64>,
}

impl Core {
    fn new(cfg: &SimConfig) -> Self {
        Self {
            l1d: Cache::new("l1d", cfg.l1d_size, cfg.l1d_ways),
            l2: Cache::new("l2", cfg.l2_size, cfg.l2_ways),
            retire_slots: 0,
            prev_instr: None,
            first_instr: None,
            rob_window: VecDeque::new(),
            rob_gate: 0,
            stats: SimStats::default(),
            inflight_prefetch: FxHashMap::default(),
            unattributed: FxHashSet::default(),
            pf_queue: TimeQueue::with_capacity(64),
            inflight_demand: FxHashMap::default(),
            demand_queue: TimeQueue::with_capacity(64),
            sugg: Vec::new(),
        }
    }

    fn raw_stats(&self) -> SimStats {
        let mut s = self.stats;
        s.cycles = self.retire_slots / 4;
        s.instructions = match (self.first_instr, self.prev_instr) {
            (Some(f), Some(l)) => l - f + 1,
            _ => 0,
        };
        s
    }
}

/// N cores over a shared LLC and DRAM.
pub struct MultiCoreEngine {
    cfg: SimConfig,
    cores: Vec<Core>,
    llc: Cache,
    dram: Dram,
    /// shared LLC MSHR occupancy (completion cycles)
    outstanding: TimeQueue<u64>,
    /// reusable batch buffer for prefetcher fill/evict notifications
    events: Vec<CacheEvent>,
}

impl MultiCoreEngine {
    /// Build with `n_cores` private L1/L2 pairs over one shared LLC.
    ///
    /// DRAM bank machines (and therefore aggregate bandwidth) scale with
    /// the core count, matching Table V's "8 GB/s bandwidth *per core*";
    /// MSHRs scale likewise.
    pub fn new(cfg: SimConfig, n_cores: usize) -> Self {
        assert!(n_cores >= 1);
        let mut dram_cfg = cfg.dram;
        dram_cfg.banks *= n_cores;
        let mut shared_cfg = cfg;
        shared_cfg.llc_mshrs *= n_cores;
        Self {
            cores: (0..n_cores).map(|_| Core::new(&cfg)).collect(),
            llc: Cache::with_policy("llc", cfg.llc_size, cfg.llc_ways, cfg.llc_replacement),
            dram: Dram::new(dram_cfg),
            outstanding: TimeQueue::with_capacity(128),
            events: Vec::with_capacity(32),
            cfg: shared_cfg,
        }
    }

    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// Shared-DRAM row-buffer statistics (hits, misses).
    pub fn dram_stats(&self) -> (u64, u64) {
        (self.dram.row_hits, self.dram.row_misses)
    }

    fn mshr_admit(&mut self, now: u64) -> Result<(), u64> {
        while let Some(&c) = self.outstanding.peek() {
            if c <= now {
                self.outstanding.pop();
            } else {
                break;
            }
        }
        if self.outstanding.len() < self.cfg.llc_mshrs {
            Ok(())
        } else {
            Err(self.outstanding.peek().copied().unwrap_or(now))
        }
    }

    fn drain_fills(
        &mut self,
        core_idx: usize,
        now: u64,
        pf: &mut Option<&mut (dyn Prefetcher + '_)>,
    ) {
        let notify = pf.is_some();
        loop {
            let core = &mut self.cores[core_idx];
            let Some(&(ready, block)) = core.pf_queue.peek() else {
                break;
            };
            if ready > now {
                break;
            }
            core.pf_queue.pop();
            if core.inflight_prefetch.remove(&block).is_none() {
                continue;
            }
            let attributed = !core.unattributed.remove(&block);
            if let Some(ev) = self.llc.fill(block_addr(block), false, attributed) {
                if ev.unused_prefetch {
                    self.cores[core_idx].stats.prefetches_unused_evicted += 1;
                }
                if notify {
                    self.events.push(CacheEvent::Evict {
                        addr: block_addr(ev.block),
                        unused_prefetch: ev.unused_prefetch,
                    });
                }
            }
            if notify {
                self.events.push(CacheEvent::PrefetchFill {
                    addr: block_addr(block),
                });
            }
        }
        let core = &mut self.cores[core_idx];
        while let Some(&(ready, block)) = core.demand_queue.peek() {
            if ready > now {
                break;
            }
            core.demand_queue.pop();
            core.inflight_demand.remove(&block);
            if notify {
                self.events.push(CacheEvent::DemandFill {
                    addr: block_addr(block),
                });
            }
        }
        if !self.events.is_empty() {
            if let Some(p) = pf.as_deref_mut() {
                p.on_cache_events(&self.events);
            }
            self.events.clear();
        }
    }

    /// Advance one core by one access (same model as `Engine::step`).
    fn step(&mut self, core_idx: usize, a: &MemAccess, mut pf: Option<&mut (dyn Prefetcher + '_)>) {
        let cfg = self.cfg;
        let gap = {
            let core = &mut self.cores[core_idx];
            if core.first_instr.is_none() {
                core.first_instr = Some(a.instr_id);
            }
            let gap = match core.prev_instr {
                Some(p) => a.instr_id.saturating_sub(p + 1),
                None => 0,
            };
            core.prev_instr = Some(a.instr_id);
            gap
        };
        let fetch_cycle = a.instr_id / cfg.width;
        {
            let core = &mut self.cores[core_idx];
            while let Some(&(id, retire)) = core.rob_window.front() {
                if id + cfg.rob_size <= a.instr_id {
                    core.rob_gate = core.rob_gate.max(retire);
                    core.rob_window.pop_front();
                } else {
                    break;
                }
            }
        }
        let issue = fetch_cycle.max(self.cores[core_idx].rob_gate);
        self.drain_fills(core_idx, issue, &mut pf);

        // --- memory access through private L1/L2 then the shared LLC ---
        let complete = {
            let core = &mut self.cores[core_idx];
            core.stats.demand_accesses += 1;
            if matches!(core.l1d.access(a.addr, a.is_write), Lookup::Hit { .. }) {
                issue + cfg.l1d_latency
            } else {
                core.stats.l1d_misses += 1;
                let l2_t = issue + cfg.l1d_latency + cfg.l2_latency;
                if matches!(core.l2.access(a.addr, a.is_write), Lookup::Hit { .. }) {
                    core.l1d.fill_known_miss(a.addr, a.is_write, false);
                    l2_t
                } else {
                    core.stats.l2_misses += 1;
                    let block = block_of(a.addr);
                    let llc_t = l2_t + cfg.llc_latency;
                    let lookup = self.llc.access(a.addr, a.is_write);
                    let llc_hit = matches!(lookup, Lookup::Hit { .. });
                    let done = match lookup {
                        Lookup::Hit {
                            first_use_of_prefetch,
                        } => {
                            core.stats.llc_demand_hits += 1;
                            if first_use_of_prefetch {
                                core.stats.prefetches_useful += 1;
                            }
                            core.l2.fill_known_miss(a.addr, a.is_write, false);
                            core.l1d.fill_known_miss(a.addr, a.is_write, false);
                            llc_t
                        }
                        Lookup::Miss => {
                            if let Some(ready) = core.inflight_prefetch.remove(&block) {
                                core.stats.llc_demand_hits += 1;
                                if !core.unattributed.remove(&block) {
                                    core.stats.prefetches_useful += 1;
                                    core.stats.prefetches_late += 1;
                                }
                                if let Some(ev) =
                                    self.llc.fill_known_miss(a.addr, a.is_write, false)
                                {
                                    if ev.unused_prefetch {
                                        core.stats.prefetches_unused_evicted += 1;
                                    }
                                }
                                core.l2.fill_known_miss(a.addr, a.is_write, false);
                                core.l1d.fill_known_miss(a.addr, a.is_write, false);
                                llc_t.max(ready)
                            } else if let Some(&ready) = core.inflight_demand.get(&block) {
                                llc_t.max(ready)
                            } else {
                                core.stats.llc_demand_misses += 1;
                                // Shared MSHRs.
                                let start = {
                                    // inline admit over self.outstanding
                                    while let Some(&c) = self.outstanding.peek() {
                                        if c <= issue {
                                            self.outstanding.pop();
                                        } else {
                                            break;
                                        }
                                    }
                                    if self.outstanding.len() < cfg.llc_mshrs {
                                        llc_t
                                    } else {
                                        // MSHRs full: wait only the residual
                                        // time until the earliest entry
                                        // frees (the hierarchy traversal is
                                        // already inside llc_t) and take
                                        // over the freed slot.
                                        let free_at = self.outstanding.pop().unwrap_or(issue);
                                        llc_t.max(free_at)
                                    }
                                };
                                let done = self.dram.access(block, start);
                                self.outstanding.push(done);
                                debug_assert!(
                                    self.outstanding.len() <= cfg.llc_mshrs,
                                    "shared MSHR occupancy {} exceeds capacity {} after demand miss",
                                    self.outstanding.len(),
                                    cfg.llc_mshrs
                                );
                                core.inflight_demand.insert(block, done);
                                core.demand_queue.push((done, block));
                                if let Some(ev) =
                                    self.llc.fill_known_miss(a.addr, a.is_write, false)
                                {
                                    if ev.unused_prefetch {
                                        core.stats.prefetches_unused_evicted += 1;
                                    }
                                }
                                core.l2.fill_known_miss(a.addr, a.is_write, false);
                                core.l1d.fill_known_miss(a.addr, a.is_write, false);
                                done
                            }
                        }
                    };
                    // Prefetcher hook for this core (suggestions copied
                    // out so the core borrow can be released for the
                    // shared-structure operations below).
                    if let Some(p) = pf {
                        core.sugg.clear();
                        p.on_access(a, llc_hit, &mut core.sugg);
                        let sugg = std::mem::take(&mut core.sugg);
                        let timing = cfg.prefetch_timing;
                        let ready_base = issue + timing.latency;
                        for &s in &sugg {
                            let sb = block_of(s);
                            let core = &mut self.cores[core_idx];
                            if self.llc.contains(s)
                                || core.inflight_prefetch.contains_key(&sb)
                                || core.inflight_demand.contains_key(&sb)
                            {
                                continue;
                            }
                            if self.mshr_admit(ready_base).is_err() {
                                break;
                            }
                            let done = self.dram.access(sb, ready_base + cfg.llc_latency);
                            self.outstanding.push(done);
                            debug_assert!(
                                self.outstanding.len() <= cfg.llc_mshrs,
                                "shared MSHR occupancy {} exceeds capacity {} after prefetch issue",
                                self.outstanding.len(),
                                cfg.llc_mshrs
                            );
                            let core = &mut self.cores[core_idx];
                            core.inflight_prefetch.insert(sb, done);
                            core.pf_queue.push((done, sb));
                            core.stats.prefetches_issued += 1;
                        }
                        self.cores[core_idx].sugg = sugg;
                    }
                    if a.is_write {
                        issue + 1
                    } else {
                        done
                    }
                }
            }
        };
        let core = &mut self.cores[core_idx];
        core.retire_slots = (core.retire_slots + gap + 1).max(complete.saturating_mul(cfg.width));
        let retire = core.retire_slots / cfg.width;
        core.rob_window.push_back((a.instr_id, retire));
    }

    /// Step the cores in *time order* — always advance the core whose
    /// retirement frontier is earliest — until each has consumed `quota`
    /// accesses. Time-ordered interleaving keeps shared-resource
    /// interactions (DRAM bank queueing, MSHR occupancy) physically
    /// consistent even when cores run at very different speeds.
    fn run_phase(
        &mut self,
        sources: &mut [Box<dyn TraceSource + Send>],
        prefetchers: &mut [Option<Box<dyn Prefetcher + Send>>],
        quota: usize,
    ) {
        let n = self.cores.len();
        let mut remaining: Vec<usize> = vec![quota; n];
        loop {
            let mut best: Option<(usize, u64)> = None;
            for (c, &rem) in remaining.iter().enumerate() {
                if rem == 0 {
                    continue;
                }
                let t = self.cores[c].retire_slots;
                if best.map(|(_, bt)| t < bt).unwrap_or(true) {
                    best = Some((c, t));
                }
            }
            let Some((c, _)) = best else { break };
            match sources[c].next_access() {
                Some(a) => {
                    let pf = prefetchers[c]
                        .as_deref_mut()
                        .map(|p| p as &mut (dyn Prefetcher + '_));
                    self.step(c, &a, pf);
                    remaining[c] -= 1;
                }
                None => remaining[c] = 0,
            }
        }
    }

    /// Run all cores: `warmup` + `measure` accesses per core. Returns
    /// per-core measured statistics.
    pub fn run(
        &mut self,
        sources: &mut [Box<dyn TraceSource + Send>],
        prefetchers: &mut [Option<Box<dyn Prefetcher + Send>>],
        warmup: usize,
        measure: usize,
    ) -> Vec<SimStats> {
        assert_eq!(sources.len(), self.cores.len(), "one source per core");
        assert_eq!(
            prefetchers.len(),
            self.cores.len(),
            "one prefetcher slot per core"
        );
        self.run_phase(sources, prefetchers, warmup);
        // Measurement boundary per core + shared LLC.
        self.llc.clear_prefetch_marks();
        for core in &mut self.cores {
            core.unattributed = core.inflight_prefetch.keys().copied().collect();
        }
        let before: Vec<SimStats> = self.cores.iter().map(Core::raw_stats).collect();
        self.run_phase(sources, prefetchers, measure);
        self.cores
            .iter()
            .zip(before)
            .map(|(core, b)| diff(core.raw_stats(), b))
            .collect()
    }
}

fn diff(a: SimStats, b: SimStats) -> SimStats {
    SimStats {
        instructions: a.instructions - b.instructions,
        cycles: a.cycles - b.cycles,
        demand_accesses: a.demand_accesses - b.demand_accesses,
        l1d_misses: a.l1d_misses - b.l1d_misses,
        l2_misses: a.l2_misses - b.l2_misses,
        llc_demand_hits: a.llc_demand_hits - b.llc_demand_hits,
        llc_demand_misses: a.llc_demand_misses - b.llc_demand_misses,
        prefetches_issued: a.prefetches_issued - b.prefetches_issued,
        prefetches_useful: a.prefetches_useful - b.prefetches_useful,
        prefetches_late: a.prefetches_late - b.prefetches_late,
        prefetches_unused_evicted: a.prefetches_unused_evicted - b.prefetches_unused_evicted,
        dram_row_hits: 0,
        dram_row_misses: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resemble_prefetch::NextLine;
    use resemble_trace::gen::StreamGen;

    fn sources(n: usize, seed: u64) -> Vec<Box<dyn TraceSource + Send>> {
        (0..n)
            .map(|i| {
                Box::new(StreamGen::new(seed + i as u64, 2, 100_000, 6).with_write_ratio(0.0))
                    as Box<dyn TraceSource + Send>
            })
            .collect()
    }

    #[test]
    fn single_core_behaves_like_engine_ballpark() {
        let cfg = SimConfig::test_small();
        let mut mc = MultiCoreEngine::new(cfg, 1);
        let mut srcs = sources(1, 1);
        let mut pfs: Vec<Option<Box<dyn Prefetcher + Send>>> = vec![None];
        let stats = mc.run(&mut srcs, &mut pfs, 1000, 10_000);
        let mut engine = crate::engine::Engine::new(cfg);
        let mut src = StreamGen::new(1, 2, 100_000, 6).with_write_ratio(0.0);
        let single = engine.run(&mut src, None, 1000, 10_000);
        let (a, b) = (stats[0].ipc(), single.ipc());
        assert!((a - b).abs() / b < 0.05, "multicore {a} vs engine {b}");
    }

    #[test]
    fn shared_llc_contention_slows_cores() {
        let cfg = SimConfig::test_small();
        // Alone.
        let mut mc1 = MultiCoreEngine::new(cfg, 1);
        let mut pf1: Vec<Option<Box<dyn Prefetcher + Send>>> = vec![None];
        let alone = mc1.run(&mut sources(1, 7), &mut pf1, 1000, 10_000)[0];
        // With three cache-hungry neighbors.
        let mut mc4 = MultiCoreEngine::new(cfg, 4);
        let mut pf4: Vec<Option<Box<dyn Prefetcher + Send>>> = (0..4).map(|_| None).collect();
        let together = mc4.run(&mut sources(4, 7), &mut pf4, 1000, 10_000);
        assert!(
            together[0].ipc() <= alone.ipc() * 1.02,
            "shared resources cannot speed a core up: {} vs {}",
            together[0].ipc(),
            alone.ipc()
        );
        // All cores made progress.
        assert!(together.iter().all(|s| s.instructions > 0 && s.ipc() > 0.0));
    }

    #[test]
    fn per_core_prefetchers_help_both_cores() {
        let cfg = SimConfig::test_small();
        let mut mc = MultiCoreEngine::new(cfg, 2);
        let mut none: Vec<Option<Box<dyn Prefetcher + Send>>> = vec![None, None];
        let base = mc.run(&mut sources(2, 3), &mut none, 2000, 20_000);
        let mut mc = MultiCoreEngine::new(cfg, 2);
        let mut pfs: Vec<Option<Box<dyn Prefetcher + Send>>> = vec![
            Some(Box::new(NextLine::new(4))),
            Some(Box::new(NextLine::new(4))),
        ];
        let with = mc.run(&mut sources(2, 3), &mut pfs, 2000, 20_000);
        for c in 0..2 {
            assert!(
                with[c].llc_demand_misses < base[c].llc_demand_misses,
                "core {c}: {} vs {}",
                with[c].llc_demand_misses,
                base[c].llc_demand_misses
            );
        }
    }

    #[test]
    fn deterministic() {
        let cfg = SimConfig::test_small();
        let run = || {
            let mut mc = MultiCoreEngine::new(cfg, 2);
            let mut pfs: Vec<Option<Box<dyn Prefetcher + Send>>> =
                vec![Some(Box::new(NextLine::new(2))), None];
            format!("{:?}", mc.run(&mut sources(2, 9), &mut pfs, 500, 5_000))
        };
        assert_eq!(run(), run());
    }
}
