//! Event queues for the timing engine.
//!
//! The engine's completion events (prefetch fills, demand fills, MSHR
//! occupancy) are drained at a *monotonically non-decreasing* "now": each
//! access's issue cycle is `fetch_cycle.max(rob_gate)`, and both terms
//! only grow. That turns the general priority-queue problem into a
//! calendar-style one: a sorted array consumed from the front, with new
//! events inserted near the tail (completion times trend upward with
//! simulated time). [`TimeQueue`] exploits this — a flat sorted `Vec`
//! with a consumed-prefix cursor, giving O(1) peek/pop, branch-light
//! drains, and cache-friendly binary-search inserts over the small live
//! window (bounded by the LLC MSHR count), with no per-event allocation
//! or heap sift.
//!
//! Ordering contract: elements pop in ascending `Ord` order, exactly like
//! `BinaryHeap<Reverse<T>>`; equal elements are indistinguishable, so the
//! engine's statistics are bit-identical to the heap-based seed
//! implementation (`ReferenceEngine` — property-tested in
//! `tests/proptest_invariants.rs`).

/// A min-queue over a sorted flat buffer with a consumed-prefix cursor.
#[derive(Debug, Clone)]
pub(crate) struct TimeQueue<T: Ord + Copy> {
    buf: Vec<T>,
    head: usize,
}

impl<T: Ord + Copy> TimeQueue<T> {
    /// Empty queue with `cap` preallocated slots.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
            head: 0,
        }
    }

    /// Number of live (unpopped) elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len() - self.head
    }

    /// Smallest live element, if any.
    #[inline]
    pub fn peek(&self) -> Option<&T> {
        self.buf.get(self.head)
    }

    /// Remove and return the smallest live element.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        let v = *self.buf.get(self.head)?;
        // O(1) monotonicity invariant: the live window stays sorted, so
        // the element behind the head can never be smaller.
        debug_assert!(
            self.buf.get(self.head + 1).is_none_or(|next| v <= *next),
            "TimeQueue live window out of order at pop"
        );
        self.head += 1;
        if self.head == self.buf.len() {
            // Queue drained: recycle the whole buffer for free.
            self.buf.clear();
            self.head = 0;
        }
        Some(v)
    }

    /// Insert `v`, keeping the live window sorted. Duplicates are allowed
    /// (inserted after existing equals).
    pub fn push(&mut self, v: T) {
        // Common case: v belongs at the tail (completion times trend up).
        if self.buf.last().is_none_or(|last| *last <= v) {
            self.buf.push(v);
            return;
        }
        let i = self.head + self.buf[self.head..].partition_point(|x| *x <= v);
        self.buf.insert(i, v);
        // O(1) monotonicity invariant: the insert lands between its
        // neighbors, keeping the live window sorted.
        debug_assert!(
            (i == self.head || self.buf[i - 1] <= v)
                && self.buf.get(i + 1).is_none_or(|next| v <= *next),
            "TimeQueue insert broke live-window ordering"
        );
        // Bound the dead prefix so out-of-order inserts stay cheap and the
        // buffer doesn't grow without limit across a long run.
        if self.head > 64 && self.head >= self.buf.len() / 2 {
            self.buf.drain(..self.head);
            self.head = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_ascending_order_with_duplicates() {
        let mut q = TimeQueue::with_capacity(4);
        for v in [5u64, 1, 3, 3, 9, 0, 3] {
            q.push(v);
        }
        let mut out = Vec::new();
        while let Some(v) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![0, 1, 3, 3, 3, 5, 9]);
    }

    #[test]
    fn interleaved_push_pop_matches_binary_heap() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut q = TimeQueue::with_capacity(8);
        let mut h: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        // Deterministic pseudo-random workload with drains at a
        // non-decreasing threshold, mimicking the engine's usage.
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        let mut now = 0u64;
        for step in 0..10_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = (now + x % 200, x % 7);
            q.push(key);
            h.push(Reverse(key));
            if step % 3 == 0 {
                now += x % 50;
                loop {
                    match (q.peek().copied(), h.peek().map(|r| r.0)) {
                        (Some(a), Some(b)) if a.0 <= now => {
                            assert_eq!(a, b);
                            q.pop();
                            h.pop();
                        }
                        (qa, hb) => {
                            assert_eq!(qa.filter(|v| v.0 <= now), hb.filter(|v| v.0 <= now));
                            break;
                        }
                    }
                }
            }
        }
        assert_eq!(q.len(), h.len());
    }

    #[test]
    fn len_and_compaction() {
        let mut q = TimeQueue::with_capacity(2);
        for i in 0..1000u64 {
            q.push(i);
        }
        for _ in 0..900 {
            q.pop();
        }
        assert_eq!(q.len(), 100);
        // Out-of-order insert triggers compaction of the dead prefix.
        q.push(0);
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.len(), 100);
        assert_eq!(q.peek(), Some(&900));
    }
}
