//! Trace-driven timing engine: a simplified 4-wide OoO core in front of the
//! L1D/L2/LLC hierarchy and DRAM, with prefetching at the LLC.
//!
//! The core model is the standard analytic OoO approximation used in
//! prefetching studies: instructions fetch at `width` per cycle, a load
//! issues once its ROB slot is available (the instruction `rob_size`
//! earlier has retired) and completes after its memory latency, and
//! retirement is in order at `width` per cycle. Memory-level parallelism
//! emerges naturally — independent misses overlap until the ROB or the LLC
//! MSHRs fill. Prefetches share MSHRs with demands, are dropped when MSHRs
//! are exhausted, and can be delayed by a controller-latency model
//! ([`crate::config::PrefetchTiming`], the Fig 11 study).
//!
//! This is the optimized hot path: completion events live in flat
//! `TimeQueue`s instead of binary heaps (issue times are monotone, see
//! `queue.rs`), cache probes are flat tag scans (`cache.rs`), fill/evict
//! notifications are delivered to the prefetcher as one batch per drain,
//! and prefetch suggestions are admitted against a single MSHR-expiry
//! pass per access. The seed implementation is preserved verbatim as
//! [`crate::ReferenceEngine`]; the two are property-tested to produce
//! bit-identical [`SimStats`] on arbitrary traces, and the perf gate
//! (`crates/bench/src/bin/perf_gate.rs`) measures this engine's speedup
//! against it.

use crate::cache::{Cache, Lookup};
use crate::config::SimConfig;
use crate::dram::Dram;
use crate::queue::TimeQueue;
use crate::stats::SimStats;
use resemble_prefetch::{CacheEvent, Prefetcher};
use resemble_trace::record::{block_addr, block_of};
use resemble_trace::util::FxHashMap;
use resemble_trace::{MemAccess, TraceSource};
use std::collections::VecDeque;

/// Accesses pulled from the trace source per virtual call in
/// [`Engine::run`].
const RUN_BATCH: usize = 1024;

/// The simulation engine. One engine simulates one core.
pub struct Engine {
    cfg: SimConfig,
    l1d: Cache,
    l2: Cache,
    llc: Cache,
    dram: Dram,
    /// retirement time in 1/width-cycle slots
    retire_slots: u64,
    prev_instr: Option<u64>,
    first_instr: Option<u64>,
    rob_window: VecDeque<(u64, u64)>,
    rob_gate: u64,
    /// completion cycles of requests occupying LLC MSHRs
    outstanding: TimeQueue<u64>,
    inflight_prefetch: FxHashMap<u64, u64>,
    /// in-flight prefetches issued before the measurement boundary: their
    /// fills and uses carry no prefetch attribution. Kept as a map to a
    /// flag (rather than a second set) so the common fully-attributed case
    /// costs nothing extra. Values are unused.
    unattributed_prefetch: FxHashMap<u64, ()>,
    pf_queue: TimeQueue<(u64, u64)>,
    inflight_demand: FxHashMap<u64, u64>,
    demand_queue: TimeQueue<(u64, u64)>,
    controller_busy_until: u64,
    stats: SimStats,
    sugg: Vec<u64>,
    /// reusable batch buffer for prefetcher fill/evict notifications
    events: Vec<CacheEvent>,
}

impl Engine {
    /// Build an engine from a configuration.
    pub fn new(cfg: SimConfig) -> Self {
        Self {
            l1d: Cache::new("l1d", cfg.l1d_size, cfg.l1d_ways),
            l2: Cache::new("l2", cfg.l2_size, cfg.l2_ways),
            llc: Cache::with_policy("llc", cfg.llc_size, cfg.llc_ways, cfg.llc_replacement),
            dram: Dram::new(cfg.dram),
            cfg,
            retire_slots: 0,
            prev_instr: None,
            first_instr: None,
            rob_window: VecDeque::with_capacity(512),
            rob_gate: 0,
            outstanding: TimeQueue::with_capacity(128),
            inflight_prefetch: FxHashMap::default(),
            unattributed_prefetch: FxHashMap::default(),
            pf_queue: TimeQueue::with_capacity(128),
            inflight_demand: FxHashMap::default(),
            demand_queue: TimeQueue::with_capacity(128),
            controller_busy_until: 0,
            stats: SimStats::default(),
            sugg: Vec::with_capacity(16),
            events: Vec::with_capacity(32),
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current cycle (retirement frontier).
    pub fn cycle(&self) -> u64 {
        self.retire_slots / self.cfg.width
    }

    /// Cumulative raw statistics since construction/reset.
    pub fn raw_stats(&self) -> SimStats {
        let mut s = self.stats;
        s.cycles = self.cycle();
        s.instructions = match (self.first_instr, self.prev_instr) {
            (Some(f), Some(l)) => l - f + 1,
            _ => 0,
        };
        s.dram_row_hits = self.dram.row_hits;
        s.dram_row_misses = self.dram.row_misses;
        s
    }

    /// Clear all state (caches, timing, statistics).
    pub fn reset(&mut self) {
        *self = Engine::new(self.cfg);
    }

    /// Mark the warmup → measurement boundary: prefetches issued before
    /// this point no longer count as useful/unused, so the measured
    /// accuracy reflects only measured-window prefetches.
    pub fn begin_measurement(&mut self) {
        self.llc.clear_prefetch_marks();
        self.unattributed_prefetch = self.inflight_prefetch.keys().map(|&b| (b, ())).collect();
    }

    /// Release prefetch fills that have completed by `now`. Cache-state
    /// changes happen eagerly in event order; prefetcher notifications are
    /// batched into `self.events` and delivered in one call at the end of
    /// the drain (the prefetcher observes the identical sequence — it is
    /// only consulted again after the drain).
    fn drain_prefetch_fills<'a, 'b>(
        &mut self,
        now: u64,
        prefetcher: &mut Option<&'b mut (dyn Prefetcher + 'a)>,
    ) {
        let notify = prefetcher.is_some();
        while let Some(&(ready, block)) = self.pf_queue.peek() {
            if ready > now {
                break;
            }
            self.pf_queue.pop();
            if self.inflight_prefetch.remove(&block).is_none() {
                continue; // consumed by a late demand
            }
            let attributed = self.unattributed_prefetch.remove(&block).is_none();
            let addr = block_addr(block);
            if let Some(ev) = self.llc.fill(addr, false, attributed) {
                if ev.unused_prefetch {
                    self.stats.prefetches_unused_evicted += 1;
                }
                if notify {
                    self.events.push(CacheEvent::Evict {
                        addr: block_addr(ev.block),
                        unused_prefetch: ev.unused_prefetch,
                    });
                }
            }
            if notify {
                self.events.push(CacheEvent::PrefetchFill { addr });
            }
        }
        while let Some(&(ready, block)) = self.demand_queue.peek() {
            if ready > now {
                break;
            }
            self.demand_queue.pop();
            self.inflight_demand.remove(&block);
            if notify {
                self.events.push(CacheEvent::DemandFill {
                    addr: block_addr(block),
                });
            }
        }
        if !self.events.is_empty() {
            if let Some(pf) = prefetcher.as_deref_mut() {
                pf.on_cache_events(&self.events);
            }
            self.events.clear();
        }
    }

    /// Free MSHR slots whose requests completed by `now`; returns the
    /// resulting occupancy.
    #[inline]
    fn expire_mshrs(&mut self, now: u64) -> usize {
        while let Some(&c) = self.outstanding.peek() {
            if c <= now {
                self.outstanding.pop();
            } else {
                break;
            }
        }
        self.outstanding.len()
    }

    /// Simulate one demand access; returns its completion cycle.
    fn simulate_access<'a, 'b>(
        &mut self,
        a: &MemAccess,
        issue: u64,
        prefetcher: &mut Option<&'b mut (dyn Prefetcher + 'a)>,
    ) -> u64 {
        // Scalar copies, not `let cfg = self.cfg`: SimConfig is large and
        // a full copy per access is measurable on this path.
        let l1_lat = self.cfg.l1d_latency;
        let l2_lat = self.cfg.l2_latency;
        let llc_lat = self.cfg.llc_latency;
        let llc_mshrs = self.cfg.llc_mshrs;
        self.stats.demand_accesses += 1;
        if matches!(self.l1d.access(a.addr, a.is_write), Lookup::Hit { .. }) {
            return issue + l1_lat;
        }
        self.stats.l1d_misses += 1;
        let l2_t = issue + l1_lat + l2_lat;
        if matches!(self.l2.access(a.addr, a.is_write), Lookup::Hit { .. }) {
            self.l1d.fill_known_miss(a.addr, a.is_write, false);
            return l2_t;
        }
        self.stats.l2_misses += 1;

        // --- The access reaches the LLC: this is the stream the paper's
        // prefetchers observe. ---
        let block = block_of(a.addr);
        let llc_t = l2_t + llc_lat;
        let lookup = self.llc.access(a.addr, a.is_write);
        let llc_hit = matches!(lookup, Lookup::Hit { .. });
        let complete = match lookup {
            Lookup::Hit {
                first_use_of_prefetch,
            } => {
                self.stats.llc_demand_hits += 1;
                if first_use_of_prefetch {
                    self.stats.prefetches_useful += 1;
                }
                self.l2.fill_known_miss(a.addr, a.is_write, false);
                self.l1d.fill_known_miss(a.addr, a.is_write, false);
                llc_t
            }
            Lookup::Miss => {
                // The empty-map guard keeps prefetcher-less runs from
                // hashing into a map that can never contain anything.
                let late_pf = if self.inflight_prefetch.is_empty() {
                    None
                } else {
                    self.inflight_prefetch.remove(&block)
                };
                if let Some(ready) = late_pf {
                    // Late prefetch: the line is on its way; the demand
                    // waits out the residual latency. A useful prefetch by
                    // the paper's definition (referenced before replaced),
                    // and — as in ChampSim — a prefetch *hit*, not a demand
                    // miss, for MPKI purposes.
                    self.stats.llc_demand_hits += 1;
                    if self.unattributed_prefetch.remove(&block).is_none() {
                        self.stats.prefetches_useful += 1;
                        self.stats.prefetches_late += 1;
                    }
                    self.fill_all(a, false);
                    llc_t.max(ready)
                } else if let Some(&ready) = self.inflight_demand.get(&block) {
                    // MSHR merge with an outstanding demand miss.
                    llc_t.max(ready)
                } else {
                    self.stats.llc_demand_misses += 1;
                    let start = if self.expire_mshrs(issue) < llc_mshrs {
                        llc_t
                    } else {
                        // MSHRs full: the request has already traversed
                        // L1/L2/LLC (that cost is inside `llc_t`); it only
                        // waits the *residual* time until the earliest
                        // entry frees — and it takes over that freed slot
                        // (pop), so occupancy stays bounded by `llc_mshrs`
                        // and a second stalled demand waits for the *next*
                        // slot. (The seed recharged the full traversal on
                        // top of `free_at` and left the dead entry in
                        // place — see `ReferenceEngine` module docs.)
                        let free_at = self.outstanding.pop().unwrap_or(issue);
                        llc_t.max(free_at)
                    };
                    let done = self.dram.access(block, start);
                    self.outstanding.push(done);
                    debug_assert!(
                        self.outstanding.len() <= llc_mshrs,
                        "MSHR occupancy {} exceeds capacity {llc_mshrs} after demand miss",
                        self.outstanding.len()
                    );
                    self.inflight_demand.insert(block, done);
                    self.demand_queue.push((done, block));
                    self.fill_all(a, false);
                    done
                }
            }
        };

        // --- Prefetcher hook: suggestions handled as one batch, with a
        // single MSHR-expiry pass for the whole batch (`ready_base` is
        // constant across it). ---
        if let Some(pf) = prefetcher.as_deref_mut() {
            self.sugg.clear();
            pf.on_access(a, llc_hit, &mut self.sugg);
            let timing = self.cfg.prefetch_timing;
            let mut can_issue = true;
            if !timing.high_throughput && timing.latency > 0 && self.controller_busy_until > issue {
                can_issue = false; // controller still busy with an earlier inference
            }
            if can_issue && !self.sugg.is_empty() {
                if !timing.high_throughput && timing.latency > 0 {
                    self.controller_busy_until = issue + timing.latency;
                }
                let ready_base = issue + timing.latency;
                let mut occupancy = usize::MAX; // expire lazily, once
                for i in 0..self.sugg.len() {
                    let s = self.sugg[i];
                    let sb = block_of(s);
                    if self.llc.contains(s)
                        || self.inflight_prefetch.contains_key(&sb)
                        || self.inflight_demand.contains_key(&sb)
                    {
                        continue;
                    }
                    if occupancy == usize::MAX {
                        occupancy = self.expire_mshrs(ready_base);
                    }
                    if occupancy >= llc_mshrs {
                        break; // prefetches are droppable
                    }
                    let done = self.dram.access(sb, ready_base + llc_lat);
                    self.outstanding.push(done);
                    occupancy += 1;
                    debug_assert!(
                        self.outstanding.len() <= llc_mshrs,
                        "MSHR occupancy {} exceeds capacity {llc_mshrs} after prefetch issue",
                        self.outstanding.len()
                    );
                    self.inflight_prefetch.insert(sb, done);
                    self.pf_queue.push((done, sb));
                    self.stats.prefetches_issued += 1;
                }
            }
        }

        if a.is_write {
            // Stores retire without waiting for the fill (write buffer).
            issue + 1
        } else {
            complete
        }
    }

    /// Fill the whole hierarchy for a demand miss, accounting LLC
    /// prefetch-pollution evictions. Every caller has just observed a miss
    /// in all three levels, so the presence probes are skipped.
    fn fill_all(&mut self, a: &MemAccess, is_prefetch: bool) {
        if let Some(ev) = self.llc.fill_known_miss(a.addr, a.is_write, is_prefetch) {
            if ev.unused_prefetch {
                self.stats.prefetches_unused_evicted += 1;
            }
        }
        self.l2.fill_known_miss(a.addr, a.is_write, false);
        self.l1d.fill_known_miss(a.addr, a.is_write, false);
    }

    /// Advance the machine over one access, returning its retire cycle.
    pub fn step<'a>(
        &mut self,
        a: &MemAccess,
        mut prefetcher: Option<&mut (dyn Prefetcher + 'a)>,
    ) -> u64 {
        let width = self.cfg.width;
        let rob_size = self.cfg.rob_size;
        if self.first_instr.is_none() {
            self.first_instr = Some(a.instr_id);
        }
        // Non-memory instructions since the previous access retire at
        // `width` per cycle: one slot each.
        let gap = match self.prev_instr {
            Some(p) => a.instr_id.saturating_sub(p + 1),
            None => 0,
        };
        self.prev_instr = Some(a.instr_id);
        let fetch_cycle = a.instr_id / width;

        // ROB gate: this instruction needs the slot of the instruction
        // rob_size earlier, which must have retired.
        while let Some(&(id, retire)) = self.rob_window.front() {
            if id + rob_size <= a.instr_id {
                self.rob_gate = self.rob_gate.max(retire);
                self.rob_window.pop_front();
            } else {
                break;
            }
        }
        let issue = fetch_cycle.max(self.rob_gate);

        self.drain_prefetch_fills(issue, &mut prefetcher);
        let complete = self.simulate_access(a, issue, &mut prefetcher);

        // In-order retirement at `width` per cycle.
        self.retire_slots = (self.retire_slots + gap + 1).max(complete.saturating_mul(width));
        let retire_cycle = self.retire_slots / width;
        self.rob_window.push_back((a.instr_id, retire_cycle));
        retire_cycle
    }

    /// Run `warmup` accesses (state training, no statistics), then
    /// `measure` accesses with statistics; returns the measured stats.
    pub fn run<'a>(
        &mut self,
        src: &mut dyn TraceSource,
        mut prefetcher: Option<&mut (dyn Prefetcher + 'a)>,
        warmup: usize,
        measure: usize,
    ) -> SimStats {
        let mut buf = Vec::with_capacity(RUN_BATCH);
        self.run_phase(src, warmup, &mut buf, &mut prefetcher);
        self.begin_measurement();
        let before = self.raw_stats();
        self.run_phase(src, measure, &mut buf, &mut prefetcher);
        let after = self.raw_stats();
        diff_stats(&after, &before)
    }

    /// Step through up to `n` accesses, pulling them in batches: one
    /// virtual `next_batch` call per [`RUN_BATCH`] accesses instead of a
    /// `next_access` call per access.
    fn run_phase<'a>(
        &mut self,
        src: &mut dyn TraceSource,
        n: usize,
        buf: &mut Vec<MemAccess>,
        prefetcher: &mut Option<&mut (dyn Prefetcher + 'a)>,
    ) {
        let mut left = n;
        while left > 0 {
            buf.clear();
            let want = left.min(RUN_BATCH);
            let got = src.next_batch(buf, want);
            for a in buf.iter() {
                self.step(a, prefetcher.as_deref_mut());
            }
            if got < want {
                break; // source exhausted
            }
            left -= got;
        }
    }
}

/// Per-field subtraction of monotone counters (measurement windowing).
pub(crate) fn diff_stats(after: &SimStats, before: &SimStats) -> SimStats {
    SimStats {
        instructions: after.instructions - before.instructions,
        cycles: after.cycles - before.cycles,
        demand_accesses: after.demand_accesses - before.demand_accesses,
        l1d_misses: after.l1d_misses - before.l1d_misses,
        l2_misses: after.l2_misses - before.l2_misses,
        llc_demand_hits: after.llc_demand_hits - before.llc_demand_hits,
        llc_demand_misses: after.llc_demand_misses - before.llc_demand_misses,
        prefetches_issued: after.prefetches_issued - before.prefetches_issued,
        prefetches_useful: after.prefetches_useful - before.prefetches_useful,
        prefetches_late: after.prefetches_late - before.prefetches_late,
        prefetches_unused_evicted: after.prefetches_unused_evicted
            - before.prefetches_unused_evicted,
        dram_row_hits: after.dram_row_hits - before.dram_row_hits,
        dram_row_misses: after.dram_row_misses - before.dram_row_misses,
    }
}

/// Convenience: simulate a trace with and without a prefetcher (identical
/// warmup/measure windows) and return `(baseline, with_prefetcher)`.
///
/// The two runs replay the same accesses: `make_src` is called twice and
/// must return identically seeded sources.
pub fn run_pair(
    cfg: SimConfig,
    mut make_src: impl FnMut() -> Box<dyn TraceSource + Send>,
    prefetcher: &mut dyn Prefetcher,
    warmup: usize,
    measure: usize,
) -> (SimStats, SimStats) {
    let mut base_engine = Engine::new(cfg);
    let mut base_src = make_src();
    let base = base_engine.run(&mut *base_src, None, warmup, measure);
    let mut pf_engine = Engine::new(cfg);
    let mut pf_src = make_src();
    let with_pf = pf_engine.run(&mut *pf_src, Some(prefetcher), warmup, measure);
    (base, with_pf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetchTiming;
    use resemble_prefetch::NextLine;
    use resemble_trace::gen::{StreamGen, VecSource};

    fn stream_src(seed: u64) -> Box<dyn TraceSource + Send> {
        Box::new(StreamGen::new(seed, 2, 100_000, 3).with_write_ratio(0.0))
    }

    #[test]
    fn ipc_bounded_by_width_and_positive() {
        let mut e = Engine::new(SimConfig::test_small());
        let mut src = stream_src(1);
        let s = e.run(&mut *src, None, 1000, 10_000);
        assert!(s.instructions > 0 && s.cycles > 0);
        assert!(s.ipc() <= 4.0 + 1e-9, "ipc={}", s.ipc());
        assert!(s.ipc() > 0.05, "ipc={}", s.ipc());
    }

    #[test]
    fn repeated_working_set_hits_cache() {
        // A small ring fits in L1: after warmup, no LLC misses.
        let ring: Vec<MemAccess> = (0..32)
            .cycle()
            .take(5000)
            .enumerate()
            .map(|(i, b)| MemAccess::load(i as u64 * 2, 0x4, 0x10_0000 + b * 64))
            .collect();
        let mut e = Engine::new(SimConfig::test_small());
        let s = e.run(&mut VecSource::new(ring), None, 1000, 4000);
        assert_eq!(s.llc_demand_misses, 0, "{s:?}");
        assert_eq!(s.l1d_misses, 0);
    }

    #[test]
    fn streaming_misses_and_prefetcher_reduces_them() {
        let cfg = SimConfig::test_small();
        let mut nl = NextLine::new(4);
        let (base, pf) = run_pair(cfg, || stream_src(7), &mut nl, 2000, 30_000);
        assert!(
            base.llc_demand_misses > 1000,
            "baseline must miss: {base:?}"
        );
        assert!(
            (pf.llc_demand_misses as f64) < 0.7 * base.llc_demand_misses as f64,
            "prefetcher should cut misses: base={} pf={}",
            base.llc_demand_misses,
            pf.llc_demand_misses
        );
        assert!(
            pf.ipc() > base.ipc(),
            "IPC should improve: {} vs {}",
            pf.ipc(),
            base.ipc()
        );
        assert!(
            pf.accuracy() > 0.5,
            "next-line on a stream is accurate: {}",
            pf.accuracy()
        );
        assert!(pf.coverage() > 0.3, "coverage={}", pf.coverage());
    }

    #[test]
    fn prefetch_latency_degrades_performance() {
        let mut cfg = SimConfig::test_small();
        cfg.prefetch_timing = PrefetchTiming {
            latency: 0,
            high_throughput: true,
        };
        let mut nl0 = NextLine::new(2);
        let (_, fast) = run_pair(cfg, || stream_src(9), &mut nl0, 2000, 30_000);
        cfg.prefetch_timing = PrefetchTiming {
            latency: 200,
            high_throughput: false,
        };
        let mut nl1 = NextLine::new(2);
        let (_, slow) = run_pair(cfg, || stream_src(9), &mut nl1, 2000, 30_000);
        assert!(
            slow.ipc() <= fast.ipc() + 1e-9,
            "high latency low TP must not beat ideal: {} vs {}",
            slow.ipc(),
            fast.ipc()
        );
        assert!(slow.prefetches_issued < fast.prefetches_issued);
    }

    #[test]
    fn useless_prefetches_hurt_accuracy_not_correctness() {
        // Prefetcher that always fetches a far-away, never-used block.
        struct Junk;
        impl Prefetcher for Junk {
            fn name(&self) -> &'static str {
                "junk"
            }
            fn kind(&self) -> resemble_prefetch::PredictionKind {
                resemble_prefetch::PredictionKind::Spatial
            }
            fn on_access(&mut self, a: &MemAccess, _h: bool, out: &mut Vec<u64>) {
                out.push(a.addr.wrapping_add(0x4000_0000));
            }
            fn budget_bytes(&self) -> usize {
                0
            }
            fn reset(&mut self) {}
        }
        let mut junk = Junk;
        let (base, pf) = run_pair(
            SimConfig::test_small(),
            || stream_src(11),
            &mut junk,
            2000,
            20_000,
        );
        assert!(pf.prefetches_issued > 0);
        assert!(pf.accuracy() < 0.05, "junk accuracy={}", pf.accuracy());
        // Misses should not improve (pollution may make them worse).
        assert!(pf.llc_demand_misses as f64 >= 0.9 * base.llc_demand_misses as f64);
    }

    #[test]
    fn warmup_excluded_from_stats() {
        let mut e = Engine::new(SimConfig::test_small());
        let mut src = stream_src(3);
        let s = e.run(&mut *src, None, 5000, 5000);
        let mut e2 = Engine::new(SimConfig::test_small());
        let mut src2 = stream_src(3);
        let s2 = e2.run(&mut *src2, None, 0, 10_000);
        assert!(s.demand_accesses == 5000);
        assert!(s2.demand_accesses == 10_000);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut e = Engine::new(SimConfig::test_small());
            let mut src = stream_src(42);
            let mut nl = NextLine::new(2);
            e.run(&mut *src, Some(&mut nl), 1000, 10_000)
        };
        let a = run();
        let b = run();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn mshr_pressure_limits_overlap() {
        // Random far-apart loads: with 1 MSHR, cycles should be much higher
        // than with 64 (no overlap possible).
        use rand::{Rng, SeedableRng};
        let mk = || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            let v: Vec<MemAccess> = (0..20_000u64)
                .map(|i| MemAccess::load(i * 2, 0x4, (rng.gen_range(0x1000u64..0x80_0000)) * 4096))
                .collect();
            VecSource::new(v)
        };
        let mut cfg = SimConfig::test_small();
        cfg.llc_mshrs = 64;
        let mut e = Engine::new(cfg);
        let wide = e.run(&mut mk(), None, 0, 20_000);
        cfg.llc_mshrs = 1;
        let mut e = Engine::new(cfg);
        let narrow = e.run(&mut mk(), None, 0, 20_000);
        assert!(
            narrow.cycles > wide.cycles,
            "1 MSHR must be slower: {} vs {}",
            narrow.cycles,
            wide.cycles
        );
    }

    /// Pin the MSHR-full stall accounting: with one MSHR, a second
    /// concurrent miss starts DRAM access exactly when the first request's
    /// MSHR entry frees (residual wait), not `free_at` plus a re-traversal
    /// of the whole hierarchy — the seed's double-charge bug.
    #[test]
    fn mshr_full_timing_charges_residual_wait_only() {
        let mut cfg = SimConfig::test_small();
        cfg.llc_mshrs = 1;
        let hier = cfg.l1d_latency + cfg.l2_latency + cfg.llc_latency;
        let (b1, b2) = (0x10_0000u64, 0x20_0000u64); // distinct blocks/rows

        // Mirror the engine's DRAM against a scratch instance to derive
        // the expected completion times without hardcoding DRAM internals.
        let mut dram = Dram::new(cfg.dram);
        let done1 = dram.access(block_of(b1 * 64), hier); // issue=0 → llc_t = hier
        let done2_fixed = dram.access(block_of(b2 * 64), done1.max(hier));

        let mut e = Engine::new(cfg);
        let a1 = MemAccess::load(0, 0x4, b1 * 64);
        let a2 = MemAccess::load(1, 0x4, b2 * 64);
        let r1 = e.step(&a1, None);
        let r2 = e.step(&a2, None);
        assert_eq!(r1, done1, "first miss completes straight through");
        assert_eq!(
            r2, done2_fixed,
            "second miss must start at max(llc_t, free_at), with no \
             re-traversal of L1/L2/LLC"
        );
        // And the buggy accounting would have been strictly later.
        let mut dram_bug = Dram::new(cfg.dram);
        let d1 = dram_bug.access(block_of(b1 * 64), hier);
        let bug_done2 = dram_bug.access(block_of(b2 * 64), d1 + hier);
        assert!(bug_done2 > done2_fixed);
    }

    /// The engine never holds more than `llc_mshrs` outstanding requests,
    /// demand and prefetch combined.
    #[test]
    fn mshr_occupancy_never_exceeds_limit() {
        use rand::{Rng, SeedableRng};
        let mut cfg = SimConfig::test_small();
        cfg.llc_mshrs = 4;
        let mut e = Engine::new(cfg);
        let mut nl = NextLine::new(8); // aggressive: 8 suggestions per access
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for i in 0..20_000u64 {
            let addr = rng.gen_range(0x1000u64..0x80_0000) * 4096;
            e.step(
                &MemAccess::load(i * 2, 0x4, addr),
                Some(&mut nl as &mut dyn Prefetcher),
            );
            assert!(
                e.outstanding.len() <= cfg.llc_mshrs,
                "step {i}: occupancy {} > {}",
                e.outstanding.len(),
                cfg.llc_mshrs
            );
        }
        assert!(e.raw_stats().prefetches_issued > 0);
    }

    /// A late prefetch (demanded while still in flight) is counted useful
    /// exactly once: at the demand, and never again when its fill event
    /// drains or when the line is re-referenced.
    #[test]
    fn late_prefetch_counted_useful_exactly_once() {
        let cfg = SimConfig::test_small();
        let mut e = Engine::new(cfg);
        let mut nl = NextLine::new(1);
        let base = 0x40_0000u64;
        // Access block A: next-line prefetch of A+1 goes in flight.
        e.step(
            &MemAccess::load(0, 0x4, base),
            Some(&mut nl as &mut dyn Prefetcher),
        );
        // Immediately demand A+1: the prefetch cannot have filled yet
        // (issue is still ~0), so this is the late-prefetch path.
        e.step(
            &MemAccess::load(1, 0x4, base + 64),
            Some(&mut nl as &mut dyn Prefetcher),
        );
        let s = e.raw_stats();
        assert_eq!(s.prefetches_late, 1, "{s:?}");
        assert_eq!(s.prefetches_useful, 1, "{s:?}");
        // Let the stale fill event drain (far-future instruction) and
        // re-reference the line: still exactly one useful prefetch.
        e.step(
            &MemAccess::load(4_000_000, 0x4, base + 64),
            Some(&mut nl as &mut dyn Prefetcher),
        );
        let s = e.raw_stats();
        assert_eq!(s.prefetches_useful, 1, "{s:?}");
        assert_eq!(s.prefetches_late, 1, "{s:?}");
    }

    /// `begin_measurement` strips prefetch attribution: prefetches issued
    /// before the boundary (resident or still in flight) contribute
    /// nothing to measured useful/unused counts.
    #[test]
    fn begin_measurement_zeroes_prefetch_attribution() {
        let cfg = SimConfig::test_small();
        let mut e = Engine::new(cfg);
        let mut nl = NextLine::new(2);
        let base = 0x80_0000u64;
        // Warmup: touch a short stream so prefetches of the next blocks
        // are issued; some fill (resident), later ones stay in flight.
        for i in 0..8u64 {
            e.step(
                &MemAccess::load(i * 1000, 0x4, base + i * 64),
                Some(&mut nl as &mut dyn Prefetcher),
            );
        }
        assert!(e.raw_stats().prefetches_issued > 0);
        e.begin_measurement();
        let before = e.raw_stats();
        // Measured window: demand every block the warmup prefetched.
        for i in 8..16u64 {
            e.step(
                &MemAccess::load(100_000 + i * 1000, 0x4, base + i * 64),
                None,
            );
        }
        let d = diff_stats(&e.raw_stats(), &before);
        assert_eq!(
            d.prefetches_useful, 0,
            "warmup prefetches must not count as useful: {d:?}"
        );
        assert_eq!(d.prefetches_late, 0, "{d:?}");
        assert!(
            d.llc_demand_hits > 0,
            "the lines themselves still serve hits: {d:?}"
        );
    }
}
