//! Trace-driven timing engine: a simplified 4-wide OoO core in front of the
//! L1D/L2/LLC hierarchy and DRAM, with prefetching at the LLC.
//!
//! The core model is the standard analytic OoO approximation used in
//! prefetching studies: instructions fetch at `width` per cycle, a load
//! issues once its ROB slot is available (the instruction `rob_size`
//! earlier has retired) and completes after its memory latency, and
//! retirement is in order at `width` per cycle. Memory-level parallelism
//! emerges naturally — independent misses overlap until the ROB or the LLC
//! MSHRs fill. Prefetches share MSHRs with demands, are dropped when MSHRs
//! are exhausted, and can be delayed by a controller-latency model
//! ([`crate::config::PrefetchTiming`], the Fig 11 study).

use crate::cache::{Cache, Lookup};
use crate::config::SimConfig;
use crate::dram::Dram;
use crate::stats::SimStats;
use resemble_prefetch::Prefetcher;
use resemble_trace::record::{block_addr, block_of};
use resemble_trace::util::{FxHashMap, FxHashSet};
use resemble_trace::{MemAccess, TraceSource};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// The simulation engine. One engine simulates one core.
pub struct Engine {
    cfg: SimConfig,
    l1d: Cache,
    l2: Cache,
    llc: Cache,
    dram: Dram,
    /// retirement time in 1/width-cycle slots
    retire_slots: u64,
    prev_instr: Option<u64>,
    first_instr: Option<u64>,
    rob_window: VecDeque<(u64, u64)>,
    rob_gate: u64,
    /// completion cycles of requests occupying LLC MSHRs
    outstanding: BinaryHeap<Reverse<u64>>,
    inflight_prefetch: FxHashMap<u64, u64>,
    /// in-flight prefetches issued before the measurement boundary: their
    /// fills and uses carry no prefetch attribution
    unattributed_prefetch: FxHashSet<u64>,
    pf_heap: BinaryHeap<Reverse<(u64, u64)>>,
    inflight_demand: FxHashMap<u64, u64>,
    demand_heap: BinaryHeap<Reverse<(u64, u64)>>,
    controller_busy_until: u64,
    stats: SimStats,
    sugg: Vec<u64>,
}

impl Engine {
    /// Build an engine from a configuration.
    pub fn new(cfg: SimConfig) -> Self {
        Self {
            l1d: Cache::new("l1d", cfg.l1d_size, cfg.l1d_ways),
            l2: Cache::new("l2", cfg.l2_size, cfg.l2_ways),
            llc: Cache::with_policy("llc", cfg.llc_size, cfg.llc_ways, cfg.llc_replacement),
            dram: Dram::new(cfg.dram),
            cfg,
            retire_slots: 0,
            prev_instr: None,
            first_instr: None,
            rob_window: VecDeque::with_capacity(512),
            rob_gate: 0,
            outstanding: BinaryHeap::with_capacity(128),
            inflight_prefetch: FxHashMap::default(),
            unattributed_prefetch: FxHashSet::default(),
            pf_heap: BinaryHeap::with_capacity(128),
            inflight_demand: FxHashMap::default(),
            demand_heap: BinaryHeap::with_capacity(128),
            controller_busy_until: 0,
            stats: SimStats::default(),
            sugg: Vec::with_capacity(16),
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current cycle (retirement frontier).
    pub fn cycle(&self) -> u64 {
        self.retire_slots / self.cfg.width
    }

    /// Cumulative raw statistics since construction/reset.
    pub fn raw_stats(&self) -> SimStats {
        let mut s = self.stats;
        s.cycles = self.cycle();
        s.instructions = match (self.first_instr, self.prev_instr) {
            (Some(f), Some(l)) => l - f + 1,
            _ => 0,
        };
        s.dram_row_hits = self.dram.row_hits;
        s.dram_row_misses = self.dram.row_misses;
        s
    }

    /// Clear all state (caches, timing, statistics).
    pub fn reset(&mut self) {
        *self = Engine::new(self.cfg);
    }

    /// Mark the warmup → measurement boundary: prefetches issued before
    /// this point no longer count as useful/unused, so the measured
    /// accuracy reflects only measured-window prefetches.
    pub fn begin_measurement(&mut self) {
        self.llc.clear_prefetch_marks();
        self.unattributed_prefetch = self.inflight_prefetch.keys().copied().collect();
    }

    /// Release prefetch fills that have completed by `now`.
    fn drain_prefetch_fills<'a, 'b>(
        &mut self,
        now: u64,
        prefetcher: &mut Option<&'b mut (dyn Prefetcher + 'a)>,
    ) {
        while let Some(&Reverse((ready, block))) = self.pf_heap.peek() {
            if ready > now {
                break;
            }
            self.pf_heap.pop();
            if self.inflight_prefetch.remove(&block).is_none() {
                continue; // consumed by a late demand
            }
            let attributed = !self.unattributed_prefetch.remove(&block);
            let addr = block_addr(block);
            if let Some(ev) = self.llc.fill(addr, false, attributed) {
                if ev.unused_prefetch {
                    self.stats.prefetches_unused_evicted += 1;
                }
                if let Some(pf) = prefetcher.as_deref_mut() {
                    pf.on_evict(block_addr(ev.block), ev.unused_prefetch);
                }
            }
            if let Some(pf) = prefetcher.as_deref_mut() {
                pf.on_prefetch_fill(addr);
            }
        }
        while let Some(&Reverse((ready, block))) = self.demand_heap.peek() {
            if ready > now {
                break;
            }
            self.demand_heap.pop();
            self.inflight_demand.remove(&block);
            if let Some(pf) = prefetcher.as_deref_mut() {
                pf.on_demand_fill(block_addr(block));
            }
        }
    }

    /// Free MSHR slots whose requests completed by `now`; returns the
    /// earliest completion if the MSHRs are still full (caller must wait
    /// or drop).
    fn mshr_admit(&mut self, now: u64) -> Result<(), u64> {
        while let Some(&Reverse(c)) = self.outstanding.peek() {
            if c <= now {
                self.outstanding.pop();
            } else {
                break;
            }
        }
        if self.outstanding.len() < self.cfg.llc_mshrs {
            Ok(())
        } else {
            Err(self.outstanding.peek().map(|r| r.0).unwrap_or(now))
        }
    }

    /// Simulate one demand access; returns its completion cycle.
    fn simulate_access<'a, 'b>(
        &mut self,
        a: &MemAccess,
        issue: u64,
        prefetcher: &mut Option<&'b mut (dyn Prefetcher + 'a)>,
    ) -> u64 {
        let cfg = self.cfg;
        self.stats.demand_accesses += 1;
        let l1_lat = cfg.l1d_latency;
        if matches!(self.l1d.access(a.addr, a.is_write), Lookup::Hit { .. }) {
            return issue + l1_lat;
        }
        self.stats.l1d_misses += 1;
        let l2_t = issue + l1_lat + cfg.l2_latency;
        if matches!(self.l2.access(a.addr, a.is_write), Lookup::Hit { .. }) {
            self.l1d.fill(a.addr, a.is_write, false);
            return l2_t;
        }
        self.stats.l2_misses += 1;

        // --- The access reaches the LLC: this is the stream the paper's
        // prefetchers observe. ---
        let block = block_of(a.addr);
        let llc_t = l2_t + cfg.llc_latency;
        let lookup = self.llc.access(a.addr, a.is_write);
        let llc_hit = matches!(lookup, Lookup::Hit { .. });
        let complete = match lookup {
            Lookup::Hit {
                first_use_of_prefetch,
            } => {
                self.stats.llc_demand_hits += 1;
                if first_use_of_prefetch {
                    self.stats.prefetches_useful += 1;
                }
                self.l2.fill(a.addr, a.is_write, false);
                self.l1d.fill(a.addr, a.is_write, false);
                llc_t
            }
            Lookup::Miss => {
                if let Some(ready) = self.inflight_prefetch.remove(&block) {
                    // Late prefetch: the line is on its way; the demand
                    // waits out the residual latency. A useful prefetch by
                    // the paper's definition (referenced before replaced),
                    // and — as in ChampSim — a prefetch *hit*, not a demand
                    // miss, for MPKI purposes.
                    self.stats.llc_demand_hits += 1;
                    if !self.unattributed_prefetch.remove(&block) {
                        self.stats.prefetches_useful += 1;
                        self.stats.prefetches_late += 1;
                    }
                    self.fill_all(a, false);
                    llc_t.max(ready)
                } else if let Some(&ready) = self.inflight_demand.get(&block) {
                    // MSHR merge with an outstanding demand miss.
                    llc_t.max(ready)
                } else {
                    self.stats.llc_demand_misses += 1;
                    let start = match self.mshr_admit(issue) {
                        Ok(()) => llc_t,
                        Err(free_at) => {
                            free_at.max(issue) + cfg.l1d_latency + cfg.l2_latency + cfg.llc_latency
                        }
                    };
                    let done = self.dram.access(block, start);
                    self.outstanding.push(Reverse(done));
                    self.inflight_demand.insert(block, done);
                    self.demand_heap.push(Reverse((done, block)));
                    self.fill_all(a, false);
                    done
                }
            }
        };

        // --- Prefetcher hook. ---
        if let Some(pf) = prefetcher.as_deref_mut() {
            self.sugg.clear();
            pf.on_access(a, llc_hit, &mut self.sugg);
            let timing = cfg.prefetch_timing;
            let mut can_issue = true;
            if !timing.high_throughput && timing.latency > 0 && self.controller_busy_until > issue {
                can_issue = false; // controller still busy with an earlier inference
            }
            if can_issue {
                if !timing.high_throughput && timing.latency > 0 {
                    self.controller_busy_until = issue + timing.latency;
                }
                let ready_base = issue + timing.latency;
                for i in 0..self.sugg.len() {
                    let s = self.sugg[i];
                    let sb = block_of(s);
                    if self.llc.contains(s)
                        || self.inflight_prefetch.contains_key(&sb)
                        || self.inflight_demand.contains_key(&sb)
                    {
                        continue;
                    }
                    if self.mshr_admit(ready_base).is_err() {
                        break; // prefetches are droppable
                    }
                    let done = self.dram.access(sb, ready_base + cfg.llc_latency);
                    self.outstanding.push(Reverse(done));
                    self.inflight_prefetch.insert(sb, done);
                    self.pf_heap.push(Reverse((done, sb)));
                    self.stats.prefetches_issued += 1;
                }
            }
        }

        if a.is_write {
            // Stores retire without waiting for the fill (write buffer).
            issue + 1
        } else {
            complete
        }
    }

    /// Fill the whole hierarchy for a demand miss, accounting LLC
    /// prefetch-pollution evictions.
    fn fill_all(&mut self, a: &MemAccess, is_prefetch: bool) {
        if let Some(ev) = self.llc.fill(a.addr, a.is_write, is_prefetch) {
            if ev.unused_prefetch {
                self.stats.prefetches_unused_evicted += 1;
            }
        }
        self.l2.fill(a.addr, a.is_write, false);
        self.l1d.fill(a.addr, a.is_write, false);
    }

    /// Advance the machine over one access, returning its retire cycle.
    pub fn step<'a>(
        &mut self,
        a: &MemAccess,
        mut prefetcher: Option<&mut (dyn Prefetcher + 'a)>,
    ) -> u64 {
        let cfg = self.cfg;
        if self.first_instr.is_none() {
            self.first_instr = Some(a.instr_id);
        }
        // Non-memory instructions since the previous access retire at
        // `width` per cycle: one slot each.
        let gap = match self.prev_instr {
            Some(p) => a.instr_id.saturating_sub(p + 1),
            None => 0,
        };
        self.prev_instr = Some(a.instr_id);
        let fetch_cycle = a.instr_id / cfg.width;

        // ROB gate: this instruction needs the slot of the instruction
        // rob_size earlier, which must have retired.
        while let Some(&(id, retire)) = self.rob_window.front() {
            if id + cfg.rob_size <= a.instr_id {
                self.rob_gate = self.rob_gate.max(retire);
                self.rob_window.pop_front();
            } else {
                break;
            }
        }
        let issue = fetch_cycle.max(self.rob_gate);

        self.drain_prefetch_fills(issue, &mut prefetcher);
        let complete = self.simulate_access(a, issue, &mut prefetcher);

        // In-order retirement at `width` per cycle.
        self.retire_slots = (self.retire_slots + gap + 1).max(complete.saturating_mul(cfg.width));
        let retire_cycle = self.retire_slots / cfg.width;
        self.rob_window.push_back((a.instr_id, retire_cycle));
        retire_cycle
    }

    /// Run `warmup` accesses (state training, no statistics), then
    /// `measure` accesses with statistics; returns the measured stats.
    pub fn run<'a>(
        &mut self,
        src: &mut dyn TraceSource,
        mut prefetcher: Option<&mut (dyn Prefetcher + 'a)>,
        warmup: usize,
        measure: usize,
    ) -> SimStats {
        for _ in 0..warmup {
            let Some(a) = src.next_access() else { break };
            self.step(&a, prefetcher.as_deref_mut());
        }
        self.begin_measurement();
        let before = self.raw_stats();
        for _ in 0..measure {
            let Some(a) = src.next_access() else { break };
            self.step(&a, prefetcher.as_deref_mut());
        }
        let after = self.raw_stats();
        diff_stats(&after, &before)
    }
}

/// Per-field subtraction of monotone counters (measurement windowing).
fn diff_stats(after: &SimStats, before: &SimStats) -> SimStats {
    SimStats {
        instructions: after.instructions - before.instructions,
        cycles: after.cycles - before.cycles,
        demand_accesses: after.demand_accesses - before.demand_accesses,
        l1d_misses: after.l1d_misses - before.l1d_misses,
        l2_misses: after.l2_misses - before.l2_misses,
        llc_demand_hits: after.llc_demand_hits - before.llc_demand_hits,
        llc_demand_misses: after.llc_demand_misses - before.llc_demand_misses,
        prefetches_issued: after.prefetches_issued - before.prefetches_issued,
        prefetches_useful: after.prefetches_useful - before.prefetches_useful,
        prefetches_late: after.prefetches_late - before.prefetches_late,
        prefetches_unused_evicted: after.prefetches_unused_evicted
            - before.prefetches_unused_evicted,
        dram_row_hits: after.dram_row_hits - before.dram_row_hits,
        dram_row_misses: after.dram_row_misses - before.dram_row_misses,
    }
}

/// Convenience: simulate a trace with and without a prefetcher (identical
/// warmup/measure windows) and return `(baseline, with_prefetcher)`.
///
/// The two runs replay the same accesses: `make_src` is called twice and
/// must return identically seeded sources.
pub fn run_pair(
    cfg: SimConfig,
    mut make_src: impl FnMut() -> Box<dyn TraceSource + Send>,
    prefetcher: &mut dyn Prefetcher,
    warmup: usize,
    measure: usize,
) -> (SimStats, SimStats) {
    let mut base_engine = Engine::new(cfg);
    let mut base_src = make_src();
    let base = base_engine.run(&mut *base_src, None, warmup, measure);
    let mut pf_engine = Engine::new(cfg);
    let mut pf_src = make_src();
    let with_pf = pf_engine.run(&mut *pf_src, Some(prefetcher), warmup, measure);
    (base, with_pf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetchTiming;
    use resemble_prefetch::NextLine;
    use resemble_trace::gen::{StreamGen, VecSource};

    fn stream_src(seed: u64) -> Box<dyn TraceSource + Send> {
        Box::new(StreamGen::new(seed, 2, 100_000, 3).with_write_ratio(0.0))
    }

    #[test]
    fn ipc_bounded_by_width_and_positive() {
        let mut e = Engine::new(SimConfig::test_small());
        let mut src = stream_src(1);
        let s = e.run(&mut *src, None, 1000, 10_000);
        assert!(s.instructions > 0 && s.cycles > 0);
        assert!(s.ipc() <= 4.0 + 1e-9, "ipc={}", s.ipc());
        assert!(s.ipc() > 0.05, "ipc={}", s.ipc());
    }

    #[test]
    fn repeated_working_set_hits_cache() {
        // A small ring fits in L1: after warmup, no LLC misses.
        let ring: Vec<MemAccess> = (0..32)
            .cycle()
            .take(5000)
            .enumerate()
            .map(|(i, b)| MemAccess::load(i as u64 * 2, 0x4, 0x10_0000 + b * 64))
            .collect();
        let mut e = Engine::new(SimConfig::test_small());
        let s = e.run(&mut VecSource::new(ring), None, 1000, 4000);
        assert_eq!(s.llc_demand_misses, 0, "{s:?}");
        assert_eq!(s.l1d_misses, 0);
    }

    #[test]
    fn streaming_misses_and_prefetcher_reduces_them() {
        let cfg = SimConfig::test_small();
        let mut nl = NextLine::new(4);
        let (base, pf) = run_pair(cfg, || stream_src(7), &mut nl, 2000, 30_000);
        assert!(
            base.llc_demand_misses > 1000,
            "baseline must miss: {base:?}"
        );
        assert!(
            (pf.llc_demand_misses as f64) < 0.7 * base.llc_demand_misses as f64,
            "prefetcher should cut misses: base={} pf={}",
            base.llc_demand_misses,
            pf.llc_demand_misses
        );
        assert!(
            pf.ipc() > base.ipc(),
            "IPC should improve: {} vs {}",
            pf.ipc(),
            base.ipc()
        );
        assert!(
            pf.accuracy() > 0.5,
            "next-line on a stream is accurate: {}",
            pf.accuracy()
        );
        assert!(pf.coverage() > 0.3, "coverage={}", pf.coverage());
    }

    #[test]
    fn prefetch_latency_degrades_performance() {
        let mut cfg = SimConfig::test_small();
        cfg.prefetch_timing = PrefetchTiming {
            latency: 0,
            high_throughput: true,
        };
        let mut nl0 = NextLine::new(2);
        let (_, fast) = run_pair(cfg, || stream_src(9), &mut nl0, 2000, 30_000);
        cfg.prefetch_timing = PrefetchTiming {
            latency: 200,
            high_throughput: false,
        };
        let mut nl1 = NextLine::new(2);
        let (_, slow) = run_pair(cfg, || stream_src(9), &mut nl1, 2000, 30_000);
        assert!(
            slow.ipc() <= fast.ipc() + 1e-9,
            "high latency low TP must not beat ideal: {} vs {}",
            slow.ipc(),
            fast.ipc()
        );
        assert!(slow.prefetches_issued < fast.prefetches_issued);
    }

    #[test]
    fn useless_prefetches_hurt_accuracy_not_correctness() {
        // Prefetcher that always fetches a far-away, never-used block.
        struct Junk;
        impl Prefetcher for Junk {
            fn name(&self) -> &'static str {
                "junk"
            }
            fn kind(&self) -> resemble_prefetch::PredictionKind {
                resemble_prefetch::PredictionKind::Spatial
            }
            fn on_access(&mut self, a: &MemAccess, _h: bool, out: &mut Vec<u64>) {
                out.push(a.addr.wrapping_add(0x4000_0000));
            }
            fn budget_bytes(&self) -> usize {
                0
            }
            fn reset(&mut self) {}
        }
        let mut junk = Junk;
        let (base, pf) = run_pair(
            SimConfig::test_small(),
            || stream_src(11),
            &mut junk,
            2000,
            20_000,
        );
        assert!(pf.prefetches_issued > 0);
        assert!(pf.accuracy() < 0.05, "junk accuracy={}", pf.accuracy());
        // Misses should not improve (pollution may make them worse).
        assert!(pf.llc_demand_misses as f64 >= 0.9 * base.llc_demand_misses as f64);
    }

    #[test]
    fn warmup_excluded_from_stats() {
        let mut e = Engine::new(SimConfig::test_small());
        let mut src = stream_src(3);
        let s = e.run(&mut *src, None, 5000, 5000);
        let mut e2 = Engine::new(SimConfig::test_small());
        let mut src2 = stream_src(3);
        let s2 = e2.run(&mut *src2, None, 0, 10_000);
        assert!(s.demand_accesses == 5000);
        assert!(s2.demand_accesses == 10_000);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut e = Engine::new(SimConfig::test_small());
            let mut src = stream_src(42);
            let mut nl = NextLine::new(2);
            e.run(&mut *src, Some(&mut nl), 1000, 10_000)
        };
        let a = run();
        let b = run();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn mshr_pressure_limits_overlap() {
        // Random far-apart loads: with 1 MSHR, cycles should be much higher
        // than with 64 (no overlap possible).
        use rand::{Rng, SeedableRng};
        let mk = || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            let v: Vec<MemAccess> = (0..20_000u64)
                .map(|i| MemAccess::load(i * 2, 0x4, (rng.gen_range(0x1000u64..0x80_0000)) * 4096))
                .collect();
            VecSource::new(v)
        };
        let mut cfg = SimConfig::test_small();
        cfg.llc_mshrs = 64;
        let mut e = Engine::new(cfg);
        let wide = e.run(&mut mk(), None, 0, 20_000);
        cfg.llc_mshrs = 1;
        let mut e = Engine::new(cfg);
        let narrow = e.run(&mut mk(), None, 0, 20_000);
        assert!(
            narrow.cycles > wide.cycles,
            "1 MSHR must be slower: {} vs {}",
            narrow.cycles,
            wide.cycles
        );
    }
}
