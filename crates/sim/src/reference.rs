//! Reference timing engine: the seed implementation, kept verbatim as the
//! correctness and performance baseline for the optimized [`crate::Engine`].
//!
//! This is the original `BinaryHeap`-based event handling and the original
//! array-of-structs cache with modulo indexing, exactly as the repository
//! first shipped them — except for one deliberate divergence: the MSHR
//! stall-accounting bugfix (a demand miss that finds the MSHRs full waits
//! only the *residual* time until an entry frees, `llc_t.max(free_at)`,
//! and takes over the freed slot so occupancy stays bounded by the MSHR
//! count; the seed recharged the full L1+L2+LLC traversal on top of
//! `free_at`, double-counting latencies the request had already paid, and
//! left the dead entry in place). The fix is
//! applied here too so `ReferenceEngine` and `Engine` are required to
//! produce **bit-identical `SimStats`** on any trace — property-tested in
//! `tests/proptest_invariants.rs` — which is what makes the perf gate's
//! speedup ratio meaningful.
//!
//! Do not optimize this module; its value is being the fixed yardstick.

use crate::config::SimConfig;
use crate::dram::Dram;
use crate::stats::SimStats;
use resemble_prefetch::Prefetcher;
use resemble_trace::record::{block_addr, block_of};
use resemble_trace::util::{FxHashMap, FxHashSet};
use resemble_trace::{MemAccess, TraceSource};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Seed cache line: array-of-structs layout, scanned linearly per probe.
#[derive(Debug, Clone, Copy, Default)]
struct Line {
    block: u64,
    valid: bool,
    dirty: bool,
    prefetched: bool,
    used: bool,
    lru: u64,
    /// kept (unread) so the line layout — and thus the memory traffic of
    /// the seed AoS probe loop — matches the seed exactly
    #[allow(dead_code)]
    inserted: u64,
}

/// Seed cache: LRU only (the reference baseline never runs the FIFO and
/// Random sensitivity policies), modulo set indexing, per-probe scans.
struct RefCache {
    sets: usize,
    ways: usize,
    lines: Vec<Line>,
    tick: u64,
}

/// Hit outcome mirroring [`crate::cache::Lookup`].
enum RefLookup {
    Hit { first_use_of_prefetch: bool },
    Miss,
}

struct RefEviction {
    block: u64,
    unused_prefetch: bool,
}

impl RefCache {
    fn new(size_bytes: usize, ways: usize) -> Self {
        assert!(ways > 0);
        let sets = size_bytes / (64 * ways);
        assert!(sets > 0);
        Self {
            sets,
            ways,
            lines: vec![Line::default(); sets * ways],
            tick: 0,
        }
    }

    #[inline]
    fn set_of(&self, block: u64) -> usize {
        (block % self.sets as u64) as usize
    }

    fn access(&mut self, addr: u64, is_write: bool) -> RefLookup {
        let block = block_of(addr);
        let set = self.set_of(block);
        self.tick += 1;
        let tick = self.tick;
        for line in &mut self.lines[set * self.ways..(set + 1) * self.ways] {
            if line.valid && line.block == block {
                line.lru = tick;
                if is_write {
                    line.dirty = true;
                }
                let first_use = line.prefetched && !line.used;
                line.used = true;
                return RefLookup::Hit {
                    first_use_of_prefetch: first_use,
                };
            }
        }
        RefLookup::Miss
    }

    fn contains(&self, addr: u64) -> bool {
        let block = block_of(addr);
        let set = self.set_of(block);
        self.lines[set * self.ways..(set + 1) * self.ways]
            .iter()
            .any(|l| l.valid && l.block == block)
    }

    fn fill(&mut self, addr: u64, is_write: bool, is_prefetch: bool) -> Option<RefEviction> {
        let block = block_of(addr);
        let set = self.set_of(block);
        self.tick += 1;
        let tick = self.tick;
        let lines = &mut self.lines[set * self.ways..(set + 1) * self.ways];
        if let Some(line) = lines.iter_mut().find(|l| l.valid && l.block == block) {
            line.lru = tick;
            if is_write {
                line.dirty = true;
            }
            if !is_prefetch {
                line.used = true;
            }
            return None;
        }
        let victim_idx = match lines.iter().position(|l| !l.valid) {
            Some(i) => i,
            None => lines
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
                .expect("ways > 0"),
        };
        let victim = lines[victim_idx];
        let evicted = if victim.valid {
            Some(RefEviction {
                block: victim.block,
                unused_prefetch: victim.prefetched && !victim.used,
            })
        } else {
            None
        };
        lines[victim_idx] = Line {
            block,
            valid: true,
            dirty: is_write,
            prefetched: is_prefetch,
            used: !is_prefetch,
            lru: tick,
            inserted: tick,
        };
        evicted
    }

    fn clear_prefetch_marks(&mut self) {
        for line in &mut self.lines {
            if line.valid && line.prefetched {
                line.prefetched = false;
                line.used = true;
            }
        }
    }
}

/// The seed simulation engine (see module docs). One engine, one core.
pub struct ReferenceEngine {
    cfg: SimConfig,
    l1d: RefCache,
    l2: RefCache,
    llc: RefCache,
    dram: Dram,
    retire_slots: u64,
    prev_instr: Option<u64>,
    first_instr: Option<u64>,
    rob_window: VecDeque<(u64, u64)>,
    rob_gate: u64,
    outstanding: BinaryHeap<Reverse<u64>>,
    inflight_prefetch: FxHashMap<u64, u64>,
    unattributed_prefetch: FxHashSet<u64>,
    pf_heap: BinaryHeap<Reverse<(u64, u64)>>,
    inflight_demand: FxHashMap<u64, u64>,
    demand_heap: BinaryHeap<Reverse<(u64, u64)>>,
    controller_busy_until: u64,
    stats: SimStats,
    sugg: Vec<u64>,
}

impl ReferenceEngine {
    /// Build a reference engine from a configuration. The LLC replacement
    /// policy must be LRU (the only policy the baseline implements).
    pub fn new(cfg: SimConfig) -> Self {
        assert!(
            cfg.llc_replacement == crate::cache::Replacement::Lru,
            "ReferenceEngine implements only the paper's LRU configuration"
        );
        Self {
            l1d: RefCache::new(cfg.l1d_size, cfg.l1d_ways),
            l2: RefCache::new(cfg.l2_size, cfg.l2_ways),
            llc: RefCache::new(cfg.llc_size, cfg.llc_ways),
            dram: Dram::new(cfg.dram),
            cfg,
            retire_slots: 0,
            prev_instr: None,
            first_instr: None,
            rob_window: VecDeque::with_capacity(512),
            rob_gate: 0,
            outstanding: BinaryHeap::with_capacity(128),
            inflight_prefetch: FxHashMap::default(),
            unattributed_prefetch: FxHashSet::default(),
            pf_heap: BinaryHeap::with_capacity(128),
            inflight_demand: FxHashMap::default(),
            demand_heap: BinaryHeap::with_capacity(128),
            controller_busy_until: 0,
            stats: SimStats::default(),
            sugg: Vec::with_capacity(16),
        }
    }

    /// Cumulative raw statistics since construction.
    pub fn raw_stats(&self) -> SimStats {
        let mut s = self.stats;
        s.cycles = self.retire_slots / self.cfg.width;
        s.instructions = match (self.first_instr, self.prev_instr) {
            (Some(f), Some(l)) => l - f + 1,
            _ => 0,
        };
        s.dram_row_hits = self.dram.row_hits;
        s.dram_row_misses = self.dram.row_misses;
        s
    }

    /// Mark the warmup → measurement boundary (see `Engine`).
    pub fn begin_measurement(&mut self) {
        self.llc.clear_prefetch_marks();
        self.unattributed_prefetch = self.inflight_prefetch.keys().copied().collect();
    }

    fn drain_prefetch_fills<'a, 'b>(
        &mut self,
        now: u64,
        prefetcher: &mut Option<&'b mut (dyn Prefetcher + 'a)>,
    ) {
        while let Some(&Reverse((ready, block))) = self.pf_heap.peek() {
            if ready > now {
                break;
            }
            self.pf_heap.pop();
            if self.inflight_prefetch.remove(&block).is_none() {
                continue; // consumed by a late demand
            }
            let attributed = !self.unattributed_prefetch.remove(&block);
            let addr = block_addr(block);
            if let Some(ev) = self.llc.fill(addr, false, attributed) {
                if ev.unused_prefetch {
                    self.stats.prefetches_unused_evicted += 1;
                }
                if let Some(pf) = prefetcher.as_deref_mut() {
                    pf.on_evict(block_addr(ev.block), ev.unused_prefetch);
                }
            }
            if let Some(pf) = prefetcher.as_deref_mut() {
                pf.on_prefetch_fill(addr);
            }
        }
        while let Some(&Reverse((ready, block))) = self.demand_heap.peek() {
            if ready > now {
                break;
            }
            self.demand_heap.pop();
            self.inflight_demand.remove(&block);
            if let Some(pf) = prefetcher.as_deref_mut() {
                pf.on_demand_fill(block_addr(block));
            }
        }
    }

    fn mshr_admit(&mut self, now: u64) -> Result<(), u64> {
        while let Some(&Reverse(c)) = self.outstanding.peek() {
            if c <= now {
                self.outstanding.pop();
            } else {
                break;
            }
        }
        if self.outstanding.len() < self.cfg.llc_mshrs {
            Ok(())
        } else {
            Err(self.outstanding.peek().map(|r| r.0).unwrap_or(now))
        }
    }

    fn simulate_access<'a, 'b>(
        &mut self,
        a: &MemAccess,
        issue: u64,
        prefetcher: &mut Option<&'b mut (dyn Prefetcher + 'a)>,
    ) -> u64 {
        let cfg = self.cfg;
        self.stats.demand_accesses += 1;
        let l1_lat = cfg.l1d_latency;
        if matches!(self.l1d.access(a.addr, a.is_write), RefLookup::Hit { .. }) {
            return issue + l1_lat;
        }
        self.stats.l1d_misses += 1;
        let l2_t = issue + l1_lat + cfg.l2_latency;
        if matches!(self.l2.access(a.addr, a.is_write), RefLookup::Hit { .. }) {
            self.l1d.fill(a.addr, a.is_write, false);
            return l2_t;
        }
        self.stats.l2_misses += 1;

        let block = block_of(a.addr);
        let llc_t = l2_t + cfg.llc_latency;
        let lookup = self.llc.access(a.addr, a.is_write);
        let llc_hit = matches!(lookup, RefLookup::Hit { .. });
        let complete = match lookup {
            RefLookup::Hit {
                first_use_of_prefetch,
            } => {
                self.stats.llc_demand_hits += 1;
                if first_use_of_prefetch {
                    self.stats.prefetches_useful += 1;
                }
                self.l2.fill(a.addr, a.is_write, false);
                self.l1d.fill(a.addr, a.is_write, false);
                llc_t
            }
            RefLookup::Miss => {
                if let Some(ready) = self.inflight_prefetch.remove(&block) {
                    self.stats.llc_demand_hits += 1;
                    if !self.unattributed_prefetch.remove(&block) {
                        self.stats.prefetches_useful += 1;
                        self.stats.prefetches_late += 1;
                    }
                    self.fill_all(a, false);
                    llc_t.max(ready)
                } else if let Some(&ready) = self.inflight_demand.get(&block) {
                    llc_t.max(ready)
                } else {
                    self.stats.llc_demand_misses += 1;
                    let start = match self.mshr_admit(issue) {
                        Ok(()) => llc_t,
                        // MSHR-full bugfix (see module docs): wait only the
                        // residual time until a slot frees, and take over
                        // that slot.
                        Err(free_at) => {
                            self.outstanding.pop();
                            llc_t.max(free_at)
                        }
                    };
                    let done = self.dram.access(block, start);
                    self.outstanding.push(Reverse(done));
                    self.inflight_demand.insert(block, done);
                    self.demand_heap.push(Reverse((done, block)));
                    self.fill_all(a, false);
                    done
                }
            }
        };

        if let Some(pf) = prefetcher.as_deref_mut() {
            self.sugg.clear();
            pf.on_access(a, llc_hit, &mut self.sugg);
            let timing = cfg.prefetch_timing;
            let mut can_issue = true;
            if !timing.high_throughput && timing.latency > 0 && self.controller_busy_until > issue {
                can_issue = false;
            }
            if can_issue {
                if !timing.high_throughput && timing.latency > 0 {
                    self.controller_busy_until = issue + timing.latency;
                }
                let ready_base = issue + timing.latency;
                for i in 0..self.sugg.len() {
                    let s = self.sugg[i];
                    let sb = block_of(s);
                    if self.llc.contains(s)
                        || self.inflight_prefetch.contains_key(&sb)
                        || self.inflight_demand.contains_key(&sb)
                    {
                        continue;
                    }
                    if self.mshr_admit(ready_base).is_err() {
                        break;
                    }
                    let done = self.dram.access(sb, ready_base + cfg.llc_latency);
                    self.outstanding.push(Reverse(done));
                    self.inflight_prefetch.insert(sb, done);
                    self.pf_heap.push(Reverse((done, sb)));
                    self.stats.prefetches_issued += 1;
                }
            }
        }

        if a.is_write {
            issue + 1
        } else {
            complete
        }
    }

    fn fill_all(&mut self, a: &MemAccess, is_prefetch: bool) {
        if let Some(ev) = self.llc.fill(a.addr, a.is_write, is_prefetch) {
            if ev.unused_prefetch {
                self.stats.prefetches_unused_evicted += 1;
            }
        }
        self.l2.fill(a.addr, a.is_write, false);
        self.l1d.fill(a.addr, a.is_write, false);
    }

    /// Advance the machine over one access, returning its retire cycle.
    pub fn step<'a>(
        &mut self,
        a: &MemAccess,
        mut prefetcher: Option<&mut (dyn Prefetcher + 'a)>,
    ) -> u64 {
        let cfg = self.cfg;
        if self.first_instr.is_none() {
            self.first_instr = Some(a.instr_id);
        }
        let gap = match self.prev_instr {
            Some(p) => a.instr_id.saturating_sub(p + 1),
            None => 0,
        };
        self.prev_instr = Some(a.instr_id);
        let fetch_cycle = a.instr_id / cfg.width;
        while let Some(&(id, retire)) = self.rob_window.front() {
            if id + cfg.rob_size <= a.instr_id {
                self.rob_gate = self.rob_gate.max(retire);
                self.rob_window.pop_front();
            } else {
                break;
            }
        }
        let issue = fetch_cycle.max(self.rob_gate);

        self.drain_prefetch_fills(issue, &mut prefetcher);
        let complete = self.simulate_access(a, issue, &mut prefetcher);

        self.retire_slots = (self.retire_slots + gap + 1).max(complete.saturating_mul(cfg.width));
        let retire_cycle = self.retire_slots / cfg.width;
        self.rob_window.push_back((a.instr_id, retire_cycle));
        retire_cycle
    }

    /// Run `warmup` accesses (state training, no statistics), then
    /// `measure` accesses with statistics; returns the measured stats.
    pub fn run<'a>(
        &mut self,
        src: &mut dyn TraceSource,
        mut prefetcher: Option<&mut (dyn Prefetcher + 'a)>,
        warmup: usize,
        measure: usize,
    ) -> SimStats {
        for _ in 0..warmup {
            let Some(a) = src.next_access() else { break };
            self.step(&a, prefetcher.as_deref_mut());
        }
        self.begin_measurement();
        let before = self.raw_stats();
        for _ in 0..measure {
            let Some(a) = src.next_access() else { break };
            self.step(&a, prefetcher.as_deref_mut());
        }
        let after = self.raw_stats();
        crate::engine::diff_stats(&after, &before)
    }
}
