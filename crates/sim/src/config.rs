//! Simulation parameters mirroring Table V of the paper.

use crate::cache::Replacement;
use crate::dram::DramConfig;
use serde::{Deserialize, Serialize};

/// Timing/behaviour of the prefetch controller path (Fig 11 study).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PrefetchTiming {
    /// Controller inference latency in cycles added before a prefetch
    /// issues (0 = idealized, the main-evaluation setting).
    pub latency: u64,
    /// `true`: pipelined controller, one inference per cycle ("High TP").
    /// `false`: a new inference can only start every `latency` cycles
    /// ("Low TP"); accesses arriving while busy get no prefetch.
    pub high_throughput: bool,
}

impl Default for PrefetchTiming {
    fn default() -> Self {
        Self {
            latency: 0,
            high_throughput: true,
        }
    }
}

/// Full simulator configuration (Table V defaults).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SimConfig {
    /// Issue/retire width (4-wide OoO).
    pub width: u64,
    /// Reorder-buffer capacity in instructions (256).
    pub rob_size: u64,
    /// L1 data cache size in bytes (64 KB).
    pub l1d_size: usize,
    /// L1D associativity (12).
    pub l1d_ways: usize,
    /// L1D hit latency in cycles (5).
    pub l1d_latency: u64,
    /// L2 size in bytes (1 MB).
    pub l2_size: usize,
    /// L2 associativity (8).
    pub l2_ways: usize,
    /// L2 hit latency in cycles (10).
    pub l2_latency: u64,
    /// LLC size in bytes (8 MB).
    pub llc_size: usize,
    /// LLC associativity (16).
    pub llc_ways: usize,
    /// LLC hit latency in cycles (20).
    pub llc_latency: u64,
    /// LLC MSHR entries bounding outstanding misses (64).
    pub llc_mshrs: usize,
    /// LLC replacement policy (LRU per Table V).
    pub llc_replacement: Replacement,
    /// DRAM timing.
    pub dram: DramConfig,
    /// Prefetch-path timing.
    pub prefetch_timing: PrefetchTiming,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            width: 4,
            rob_size: 256,
            l1d_size: 64 * 1024,
            l1d_ways: 12,
            l1d_latency: 5,
            l2_size: 1024 * 1024,
            l2_ways: 8,
            l2_latency: 10,
            llc_size: 8 * 1024 * 1024,
            llc_ways: 16,
            llc_latency: 20,
            llc_mshrs: 64,
            llc_replacement: Replacement::Lru,
            dram: DramConfig::default(),
            prefetch_timing: PrefetchTiming::default(),
        }
    }
}

impl SimConfig {
    /// Harness-scale configuration: the Table V hierarchy scaled down 8×
    /// (L1D 16 KB, L2 128 KB, LLC 1 MB) so that laptop-scale traces
    /// (~100K accesses) sit in the same working-set-to-cache regime as the
    /// paper's 100M-instruction SimPoints against the full 8 MB hierarchy.
    /// Latencies, widths, ROB, MSHRs, and DRAM timing are unchanged. See
    /// DESIGN.md §6.
    pub fn harness() -> Self {
        Self {
            l1d_size: 16 * 1024,
            l1d_ways: 8,
            l2_size: 128 * 1024,
            l2_ways: 8,
            llc_size: 1024 * 1024,
            llc_ways: 16,
            ..Self::default()
        }
    }

    /// A scaled-down configuration for fast unit tests: small caches keep
    /// miss rates meaningful on short traces while exercising identical
    /// code paths.
    pub fn test_small() -> Self {
        Self {
            l1d_size: 4 * 1024,
            l1d_ways: 4,
            l2_size: 16 * 1024,
            l2_ways: 4,
            llc_size: 64 * 1024,
            llc_ways: 8,
            ..Self::default()
        }
    }

    /// Table V rows as (parameter, value) strings for the harness printer.
    pub fn table_v_rows(&self) -> Vec<(String, String)> {
        fn size(bytes: usize) -> String {
            if bytes >= 1024 * 1024 {
                format!("{} MB", bytes / (1024 * 1024))
            } else {
                format!("{} KB", bytes / 1024)
            }
        }
        vec![
            (
                "CPU".into(),
                format!(
                    "4 GHz, 4 cores, {}-wide OoO, {}-entry ROB",
                    self.width, self.rob_size
                ),
            ),
            (
                "L1 D-cache".into(),
                format!(
                    "{}, {}-way, {}-cycle",
                    size(self.l1d_size),
                    self.l1d_ways,
                    self.l1d_latency
                ),
            ),
            (
                "L2 Cache".into(),
                format!(
                    "{}, {}-way, {}-cycle",
                    size(self.l2_size),
                    self.l2_ways,
                    self.l2_latency
                ),
            ),
            (
                "LL Cache".into(),
                format!(
                    "{}, {}-way, {}-entry MSHR, {}-cycle",
                    size(self.llc_size),
                    self.llc_ways,
                    self.llc_mshrs,
                    self.llc_latency
                ),
            ),
            (
                "DRAM".into(),
                format!(
                    "tRP=tRCD=tCAS={} cycles, {} banks, {} rows",
                    self.dram.t_rp, self.dram.banks, self.dram.rows
                ),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_v() {
        let c = SimConfig::default();
        assert_eq!(c.width, 4);
        assert_eq!(c.rob_size, 256);
        assert_eq!(c.l1d_size, 64 * 1024);
        assert_eq!(c.l1d_ways, 12);
        assert_eq!(c.l2_size, 1024 * 1024);
        assert_eq!(c.llc_size, 8 * 1024 * 1024);
        assert_eq!(c.llc_ways, 16);
        assert_eq!(c.llc_mshrs, 64);
        assert_eq!(c.llc_replacement, Replacement::Lru);
        assert_eq!(c.llc_latency, 20);
        assert_eq!(c.dram.t_rp, 50); // 12.5 ns at 4 GHz
    }

    #[test]
    fn table_v_rows_render() {
        let rows = SimConfig::default().table_v_rows();
        assert_eq!(rows.len(), 5);
        assert!(rows[3].1.contains("8 MB"));
    }
}
