//! Simulation statistics and the paper's evaluation metrics (§V-A2):
//! prefetch accuracy, prefetch coverage, MPKI, and IPC.

use serde::{Deserialize, Serialize};

/// Counters collected by one simulation run (measurement window only).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// Instructions retired in the measurement window.
    pub instructions: u64,
    /// Cycles elapsed in the measurement window.
    pub cycles: u64,
    /// Demand memory accesses simulated.
    pub demand_accesses: u64,
    /// Demand accesses that missed L1D.
    pub l1d_misses: u64,
    /// Demand accesses that missed L2.
    pub l2_misses: u64,
    /// Demand accesses that reached the LLC and hit.
    pub llc_demand_hits: u64,
    /// Demand accesses that reached the LLC and truly missed (a demand
    /// that catches a still-in-flight prefetch counts as a hit — the
    /// prefetch is recorded in `prefetches_late` instead).
    pub llc_demand_misses: u64,
    /// Prefetch requests issued to memory.
    pub prefetches_issued: u64,
    /// Prefetched lines referenced by demand before replacement
    /// ("useful prefetch", the paper's definition).
    pub prefetches_useful: u64,
    /// Useful prefetches that were still in flight when demanded.
    pub prefetches_late: u64,
    /// Prefetched lines evicted without ever being referenced.
    pub prefetches_unused_evicted: u64,
    /// DRAM row-buffer hits.
    pub dram_row_hits: u64,
    /// DRAM row-buffer misses.
    pub dram_row_misses: u64,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// LLC demand misses per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc_demand_misses as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Prefetch accuracy: useful / issued (§V-A2).
    pub fn accuracy(&self) -> f64 {
        if self.prefetches_issued == 0 {
            0.0
        } else {
            self.prefetches_useful as f64 / self.prefetches_issued as f64
        }
    }

    /// Prefetch coverage: useful prefetches over the misses the
    /// no-prefetch execution would have had, approximated as
    /// `useful / (useful + remaining demand misses)` (§V-A2).
    pub fn coverage(&self) -> f64 {
        let denom = self.prefetches_useful + self.llc_demand_misses;
        if denom == 0 {
            0.0
        } else {
            self.prefetches_useful as f64 / denom as f64
        }
    }

    /// IPC improvement of `self` over a `baseline` run, in percent.
    pub fn ipc_improvement_over(&self, baseline: &SimStats) -> f64 {
        let b = baseline.ipc();
        if b == 0.0 {
            0.0
        } else {
            (self.ipc() / b - 1.0) * 100.0
        }
    }

    /// MPKI reduction versus a baseline, in percent.
    pub fn mpki_reduction_over(&self, baseline: &SimStats) -> f64 {
        let b = baseline.mpki();
        if b == 0.0 {
            0.0
        } else {
            (1.0 - self.mpki() / b) * 100.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(instr: u64, cycles: u64, miss: u64, issued: u64, useful: u64) -> SimStats {
        SimStats {
            instructions: instr,
            cycles,
            llc_demand_misses: miss,
            prefetches_issued: issued,
            prefetches_useful: useful,
            ..Default::default()
        }
    }

    #[test]
    fn metric_formulas() {
        let st = s(1000, 500, 100, 80, 60);
        assert!((st.ipc() - 2.0).abs() < 1e-12);
        assert!((st.mpki() - 100.0).abs() < 1e-12);
        assert!((st.accuracy() - 0.75).abs() < 1e-12);
        assert!((st.coverage() - 60.0 / 160.0).abs() < 1e-12);
    }

    #[test]
    fn improvement_over_baseline() {
        let base = s(1000, 1000, 200, 0, 0);
        let pf = s(1000, 800, 100, 100, 90);
        assert!((pf.ipc_improvement_over(&base) - 25.0).abs() < 1e-9);
        assert!((pf.mpki_reduction_over(&base) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let z = SimStats::default();
        assert_eq!(z.ipc(), 0.0);
        assert_eq!(z.mpki(), 0.0);
        assert_eq!(z.accuracy(), 0.0);
        assert_eq!(z.coverage(), 0.0);
        assert_eq!(z.ipc_improvement_over(&z), 0.0);
        assert_eq!(z.mpki_reduction_over(&z), 0.0);
    }
}
