//! Checked narrowing conversions — the sanctioned cast boundary for the
//! simulator hot path.
//!
//! Addresses, block numbers, and cycle counts live in `u64`; table
//! indices live in `usize` and the fastmod folding chain in `u32`. A raw
//! `as` cast at each site truncates silently when an invariant breaks,
//! which is why the `lossy-cast` lint bans them on the hot files. These
//! helpers make every narrowing either *checked* (debug builds assert the
//! value fits; release builds compile to the same bare cast, so the hot
//! path pays nothing) or *explicitly lossy* with the truncation in the
//! name ([`low32`]).

/// Narrow a value to a table index.
///
/// Debug builds assert the value fits in `usize`; release builds are a
/// plain cast. Use for set/way/bank indices that are bounded by a modulo
/// or mask just upstream.
#[inline(always)]
pub fn to_index(x: u64) -> usize {
    debug_assert!(
        usize::try_from(x).is_ok(),
        "index {x} does not fit in usize"
    );
    x as usize
}

/// Narrow a value known to fit in 32 bits (e.g. the fastmod folding
/// chain, whose operands are proven `< 2^32`).
///
/// Debug builds assert the bound; release builds are a plain cast.
#[inline(always)]
pub fn to_u32(x: u64) -> u32 {
    debug_assert!(x <= u64::from(u32::MAX), "value {x} does not fit in u32");
    x as u32
}

/// The low 32 bits of `x` — *intentional* truncation, e.g. splitting a
/// 64-bit block number into halves for folding. The loss is the point,
/// so no assertion.
#[inline(always)]
pub fn low32(x: u64) -> u32 {
    (x & 0xffff_ffff) as u32
}

/// Cache-line (block) address of a byte address. Lossless; mirrors
/// `resemble_trace::record::block_of` so sim-internal code does not need
/// the trace crate for address arithmetic.
#[inline(always)]
pub fn to_line_addr(addr: u64) -> u64 {
    addr >> 6
}

/// Narrow an aggregate cycle quantity (e.g. a `u128` product of latency
/// and count) back to the engine's `u64` cycle domain, checked in debug
/// builds.
#[inline(always)]
pub fn to_cycle(x: u128) -> u64 {
    debug_assert!(
        u64::try_from(x).is_ok(),
        "cycle quantity {x} does not fit in u64"
    );
    x as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_round_trip() {
        assert_eq!(to_index(0), 0);
        assert_eq!(to_index(4095), 4095);
        assert_eq!(to_u32(u64::from(u32::MAX)), u32::MAX);
        assert_eq!(to_cycle(12_345u128), 12_345u64);
    }

    #[test]
    fn low32_truncates_by_design() {
        assert_eq!(low32(0xdead_beef_cafe_f00d), 0xcafe_f00d);
        assert_eq!(low32(0x1_0000_0000), 0);
    }

    #[test]
    fn line_addr_matches_trace_block_of() {
        for addr in [0u64, 63, 64, 4095, 0xdead_beef_cafe] {
            assert_eq!(to_line_addr(addr), resemble_trace::record::block_of(addr));
        }
    }

    #[test]
    #[should_panic(expected = "does not fit in u32")]
    #[cfg(debug_assertions)]
    fn to_u32_asserts_in_debug() {
        let _ = to_u32(1 << 32);
    }

    #[test]
    #[should_panic(expected = "does not fit in u64")]
    #[cfg(debug_assertions)]
    fn to_cycle_asserts_in_debug() {
        let _ = to_cycle(u128::from(u64::MAX) + 1);
    }
}
