//! Set-associative cache with LRU replacement and per-line prefetch
//! bookkeeping (needed for the paper's "useful prefetch" accounting: a
//! prefetch is useful iff the prefetched line is referenced before it is
//! replaced).
//!
//! Storage layout is optimized for the simulator's hot path: block tags
//! live in one contiguous `Vec<u64>` (a set's tags span at most two cache
//! lines of the host machine), while the replacement/bookkeeping metadata
//! sits in a parallel array that is only touched on the hit way or during
//! victim selection. Set indexing is strength-reduced: a mask for
//! power-of-two set counts and a Lemire multiply-shift remainder for the
//! non-power-of-two geometries Table V produces (e.g. 85 L1D sets).
//! Lookups never allocate.

use crate::convert;
use resemble_trace::record::block_of;
use serde::{Deserialize, Serialize};

/// Cache replacement policy. The paper evaluates with LRU; FIFO and
/// Random are provided for sensitivity studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Replacement {
    /// Least-recently-used (Table V).
    #[default]
    Lru,
    /// First-in-first-out (insertion order).
    Fifo,
    /// Pseudo-random (xorshift over the way index).
    Random,
}

/// Outcome of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Present; `was_unused_prefetch` reports whether this demand touch is
    /// the first use of a prefetched line (it then counts as useful).
    Hit {
        /// First demand touch of a prefetched line.
        first_use_of_prefetch: bool,
    },
    /// Absent.
    Miss,
}

/// What a fill displaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Block number of the victim line.
    pub block: u64,
    /// The victim was brought in by a prefetch and never demanded.
    pub unused_prefetch: bool,
    /// The victim was dirty (write-back traffic).
    pub dirty: bool,
}

/// Tag value marking an empty way. Real tags are block numbers
/// (`addr >> 6`), so `u64::MAX` is unreachable.
const INVALID_TAG: u64 = u64::MAX;

/// Per-line metadata packed into one `u64`: bits 0..=60 hold the LRU
/// timestamp (the simulator issues two ticks per access/fill, so 2^61
/// outlasts any run), bit 61 `dirty`, bit 62 `prefetched`, bit 63 `used`.
/// One word per line keeps a whole 16-way set's metadata inside two host
/// cache lines, so hit updates are a single read-modify-write and victim
/// scans stream contiguous words.
const META_DIRTY: u64 = 1 << 61;
const META_PREFETCHED: u64 = 1 << 62;
const META_USED: u64 = 1 << 63;
const META_LRU_MASK: u64 = META_DIRTY - 1;

/// A single cache level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cache {
    name: &'static str,
    sets: usize,
    ways: usize,
    /// `INVALID_TAG` marks an empty way; otherwise the resident block.
    tags: Vec<u64>,
    /// Packed per-line metadata (see `META_*`), parallel to `tags`.
    meta: Vec<u64>,
    /// Insertion timestamps, written and read only under
    /// `Replacement::Fifo` (cold for the paper's LRU configuration).
    inserted: Vec<u64>,
    tick: u64,
    policy: Replacement,
    rng_state: u64,
    /// `sets - 1` when `sets` is a power of two, else `u64::MAX` to select
    /// the multiply-shift path.
    set_mask: u64,
    /// Lemire fastmod constant `⌈2^64 / sets⌉` (32-bit operand variant).
    fastmod_m: u64,
    /// `2^32 mod sets`, used to fold the high half of a 64-bit block.
    fold_r: u64,
}

/// Exact `n mod d` for 32-bit `n` via Lemire's multiply-shift
/// (`m = ⌈2^64 / d⌉`); proven exact for all `n, d < 2^32`.
#[inline]
fn fastmod32(n: u32, d: u64, m: u64) -> u64 {
    let low = m.wrapping_mul(n as u64);
    ((low as u128 * d as u128) >> 64) as u64
}

impl Cache {
    /// Build a cache of `size_bytes` with `ways` associativity over
    /// 64-byte blocks. The set count is `size / (64 * ways)` and need not
    /// be a power of two (indexing is modulo).
    pub fn new(name: &'static str, size_bytes: usize, ways: usize) -> Self {
        Self::with_policy(name, size_bytes, ways, Replacement::Lru)
    }

    /// Build a cache with an explicit replacement policy.
    pub fn with_policy(
        name: &'static str,
        size_bytes: usize,
        ways: usize,
        policy: Replacement,
    ) -> Self {
        assert!(ways > 0);
        let sets = size_bytes / (64 * ways);
        assert!(sets > 0, "cache too small: {size_bytes} bytes, {ways} ways");
        let set_mask = if sets.is_power_of_two() {
            sets as u64 - 1
        } else {
            u64::MAX
        };
        Self {
            name,
            sets,
            ways,
            tags: vec![INVALID_TAG; sets * ways],
            meta: vec![0; sets * ways],
            inserted: vec![0; sets * ways],
            tick: 0,
            policy,
            rng_state: 0x243F_6A88_85A3_08D3,
            set_mask,
            // ⌈2^64/sets⌉; wraps to 0 for sets == 1, where the pow2 mask
            // path is taken and this value is never read.
            fastmod_m: (u64::MAX / sets as u64).wrapping_add(1),
            fold_r: (1u64 << 32) % sets as u64,
        }
    }

    /// Replacement policy in use.
    pub fn policy(&self) -> Replacement {
        self.policy
    }

    /// Cache level name ("l1d", "llc", ...).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn num_ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * 64
    }

    #[inline]
    fn set_of(&self, block: u64) -> usize {
        if self.set_mask != u64::MAX {
            return convert::to_index(block & self.set_mask);
        }
        let d = self.sets as u64;
        if d < (1 << 16) {
            // Fold the 64-bit block through 2^32 ≡ fold_r (mod d); the
            // folded operand is < d² < 2^32, so both reductions stay in
            // the proven-exact 32-bit fastmod domain.
            let hi = fastmod32(convert::to_u32(block >> 32), d, self.fastmod_m);
            let lo = fastmod32(convert::low32(block), d, self.fastmod_m);
            convert::to_index(fastmod32(
                convert::to_u32(hi * self.fold_r + lo),
                d,
                self.fastmod_m,
            ))
        } else {
            // Enormous non-power-of-two set counts: fall back to hardware
            // division rather than widen the folding chain.
            convert::to_index(block % d)
        }
    }

    /// Index of `block`'s way within its set, if resident.
    ///
    /// The common associativities (Table V and the harness scale: 8, 12,
    /// 16 ways) dispatch to fixed-length branchless scans the compiler can
    /// vectorize; tags are unique within a set, so scan order is moot.
    #[inline]
    fn probe(&self, base: usize, block: u64) -> Option<usize> {
        #[inline]
        fn scan<const N: usize>(tags: &[u64], block: u64) -> Option<usize> {
            // lint:allow(panic-in-hot-path): the ways-dispatch match below only calls scan::<N> with an N-length slice
            let tags: &[u64; N] = tags.try_into().expect("slice length is N");
            let mut found = None;
            let mut i = 0;
            while i < N {
                if tags[i] == block {
                    found = Some(i);
                }
                i += 1;
            }
            found
        }
        let tags = &self.tags[base..base + self.ways];
        match self.ways {
            8 => scan::<8>(tags, block),
            12 => scan::<12>(tags, block),
            16 => scan::<16>(tags, block),
            _ => tags.iter().position(|&t| t == block),
        }
    }

    /// Demand lookup: updates LRU and prefetch-use state on hit.
    pub fn access(&mut self, addr: u64, is_write: bool) -> Lookup {
        let block = block_of(addr);
        let base = self.set_of(block) * self.ways;
        self.tick += 1;
        match self.probe(base, block) {
            Some(w) => {
                let m = &mut self.meta[base + w];
                let first_use = *m & (META_PREFETCHED | META_USED) == META_PREFETCHED;
                let mut v = (*m & (META_DIRTY | META_PREFETCHED)) | META_USED | self.tick;
                if is_write {
                    v |= META_DIRTY;
                }
                *m = v;
                Lookup::Hit {
                    first_use_of_prefetch: first_use,
                }
            }
            None => Lookup::Miss,
        }
    }

    /// Probe without disturbing any state (used by the engine to test
    /// presence and by prefetch-drop filtering).
    pub fn contains(&self, addr: u64) -> bool {
        let block = block_of(addr);
        let base = self.set_of(block) * self.ways;
        self.probe(base, block).is_some()
    }

    /// Insert a block (demand fill or prefetch fill), evicting the LRU
    /// victim if the set is full. Returns the eviction, if any.
    ///
    /// Filling a block already present refreshes it (and can mark a
    /// demand-fill over a prefetched line as used).
    pub fn fill(&mut self, addr: u64, is_write: bool, is_prefetch: bool) -> Option<Eviction> {
        let block = block_of(addr);
        let base = self.set_of(block) * self.ways;
        self.tick += 1;
        let tick = self.tick;
        // Already present?
        if let Some(w) = self.probe(base, block) {
            let m = &mut self.meta[base + w];
            let mut v = (*m & (META_DIRTY | META_PREFETCHED | META_USED)) | tick;
            if is_write {
                v |= META_DIRTY;
            }
            if !is_prefetch {
                v |= META_USED;
            }
            *m = v;
            return None;
        }
        Some(self.insert(base, block, is_write, is_prefetch, tick)).flatten()
    }

    /// [`Cache::fill`] for a block the caller has just probed absent (the
    /// engine's demand-miss path: `access` returned `Miss` and nothing
    /// touched the set since). Skips the presence probe; all state
    /// transitions, including the tick, are identical to `fill`.
    pub fn fill_known_miss(
        &mut self,
        addr: u64,
        is_write: bool,
        is_prefetch: bool,
    ) -> Option<Eviction> {
        let block = block_of(addr);
        let base = self.set_of(block) * self.ways;
        self.tick += 1;
        debug_assert!(self.probe(base, block).is_none(), "block resident");
        let tick = self.tick;
        self.insert(base, block, is_write, is_prefetch, tick)
    }

    /// Place `block` in its set, evicting per policy if no way is free.
    #[inline]
    fn insert(
        &mut self,
        base: usize,
        block: u64,
        is_write: bool,
        is_prefetch: bool,
        tick: u64,
    ) -> Option<Eviction> {
        let ways = self.ways;
        // No separate free-way scan for LRU/FIFO: an empty way carries
        // metadata 0 (live ticks start at 1), so the victim min-scan lands
        // on the first free way whenever one exists — one pass instead of
        // two per insert.
        let victim_idx = match self.policy {
            Replacement::Lru => {
                #[inline]
                fn lru_min<const N: usize>(metas: &[u64]) -> usize {
                    // lint:allow(panic-in-hot-path): the ways-dispatch match below only calls lru_min::<N> with an N-length slice
                    let metas: &[u64; N] = metas.try_into().expect("slice length is N");
                    // Seeding with u64::MAX (> META_LRU_MASK, so iteration 0
                    // always wins) lets the scan start at 0 with no front
                    // element access.
                    let mut best = 0usize;
                    let mut best_lru = u64::MAX;
                    let mut i = 0;
                    while i < N {
                        let lru = metas[i] & META_LRU_MASK;
                        if lru < best_lru {
                            best = i;
                            best_lru = lru;
                        }
                        i += 1;
                    }
                    best
                }
                let metas = &self.meta[base..base + ways];
                match ways {
                    8 => lru_min::<8>(metas),
                    12 => lru_min::<12>(metas),
                    16 => lru_min::<16>(metas),
                    _ => {
                        let mut best = 0usize;
                        let mut best_lru = u64::MAX;
                        for (i, &m) in metas.iter().enumerate() {
                            let lru = m & META_LRU_MASK;
                            if lru < best_lru {
                                best = i;
                                best_lru = lru;
                            }
                        }
                        best
                    }
                }
            }
            Replacement::Fifo => {
                // First-minimum scan, matching min_by_key's tie-breaking,
                // without the impossible-empty-slice expect.
                let ins = &self.inserted[base..base + ways];
                let mut best = 0usize;
                let mut best_t = u64::MAX;
                for (i, &t) in ins.iter().enumerate() {
                    if t < best_t {
                        best = i;
                        best_t = t;
                    }
                }
                best
            }
            Replacement::Random => {
                let tags = &self.tags[base..base + ways];
                match tags.iter().position(|&t| t == INVALID_TAG) {
                    Some(i) => i,
                    None => {
                        let rng = &mut self.rng_state;
                        *rng ^= *rng << 13;
                        *rng ^= *rng >> 7;
                        *rng ^= *rng << 17;
                        convert::to_index(*rng % ways as u64)
                    }
                }
            }
        };
        let victim_tag = self.tags[base + victim_idx];
        let victim_meta = self.meta[base + victim_idx];
        let evicted = if victim_tag != INVALID_TAG {
            Some(Eviction {
                block: victim_tag,
                unused_prefetch: victim_meta & (META_PREFETCHED | META_USED) == META_PREFETCHED,
                dirty: victim_meta & META_DIRTY != 0,
            })
        } else {
            None
        };
        self.tags[base + victim_idx] = block;
        let mut v = tick;
        if is_write {
            v |= META_DIRTY;
        }
        if is_prefetch {
            v |= META_PREFETCHED;
        } else {
            v |= META_USED;
        }
        self.meta[base + victim_idx] = v;
        if self.policy == Replacement::Fifo {
            self.inserted[base + victim_idx] = tick;
        }
        evicted
    }

    /// Invalidate a block (back-invalidation), returning whether it was
    /// present.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let block = block_of(addr);
        let base = self.set_of(block) * self.ways;
        match self.probe(base, block) {
            Some(w) => {
                self.tags[base + w] = INVALID_TAG;
                // Zeroed bookkeeping makes the freed way the next victim
                // under LRU and FIFO alike.
                self.meta[base + w] = 0;
                self.inserted[base + w] = 0;
                true
            }
            None => false,
        }
    }

    /// Drop all contents.
    pub fn clear(&mut self) {
        self.tags.fill(INVALID_TAG);
        self.meta.fill(0);
        self.inserted.fill(0);
        self.tick = 0;
    }

    /// Strip prefetch attribution from every resident line (they remain
    /// valid, but no longer count as useful-on-first-use or
    /// unused-on-eviction). Used at the warmup/measurement boundary so
    /// accuracy only credits prefetches issued inside the measured window.
    pub fn clear_prefetch_marks(&mut self) {
        for (t, m) in self.tags.iter().zip(self.meta.iter_mut()) {
            if *t != INVALID_TAG && *m & META_PREFETCHED != 0 {
                *m = (*m & !META_PREFETCHED) | META_USED;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets x 2 ways.
        Cache::new("t", 2 * 2 * 64, 2)
    }

    #[test]
    fn geometry() {
        let c = Cache::new("llc", 8 * 1024 * 1024, 16);
        assert_eq!(c.num_sets(), 8192);
        assert_eq!(c.capacity_bytes(), 8 * 1024 * 1024);
        let c = Cache::new("l1d", 64 * 1024, 12);
        assert_eq!(c.num_sets(), 85); // non-power-of-two per Table V
    }

    #[test]
    fn set_index_matches_modulo() {
        // The strength-reduced index must agree with `%` for every
        // geometry class: power-of-two, small non-power-of-two (the
        // fastmod path), including blocks with high bits set.
        for ways in [1usize, 2, 3, 12, 16] {
            for sets in [1usize, 2, 3, 5, 64, 85, 170, 341, 8192, 65535] {
                let c = Cache::new("t", sets * ways * 64, ways);
                assert_eq!(c.num_sets(), sets);
                let mut x = 0x9E37_79B9_7F4A_7C15u64;
                for i in 0..2000u64 {
                    // xorshift over the full 64-bit range plus boundary blocks
                    x ^= x << 7;
                    x ^= x >> 9;
                    for block in [x, i, u64::MAX - i, (1u64 << 32) + i] {
                        assert_eq!(
                            c.set_of(block),
                            (block % sets as u64) as usize,
                            "sets={sets} block={block:#x}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn hit_after_fill_miss_before() {
        let mut c = small();
        assert_eq!(c.access(0x1000, false), Lookup::Miss);
        c.fill(0x1000, false, false);
        assert!(matches!(c.access(0x1000, false), Lookup::Hit { .. }));
        assert!(c.contains(0x1000));
        assert!(!c.contains(0x2000));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Blocks 0, 2, 4 all map to set 0 (2 sets).
        c.fill(0, false, false);
        c.fill(2 * 64, false, false);
        // Touch block 0 so block 2 is LRU.
        c.access(0, false);
        let ev = c.fill(4 * 64, false, false).unwrap();
        assert_eq!(ev.block, 2);
        assert!(c.contains(0) && c.contains(4 * 64));
        assert!(!c.contains(2 * 64));
    }

    #[test]
    fn prefetch_use_tracking() {
        let mut c = small();
        c.fill(0x40, false, true); // prefetch fill
        match c.access(0x40, false) {
            Lookup::Hit {
                first_use_of_prefetch,
            } => assert!(first_use_of_prefetch),
            _ => panic!("expected hit"),
        }
        // Second touch is no longer "first use".
        match c.access(0x40, false) {
            Lookup::Hit {
                first_use_of_prefetch,
            } => assert!(!first_use_of_prefetch),
            _ => panic!("expected hit"),
        }
    }

    #[test]
    fn unused_prefetch_reported_on_eviction() {
        let mut c = small();
        c.fill(0, false, true); // prefetch, never used
        c.fill(2 * 64, false, false);
        c.access(2 * 64, false);
        let ev = c.fill(4 * 64, false, false).unwrap();
        assert_eq!(ev.block, 0);
        assert!(ev.unused_prefetch);
    }

    #[test]
    fn dirty_eviction_flag() {
        let mut c = small();
        c.fill(0, true, false);
        c.fill(2 * 64, false, false);
        c.access(2 * 64, false);
        c.access(2 * 64, false);
        let ev = c.fill(4 * 64, false, false).unwrap();
        assert_eq!(ev.block, 0);
        assert!(ev.dirty);
    }

    #[test]
    fn refill_of_present_block_no_eviction() {
        let mut c = small();
        c.fill(0x40, false, true);
        assert!(c.fill(0x40, false, false).is_none());
        // The demand refill marked the prefetched line used: evict it and
        // check it no longer counts as an unused prefetch.
        c.fill(0x40 + 2 * 64, false, false);
        c.access(0x40 + 2 * 64, false);
        let ev = c.fill(0x40 + 4 * 64, false, false).unwrap();
        assert_eq!(ev.block, 1);
        assert!(!ev.unused_prefetch);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small();
        c.fill(0x1000, false, false);
        assert!(c.invalidate(0x1000));
        assert!(!c.contains(0x1000));
        assert!(!c.invalidate(0x1000));
    }

    #[test]
    fn fifo_evicts_insertion_order_despite_touches() {
        let mut c = Cache::with_policy("t", 2 * 2 * 64, 2, Replacement::Fifo);
        c.fill(0, false, false);
        c.fill(2 * 64, false, false);
        // Touch block 0 (LRU would now evict block 2; FIFO still evicts 0).
        c.access(0, false);
        let ev = c.fill(4 * 64, false, false).unwrap();
        assert_eq!(ev.block, 0);
    }

    #[test]
    fn random_replacement_is_deterministic_and_valid() {
        let run = || {
            let mut c = Cache::with_policy("t", 2 * 2 * 64, 2, Replacement::Random);
            let mut evs = Vec::new();
            for i in 0..20u64 {
                if let Some(e) = c.fill(i * 2 * 64, false, false) {
                    evs.push(e.block);
                }
            }
            evs
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "seeded xorshift must be deterministic");
        assert!(!a.is_empty());
    }

    #[test]
    fn writes_mark_dirty_on_hit() {
        let mut c = small();
        c.fill(0x40, false, false);
        c.access(0x40, true);
        c.fill(0x40 + 2 * 64, false, false);
        c.access(0x40 + 2 * 64, false);
        c.access(0x40 + 2 * 64, false);
        let ev = c.fill(0x40 + 4 * 64, false, false).unwrap();
        assert!(ev.dirty);
    }
}
