//! Set-associative cache with LRU replacement and per-line prefetch
//! bookkeeping (needed for the paper's "useful prefetch" accounting: a
//! prefetch is useful iff the prefetched line is referenced before it is
//! replaced).

use resemble_trace::record::block_of;
use serde::{Deserialize, Serialize};

/// Cache replacement policy. The paper evaluates with LRU; FIFO and
/// Random are provided for sensitivity studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Replacement {
    /// Least-recently-used (Table V).
    #[default]
    Lru,
    /// First-in-first-out (insertion order).
    Fifo,
    /// Pseudo-random (xorshift over the way index).
    Random,
}

/// Outcome of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Present; `was_unused_prefetch` reports whether this demand touch is
    /// the first use of a prefetched line (it then counts as useful).
    Hit {
        /// First demand touch of a prefetched line.
        first_use_of_prefetch: bool,
    },
    /// Absent.
    Miss,
}

/// What a fill displaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Block number of the victim line.
    pub block: u64,
    /// The victim was brought in by a prefetch and never demanded.
    pub unused_prefetch: bool,
    /// The victim was dirty (write-back traffic).
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct Line {
    block: u64,
    valid: bool,
    dirty: bool,
    /// brought in by prefetch
    prefetched: bool,
    /// prefetched line that has been demanded at least once
    used: bool,
    /// LRU timestamp (higher = more recent)
    lru: u64,
    /// insertion timestamp (FIFO replacement)
    inserted: u64,
}

/// A single cache level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cache {
    name: &'static str,
    sets: usize,
    ways: usize,
    lines: Vec<Line>,
    tick: u64,
    policy: Replacement,
    rng_state: u64,
}

impl Cache {
    /// Build a cache of `size_bytes` with `ways` associativity over
    /// 64-byte blocks. The set count is `size / (64 * ways)` and need not
    /// be a power of two (indexing is modulo).
    pub fn new(name: &'static str, size_bytes: usize, ways: usize) -> Self {
        Self::with_policy(name, size_bytes, ways, Replacement::Lru)
    }

    /// Build a cache with an explicit replacement policy.
    pub fn with_policy(
        name: &'static str,
        size_bytes: usize,
        ways: usize,
        policy: Replacement,
    ) -> Self {
        assert!(ways > 0);
        let sets = size_bytes / (64 * ways);
        assert!(sets > 0, "cache too small: {size_bytes} bytes, {ways} ways");
        Self {
            name,
            sets,
            ways,
            lines: vec![Line::default(); sets * ways],
            tick: 0,
            policy,
            rng_state: 0x243F_6A88_85A3_08D3,
        }
    }

    /// Replacement policy in use.
    pub fn policy(&self) -> Replacement {
        self.policy
    }

    /// Cache level name ("l1d", "llc", ...).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn num_ways(&self) -> usize {
        self.ways
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * 64
    }

    #[inline]
    fn set_of(&self, block: u64) -> usize {
        (block % self.sets as u64) as usize
    }

    #[inline]
    fn set_lines(&mut self, set: usize) -> &mut [Line] {
        &mut self.lines[set * self.ways..(set + 1) * self.ways]
    }

    /// Demand lookup: updates LRU and prefetch-use state on hit.
    pub fn access(&mut self, addr: u64, is_write: bool) -> Lookup {
        let block = block_of(addr);
        let set = self.set_of(block);
        self.tick += 1;
        let tick = self.tick;
        for line in self.set_lines(set) {
            if line.valid && line.block == block {
                line.lru = tick;
                if is_write {
                    line.dirty = true;
                }
                let first_use = line.prefetched && !line.used;
                line.used = true;
                return Lookup::Hit {
                    first_use_of_prefetch: first_use,
                };
            }
        }
        Lookup::Miss
    }

    /// Probe without disturbing any state (used by the engine to test
    /// presence and by prefetch-drop filtering).
    pub fn contains(&self, addr: u64) -> bool {
        let block = block_of(addr);
        let set = self.set_of(block);
        self.lines[set * self.ways..(set + 1) * self.ways]
            .iter()
            .any(|l| l.valid && l.block == block)
    }

    /// Insert a block (demand fill or prefetch fill), evicting the LRU
    /// victim if the set is full. Returns the eviction, if any.
    ///
    /// Filling a block already present refreshes it (and can mark a
    /// demand-fill over a prefetched line as used).
    pub fn fill(&mut self, addr: u64, is_write: bool, is_prefetch: bool) -> Option<Eviction> {
        let block = block_of(addr);
        let set = self.set_of(block);
        self.tick += 1;
        let tick = self.tick;
        let lines = self.set_lines(set);
        // Already present?
        if let Some(line) = lines.iter_mut().find(|l| l.valid && l.block == block) {
            line.lru = tick;
            if is_write {
                line.dirty = true;
            }
            if !is_prefetch {
                line.used = true;
            }
            return None;
        }
        // Free way?
        let policy = self.policy;
        let ways = self.ways;
        let rng = &mut self.rng_state;
        let lines = &mut self.lines[set * ways..(set + 1) * ways];
        let victim_idx = match lines.iter().position(|l| !l.valid) {
            Some(i) => i,
            None => match policy {
                Replacement::Lru => lines
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.lru)
                    .map(|(i, _)| i)
                    .expect("ways > 0"),
                Replacement::Fifo => lines
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.inserted)
                    .map(|(i, _)| i)
                    .expect("ways > 0"),
                Replacement::Random => {
                    *rng ^= *rng << 13;
                    *rng ^= *rng >> 7;
                    *rng ^= *rng << 17;
                    (*rng % ways as u64) as usize
                }
            },
        };
        let victim = lines[victim_idx];
        let evicted = if victim.valid {
            Some(Eviction {
                block: victim.block,
                unused_prefetch: victim.prefetched && !victim.used,
                dirty: victim.dirty,
            })
        } else {
            None
        };
        lines[victim_idx] = Line {
            block,
            valid: true,
            dirty: is_write,
            prefetched: is_prefetch,
            used: !is_prefetch,
            lru: tick,
            inserted: tick,
        };
        evicted
    }

    /// Invalidate a block (back-invalidation), returning whether it was
    /// present.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let block = block_of(addr);
        let set = self.set_of(block);
        for line in self.set_lines(set) {
            if line.valid && line.block == block {
                line.valid = false;
                return true;
            }
        }
        false
    }

    /// Drop all contents.
    pub fn clear(&mut self) {
        self.lines.fill(Line::default());
        self.tick = 0;
    }

    /// Strip prefetch attribution from every resident line (they remain
    /// valid, but no longer count as useful-on-first-use or
    /// unused-on-eviction). Used at the warmup/measurement boundary so
    /// accuracy only credits prefetches issued inside the measured window.
    pub fn clear_prefetch_marks(&mut self) {
        for line in &mut self.lines {
            if line.valid && line.prefetched {
                line.prefetched = false;
                line.used = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets x 2 ways.
        Cache::new("t", 2 * 2 * 64, 2)
    }

    #[test]
    fn geometry() {
        let c = Cache::new("llc", 8 * 1024 * 1024, 16);
        assert_eq!(c.num_sets(), 8192);
        assert_eq!(c.capacity_bytes(), 8 * 1024 * 1024);
        let c = Cache::new("l1d", 64 * 1024, 12);
        assert_eq!(c.num_sets(), 85); // non-power-of-two per Table V
    }

    #[test]
    fn hit_after_fill_miss_before() {
        let mut c = small();
        assert_eq!(c.access(0x1000, false), Lookup::Miss);
        c.fill(0x1000, false, false);
        assert!(matches!(c.access(0x1000, false), Lookup::Hit { .. }));
        assert!(c.contains(0x1000));
        assert!(!c.contains(0x2000));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Blocks 0, 2, 4 all map to set 0 (2 sets).
        c.fill(0, false, false);
        c.fill(2 * 64, false, false);
        // Touch block 0 so block 2 is LRU.
        c.access(0, false);
        let ev = c.fill(4 * 64, false, false).unwrap();
        assert_eq!(ev.block, 2);
        assert!(c.contains(0) && c.contains(4 * 64));
        assert!(!c.contains(2 * 64));
    }

    #[test]
    fn prefetch_use_tracking() {
        let mut c = small();
        c.fill(0x40, false, true); // prefetch fill
        match c.access(0x40, false) {
            Lookup::Hit {
                first_use_of_prefetch,
            } => assert!(first_use_of_prefetch),
            _ => panic!("expected hit"),
        }
        // Second touch is no longer "first use".
        match c.access(0x40, false) {
            Lookup::Hit {
                first_use_of_prefetch,
            } => assert!(!first_use_of_prefetch),
            _ => panic!("expected hit"),
        }
    }

    #[test]
    fn unused_prefetch_reported_on_eviction() {
        let mut c = small();
        c.fill(0, false, true); // prefetch, never used
        c.fill(2 * 64, false, false);
        c.access(2 * 64, false);
        let ev = c.fill(4 * 64, false, false).unwrap();
        assert_eq!(ev.block, 0);
        assert!(ev.unused_prefetch);
    }

    #[test]
    fn dirty_eviction_flag() {
        let mut c = small();
        c.fill(0, true, false);
        c.fill(2 * 64, false, false);
        c.access(2 * 64, false);
        c.access(2 * 64, false);
        let ev = c.fill(4 * 64, false, false).unwrap();
        assert_eq!(ev.block, 0);
        assert!(ev.dirty);
    }

    #[test]
    fn refill_of_present_block_no_eviction() {
        let mut c = small();
        c.fill(0x40, false, true);
        assert!(c.fill(0x40, false, false).is_none());
        // The demand refill marks the prefetched line used.
        let ev_check = {
            c.fill(2 * 64 + 0x40 - 0x40, false, false); // fills set of block 0? keep simple
            true
        };
        assert!(ev_check);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small();
        c.fill(0x1000, false, false);
        assert!(c.invalidate(0x1000));
        assert!(!c.contains(0x1000));
        assert!(!c.invalidate(0x1000));
    }

    #[test]
    fn fifo_evicts_insertion_order_despite_touches() {
        let mut c = Cache::with_policy("t", 2 * 2 * 64, 2, Replacement::Fifo);
        c.fill(0, false, false);
        c.fill(2 * 64, false, false);
        // Touch block 0 (LRU would now evict block 2; FIFO still evicts 0).
        c.access(0, false);
        let ev = c.fill(4 * 64, false, false).unwrap();
        assert_eq!(ev.block, 0);
    }

    #[test]
    fn random_replacement_is_deterministic_and_valid() {
        let run = || {
            let mut c = Cache::with_policy("t", 2 * 2 * 64, 2, Replacement::Random);
            let mut evs = Vec::new();
            for i in 0..20u64 {
                if let Some(e) = c.fill(i * 2 * 64, false, false) {
                    evs.push(e.block);
                }
            }
            evs
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "seeded xorshift must be deterministic");
        assert!(!a.is_empty());
    }

    #[test]
    fn writes_mark_dirty_on_hit() {
        let mut c = small();
        c.fill(0x40, false, false);
        c.access(0x40, true);
        c.fill(0x40 + 2 * 64, false, false);
        c.access(0x40 + 2 * 64, false);
        c.access(0x40 + 2 * 64, false);
        let ev = c.fill(0x40 + 4 * 64, false, false).unwrap();
        assert!(ev.dirty);
    }
}
