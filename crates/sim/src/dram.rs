//! DRAM timing model: channels × banks with open-row policy.
//!
//! Parameterized per Table V: tRP = tRCD = tCAS = 12.5 ns (50 cycles at
//! 4 GHz), 2 channels × 8 banks collapsed into 16 independent bank
//! machines, 32K rows. Consecutive blocks are striped over banks at
//! 4-block granularity, so sequential streams enjoy row-buffer hits while
//! still spreading across banks; per-access bank occupancy (`burst`)
//! provides the bandwidth bound.
//!
//! The paper's absolute bandwidth (8 GB/s per core) assumes SPEC-like miss
//! densities (a few misses per kilo-instruction). Our synthetic traces are
//! far more memory-intense — every generated access can miss — so the
//! default `burst` keeps the same *ratio* of demand to bandwidth; see
//! DESIGN.md §6.

use serde::{Deserialize, Serialize};

/// Consecutive blocks mapped to the same bank before moving on.
const BLOCKS_PER_STRIPE: u64 = 4;

/// DRAM configuration in CPU cycles.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DramConfig {
    /// Row-precharge latency (cycles).
    pub t_rp: u64,
    /// Row-activate latency (cycles).
    pub t_rcd: u64,
    /// Column-access latency (cycles).
    pub t_cas: u64,
    /// Data-transfer occupancy of a 64-byte burst per bank (cycles).
    /// Aggregate bandwidth is `banks / burst` blocks per cycle.
    pub burst: u64,
    /// Number of independent bank machines (channels × banks).
    pub banks: usize,
    /// Rows per bank.
    pub rows: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        // 12.5 ns at 4 GHz = 50 cycles (Table V).
        Self {
            t_rp: 50,
            t_rcd: 50,
            t_cas: 50,
            burst: 4,
            banks: 16,
            rows: 32 * 1024,
        }
    }
}

#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct Bank {
    open_row: u64,
    row_valid: bool,
    busy_until: u64,
}

/// DRAM with open-row banks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<Bank>,
    /// cumulative row-buffer hits
    pub row_hits: u64,
    /// row-buffer misses (activate needed)
    pub row_misses: u64,
}

impl Dram {
    /// Build from a configuration.
    pub fn new(cfg: DramConfig) -> Self {
        assert!(cfg.banks > 0 && cfg.rows > 0 && cfg.burst > 0);
        Self {
            cfg,
            banks: vec![Bank::default(); cfg.banks],
            row_hits: 0,
            row_misses: 0,
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    #[inline]
    fn map(&self, block: u64) -> (usize, u64) {
        let stripe = block / BLOCKS_PER_STRIPE;
        let bank = crate::convert::to_index(stripe % self.cfg.banks as u64);
        let row = (stripe / self.cfg.banks as u64) % self.cfg.rows;
        (bank, row)
    }

    /// Issue a 64-byte read/write for `block` arriving at `cycle`; returns
    /// the completion cycle. Accounts queueing behind the bank, row-buffer
    /// state, and burst occupancy.
    pub fn access(&mut self, block: u64, cycle: u64) -> u64 {
        let (b, row) = self.map(block);
        let bank = &mut self.banks[b];
        let start = cycle.max(bank.busy_until);
        let latency = if bank.row_valid && bank.open_row == row {
            self.row_hits += 1;
            self.cfg.t_cas
        } else {
            self.row_misses += 1;
            bank.open_row = row;
            bank.row_valid = true;
            self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cas
        };
        bank.busy_until = start + self.cfg.burst;
        start + latency
    }

    /// Reset bank state and statistics.
    pub fn clear(&mut self) {
        self.banks.fill(Bank::default());
        self.row_hits = 0;
        self.row_misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_is_row_miss() {
        let mut d = Dram::new(DramConfig::default());
        let done = d.access(0, 0);
        assert_eq!(done, 150); // tRP + tRCD + tCAS
        assert_eq!(d.row_misses, 1);
    }

    #[test]
    fn same_stripe_second_access_is_row_hit() {
        let mut d = Dram::new(DramConfig::default());
        let t1 = d.access(0, 0);
        let t2 = d.access(1, 1000); // same bank, same row
        assert_eq!(t2 - 1000, 50, "row hit should cost tCAS");
        assert_eq!(d.row_hits, 1);
        assert!(t1 < t2);
    }

    #[test]
    fn bank_conflict_queues_behind_busy_bank() {
        let mut d = Dram::new(DramConfig::default());
        let t1 = d.access(0, 0);
        // Same bank (stripe 0 and stripe 16 both map to bank 0), different
        // row: must wait for burst occupancy, then pay a full activate.
        let t2 = d.access(16 * BLOCKS_PER_STRIPE, 0);
        assert_eq!(t2, 4 + 150);
        assert!(t2 > t1);
    }

    #[test]
    fn different_banks_overlap() {
        let mut d = Dram::new(DramConfig::default());
        let t1 = d.access(0, 0);
        let t2 = d.access(BLOCKS_PER_STRIPE, 0); // bank 1
        assert_eq!(t1, t2, "independent banks should complete in parallel");
    }

    #[test]
    fn sequential_stream_mostly_row_hits() {
        let mut d = Dram::new(DramConfig::default());
        for b in 0..256u64 {
            d.access(b, b * 10);
        }
        // 4 blocks per stripe: 1 activate + 3 hits each.
        assert!(
            d.row_hits >= 3 * d.row_misses,
            "hits={} misses={}",
            d.row_hits,
            d.row_misses
        );
    }

    #[test]
    fn clear_resets() {
        let mut d = Dram::new(DramConfig::default());
        d.access(0, 0);
        d.clear();
        assert_eq!(d.row_misses, 0);
        let done = d.access(0, 0);
        assert_eq!(done, 150);
    }
}
