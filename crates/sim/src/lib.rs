//! # resemble-sim
//!
//! ChampSim-like trace-driven simulation substrate for the ReSemble
//! reproduction: a set-associative L1D/L2/LLC hierarchy with LRU
//! replacement and per-line prefetch accounting, an open-row DRAM timing
//! model, MSHR-limited memory-level parallelism, a simplified 4-wide OoO
//! core, and LLC prefetching with a controller latency/throughput model
//! (the paper's Fig 11 study). Parameters default to Table V.
//!
//! ```
//! use resemble_sim::{Engine, SimConfig};
//! use resemble_trace::gen::{StreamGen, TraceSource};
//! use resemble_prefetch::NextLine;
//!
//! let mut engine = Engine::new(SimConfig::test_small());
//! let mut src = StreamGen::new(1, 2, 1000, 3);
//! let mut pf = NextLine::new(2);
//! let stats = engine.run(&mut src, Some(&mut pf), 1_000, 5_000);
//! assert!(stats.ipc() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod convert;
pub mod dram;
pub mod engine;
pub mod multicore;
mod queue;
pub mod reference;
pub mod stats;

pub use cache::{Cache, Eviction, Lookup, Replacement};
pub use config::{PrefetchTiming, SimConfig};
pub use dram::{Dram, DramConfig};
pub use engine::{run_pair, Engine};
pub use multicore::MultiCoreEngine;
pub use reference::ReferenceEngine;
pub use stats::SimStats;
