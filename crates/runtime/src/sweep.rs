//! Shared sweep scaffolding for the figure/table bins.
//!
//! Every bin used to hand-roll the same loop: build (app, config) work
//! items, run them, stitch results back into tables in input order.
//! [`Sweep`] is that loop, once: push named jobs (optionally grouped),
//! run them on the deterministic executor, and get results — or reduced
//! group values — back **in push order** regardless of `--jobs N`.
//!
//! Grouped sweeps model the keyed-reduce stage of the job graph: jobs
//! pushed under the same group key are reduced together as soon as the
//! group's last job commits, while later groups are still executing.
//! Groups must be contiguous in push order (bins naturally push them
//! that way); the reduce callback runs on the caller's thread.

use crate::executor::{run, run_with, Job, JobCtx, RunOptions, RunOutcome};

/// A sweep under construction: named jobs plus run options.
pub struct Sweep<'env, T> {
    opts: RunOptions,
    jobs: Vec<Job<'env, T>>,
    groups: Vec<String>,
}

impl<'env, T: Send + 'env> Sweep<'env, T> {
    /// Start a sweep for a bin: progress on (unless `RESEMBLE_PROGRESS`
    /// silences it), worker count from the `--jobs` flag value
    /// (0 = `RESEMBLE_JOBS`, then host cores).
    pub fn for_bin(label: &str, cli_jobs: usize) -> Self {
        Self {
            opts: RunOptions::for_bin(label, cli_jobs),
            jobs: Vec::new(),
            groups: Vec::new(),
        }
    }

    /// Start a quiet sweep (tests/library callers): no progress line.
    pub fn quiet(label: &str, jobs: usize) -> Self {
        Self {
            opts: RunOptions::new(label).with_jobs(jobs),
            jobs: Vec::new(),
            groups: Vec::new(),
        }
    }

    /// Set the base seed mixed into each job's derived seed.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.opts = self.opts.with_base_seed(seed);
        self
    }

    /// Push an ungrouped job.
    pub fn push(&mut self, key: impl Into<String>, f: impl FnOnce(&JobCtx) -> T + Send + 'env) {
        self.push_in("", key, f);
    }

    /// Push a job under a group key (for [`run_reduced`](Self::run_reduced)).
    /// Jobs of one group must be pushed contiguously.
    pub fn push_in(
        &mut self,
        group: impl Into<String>,
        key: impl Into<String>,
        f: impl FnOnce(&JobCtx) -> T + Send + 'env,
    ) {
        let group = group.into();
        debug_assert!(
            self.groups.last() == Some(&group) || !self.groups.contains(&group),
            "sweep groups must be contiguous in push order (group '{group}' reopened)"
        );
        self.groups.push(group);
        self.jobs.push(Job::new(key, f));
    }

    /// Number of jobs pushed so far.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Run and return every job's result in push order; panics naming
    /// each failed job (panic isolation means all siblings still ran).
    pub fn run(self) -> Vec<T> {
        let label = self.opts.label.clone();
        run(self.jobs, &self.opts).expect_all(&label)
    }

    /// Run and return the raw per-job outcome (callers that tolerate
    /// failed jobs).
    pub fn try_run(self) -> RunOutcome<T> {
        run(self.jobs, &self.opts)
    }

    /// Run the jobs, then reduce each contiguous group with
    /// `reduce(group_key, results_in_push_order)` — streamed: a group
    /// reduces as soon as its last job commits, while later groups are
    /// still in flight. Returns reduced values in group push order.
    /// Panics naming each failed job.
    pub fn run_reduced<R>(self, mut reduce: impl FnMut(&str, Vec<T>) -> R) -> Vec<R> {
        let Sweep { opts, jobs, groups } = self;
        let n = jobs.len();
        let mut out = Vec::new();
        let mut buf: Vec<T> = Vec::new();
        let mut failed: Vec<String> = Vec::new();
        run_with(jobs, &opts, |i, _key, r| {
            match r {
                Ok(v) => buf.push(v),
                Err(e) => failed.push(format!("'{}' ({})", e.key, e.message)),
            }
            let last_of_group = i + 1 == n || groups[i + 1] != groups[i];
            if last_of_group && failed.is_empty() {
                out.push(reduce(&groups[i], std::mem::take(&mut buf)));
            }
        });
        if !failed.is_empty() {
            panic!(
                "{}: {} of {} jobs panicked: {}",
                opts.label,
                failed.len(),
                n,
                failed.join(", ")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_push_order() {
        let mut sw = Sweep::quiet("t", 4);
        for i in 0..16usize {
            // Reverse the natural finish order: early jobs sleep longest.
            sw.push(format!("job{i}"), move |_| {
                std::thread::sleep(std::time::Duration::from_millis((16 - i) as u64));
                i * 10
            });
        }
        assert_eq!(sw.run(), (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn grouped_reduce_sees_contiguous_groups_in_order() {
        let mut sw = Sweep::quiet("t", 8);
        for g in 0..4 {
            for i in 0..3 {
                sw.push_in(format!("g{g}"), format!("g{g}/j{i}"), move |_| g * 100 + i);
            }
        }
        let sums = sw.run_reduced(|key, vals| (key.to_string(), vals.iter().sum::<i32>()));
        assert_eq!(
            sums,
            vec![
                ("g0".to_string(), 3),
                ("g1".to_string(), 303),
                ("g2".to_string(), 603),
                ("g3".to_string(), 903),
            ]
        );
    }

    #[test]
    fn job_seed_depends_on_key_not_order() {
        let seed_of = |jobs: usize, key_filter: &'static str| -> u64 {
            let mut sw = Sweep::quiet("t", jobs).base_seed(7);
            for k in ["a", "b", "c", "d"] {
                sw.push(k, move |ctx| (ctx.key.clone(), ctx.seed));
            }
            sw.run()
                .into_iter()
                .find(|(k, _)| k == key_filter)
                .unwrap()
                .1
        };
        // Same key, different worker counts: same seed.
        assert_eq!(seed_of(1, "c"), seed_of(8, "c"));
        assert_ne!(seed_of(1, "c"), seed_of(1, "d"));
    }
}
