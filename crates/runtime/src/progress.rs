//! Live sweep progress on stderr.
//!
//! One updating `jobs done/total` line per sweep, written only from the
//! merge thread. Progress is stderr-only telemetry: stdout stays clean
//! for the bins' tables and JSON, and disabling progress cannot change
//! any result byte.
//!
//! Enabled by default in the bins; `RESEMBLE_PROGRESS=0` silences it
//! (tests and CI logs), `RESEMBLE_PROGRESS=lines` switches the
//! carriage-return ticker to one plain line per job for dumb consoles.

use std::io::Write;
use std::time::Instant;

/// How progress is rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// No output.
    Off,
    /// A single in-place line updated with `\r` (interactive default).
    Ticker,
    /// One appended line per finished job (log-friendly).
    Lines,
}

impl Mode {
    /// Resolve the mode: `enabled` is the caller's default (bins pass
    /// `true`, library users `false`), then `RESEMBLE_PROGRESS`
    /// overrides (`0`/`off` silences, `lines` selects line mode).
    pub fn resolve(enabled: bool) -> Mode {
        match std::env::var("RESEMBLE_PROGRESS").ok().as_deref() {
            Some("0") | Some("off") => Mode::Off,
            Some("lines") => Mode::Lines,
            Some(_) => Mode::Ticker,
            None => {
                if enabled {
                    Mode::Ticker
                } else {
                    Mode::Off
                }
            }
        }
    }
}

/// Progress reporter for one sweep.
pub struct Progress {
    mode: Mode,
    label: String,
    total: usize,
    done: usize,
    failed: usize,
    started: Instant,
}

impl Progress {
    /// Start reporting a sweep of `total` jobs.
    pub fn new(mode: Mode, label: &str, total: usize) -> Self {
        Self {
            mode,
            label: label.to_string(),
            total,
            done: 0,
            failed: 0,
            started: Instant::now(),
        }
    }

    /// Record one finished job and repaint.
    pub fn finished(&mut self, key: &str, ok: bool, job_ms: u128) {
        self.done += 1;
        if !ok {
            self.failed += 1;
        }
        match self.mode {
            Mode::Off => {}
            Mode::Ticker => {
                eprint!(
                    "\r[{}] {}/{} jobs done{} — last: {} ({} ms)   ",
                    self.label,
                    self.done,
                    self.total,
                    if self.failed > 0 {
                        format!(" ({} failed)", self.failed)
                    } else {
                        String::new()
                    },
                    key,
                    job_ms
                );
                let _ = std::io::stderr().flush();
            }
            Mode::Lines => {
                eprintln!(
                    "[{}] {}/{} {} {} ({} ms)",
                    self.label,
                    self.done,
                    self.total,
                    if ok { "ok" } else { "PANIC" },
                    key,
                    job_ms
                );
            }
        }
    }

    /// Finish the sweep: terminate the ticker line with a summary.
    pub fn close(self) {
        if self.mode == Mode::Ticker && self.total > 0 {
            eprintln!(
                "\r[{}] {}/{} jobs done{} in {:.2} s                          ",
                self.label,
                self.done,
                self.total,
                if self.failed > 0 {
                    format!(" ({} failed)", self.failed)
                } else {
                    String::new()
                },
                self.started.elapsed().as_secs_f64()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_mode_counts_without_printing() {
        let mut p = Progress::new(Mode::Off, "t", 3);
        p.finished("a", true, 1);
        p.finished("b", false, 2);
        assert_eq!(p.done, 2);
        assert_eq!(p.failed, 1);
        p.close();
    }

    #[test]
    fn mode_resolution_honors_caller_default() {
        // The env var may be set by the harness; only assert the
        // caller-default path when it is absent.
        if std::env::var("RESEMBLE_PROGRESS").is_err() {
            assert_eq!(Mode::resolve(false), Mode::Off);
            assert_eq!(Mode::resolve(true), Mode::Ticker);
        }
    }
}
