//! The deterministic parallel executor: fixed worker pool, key-ordered
//! result commit, panic isolation, bounded event channel.
//!
//! ## Scheduling model
//!
//! Jobs are materialized up front in a `Vec` — the job list *is* the
//! schedule. Workers claim indices through a shared atomic cursor (so
//! claiming is contention-cheap and in list order), run the job's
//! closure under `catch_unwind`, and report `Start`/`Finish` events over
//! a **bounded** channel back to the merge thread (the caller's thread).
//! The bound gives backpressure: if the merge thread stalls (slow
//! journal disk, huge results), workers block on `send` instead of
//! buffering unbounded result memory.
//!
//! ## Ordered merge
//!
//! The merge thread buffers out-of-order completions in a `BTreeMap` and
//! commits results strictly in job-list order via the `on_commit`
//! callback — the callback runs on the caller's thread, so downstream
//! aggregation (file writes, table rows, reduce stages) needs no
//! synchronization and sees exactly the serial order. This is why output
//! bytes cannot depend on the worker count.
//!
//! ## Panic isolation
//!
//! A panicking job is caught at the worker, converted into a [`JobError`]
//! naming the job key, and committed in order like any other result;
//! sibling jobs keep running and the pool is never poisoned. Callers
//! decide whether a failed job is fatal ([`RunOutcome::expect_all`]) or
//! recoverable.

use crate::journal::Journal;
use crate::progress::{Mode, Progress};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Mutex;
use std::time::Instant;

/// Per-job context handed to the job closure.
#[derive(Debug, Clone)]
pub struct JobCtx {
    /// Position in the job list (also the commit position).
    pub index: usize,
    /// The job's name; seeds and diagnostics derive from it.
    pub key: String,
    /// Deterministic RNG seed: `seed::derive(base_seed, key)`. Never a
    /// function of worker id or completion order.
    pub seed: u64,
}

/// The boxed body of a [`Job`].
type JobFn<'env, T> = Box<dyn FnOnce(&JobCtx) -> T + Send + 'env>;

/// A claimable work slot: the job's context plus its body, taken exactly
/// once by whichever worker's cursor claim lands on it.
type Slot<'env, T> = Mutex<Option<(JobCtx, JobFn<'env, T>)>>;

/// One schedulable unit: a key plus the closure that computes it.
pub struct Job<'env, T> {
    /// Job name, unique within a sweep (e.g. `"433.milc/bo"`).
    pub key: String,
    run: JobFn<'env, T>,
}

impl<'env, T> Job<'env, T> {
    /// Build a job from a key and its work closure.
    pub fn new(key: impl Into<String>, run: impl FnOnce(&JobCtx) -> T + Send + 'env) -> Self {
        Self {
            key: key.into(),
            run: Box::new(run),
        }
    }
}

/// A job that panicked (or was lost to a dying worker).
#[derive(Debug, Clone)]
pub struct JobError {
    /// Position in the job list.
    pub index: usize,
    /// The job's key.
    pub key: String,
    /// The panic payload (stringified) or a lost-worker note.
    pub message: String,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job '{}' panicked: {}", self.key, self.message)
    }
}

/// Options for one sweep run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker count; 0 resolves via `RESEMBLE_JOBS` then host cores
    /// ([`crate::resolve_jobs`]).
    pub jobs: usize,
    /// Base seed mixed into every job's derived seed.
    pub base_seed: u64,
    /// Whether the live progress line defaults on (bins) or off
    /// (library/tests); `RESEMBLE_PROGRESS` overrides either way.
    pub progress: bool,
    /// JSONL journal path; `None` consults `RESEMBLE_RUN_JOURNAL`.
    pub journal: Option<PathBuf>,
    /// Run label for progress and journal records.
    pub label: String,
}

impl RunOptions {
    /// Library defaults: auto worker count, no progress, journal only if
    /// `RESEMBLE_RUN_JOURNAL` is set.
    pub fn new(label: &str) -> Self {
        Self {
            jobs: 0,
            base_seed: 0,
            progress: false,
            journal: None,
            label: label.to_string(),
        }
    }

    /// Bin defaults: progress on, worker count from the `--jobs` flag
    /// value (0 = auto).
    pub fn for_bin(label: &str, cli_jobs: usize) -> Self {
        Self {
            jobs: cli_jobs,
            progress: true,
            ..Self::new(label)
        }
    }

    /// Set the worker count (0 = auto).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Set the base seed for per-job seed derivation.
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    fn open_journal(&self) -> Journal {
        match &self.journal {
            Some(p) => Journal::open(p),
            None => match std::env::var_os("RESEMBLE_RUN_JOURNAL") {
                Some(p) if !p.is_empty() => Journal::open(std::path::Path::new(&p)),
                _ => Journal::disabled(),
            },
        }
    }
}

/// The completed sweep: one `Result` per job, in job-list order.
#[derive(Debug)]
pub struct RunOutcome<T> {
    /// Per-job results in job-list (key) order.
    pub results: Vec<Result<T, JobError>>,
}

impl<T> RunOutcome<T> {
    /// The failed jobs, in job order.
    pub fn failures(&self) -> Vec<&JobError> {
        self.results
            .iter()
            .filter_map(|r| r.as_ref().err())
            .collect()
    }

    /// Unwrap all results, panicking with every failed job's key if any
    /// job died — the panic names jobs, not workers.
    pub fn expect_all(self, what: &str) -> Vec<T> {
        let n = self.results.len();
        let mut out = Vec::with_capacity(n);
        let mut failed: Vec<String> = Vec::new();
        for r in self.results {
            match r {
                Ok(v) => out.push(v),
                Err(e) => failed.push(format!("'{}' ({})", e.key, e.message)),
            }
        }
        if !failed.is_empty() {
            panic!(
                "{what}: {} of {} jobs panicked: {}",
                failed.len(),
                n,
                failed.join(", ")
            );
        }
        out
    }
}

enum Event<T> {
    Started {
        index: usize,
    },
    Finished {
        index: usize,
        out: Result<T, String>,
        ms: u128,
    },
}

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `jobs` on a fixed worker pool and commit results **in job-list
/// order** through `on_commit(index, key, result)` on the caller's
/// thread. See the module docs for the scheduling and determinism model.
pub fn run_with<'env, T, F>(jobs: Vec<Job<'env, T>>, opts: &RunOptions, mut on_commit: F)
where
    T: Send + 'env,
    F: FnMut(usize, &str, Result<T, JobError>),
{
    let n = jobs.len();
    if n == 0 {
        return;
    }
    let workers = crate::resolve_jobs(opts.jobs).min(n).max(1);
    let keys: Vec<String> = jobs.iter().map(|j| j.key.clone()).collect();
    // Claimable slots: the cursor hands out indices in list order; the
    // mutex only guards the `take` (never held while the job runs).
    let slots: Vec<Slot<'env, T>> = jobs
        .into_iter()
        .enumerate()
        .map(|(index, job)| {
            let ctx = JobCtx {
                index,
                seed: crate::seed::derive(opts.base_seed, &job.key),
                key: job.key,
            };
            Mutex::new(Some((ctx, job.run)))
        })
        .collect();
    let cursor = AtomicUsize::new(0);
    // Bounded event channel: backpressure instead of unbounded result
    // buffering when the merge thread is slower than the workers.
    let (tx, rx) = sync_channel::<Event<T>>(workers * 2 + 2);

    let mut journal = opts.open_journal();
    let mut progress = Progress::new(Mode::resolve(opts.progress), &opts.label, n);
    let run_t0 = Instant::now();
    journal.run_start(&opts.label, n, workers);

    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let slots = &slots;
            let cursor = &cursor;
            s.spawn(move || loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= slots.len() {
                    break;
                }
                let Some((ctx, f)) = slots[k]
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .take()
                else {
                    continue;
                };
                if tx.send(Event::Started { index: k }).is_err() {
                    break; // merge thread gone: nothing to report to
                }
                let t0 = Instant::now();
                let out = catch_unwind(AssertUnwindSafe(|| f(&ctx))).map_err(panic_message);
                let ms = t0.elapsed().as_millis();
                if tx.send(Event::Finished { index: k, out, ms }).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        // Ordered merge on the caller's thread: buffer out-of-order
        // completions, release strictly in index order.
        let mut pending: BTreeMap<usize, Result<T, JobError>> = BTreeMap::new();
        let mut next = 0usize;
        let mut finished = 0usize;
        let mut failed = 0usize;
        while finished < n {
            let Ok(ev) = rx.recv() else {
                break; // every sender gone with jobs missing (worker died
                       // outside catch_unwind); fall through to backfill
            };
            match ev {
                Event::Started { index } => {
                    journal.job_start(&opts.label, index, &keys[index]);
                }
                Event::Finished { index, out, ms } => {
                    finished += 1;
                    let ok = out.is_ok();
                    if !ok {
                        failed += 1;
                    }
                    journal.job_finish(
                        &opts.label,
                        index,
                        &keys[index],
                        if ok { "ok" } else { "panic" },
                        ms,
                    );
                    progress.finished(&keys[index], ok, ms);
                    pending.insert(
                        index,
                        out.map_err(|message| JobError {
                            index,
                            key: keys[index].clone(),
                            message,
                        }),
                    );
                    while let Some(r) = pending.remove(&next) {
                        on_commit(next, &keys[next], r);
                        next += 1;
                    }
                }
            }
        }
        // Backfill: a worker that died outside catch_unwind (e.g. an
        // abort-on-double-panic) leaves holes; report them as errors in
        // order rather than hanging or dropping results on the floor.
        while next < n {
            let r = pending.remove(&next).unwrap_or_else(|| {
                failed += 1;
                Err(JobError {
                    index: next,
                    key: keys[next].clone(),
                    message: "worker died without reporting a result".to_string(),
                })
            });
            on_commit(next, &keys[next], r);
            next += 1;
        }
        journal.run_end(&opts.label, n, failed, run_t0.elapsed().as_millis());
        progress.close();
    });
}

/// [`run_with`] collecting into a [`RunOutcome`].
pub fn run<'env, T: Send + 'env>(jobs: Vec<Job<'env, T>>, opts: &RunOptions) -> RunOutcome<T> {
    let mut results = Vec::with_capacity(jobs.len());
    run_with(jobs, opts, |_, _, r| results.push(r));
    RunOutcome { results }
}
