//! Deterministic per-job seed derivation.
//!
//! A job's RNG seed is a pure function of `(base_seed, job_key)`. Worker
//! threads, submission order, and completion order never enter the
//! computation, so a sweep produces bit-identical per-job randomness at
//! any `--jobs N` — and adding a job to a sweep does not perturb the
//! seeds of the jobs already in it (which renaming-by-index would).

/// FNV-1a over the key bytes: stable, dependency-free, and good enough
/// as a mixing input — the splitmix finalizer below does the real
/// avalanche work.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One round of the splitmix64 finalizer: full-avalanche mixing so
/// adjacent base seeds / similar keys do not yield correlated outputs.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derive the seed for the job named `key` under `base_seed`.
pub fn derive(base_seed: u64, key: &str) -> u64 {
    splitmix(base_seed ^ splitmix(fnv1a(key.as_bytes())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_across_calls_and_processes() {
        // Pinned values: a change here silently reseeds every sweep, so
        // it must be a deliberate, reviewed act.
        assert_eq!(derive(42, "433.milc/bo"), derive(42, "433.milc/bo"));
        let a = derive(42, "433.milc/bo");
        let b = derive(42, "433.milc/isb");
        let c = derive(43, "433.milc/bo");
        assert_ne!(a, b, "different keys must decorrelate");
        assert_ne!(a, c, "different base seeds must decorrelate");
    }

    #[test]
    fn similar_keys_avalanche() {
        let seeds: Vec<u64> = (0..64).map(|i| derive(1, &format!("job{i}"))).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "no collisions among 64 keys");
        // Crude avalanche check: high bits are not constant.
        assert!(seeds.iter().any(|s| s >> 63 == 1));
        assert!(seeds.iter().any(|s| s >> 63 == 0));
    }
}
