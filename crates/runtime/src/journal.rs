//! Append-only JSONL run journal for post-hoc profiling.
//!
//! One line per event, written from the merge thread only (workers hand
//! events over the bounded result channel, so the journal needs no
//! locking). The journal is pure telemetry: wall-clock timestamps and
//! completion order are recorded for profiling, and none of it feeds
//! results — the determinism guarantee covers result bytes, not the
//! journal.
//!
//! Enable by passing a path in [`RunOptions::journal`](crate::RunOptions)
//! or setting `RESEMBLE_RUN_JOURNAL=path`; a process that runs several
//! sweeps appends them all, each bracketed by `run_start` / `run_end`
//! records carrying the run label.

use std::io::Write;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

/// Minimal JSON string escaping (quotes, backslash, control chars) —
/// enough for job keys and run labels.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Milliseconds since the Unix epoch (0 if the clock is broken).
fn now_ms() -> u128 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}

/// An open journal. Write failures are reported once and then the
/// journal goes quiet — telemetry must never abort a sweep.
pub struct Journal {
    out: Option<std::io::BufWriter<std::fs::File>>,
    warned: bool,
}

impl Journal {
    /// Open (append) the journal at `path`.
    pub fn open(path: &Path) -> Self {
        let out = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path);
        match out {
            Ok(f) => Self {
                out: Some(std::io::BufWriter::new(f)),
                warned: false,
            },
            Err(e) => {
                eprintln!("warning: cannot open run journal {}: {e}", path.display());
                Self {
                    out: None,
                    warned: true,
                }
            }
        }
    }

    /// A disabled journal (no path configured): every write is a no-op.
    pub fn disabled() -> Self {
        Self {
            out: None,
            warned: true,
        }
    }

    fn write_line(&mut self, line: &str) {
        if let Some(w) = self.out.as_mut() {
            if writeln!(w, "{line}").is_err() && !self.warned {
                eprintln!("warning: run journal write failed; journaling disabled for this run");
                self.warned = true;
                self.out = None;
            }
        }
    }

    /// Record the start of a run: label, job count, worker count.
    pub fn run_start(&mut self, label: &str, total: usize, workers: usize) {
        self.write_line(&format!(
            "{{\"ev\":\"run_start\",\"run\":\"{}\",\"jobs\":{},\"workers\":{},\"t_ms\":{}}}",
            escape(label),
            total,
            workers,
            now_ms()
        ));
    }

    /// Record a job's dispatch to a worker.
    pub fn job_start(&mut self, label: &str, index: usize, key: &str) {
        self.write_line(&format!(
            "{{\"ev\":\"start\",\"run\":\"{}\",\"index\":{},\"job\":\"{}\",\"t_ms\":{}}}",
            escape(label),
            index,
            escape(key),
            now_ms()
        ));
    }

    /// Record a job's completion (`outcome` is `"ok"` or `"panic"`).
    pub fn job_finish(&mut self, label: &str, index: usize, key: &str, outcome: &str, ms: u128) {
        self.write_line(&format!(
            "{{\"ev\":\"finish\",\"run\":\"{}\",\"index\":{},\"job\":\"{}\",\"outcome\":\"{}\",\"job_ms\":{},\"t_ms\":{}}}",
            escape(label),
            index,
            escape(key),
            escape(outcome),
            ms,
            now_ms()
        ));
    }

    /// Record the end of a run with its failure count and wall time.
    pub fn run_end(&mut self, label: &str, total: usize, failed: usize, ms: u128) {
        self.write_line(&format!(
            "{{\"ev\":\"run_end\",\"run\":\"{}\",\"jobs\":{},\"failed\":{},\"run_ms\":{},\"t_ms\":{}}}",
            escape(label),
            total,
            failed,
            ms,
            now_ms()
        ));
        if let Some(w) = self.out.as_mut() {
            let _ = w.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_json_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("tab\tok"), "tab\\tok");
        assert_eq!(escape("ctl\u{01}"), "ctl\\u0001");
    }

    #[test]
    fn journal_appends_valid_jsonl() {
        let path = std::env::temp_dir().join("resemble_runtime_journal_test.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path);
        j.run_start("t", 2, 1);
        j.job_start("t", 0, "a/\"quoted\"");
        j.job_finish("t", 0, "a/\"quoted\"", "ok", 3);
        j.run_end("t", 2, 0, 7);
        drop(j);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"ev\":\"run_start\""));
        assert!(lines[1].contains("a/\\\"quoted\\\""));
        assert!(lines[3].contains("\"failed\":0"));
        // Each line round-trips through a JSON parser-ish sanity check:
        // balanced braces, starts/ends correctly.
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "{l}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disabled_journal_is_silent() {
        let mut j = Journal::disabled();
        j.run_start("t", 1, 1);
        j.job_finish("t", 0, "k", "ok", 1);
        j.run_end("t", 1, 0, 1);
    }
}
