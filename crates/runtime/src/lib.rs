//! # resemble-runtime
//!
//! Deterministic parallel job executor for the sweep harness (DESIGN.md
//! §9). Every figure/table bin and `run_matrix` schedules its
//! (app, prefetcher, config) simulations through this crate instead of
//! hand-rolled thread loops, and gets the same guarantee everywhere:
//! **output bytes cannot depend on the worker count.**
//!
//! The guarantee rests on three rules:
//!
//! 1. **Jobs are pure functions of their key.** A [`Job`] closure receives
//!    a [`JobCtx`] whose RNG seed is derived from the job *key* and the
//!    run's base seed ([`seed::derive`]) — never from submission order,
//!    completion order, or a thread id. Two runs with the same job list
//!    produce the same per-job inputs at any `--jobs N`.
//! 2. **Shared state is write-once.** Cross-job caches (e.g. the per-app
//!    no-prefetch baselines in `run_matrix`) live in `OnceLock` cells, so
//!    whichever worker arrives first computes the value and everyone else
//!    reuses the identical bits.
//! 3. **Results commit in key order.** The ordered-merge stage
//!    ([`executor::run_with`]) buffers out-of-order completions and
//!    releases them strictly in job-list order, so files, tables, and
//!    aggregate stats are assembled in the same sequence a serial run
//!    would produce.
//!
//! Worker-count resolution is uniform across the harness: an explicit
//! `--jobs N` flag wins, then the `RESEMBLE_JOBS` environment variable,
//! then the host's available parallelism ([`resolve_jobs`]).
//!
//! Telemetry is side-channel only (it never feeds results): per-job
//! start/finish events, a live `jobs done/total` progress line on stderr
//! ([`progress`]), and an append-only JSONL run journal for post-hoc
//! profiling ([`journal`], enabled with `RESEMBLE_RUN_JOURNAL=path`).

#![warn(missing_docs)]

pub mod executor;
pub mod journal;
pub mod progress;
pub mod seed;
pub mod sweep;

pub use executor::{run, run_with, Job, JobCtx, JobError, RunOptions, RunOutcome};
pub use sweep::Sweep;

/// Resolve the worker count for a sweep: an explicit CLI value (`> 0`)
/// wins, then `RESEMBLE_JOBS`, then the host's available parallelism.
/// Always returns at least 1.
pub fn resolve_jobs(cli: usize) -> usize {
    if cli > 0 {
        return cli;
    }
    if let Ok(v) = std::env::var("RESEMBLE_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
        eprintln!("warning: ignoring unparseable RESEMBLE_JOBS={v:?} (want a positive integer)");
    }
    host_parallelism()
}

/// The host's available parallelism (1 if the query fails).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_cli_value_wins() {
        assert_eq!(resolve_jobs(3), 3);
    }

    #[test]
    fn zero_falls_back_to_host() {
        // RESEMBLE_JOBS may or may not be set in the environment running
        // this test; either way the result is a positive worker count.
        assert!(resolve_jobs(0) >= 1);
    }
}
