//! Executor invariants: ordered merge at any worker count, panic
//! isolation that names the failing job without aborting siblings,
//! bounded-channel backpressure, and journal/event accounting.

use resemble_runtime::{run, run_with, Job, JobError, RunOptions, Sweep};
use std::sync::atomic::{AtomicUsize, Ordering};

fn quiet(label: &str, jobs: usize) -> RunOptions {
    RunOptions::new(label).with_jobs(jobs)
}

#[test]
fn commit_order_is_job_order_at_every_worker_count() {
    for workers in [1usize, 2, 3, 8, 32] {
        let jobs: Vec<Job<usize>> = (0..24)
            .map(|i| {
                Job::new(format!("j{i}"), move |_ctx| {
                    // Stagger finishes adversarially: highest index first.
                    std::thread::sleep(std::time::Duration::from_micros(((24 - i) * 200) as u64));
                    i * 7
                })
            })
            .collect();
        let mut committed = Vec::new();
        run_with(jobs, &quiet("order", workers), |i, key, r| {
            assert_eq!(key, format!("j{i}"));
            committed.push(r.unwrap());
        });
        assert_eq!(
            committed,
            (0..24).map(|i| i * 7).collect::<Vec<_>>(),
            "workers={workers}"
        );
    }
}

#[test]
fn results_are_identical_across_worker_counts() {
    let run_at = |workers: usize| -> Vec<u64> {
        let jobs: Vec<Job<u64>> = (0..12)
            .map(|i| Job::new(format!("app{i}/pf"), move |ctx| ctx.seed ^ (i as u64)))
            .collect();
        run(jobs, &quiet("det", workers).with_base_seed(42)).expect_all("det")
    };
    let serial = run_at(1);
    for workers in [2usize, 8] {
        assert_eq!(serial, run_at(workers), "workers={workers}");
    }
}

#[test]
fn panicking_job_names_itself_and_spares_siblings() {
    let survivors = AtomicUsize::new(0);
    let jobs: Vec<Job<u32>> = (0..10)
        .map(|i| {
            let survivors = &survivors;
            Job::new(format!("job{i}"), move |_| {
                if i == 4 {
                    panic!("injected failure in job 4");
                }
                survivors.fetch_add(1, Ordering::Relaxed);
                i
            })
        })
        .collect();
    let outcome = run(jobs, &quiet("panic", 4));
    // Every sibling ran to completion despite the mid-list panic.
    assert_eq!(survivors.load(Ordering::Relaxed), 9);
    assert_eq!(outcome.results.len(), 10);
    let failures: Vec<&JobError> = outcome.failures();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].key, "job4");
    assert_eq!(failures[0].index, 4);
    assert!(
        failures[0].message.contains("injected failure in job 4"),
        "panic payload must survive: {}",
        failures[0].message
    );
    // Ordered commit still holds around the hole.
    for (i, r) in outcome.results.iter().enumerate() {
        match r {
            Ok(v) => assert_eq!(*v as usize, i),
            Err(e) => assert_eq!(e.index, 4),
        }
    }
}

#[test]
fn expect_all_panics_with_the_job_name() {
    let jobs = vec![
        Job::new("fine", |_| 1u8),
        Job::new("doomed", |_| -> u8 { panic!("boom") }),
    ];
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run(jobs, &quiet("expect", 2)).expect_all("expect")
    }))
    .expect_err("must propagate");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("'doomed'"), "panic must name the job: {msg}");
    assert!(msg.contains("1 of 2 jobs"), "{msg}");
}

#[test]
fn backpressure_bounds_inflight_results_without_deadlock() {
    // Many fast jobs against a deliberately slow merge thread: the
    // bounded event channel forces workers to stall rather than buffer
    // all results; everything still commits in order.
    let jobs: Vec<Job<Vec<u8>>> = (0..200)
        .map(|i| Job::new(format!("j{i}"), move |_| vec![i as u8; 1024]))
        .collect();
    let mut seen = 0usize;
    run_with(jobs, &quiet("bp", 8), |i, _, r| {
        if i % 50 == 0 {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(r.unwrap()[0], i as u8);
        seen += 1;
    });
    assert_eq!(seen, 200);
}

#[test]
fn journal_records_start_finish_and_run_bracket() {
    let path = std::env::temp_dir().join("resemble_runtime_exec_journal.jsonl");
    let _ = std::fs::remove_file(&path);
    let mut opts = quiet("journaled", 2);
    opts.journal = Some(path.clone());
    let jobs: Vec<Job<u32>> = (0..3)
        .map(|i| {
            Job::new(format!("j{i}"), move |_| {
                if i == 1 {
                    panic!("die");
                }
                i
            })
        })
        .collect();
    let outcome = run(jobs, &opts);
    assert_eq!(outcome.failures().len(), 1);
    let text = std::fs::read_to_string(&path).unwrap();
    let count = |needle: &str| text.lines().filter(|l| l.contains(needle)).count();
    assert_eq!(count("\"ev\":\"run_start\""), 1);
    assert_eq!(count("\"ev\":\"start\""), 3);
    assert_eq!(count("\"ev\":\"finish\""), 3);
    assert_eq!(count("\"outcome\":\"panic\""), 1);
    assert_eq!(count("\"ev\":\"run_end\""), 1);
    assert!(text.contains("\"failed\":1"));
    // A second run appends rather than truncating.
    let outcome = run(
        vec![Job::new("again", |_| 0u32)],
        &RunOptions {
            journal: Some(path.clone()),
            ..quiet("journaled", 1)
        },
    );
    assert!(outcome.failures().is_empty());
    let text = std::fs::read_to_string(&path).unwrap();
    assert_eq!(
        text.lines()
            .filter(|l| l.contains("\"ev\":\"run_start\""))
            .count(),
        2
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn empty_sweep_is_a_no_op() {
    let outcome = run(Vec::<Job<u8>>::new(), &quiet("empty", 4));
    assert!(outcome.results.is_empty());
    let sw: Sweep<u8> = Sweep::quiet("empty", 4);
    assert!(sw.is_empty());
    assert!(sw.run().is_empty());
}

#[test]
fn worker_count_never_exceeds_jobs_and_floor_is_one() {
    // Degenerate requests must not hang: more workers than jobs, and a
    // single job at jobs=0 (auto).
    let r = run(vec![Job::new("solo", |_| 9u8)], &quiet("clamp", 64));
    assert_eq!(r.results.len(), 1);
    let r = run(vec![Job::new("auto", |_| 1u8)], &quiet("auto", 0));
    assert!(r.failures().is_empty());
}
