//! End-to-end fixtures for the concurrency/unsafe rule set introduced by
//! the cross-file analysis pass: each of `unsafe-undocumented`,
//! `blocking-in-event-loop`, `lock-order`, and `counter-pairing` is
//! exercised through the full `lint_workspace` driver — positive
//! finding, negative (clean) variant, and the inline `lint:allow`
//! escape, including escape-used bookkeeping (a consumed escape must not
//! warn as stale).

use resemble_lint::{lint_workspace, sha256, LintReport};
use std::path::{Path, PathBuf};

fn write_rel(root: &Path, rel: &str, body: &str) {
    let p = root.join(rel);
    std::fs::create_dir_all(p.parent().unwrap()).unwrap();
    std::fs::write(p, body).unwrap();
}

fn scratch(tag: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("conc_{tag}"));
    let _ = std::fs::remove_dir_all(&root);
    let reference = "pub fn reference() {}\n";
    write_rel(&root, "crates/sim/src/reference.rs", reference);
    std::fs::write(
        root.join("lint.toml"),
        format!(
            "schema_version = 1\n[reference-engine-frozen]\nfile = \"crates/sim/src/reference.rs\"\nsha256 = \"{}\"\n",
            sha256::hex_digest(reference.as_bytes())
        ),
    )
    .unwrap();
    root
}

fn errors_for<'a>(report: &'a LintReport, rule: &str) -> Vec<&'a resemble_lint::diag::Diagnostic> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.rule == rule)
        .collect()
}

fn assert_spotless(report: &LintReport) {
    assert!(
        report.is_clean() && report.warnings() == 0,
        "expected a spotless report, got: {:?}",
        report.diagnostics
    );
}

// ---------------------------------------------------------------- unsafe

#[test]
fn unsafe_undocumented_end_to_end() {
    // Positive: undocumented unsafe in an allowlisted file.
    let root = scratch("unsafe_pos");
    write_rel(
        &root,
        "crates/nn/src/align.rs",
        "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
    );
    let report = lint_workspace(&root);
    let hits = errors_for(&report, "unsafe-undocumented");
    assert_eq!(hits.len(), 1, "{:?}", report.diagnostics);
    assert_eq!(hits[0].line, 1);

    // Negative: SAFETY comment directly above.
    let root = scratch("unsafe_neg");
    write_rel(
        &root,
        "crates/nn/src/align.rs",
        "// SAFETY: caller guarantees p points at a live byte.\n\
         pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
    );
    assert_spotless(&lint_workspace(&root));

    // Escape: documented unsafe in a NON-allowlisted file still trips the
    // file-set half of the rule; an inline escape with a reason clears it
    // and is counted as used (no stale-escape warning).
    let root = scratch("unsafe_escape");
    write_rel(
        &root,
        "crates/serve/src/server.rs",
        "// SAFETY: the handler only stores an atomic flag.\n\
         // lint:allow(unsafe-undocumented): single isolated syscall registration\n\
         pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
    );
    assert_spotless(&lint_workspace(&root));
}

// ------------------------------------------------------------- event loop

#[test]
fn blocking_in_event_loop_end_to_end() {
    // Positive: a sleep on the epoll thread.
    let root = scratch("block_pos");
    write_rel(
        &root,
        "crates/serve/src/event_loop.rs",
        "pub fn f() { std::thread::sleep(std::time::Duration::from_millis(1)); }\n",
    );
    let report = lint_workspace(&root);
    let hits = errors_for(&report, "blocking-in-event-loop");
    assert_eq!(hits.len(), 1, "{:?}", report.diagnostics);

    // Negative: non-blocking alternatives pass.
    let root = scratch("block_neg");
    write_rel(
        &root,
        "crates/serve/src/event_loop.rs",
        "pub fn f(m: &std::sync::Mutex<u32>) { if let Ok(_g) = m.try_lock() {} }\n",
    );
    assert_spotless(&lint_workspace(&root));

    // Escape: a justified bounded critical section.
    let root = scratch("block_escape");
    write_rel(
        &root,
        "crates/serve/src/event_loop.rs",
        "pub fn f(m: &std::sync::Mutex<Vec<u32>>) {\n\
             // lint:allow(blocking-in-event-loop): bounded mailbox handoff, push only\n\
             if let Ok(mut g) = m.lock() { g.push(1); }\n\
         }\n",
    );
    assert_spotless(&lint_workspace(&root));
}

// -------------------------------------------------------------- lock-order

const SEEDED_CYCLE: &str = "use std::sync::Mutex;\n\
    pub struct A { pub m: Mutex<u32> }\n\
    pub struct B { pub n: Mutex<u32> }\n\
    pub fn ab(a: &A, b: &B) { let g = a.m.lock().unwrap(); let h = b.n.lock().unwrap(); drop(h); drop(g); }\n\
    pub fn ba(a: &A, b: &B) { let h = b.n.lock().unwrap(); let g = a.m.lock().unwrap(); drop(g); drop(h); }\n";

#[test]
fn lock_order_detects_the_seeded_two_lock_cycle() {
    let root = scratch("lock_pos");
    write_rel(&root, "crates/serve/src/injected.rs", SEEDED_CYCLE);
    let report = lint_workspace(&root);
    let hits = errors_for(&report, "lock-order");
    assert_eq!(hits.len(), 1, "{:?}", report.diagnostics);
    let msg = &hits[0].message;
    assert!(msg.contains("potential deadlock"), "{msg}");
    // The held-lock chain names both locks and both witness functions.
    assert!(msg.contains("`A::m`") && msg.contains("`B::n`"), "{msg}");
    assert!(msg.contains("`ab`") && msg.contains("`ba`"), "{msg}");
    assert!(msg.contains("while holding"), "{msg}");
    assert_eq!(hits[0].path, "crates/serve/src/injected.rs");
    assert_eq!(hits[0].line, 4, "anchored at the first witness acquisition");
}

#[test]
fn lock_order_consistent_nesting_is_clean() {
    let root = scratch("lock_neg");
    write_rel(
        &root,
        "crates/serve/src/injected.rs",
        "use std::sync::Mutex;\n\
         pub struct A { pub m: Mutex<u32> }\n\
         pub struct B { pub n: Mutex<u32> }\n\
         pub fn ab(a: &A, b: &B) { let g = a.m.lock().unwrap(); let h = b.n.lock().unwrap(); drop(h); drop(g); }\n\
         pub fn ab2(a: &A, b: &B) { let g = a.m.lock().unwrap(); let h = b.n.lock().unwrap(); drop(h); drop(g); }\n",
    );
    assert_spotless(&lint_workspace(&root));
}

#[test]
fn lock_order_escape_at_the_witness_line_suppresses() {
    // Same seeded cycle, with the escape on the line above the witness
    // acquisition (line 4 of SEEDED_CYCLE, the inner lock in `ab`).
    let root = scratch("lock_escape");
    let mut lines: Vec<&str> = SEEDED_CYCLE.lines().collect();
    lines.insert(
        3,
        "// lint:allow(lock-order): ab/ba never run concurrently — ba only executes during single-threaded shutdown",
    );
    let src = lines.join("\n") + "\n";
    write_rel(&root, "crates/serve/src/injected.rs", &src);
    assert_spotless(&lint_workspace(&root));
}

// ---------------------------------------------------------- counter-pairing

#[test]
fn counter_pairing_end_to_end() {
    // Positive: a close counter that nothing increments.
    let root = scratch("pair_pos");
    write_rel(
        &root,
        "crates/serve/src/telemetry.rs",
        "use std::sync::atomic::{AtomicU64, Ordering};\n\
         pub struct T { pub conns_opened: AtomicU64, pub conns_closed: AtomicU64 }\n\
         impl T { pub fn open(&self) { self.conns_opened.fetch_add(1, Ordering::Relaxed); } }\n",
    );
    let report = lint_workspace(&root);
    let hits = errors_for(&report, "counter-pairing");
    assert_eq!(hits.len(), 1, "{:?}", report.diagnostics);
    assert!(hits[0].message.contains("`conns_closed`"), "{:?}", hits[0]);
    assert_eq!(hits[0].line, 2, "anchored at the unpaired declaration");

    // Negative: both sides incremented, across files.
    let root = scratch("pair_neg");
    write_rel(
        &root,
        "crates/serve/src/telemetry.rs",
        "use std::sync::atomic::{AtomicU64, Ordering};\n\
         pub struct T { pub conns_opened: AtomicU64, pub conns_closed: AtomicU64 }\n\
         impl T { pub fn open(&self) { self.conns_opened.fetch_add(1, Ordering::Relaxed); } }\n",
    );
    write_rel(
        &root,
        "crates/serve/src/shard.rs",
        "pub fn close(t: &crate::telemetry::T) { t.conns_closed.fetch_add(1, std::sync::atomic::Ordering::Relaxed); }\n",
    );
    assert_spotless(&lint_workspace(&root));

    // Escape at the declaration line.
    let root = scratch("pair_escape");
    write_rel(
        &root,
        "crates/serve/src/telemetry.rs",
        "use std::sync::atomic::{AtomicU64, Ordering};\n\
         // lint:allow(counter-pairing): close path lands in the next change; tracked in ROADMAP\n\
         pub struct T { pub conns_opened: AtomicU64, pub conns_closed: AtomicU64 }\n\
         impl T { pub fn open(&self) { self.conns_opened.fetch_add(1, Ordering::Relaxed); } }\n",
    );
    assert_spotless(&lint_workspace(&root));
}
