//! Tier-1 gate: the live workspace must lint clean, and the analyzer
//! must still *detect* violations (guarding against a rule rotting into
//! a no-op while the workspace stays green).

use resemble_lint::{lint_workspace, rules, sha256};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf()
}

#[test]
fn live_workspace_is_clean() {
    let report = lint_workspace(&repo_root());
    assert!(
        report.is_clean(),
        "workspace has lint errors:\n{}",
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(
        report.warnings(),
        0,
        "workspace has lint warnings (stale escapes or allowlist entries):\n{}",
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The walk really covered the tree (not an empty-root false green).
    // The workspace holds 136 source files as of the concurrency-analysis
    // pass; the floor trails a little so routine deletions don't trip it.
    assert!(
        report.files_scanned > 120,
        "only {} files scanned — workspace walk is broken",
        report.files_scanned
    );
}

#[test]
fn committed_reference_hash_matches_the_file() {
    // Equivalent to the reference-engine-frozen rule passing, but spelled
    // out so a mismatch points straight at the moving part.
    let root = repo_root();
    let toml = std::fs::read_to_string(root.join("lint.toml")).unwrap();
    let committed = toml
        .lines()
        .find_map(|l| l.trim().strip_prefix("sha256 = \""))
        .and_then(|r| r.strip_suffix('"'))
        .expect("lint.toml commits a sha256");
    let actual =
        sha256::hex_digest(&std::fs::read(root.join("crates/sim/src/reference.rs")).unwrap());
    assert_eq!(
        committed, actual,
        "crates/sim/src/reference.rs drifted from the hash committed in lint.toml"
    );
}

/// Copy the real workspace's lint-relevant skeleton into a scratch dir,
/// inject a violation, and confirm the analyzer catches it with a
/// `file:line` diagnostic. One injection per rule.
#[test]
fn every_rule_catches_an_injected_violation() {
    let cases: &[(&str, &str, &str)] = &[
        (
            "nondeterministic-iteration",
            "crates/core/src/injected.rs",
            "use std::collections::HashMap;\npub fn f(m: &HashMap<u64, u64>) -> usize { m.values().count() }\n",
        ),
        (
            "wall-clock-in-sim",
            "crates/sim/src/injected.rs",
            "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n",
        ),
        (
            "panic-in-hot-path",
            "crates/sim/src/engine.rs",
            "pub fn f(v: &[u64]) -> u64 { *v.first().unwrap() }\n",
        ),
        (
            "lossy-cast",
            "crates/sim/src/cache.rs",
            "pub fn f(x: u64) -> usize { x as usize }\n",
        ),
        (
            "float-eq",
            "crates/nn/src/injected.rs",
            "pub fn f(x: f32) -> bool { x != 0.5 }\n",
        ),
        (
            "simd-outside-kernel",
            "crates/nn/src/matrix.rs",
            "pub unsafe fn f() -> std::arch::x86_64::__m128 { std::arch::x86_64::_mm_setzero_ps() }\n",
        ),
        (
            "unsafe-undocumented",
            "crates/serve/src/event_loop.rs",
            "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        ),
        (
            "blocking-in-event-loop",
            "crates/serve/src/event_loop.rs",
            "pub fn f() { std::thread::sleep(std::time::Duration::from_millis(1)); }\n",
        ),
        (
            "lock-order",
            "crates/serve/src/injected.rs",
            "use std::sync::Mutex;\n\
             pub struct A { pub m: Mutex<u32> }\n\
             pub struct B { pub n: Mutex<u32> }\n\
             pub fn ab(a: &A, b: &B) { let g = a.m.lock().unwrap(); let h = b.n.lock().unwrap(); drop(h); drop(g); }\n\
             pub fn ba(a: &A, b: &B) { let h = b.n.lock().unwrap(); let g = a.m.lock().unwrap(); drop(g); drop(h); }\n",
        ),
        (
            "counter-pairing",
            "crates/serve/src/injected.rs",
            "use std::sync::atomic::{AtomicU64, Ordering};\n\
             pub struct T { pub conns_opened: AtomicU64, pub conns_closed: AtomicU64 }\n\
             impl T { pub fn open(&self) { self.conns_opened.fetch_add(1, Ordering::Relaxed); } }\n",
        ),
        (
            "thread-outside-runtime",
            "crates/bench/src/runner.rs",
            "pub fn f() { let h = std::thread::spawn(|| 1); let _ = h.join(); }\n",
        ),
    ];
    for (rule, rel, body) in cases {
        let root = scratch_with_reference(rule);
        write_rel(&root, rel, body);
        let report = lint_workspace(&root);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.rule == *rule && d.path == *rel && d.line >= 1),
            "rule `{rule}` missed its injected violation; got: {:?}",
            report.diagnostics
        );
    }
    // reference-engine-frozen: drift the file instead of adding one.
    let root = scratch_with_reference("reference-frozen");
    write_rel(
        &root,
        "crates/sim/src/reference.rs",
        "pub fn drifted() {}\n",
    );
    let report = lint_workspace(&root);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "reference-engine-frozen"),
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn rule_registry_matches_the_rule_modules() {
    let names: Vec<&str> = rules::RULES.iter().map(|(n, _)| *n).collect();
    for expected in [
        rules::nondet_iteration::RULE,
        rules::wall_clock::RULE,
        rules::panic_hot_path::RULE,
        rules::lossy_cast::RULE,
        rules::float_eq::RULE,
        rules::reference_frozen::RULE,
        rules::simd_kernel::RULE,
        rules::unsafe_undocumented::RULE,
        rules::lock_order::RULE,
        rules::blocking_event_loop::RULE,
        rules::counter_pairing::RULE,
        rules::thread_outside_runtime::RULE,
    ] {
        assert!(
            names.contains(&expected),
            "RULES registry misses {expected}"
        );
    }
}

fn write_rel(root: &Path, rel: &str, body: &str) {
    let p = root.join(rel);
    std::fs::create_dir_all(p.parent().unwrap()).unwrap();
    std::fs::write(p, body).unwrap();
}

fn scratch_with_reference(tag: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("inject_{tag}"));
    let _ = std::fs::remove_dir_all(&root);
    let reference = "pub fn reference() {}\n";
    write_rel(&root, "crates/sim/src/reference.rs", reference);
    std::fs::write(
        root.join("lint.toml"),
        format!(
            "schema_version = 1\n[reference-engine-frozen]\nfile = \"crates/sim/src/reference.rs\"\nsha256 = \"{}\"\n",
            sha256::hex_digest(reference.as_bytes())
        ),
    )
    .unwrap();
    root
}
