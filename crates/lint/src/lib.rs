//! `resemble-lint`: a repo-aware static-analysis pass for the ReSemble
//! workspace. No external dependencies — a hand-rolled lexer plus a
//! lightweight item/path scanner are enough fidelity for the rule set,
//! and the tool has to build in the same offline container as the rest
//! of the workspace.
//!
//! Rules (see [`rules::RULES`] and CONTRIBUTING.md):
//! `nondeterministic-iteration`, `wall-clock-in-sim`, `panic-in-hot-path`,
//! `lossy-cast`, `float-eq`, `reference-engine-frozen`,
//! `simd-outside-kernel`, `unsafe-undocumented`, `lock-order`,
//! `blocking-in-event-loop`, `counter-pairing`, `thread-outside-runtime`.
//!
//! Analysis runs in two passes: per-file rules over each [`FileCtx`] in
//! isolation, then the cross-file rules (`lock-order`,
//! `counter-pairing`) over a workspace symbol/occurrence index built
//! from every retained context ([`index`]). Both passes share one
//! suppression path, so an inline escape at a cross-file diagnostic's
//! witness line works exactly like a per-file one.
//!
//! Suppression happens in two places, both loud when stale:
//! - inline `// lint:allow(rule): reason` escapes (reason required; an
//!   escape no diagnostic hits becomes a warning);
//! - file-level `[[allow]]` entries in `lint.toml` (entries pointing at
//!   deleted files are errors, entries that no longer suppress anything
//!   are warnings).

pub mod config;
pub mod diag;
pub mod index;
pub mod lexer;
pub mod rules;
pub mod scanner;
pub mod sha256;

use config::LintConfig;
use diag::{Diagnostic, Severity};
use scanner::FileCtx;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git"];

/// Result of linting a workspace.
#[derive(Debug)]
pub struct LintReport {
    /// All findings, sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Number of error-severity findings (these fail the gate).
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// `true` when there are no errors (warnings do not fail the gate).
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }
}

/// Collect every `.rs` file under `root`, skipping [`SKIP_DIRS`], in a
/// deterministic (sorted) order.
fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(rd) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in rd.flatten() {
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_str()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Lint the workspace rooted at `root` (the directory holding
/// `lint.toml`). Reads the config, checks the frozen reference hash, and
/// runs every per-file rule over every non-vendored `.rs` file.
pub fn lint_workspace(root: &Path) -> LintReport {
    let mut diags: Vec<Diagnostic> = Vec::new();
    let config_rel = "lint.toml";
    let cfg = match std::fs::read_to_string(root.join(config_rel)) {
        Ok(text) => match LintConfig::parse(&text, config_rel) {
            Ok(cfg) => {
                diags.extend(cfg.validate(root, config_rel));
                cfg
            }
            Err(errs) => {
                diags.extend(errs);
                LintConfig::default()
            }
        },
        Err(e) => {
            diags.push(Diagnostic::error(
                "lint-config",
                config_rel,
                0,
                format!("cannot read lint.toml at workspace root: {e}"),
            ));
            LintConfig::default()
        }
    };
    rules::reference_frozen::check(root, &cfg, &mut diags);

    // Pass 1: lex and scan every file, run the per-file rules, and keep
    // the contexts alive — the cross-file pass needs all of them at once.
    let files = collect_rs_files(root);
    let files_scanned = files.len();
    let mut ctxs: Vec<FileCtx> = Vec::with_capacity(files.len());
    let mut raw: Vec<Diagnostic> = Vec::new();
    for path in &files {
        let Ok(src) = std::fs::read_to_string(path) else {
            continue; // non-UTF-8 file: nothing for a Rust lexer to do
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let ctx = FileCtx::new(&rel, &src);
        rules::check_file(&ctx, &mut raw);
        ctxs.push(ctx);
    }

    // Pass 2: cross-file rules over the workspace index.
    rules::check_workspace(&ctxs, &mut raw);

    // Suppression, shared by both passes: a diagnostic (wherever it came
    // from) consults the inline escapes of the file it is anchored to,
    // then the file-level allowlist.
    let ctx_by_path: std::collections::BTreeMap<&str, &FileCtx> =
        ctxs.iter().map(|c| (c.path.as_str(), c)).collect();
    let mut file_allow_used = vec![false; cfg.allows.len()];
    'diags: for d in raw {
        if let Some(ctx) = ctx_by_path.get(d.path.as_str()) {
            if ctx.allowed(d.rule, d.line) {
                continue; // inline escape, now marked used
            }
        }
        for (idx, a) in cfg.allows.iter().enumerate() {
            if a.rule == d.rule && a.path == d.path {
                file_allow_used[idx] = true;
                continue 'diags;
            }
        }
        diags.push(d);
    }
    // Escapes nothing hit are stale: warn so they get cleaned up.
    for ctx in &ctxs {
        for a in &ctx.allows {
            if !*a.used.borrow() {
                diags.push(Diagnostic::warn(
                    "lint-allow",
                    &ctx.path,
                    a.line,
                    format!(
                        "unused lint:allow escape for `{}`: no diagnostic fires here",
                        a.rules.join(", ")
                    ),
                ));
            }
        }
    }
    // Same for file-level allowlist entries (existence/completeness
    // problems were already errors in validate()).
    for (idx, used) in file_allow_used.iter().enumerate() {
        let a = &cfg.allows[idx];
        if !used && !a.rule.is_empty() && !a.path.is_empty() && root.join(&a.path).is_file() {
            diags.push(Diagnostic::warn(
                "lint-allow",
                config_rel,
                a.line,
                format!(
                    "unused allowlist entry: rule `{}` no longer fires for `{}` — remove it",
                    a.rule, a.path
                ),
            ));
        }
    }

    diags.sort_by(|x, y| x.sort_key().cmp(&y.sort_key()));
    LintReport {
        diagnostics: diags,
        files_scanned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    /// Build a throwaway mini-workspace under the build's scratch space.
    fn scratch_workspace(tag: &str, files: &[(&str, &str)]) -> PathBuf {
        let root = std::env::temp_dir().join(format!("resemble_lint_ws_{tag}"));
        let _ = fs::remove_dir_all(&root);
        for (rel, body) in files {
            let p = root.join(rel);
            fs::create_dir_all(p.parent().unwrap()).unwrap();
            fs::write(p, body).unwrap();
        }
        root
    }

    fn lint_toml_for(root: &Path, reference_rel: &str) -> String {
        let sha = sha256::hex_digest(&fs::read(root.join(reference_rel)).unwrap());
        format!(
            "schema_version = 1\n[reference-engine-frozen]\nfile = \"{reference_rel}\"\nsha256 = \"{sha}\"\n"
        )
    }

    #[test]
    fn injected_violations_are_reported_with_file_line() {
        let root = scratch_workspace(
            "inject",
            &[
                ("crates/sim/src/reference.rs", "pub fn r() {}\n"),
                (
                    "crates/sim/src/engine.rs",
                    "fn f(v: &[u64]) -> u64 { v.first().unwrap() + v[0] }\n",
                ),
                (
                    "crates/core/src/x.rs",
                    "use std::collections::HashMap;\nfn g(m: &HashMap<u64, u64>) -> usize { m.keys().count() }\n",
                ),
            ],
        );
        fs::write(
            root.join("lint.toml"),
            lint_toml_for(&root, "crates/sim/src/reference.rs"),
        )
        .unwrap();
        let report = lint_workspace(&root);
        assert!(!report.is_clean());
        let msgs: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
        assert!(
            msgs.iter().any(
                |m| m.contains("crates/sim/src/engine.rs:1") && m.contains("panic-in-hot-path")
            ),
            "{msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("crates/core/src/x.rs:1")
                && m.contains("nondeterministic-iteration")),
            "{msgs:?}"
        );
    }

    #[test]
    fn inline_escape_suppresses_and_stale_escape_warns() {
        let root = scratch_workspace(
            "escape",
            &[
                ("crates/sim/src/reference.rs", "pub fn r() {}\n"),
                (
                    "crates/nn/src/matrix.rs",
                    "// lint:allow(float-eq): exact sparsity sentinel\n\
                     fn f(x: f32) -> bool { x == 0.0 }\n\
                     // lint:allow(float-eq): stale escape, nothing below\n\
                     fn g(a: u64, b: u64) -> bool { a == b }\n",
                ),
            ],
        );
        fs::write(
            root.join("lint.toml"),
            lint_toml_for(&root, "crates/sim/src/reference.rs"),
        )
        .unwrap();
        let report = lint_workspace(&root);
        assert_eq!(report.errors(), 0, "{:?}", report.diagnostics);
        // The stale escape on line 3 surfaces as a warning.
        assert_eq!(report.warnings(), 1, "{:?}", report.diagnostics);
        assert_eq!(report.diagnostics[0].line, 3);
    }

    #[test]
    fn file_level_allow_suppresses_and_reference_drift_fails() {
        let root = scratch_workspace(
            "config",
            &[
                ("crates/sim/src/reference.rs", "pub fn r() {}\n"),
                (
                    "crates/nn/src/matrix.rs",
                    "fn f(x: f32) -> bool { x == 0.0 }\n",
                ),
            ],
        );
        let mut toml = lint_toml_for(&root, "crates/sim/src/reference.rs");
        toml.push_str(
            "[[allow]]\nrule = \"float-eq\"\npath = \"crates/nn/src/matrix.rs\"\nreason = \"sentinel\"\n",
        );
        fs::write(root.join("lint.toml"), &toml).unwrap();
        assert!(lint_workspace(&root).is_clean());

        // Now drift the reference engine: the frozen-hash rule must fire.
        fs::write(root.join("crates/sim/src/reference.rs"), "pub fn r2() {}\n").unwrap();
        let report = lint_workspace(&root);
        assert_eq!(report.errors(), 1, "{:?}", report.diagnostics);
        assert_eq!(report.diagnostics[0].rule, "reference-engine-frozen");
    }

    #[test]
    fn missing_config_is_an_error() {
        let root = scratch_workspace("noconfig", &[("src/lib.rs", "pub fn f() {}\n")]);
        let report = lint_workspace(&root);
        assert!(!report.is_clean());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == "lint-config" && d.message.contains("cannot read lint.toml")));
    }

    #[test]
    fn vendor_and_target_are_skipped() {
        let root = scratch_workspace(
            "skip",
            &[
                ("crates/sim/src/reference.rs", "pub fn r() {}\n"),
                (
                    "vendor/thing/src/lib.rs",
                    "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\n",
                ),
                (
                    "target/debug/build/gen.rs",
                    "fn f(v: &[u64]) -> u64 { v[0] }\n",
                ),
            ],
        );
        fs::write(
            root.join("lint.toml"),
            lint_toml_for(&root, "crates/sim/src/reference.rs"),
        )
        .unwrap();
        let report = lint_workspace(&root);
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert_eq!(report.files_scanned, 1);
    }
}
