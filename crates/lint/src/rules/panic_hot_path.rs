//! `panic-in-hot-path`: `unwrap()` / `expect()` / `panic!` /
//! `unreachable!` / `todo!` / `unimplemented!` / literal indexing in the
//! simulator hot files and the serve datapath files.
//!
//! A panic half-way through a multi-billion-access trace throws away the
//! whole run; a panic in a shard worker or telemetry recorder takes down
//! every session on a live server. Both hot paths must either handle the
//! case or carry a `lint:allow` escape whose reason explains why the
//! invariant is guaranteed (e.g. a `try_into` on a slice whose length the
//! type system cannot see but the surrounding code pins).
//!
//! Test regions (`#[test]` fns, `#[cfg(test)]` modules) are exempt:
//! panicking is how tests fail.

use super::{HOT_FILES, SERVE_HOT_FILES};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::scanner::FileCtx;

/// Rule name.
pub const RULE: &str = "panic-in-hot-path";

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Run the rule over one file.
pub fn check(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let path = ctx.path.as_str();
    if !HOT_FILES.contains(&path) && !SERVE_HOT_FILES.contains(&path) {
        return;
    }
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if ctx.in_test(t.line) {
            continue;
        }
        // `.unwrap(` / `.expect(` method calls.
        if i >= 1
            && toks[i - 1].is_punct(".")
            && t.ident().is_some_and(|n| n == "unwrap" || n == "expect")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            let name = t.ident().unwrap_or_default();
            out.push(Diagnostic::error(
                RULE,
                &ctx.path,
                t.line,
                format!(
                    ".{name}() on the hot path aborts the whole simulation on failure; \
                     handle the case or add a lint:allow escape justifying the invariant"
                ),
            ));
        }
        // panic!/unreachable!/todo!/unimplemented! macro invocations.
        if t.ident().is_some_and(|n| PANIC_MACROS.contains(&n))
            && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            let name = t.ident().unwrap_or_default();
            out.push(Diagnostic::error(
                RULE,
                &ctx.path,
                t.line,
                format!("{name}! on the hot path aborts the whole simulation"),
            ));
        }
        // Literal indexing `expr[0]`: an out-of-range literal index is a
        // guaranteed panic; prefer `.first()`/`.get(n)` or restructure.
        if t.is_punct("[")
            && i >= 1
            && toks.get(i + 2).is_some_and(|n| n.is_punct("]"))
            && matches!(toks.get(i + 1).map(|n| &n.kind), Some(TokKind::Int))
        {
            let prev = &toks[i - 1];
            let is_index_base =
                matches!(prev.kind, TokKind::Ident(_)) || prev.is_punct("]") || prev.is_punct(")");
            // `ident [` after `let`/`for`/`|` is a slice pattern, and
            // `< ident > [`-style positions don't occur; the base test
            // above keeps types like `[u64; 8]` (preceded by `:`/`&`/`;`)
            // out.
            if is_index_base && prev.ident().is_none_or(|n| !is_keyword(n)) {
                out.push(Diagnostic::error(
                    RULE,
                    &ctx.path,
                    t.line,
                    "literal index on the hot path panics when out of range; use \
                     .get(n)/.first() or restructure the access"
                        .to_string(),
                ));
            }
        }
    }
}

fn is_keyword(n: &str) -> bool {
    matches!(
        n,
        "let" | "for" | "in" | "if" | "while" | "match" | "return" | "mut" | "ref" | "else"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::FileCtx;

    fn run(src: &str) -> Vec<Diagnostic> {
        let ctx = FileCtx::new("crates/sim/src/engine.rs", src);
        let mut out = Vec::new();
        check(&ctx, &mut out);
        out
    }

    #[test]
    fn positive_unwrap_expect_and_macros() {
        let src = "fn f(v: Vec<u64>) -> u64 {\n\
                       let a = v.first().unwrap();\n\
                       let b: u64 = \"7\".parse().expect(\"parses\");\n\
                       if *a > b { panic!(\"boom\") }\n\
                       unreachable!()\n\
                   }\n";
        let d = run(src);
        assert_eq!(d.len(), 4, "{d:?}");
        assert!(d[0].message.contains(".unwrap()"));
        assert!(d[1].message.contains(".expect()"));
        assert!(d[2].message.contains("panic!"));
        assert!(d[3].message.contains("unreachable!"));
    }

    #[test]
    fn positive_literal_index() {
        let src = "fn f(metas: &[u64]) -> u64 { metas[0] }\n";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("literal index"));
    }

    #[test]
    fn negative_array_types_and_variable_index() {
        let src = "fn f(xs: &[u64; 8], i: usize) -> u64 { xs[i] }\n\
                   fn g() -> [u64; 4] { [0, 1, 2, 3] }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn negative_unwrap_or_is_fine() {
        let src = "fn f(v: Option<u64>) -> u64 { v.unwrap_or(0).max(v.unwrap_or_default()) }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn negative_test_region_exempt() {
        let src = "fn f() -> u64 { 1 }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { assert_eq!(super::f(), [1u64][0]); Some(1).unwrap(); }\n\
                   }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn negative_other_files_out_of_scope() {
        let ctx = FileCtx::new("crates/core/src/replay.rs", "fn f() { panic!(\"x\") }\n");
        let mut out = Vec::new();
        check(&ctx, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn positive_serve_datapath_in_scope() {
        // A shard-worker panic takes down every session on the server.
        let ctx = FileCtx::new(
            "crates/serve/src/shard.rs",
            "fn f(v: Option<u64>) -> u64 { v.unwrap() }\n",
        );
        let mut out = Vec::new();
        check(&ctx, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains(".unwrap()"));
        // The non-datapath serve files (protocol setup, handshake) stay
        // out of scope: errors there surface as per-connection replies.
        let ctx = FileCtx::new(
            "crates/serve/src/server.rs",
            "fn f(v: Option<u64>) -> u64 { v.unwrap() }\n",
        );
        let mut out = Vec::new();
        check(&ctx, &mut out);
        assert!(out.is_empty());
    }
}
