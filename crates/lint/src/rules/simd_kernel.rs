//! `simd-outside-kernel`: `std::arch`/`core::arch` intrinsics,
//! `target_feature` attributes/cfgs, and `is_x86_feature_detected!` /
//! `is_aarch64_feature_detected!` probes anywhere except the sanctioned
//! kernel module (`crates/nn/src/simd.rs`).
//!
//! The workspace's bit-identity story depends on every vectorized loop
//! living in one file, next to its scalar twin and its bitwise tests,
//! behind the single runtime-dispatched `KernelBackend`. An intrinsic
//! call in any other file is either dead (it bypasses dispatch, so
//! `RESEMBLE_SIMD=scalar` no longer covers it) or a second dispatch
//! point whose rounding the backend-sweep tests never compare. Callers
//! use the safe wrappers in `resemble_nn::simd`; new kernels are added
//! inside `simd.rs` (see CONTRIBUTING.md).

use super::SIMD_KERNEL_FILES;
use crate::diag::Diagnostic;
use crate::scanner::FileCtx;

/// Rule name.
pub const RULE: &str = "simd-outside-kernel";

/// Whether `name` is shaped like a NEON intrinsic (`vaddq_f32`,
/// `vld1q_s8`, `vreinterpretq_s32_u32`, …): a `v`-prefixed identifier
/// ending in a NEON element-type suffix. Only consulted when the file
/// glob-imports an arch module, so ordinary `v…_f32`-style locals in
/// other files never match.
fn is_neon_intrinsic_name(name: &str) -> bool {
    const ELEM: &[&str] = &[
        "_s8", "_u8", "_s16", "_u16", "_s32", "_u32", "_s64", "_u64", "_f32", "_f64", "_p8",
        "_p16", "_p64",
    ];
    name.starts_with('v') && ELEM.iter().any(|s| name.ends_with(s))
}

/// Run the rule over one file.
pub fn check(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if SIMD_KERNEL_FILES.contains(&ctx.path.as_str()) {
        return;
    }
    let glob_of_arch = ctx.uses.iter().any(|(k, v)| {
        k.starts_with('*') && (v.starts_with("std::arch") || v.starts_with("core::arch"))
    });
    let toks = &ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        let after_path_sep = i >= 1 && toks[i - 1].is_punct("::");
        let what: Option<String> = if name == "target_feature" {
            Some("`target_feature` attribute/cfg".to_string())
        } else if name == "is_x86_feature_detected" || name == "is_aarch64_feature_detected" {
            Some(format!("`{name}!` probe"))
        } else if name == "arch"
            && after_path_sep
            && i >= 2
            && toks[i - 2]
                .ident()
                .is_some_and(|h| h == "std" || h == "core")
        {
            toks[i - 2].ident().map(|h| format!("`{h}::arch` path"))
        } else if !after_path_sep {
            // Bare use of an imported intrinsic (`use std::arch::…::_mm_add_ps`
            // then `_mm_add_ps(…)`), or any `_mm*` name pulled in by a glob of
            // the arch module. Qualified spellings are caught at `arch` above.
            ctx.resolve(name)
                .filter(|p| p.starts_with("std::arch") || p.starts_with("core::arch"))
                .map(|p| format!("`{p}` (imported intrinsic)"))
                .or_else(|| {
                    (glob_of_arch && (name.starts_with("_mm") || is_neon_intrinsic_name(name)))
                        .then(|| format!("`{name}` (glob-imported intrinsic)"))
                })
        } else {
            None
        };
        if let Some(what) = what {
            out.push(Diagnostic::error(
                RULE,
                &ctx.path,
                t.line,
                format!(
                    "{what} outside crates/nn/src/simd.rs: SIMD intrinsics and feature \
                     dispatch live only in the kernel module, behind the runtime-selected \
                     KernelBackend — call the safe wrappers in resemble_nn::simd instead"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::FileCtx;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let ctx = FileCtx::new(path, src);
        let mut out = Vec::new();
        check(&ctx, &mut out);
        out
    }

    #[test]
    fn positive_qualified_intrinsic_path() {
        let src = "pub fn f(a: f32) -> f32 {\n    unsafe { std::arch::x86_64::_mm_cvtss_f32(std::arch::x86_64::_mm_set1_ps(a)) }\n}\n";
        let d = run("crates/nn/src/matrix.rs", src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("std::arch"));
    }

    #[test]
    fn positive_core_arch_and_import() {
        let src = "use core::arch::x86_64::_mm_add_ps;\nfn f() { let _ = _mm_add_ps; }\n";
        let d = run("crates/sim/src/cache.rs", src);
        // Fires on the `core::arch` path in the use and the bare use site.
        assert_eq!(d.len(), 2, "{d:?}");
        assert_eq!(d[0].line, 1);
        assert_eq!(d[1].line, 2);
        assert!(d[1].message.contains("imported intrinsic"));
    }

    #[test]
    fn positive_glob_imported_intrinsic() {
        let src = "use std::arch::x86_64::*;\nfn f() { unsafe { let _ = _mm256_setzero_ps(); } }\n";
        let d = run("crates/core/src/replay.rs", src);
        assert!(d.iter().any(|x| x.line == 1), "{d:?}");
        assert!(
            d.iter()
                .any(|x| x.line == 2 && x.message.contains("glob-imported")),
            "{d:?}"
        );
    }

    #[test]
    fn positive_target_feature_and_detect() {
        let src = "#[target_feature(enable = \"avx2\")]\nunsafe fn g() {}\nfn h() -> bool { std::arch::is_x86_feature_detected!(\"avx2\") }\n";
        let d = run("crates/nn/src/mlp.rs", src);
        assert!(
            d.iter()
                .any(|x| x.line == 1 && x.message.contains("target_feature")),
            "{d:?}"
        );
        assert!(
            d.iter()
                .any(|x| x.line == 3 && x.message.contains("is_x86_feature_detected")),
            "{d:?}"
        );
    }

    #[test]
    fn positive_aarch64_detect_and_glob_neon() {
        let src = "use std::arch::aarch64::*;\n\
                   fn h() -> bool { std::arch::is_aarch64_feature_detected!(\"neon\") }\n\
                   unsafe fn k(a: float32x4_t) -> float32x4_t { vaddq_f32(a, a) }\n";
        let d = run("crates/sim/src/dram.rs", src);
        assert!(
            d.iter()
                .any(|x| x.line == 2 && x.message.contains("is_aarch64_feature_detected")),
            "{d:?}"
        );
        assert!(
            d.iter().any(|x| x.line == 3
                && x.message.contains("`vaddq_f32` (glob-imported intrinsic)")),
            "{d:?}"
        );
    }

    #[test]
    fn negative_neon_shaped_names_without_arch_glob() {
        // `v…_f32`-style locals only count as intrinsics when the file
        // glob-imports an arch module.
        let src = "fn f() { let vals_f32 = [0.0f32]; let _ = vals_f32; }\n";
        assert!(run("crates/sim/src/engine.rs", src).is_empty());
    }

    #[test]
    fn positive_even_in_test_code() {
        // Bit-identity tests compare backends through the dispatch API;
        // raw intrinsics in a test would dodge exactly that comparison.
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let _ = std::arch::x86_64::_mm_setzero_ps as usize; }\n}\n";
        let d = run("crates/nn/tests/backend_sweep.rs", src);
        assert!(!d.is_empty(), "{d:?}");
    }

    #[test]
    fn negative_kernel_module_is_exempt() {
        let src = "use std::arch::x86_64::*;\n#[target_feature(enable = \"avx2\")]\nunsafe fn k() { let _ = _mm256_setzero_ps(); }\n";
        assert!(run("crates/nn/src/simd.rs", src).is_empty());
    }

    #[test]
    fn negative_unrelated_arch_idents() {
        // A local module named `arch`, or prose-y identifiers, are not
        // std::arch; the safe dispatch API is also fine everywhere.
        let src = "mod arch { pub fn width() -> usize { 8 } }\n\
                   fn f() -> usize { arch::width() }\n\
                   fn g() { let _ = resemble_nn::simd::active(); }\n";
        assert!(run("crates/sim/src/engine.rs", src).is_empty());
    }
}
