//! `unsafe-undocumented`: every `unsafe` block, fn, or impl must be
//! preceded by a `// SAFETY:` comment stating the invariant that makes
//! it sound, and `unsafe` may only appear at all in the allowlisted file
//! set ([`super::UNSAFE_ALLOWED_FILES`], mirrored — with reasons — by the
//! `[[unsafe-allowed]]` entries in `lint.toml`).
//!
//! The documentation check accepts the comment on the same line, on the
//! line directly above, or above a contiguous block of comment and/or
//! attribute lines — so `// SAFETY: …` above `#[target_feature(…)]`
//! above `unsafe fn` counts, as does a multi-line SAFETY paragraph.
//! Doc-comment forms (`/// SAFETY:`, `//! SAFETY:`) count too.
//!
//! Keeping the allowlist tiny is the point: raw syscalls live in the
//! event loop, SIMD intrinsics live in the kernel module, manual
//! allocation lives in `AlignedVec` — and nowhere else. A new `unsafe`
//! site outside those files should be a conversation (see
//! CONTRIBUTING.md "Adding an `unsafe` block"), not a habit.

use super::UNSAFE_ALLOWED_FILES;
use crate::diag::Diagnostic;
use crate::scanner::FileCtx;
use std::collections::BTreeSet;

/// Rule name.
pub const RULE: &str = "unsafe-undocumented";

/// Run the rule over one file.
pub fn check(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if ctx.test_path {
        return;
    }
    let unsafe_lines: Vec<u32> = ctx
        .tokens
        .iter()
        .filter(|t| t.is_ident("unsafe") && !ctx.in_test(t.line))
        .map(|t| t.line)
        .collect();
    if unsafe_lines.is_empty() {
        return;
    }

    let allowlisted = UNSAFE_ALLOWED_FILES.contains(&ctx.path.as_str());
    let comment_lines: BTreeSet<u32> = ctx.comments.iter().map(|c| c.line).collect();
    let attr_lines = attribute_lines(ctx);
    let safety_lines: BTreeSet<u32> = ctx
        .comments
        .iter()
        .filter(|c| {
            c.text
                .trim_start_matches(['/', '!', '*', ' ', '\t'])
                .starts_with("SAFETY:")
        })
        .map(|c| c.line)
        .collect();

    let mut flagged = BTreeSet::new();
    for line in unsafe_lines {
        if !flagged.insert(line) {
            continue; // one diagnostic per line, e.g. `unsafe { … } unsafe { … }`
        }
        if !allowlisted {
            out.push(Diagnostic::error(
                RULE,
                &ctx.path,
                line,
                "`unsafe` outside the allowlisted file set: unsafe code is confined to \
                 the files named by [[unsafe-allowed]] in lint.toml (event loop syscalls, \
                 SIMD kernels, AlignedVec); move the code behind an existing safe wrapper \
                 or make the case for extending the allowlist"
                    .to_string(),
            ));
        }
        if !documented(line, &comment_lines, &attr_lines, &safety_lines) {
            out.push(Diagnostic::error(
                RULE,
                &ctx.path,
                line,
                "`unsafe` without a `// SAFETY:` comment: state the invariant that makes \
                 this sound (what the caller/kernel guarantees, why the pointers are \
                 valid, …) on the line(s) directly above"
                    .to_string(),
            ));
        }
    }
}

/// Is the `unsafe` at `line` covered by a SAFETY comment — same line,
/// directly above, or above a contiguous run of comment/attribute lines?
fn documented(
    line: u32,
    comment_lines: &BTreeSet<u32>,
    attr_lines: &BTreeSet<u32>,
    safety_lines: &BTreeSet<u32>,
) -> bool {
    if safety_lines.contains(&line) {
        return true; // trailing `// SAFETY: …` on the unsafe line itself
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        if safety_lines.contains(&l) {
            return true;
        }
        // Climb through ordinary comments (a SAFETY paragraph's later
        // lines, or an interleaved lint:allow escape) and attributes
        // (`#[target_feature]`, `#[cfg]`) — anything else ends the walk.
        if comment_lines.contains(&l) || attr_lines.contains(&l) {
            continue;
        }
        return false;
    }
    false
}

/// Every line covered by an outer attribute (`#[…]`), including
/// multi-line attributes.
fn attribute_lines(ctx: &FileCtx) -> BTreeSet<u32> {
    let toks = &ctx.tokens;
    let n = toks.len();
    let mut lines = BTreeSet::new();
    let mut i = 0;
    while i < n {
        if !(toks[i].is_punct("#") && i + 1 < n && toks[i + 1].is_punct("[")) {
            i += 1;
            continue;
        }
        let start = toks[i].line;
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut end = start;
        while j < n {
            if toks[j].is_punct("[") {
                depth += 1;
            } else if toks[j].is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    end = toks[j].line;
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
        for l in start..=end {
            lines.insert(l);
        }
        i = j.max(i + 1);
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::FileCtx;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let ctx = FileCtx::new(path, src);
        let mut out = Vec::new();
        check(&ctx, &mut out);
        out
    }

    #[test]
    fn positive_undocumented_in_allowlisted_file() {
        let src = "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let d = run("crates/nn/src/align.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("SAFETY"));
    }

    #[test]
    fn negative_documented_directly_above() {
        let src = "pub fn f(p: *const u8) -> u8 {\n\
                   // SAFETY: caller guarantees p points at a live byte.\n\
                   unsafe { *p }\n\
                   }\n";
        assert!(run("crates/nn/src/align.rs", src).is_empty());
    }

    #[test]
    fn negative_multiline_safety_paragraph_and_doc_comment() {
        let src = "/// SAFETY: the buffer is owned by self and outlives\n\
                   /// every borrow handed out by this function.\n\
                   unsafe fn g() {}\n\
                   // SAFETY: trailing form also counts.\n\
                   pub fn h(p: *const u8) -> u8 { unsafe { *p } } // on same line\n";
        // Rewrite: put the trailing-comment case truly on the unsafe line.
        let src2 = "pub fn h(p: *const u8) -> u8 { unsafe { *p } } // SAFETY: p is live.\n";
        assert!(run("crates/nn/src/simd.rs", src).is_empty(), "walk-up");
        assert!(run("crates/nn/src/simd.rs", src2).is_empty(), "same line");
    }

    #[test]
    fn negative_safety_above_attributes() {
        let src = "// SAFETY: only called on AVX2 hosts (runtime-detected).\n\
                   #[target_feature(enable = \"avx2\")]\n\
                   #[inline]\n\
                   unsafe fn kernel() {}\n";
        assert!(run("crates/nn/src/simd.rs", src).is_empty());
    }

    #[test]
    fn positive_unallowlisted_file_even_when_documented() {
        let src = "// SAFETY: documented but in the wrong file.\n\
                   pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let d = run("crates/core/src/x.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("allowlisted file set"), "{d:?}");
    }

    #[test]
    fn negative_test_paths_and_test_regions() {
        let src = "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        assert!(run("crates/serve/tests/x.rs", src).is_empty());
        let src2 = "#[cfg(test)]\n\
                    mod tests {\n\
                        fn f(p: *const u8) -> u8 { unsafe { *p } }\n\
                    }\n";
        assert!(run("crates/core/src/x.rs", src2).is_empty());
    }

    #[test]
    fn positive_undocumented_and_unallowlisted_reports_both() {
        let src = "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let d = run("crates/serve/src/server.rs", src);
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn negative_comment_must_actually_say_safety() {
        let src = "// this dereference is fine, trust me\n\
                   pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
        let d = run("crates/nn/src/align.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
    }
}
