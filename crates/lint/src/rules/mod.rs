//! The rule set. Each rule is a pure function from a [`FileCtx`] to
//! diagnostics; suppression (inline `lint:allow` escapes and `lint.toml`
//! file-level entries) is applied by the driver in `lib.rs`, so rules stay
//! side-effect free and individually testable on fixture snippets.
//!
//! Scope tables live here so CONTRIBUTING.md has one place to mirror.

use crate::diag::Diagnostic;
use crate::scanner::FileCtx;

pub mod blocking_event_loop;
pub mod counter_pairing;
pub mod float_eq;
pub mod lock_order;
pub mod lossy_cast;
pub mod nondet_iteration;
pub mod panic_hot_path;
pub mod reference_frozen;
pub mod simd_kernel;
pub mod thread_outside_runtime;
pub mod unsafe_undocumented;
pub mod wall_clock;

/// Crates whose code feeds simulated statistics, action selection, or
/// eviction order: nondeterministic iteration here can silently change
/// paper figures.
pub const DETERMINISM_CRATES: &[&str] = &["sim", "prefetch", "core", "stats"];

/// The simulator hot path: files where a panic aborts a multi-hour run
/// and a lossy cast corrupts an address or cycle count.
pub const HOT_FILES: &[&str] = &[
    "crates/sim/src/engine.rs",
    "crates/sim/src/cache.rs",
    "crates/sim/src/queue.rs",
    "crates/sim/src/multicore.rs",
    "crates/sim/src/dram.rs",
];

/// The batched controller kernels: lossy casts here corrupt matrix
/// indices and batch offsets just as silently as on the simulator hot
/// path, so `lossy-cast` covers them too. Kept separate from
/// [`HOT_FILES`] because `panic-in-hot-path` does *not* apply — shape
/// assertions in the kernels are the contract, not a liability.
pub const NN_KERNEL_FILES: &[&str] = &[
    "crates/nn/src/matrix.rs",
    "crates/nn/src/mlp.rs",
    "crates/nn/src/activation.rs",
    "crates/nn/src/simd.rs",
    "crates/nn/src/quant.rs",
];

/// The modules allowed to contain `std::arch`/`core::arch` intrinsics
/// and `target_feature` dispatch: every vectorized loop lives in
/// `simd.rs`, next to its scalar twin and the bitwise tests, behind the
/// runtime-selected `KernelBackend`; `quant.rs` is the int8 datapath
/// built directly on those kernels (it holds no intrinsics today, but
/// its packing/layout helpers are kernel-shaped and reviewed under the
/// same rules). Everything else goes through the safe wrappers
/// (`simd-outside-kernel`).
pub const SIMD_KERNEL_FILES: &[&str] = &["crates/nn/src/simd.rs", "crates/nn/src/quant.rs"];

/// The serving datapath: files every decision request crosses. A panic
/// here takes down the whole server, not just one session, so
/// `panic-in-hot-path` covers them alongside [`HOT_FILES`].
pub const SERVE_HOT_FILES: &[&str] = &[
    "crates/serve/src/shard.rs",
    "crates/serve/src/batcher.rs",
    "crates/serve/src/telemetry.rs",
    "crates/serve/src/event_loop.rs",
    "crates/serve/src/pool.rs",
];

/// The only files allowed to contain `unsafe` at all: raw epoll/eventfd
/// syscalls in the event loop, `target_feature` SIMD kernels, and
/// `AlignedVec`'s manual 32-byte-aligned allocation. Mirrored — with a
/// reason per file — by the `[[unsafe-allowed]]` entries in `lint.toml`;
/// the config loader cross-checks the two so neither can drift. Unsafe
/// outside this set takes an inline `lint:allow(unsafe-undocumented)`
/// escape with a reason (`unsafe-undocumented`).
pub const UNSAFE_ALLOWED_FILES: &[&str] = &[
    "crates/serve/src/event_loop.rs",
    "crates/nn/src/simd.rs",
    "crates/nn/src/align.rs",
];

/// Files the epoll thread executes: nothing here may block — no
/// `.lock()`, `thread::sleep`, blocking `recv()`, or unbounded
/// `write_all` (`blocking-in-event-loop`).
pub const EVENT_LOOP_HOT_FILES: &[&str] = &["crates/serve/src/event_loop.rs"];

/// Crates covered by the cross-file concurrency rules (`lock-order`,
/// `counter-pairing`): the serving stack is the only place the workspace
/// takes real locks or counts real resources.
pub const LOCK_ORDER_CRATES: &[&str] = &["serve"];

/// The sanctioned narrowing-conversion boundary: lossy casts are migrated
/// to the checked helpers defined here, so the module itself is exempt.
pub const CONVERT_FILE: &str = "crates/sim/src/convert.rs";

/// The crates allowed to read wall-clock time: `bench` measures the host,
/// `serve` handles real deadlines and latency telemetry for live clients,
/// and `runtime` stamps job durations into the run journal and progress
/// line. None of the three feeds simulated statistics.
pub const WALL_CLOCK_CRATES: &[&str] = &["bench", "serve", "runtime"];

/// The crates whose *job* is thread management — the only places raw
/// `std::thread::{spawn, scope, Builder}` may appear
/// (`thread-outside-runtime`): `runtime` is the deterministic sweep
/// executor (ordered merge, per-key seeds, panic isolation — DESIGN.md
/// §9) and `serve` owns the epoll I/O + shard worker pools (§8).
/// Everything else fans work out through `resemble_runtime::Sweep`.
pub const THREAD_ALLOWED_CRATES: &[&str] = &["runtime", "serve"];

/// Individual files outside [`THREAD_ALLOWED_CRATES`] sanctioned to
/// create threads: the serve-stack bench binaries, whose load-driver
/// client threads are real-time workload generators with no determinism
/// contract to protect. Mirrored — with a reason per file — by the
/// `[[thread-allowed]]` entries in `lint.toml`; the config loader
/// cross-checks the two so neither can drift.
pub const THREAD_ALLOWED_FILES: &[&str] = &[
    "crates/bench/src/bin/serve.rs",
    "crates/bench/src/bin/serve_bench.rs",
];

/// Paths where `==`/`!=` on floats is flagged (learning math: silent
/// NaN/rounding surprises change Q-values).
pub fn float_eq_in_scope(ctx: &FileCtx) -> bool {
    ctx.crate_name == "nn" || ctx.path.starts_with("crates/core/src/agent/")
}

/// Names and one-line descriptions of every rule, for `--list-rules` and
/// the docs.
pub const RULES: &[(&str, &str)] = &[
    (
        "nondeterministic-iteration",
        "std HashMap/HashSet (randomized hasher) in determinism-critical crates; use FxHashMap/FxHashSet or BTreeMap/BTreeSet",
    ),
    (
        "wall-clock-in-sim",
        "std::time::{Instant, SystemTime} outside crates/bench, crates/serve, and crates/runtime; simulated time must come from the engine",
    ),
    (
        "panic-in-hot-path",
        "unwrap/expect/panic!/unreachable!/literal indexing in the simulator hot path or the serve datapath",
    ),
    (
        "lossy-cast",
        "narrowing `as` casts on the hot path or in the nn batch kernels; use the checked helpers in crates/sim/src/convert.rs",
    ),
    (
        "float-eq",
        "`==`/`!=` on f32/f64 in learning code; compare against an epsilon or restructure",
    ),
    (
        "reference-engine-frozen",
        "SHA-256 of crates/sim/src/reference.rs must match the hash committed in lint.toml",
    ),
    (
        "simd-outside-kernel",
        "std::arch/core::arch intrinsics, target_feature, or is_x86_feature_detected! outside the SIMD kernel set (crates/nn/src/{simd,quant}.rs); use the resemble_nn::simd wrappers",
    ),
    (
        "unsafe-undocumented",
        "`unsafe` without a `// SAFETY:` comment directly above, or outside the [[unsafe-allowed]] file set in lint.toml",
    ),
    (
        "lock-order",
        "Mutex/RwLock acquisition cycles or re-acquisition across crates/serve: the inter-lock graph must stay acyclic (potential deadlock)",
    ),
    (
        "blocking-in-event-loop",
        ".lock()/thread::sleep/blocking recv()/write_all in the event-loop hot files; the epoll thread must never block",
    ),
    (
        "counter-pairing",
        "*_opened/*_closed and *_acquired/*_released telemetry counters must both have a live fetch_add site (churn leak invariants)",
    ),
    (
        "thread-outside-runtime",
        "std::thread::{spawn, scope, Builder} outside crates/runtime, crates/serve, and the [[thread-allowed]] bench binaries; fan out through resemble_runtime::Sweep",
    ),
];

/// Run every per-file rule over one file.
pub fn check_file(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    nondet_iteration::check(ctx, out);
    wall_clock::check(ctx, out);
    panic_hot_path::check(ctx, out);
    lossy_cast::check(ctx, out);
    float_eq::check(ctx, out);
    simd_kernel::check(ctx, out);
    thread_outside_runtime::check(ctx, out);
    unsafe_undocumented::check(ctx, out);
    blocking_event_loop::check(ctx, out);
}

/// Run the cross-file rules over the whole workspace: build the symbol /
/// occurrence index once, then hand it to each workspace-scoped rule.
pub fn check_workspace(ctxs: &[FileCtx], out: &mut Vec<Diagnostic>) {
    let idx = crate::index::build(ctxs);
    lock_order::check(&idx, out);
    counter_pairing::check(&idx, out);
}
