//! `lossy-cast`: narrowing `as` casts in the simulator hot files and the
//! batched controller kernels.
//!
//! Addresses and cycle counts live in `u64`. An `as usize` / `as u32`
//! silently truncates on overflow — exactly the class of bug that turns
//! a trace above 4 GiB into quietly wrong set indices. The hot path uses
//! checked helpers in `crates/sim/src/convert.rs` (`to_index`, `to_u32`,
//! `to_line_addr`, `to_cycle`, and the documented-truncation `low32`);
//! that module is the one sanctioned cast boundary and is exempt. The nn
//! batch kernels (`NN_KERNEL_FILES`) compute matrix and batch offsets
//! from the same class of integers, so they are in scope as well.
//!
//! Widening casts (`as u64`, `as u128`, `as f64`) are lossless for the
//! types this codebase uses and are not flagged. Test regions are exempt.

use super::{CONVERT_FILE, HOT_FILES, NN_KERNEL_FILES};
use crate::diag::Diagnostic;
use crate::scanner::FileCtx;

/// Rule name.
pub const RULE: &str = "lossy-cast";

const NARROW: &[&str] = &[
    "u8", "u16", "u32", "i8", "i16", "i32", "i64", "usize", "isize",
];

/// Run the rule over one file.
pub fn check(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let in_scope =
        HOT_FILES.contains(&ctx.path.as_str()) || NN_KERNEL_FILES.contains(&ctx.path.as_str());
    if !in_scope || ctx.path == CONVERT_FILE {
        return;
    }
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        if !toks[i].is_ident("as") || ctx.in_test(toks[i].line) {
            continue;
        }
        let Some(target) = toks.get(i + 1).and_then(|t| t.ident()) else {
            continue;
        };
        if NARROW.contains(&target) {
            out.push(Diagnostic::error(
                RULE,
                &ctx.path,
                toks[i].line,
                format!(
                    "`as {target}` on the hot path truncates silently on overflow; \
                     use the checked helpers in crates/sim/src/convert.rs"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::FileCtx;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let ctx = FileCtx::new(path, src);
        let mut out = Vec::new();
        check(&ctx, &mut out);
        out
    }

    #[test]
    fn positive_narrowing_casts() {
        let src = "fn f(block: u64, mask: u64) -> usize { (block & mask) as usize }\n\
                   fn g(x: u64) -> u32 { x as u32 }\n";
        let d = run("crates/sim/src/cache.rs", src);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("as usize"));
        assert!(d[1].message.contains("as u32"));
    }

    #[test]
    fn positive_nn_kernel_files_in_scope() {
        let src = "fn f(off: u64) -> usize { off as usize }\n";
        for path in super::NN_KERNEL_FILES {
            let d = run(path, src);
            assert_eq!(d.len(), 1, "{path}: {d:?}");
        }
        // Other nn files stay out of scope.
        assert!(run("crates/nn/src/optim.rs", src).is_empty());
    }

    #[test]
    fn negative_widening_casts() {
        let src = "fn f(x: u32) -> u64 { x as u64 }\nfn g(x: u32) -> f64 { x as f64 }\n";
        assert!(run("crates/sim/src/engine.rs", src).is_empty());
    }

    #[test]
    fn negative_use_as_rename_not_a_cast() {
        // `use foo as bar` has no type after `as`... it has an ident, but
        // the target is not a primitive, so it must not fire.
        let src = "use std::collections::BTreeMap as Map;\nfn f(m: &Map<u64, u64>) -> usize { m.len() }\n";
        assert!(run("crates/sim/src/queue.rs", src).is_empty());
    }

    #[test]
    fn negative_convert_module_and_tests_exempt() {
        let src = "pub fn to_index(x: u64) -> usize { x as usize }\n";
        assert!(run("crates/sim/src/convert.rs", src).is_empty());
        let test_src =
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let _ = 5u64 as usize; }\n}\n";
        assert!(run("crates/sim/src/multicore.rs", test_src).is_empty());
    }
}
