//! `reference-engine-frozen`: the bit-identity yardstick must not drift.
//!
//! `crates/sim/src/reference.rs` is the slow, obviously-correct engine
//! that the optimized hot path is proptest-compared against, and the
//! perf-gate baseline was recorded against its behaviour. Any edit to it
//! moves the yardstick itself, so its SHA-256 is committed in `lint.toml`
//! and checked here. Changing the reference engine is allowed only as a
//! deliberate act: update the file *and* the committed hash in the same
//! change, with the justification in the commit message.

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::sha256;
use std::path::Path;

/// Rule name.
pub const RULE: &str = "reference-engine-frozen";

/// Check the committed hash against the file on disk.
pub fn check(root: &Path, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
    if cfg.reference_file.is_empty() {
        // config.validate() already reported the missing section.
        return;
    }
    let path = root.join(&cfg.reference_file);
    let data = match std::fs::read(&path) {
        Ok(d) => d,
        Err(e) => {
            out.push(Diagnostic::error(
                RULE,
                &cfg.reference_file,
                0,
                format!("cannot read frozen reference file: {e}"),
            ));
            return;
        }
    };
    let actual = sha256::hex_digest(&data);
    if actual != cfg.reference_sha256 {
        out.push(Diagnostic::error(
            RULE,
            &cfg.reference_file,
            0,
            format!(
                "reference engine has changed: sha256 is {actual} but lint.toml \
                 commits {}. The reference engine is the bit-identity and perf-gate \
                 yardstick; if this edit is deliberate, update the hash in lint.toml \
                 in the same change and justify it in the commit message",
                cfg.reference_sha256
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn repo_root() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap()
            .to_path_buf()
    }

    fn cfg_with(file: &str, sha: &str) -> LintConfig {
        LintConfig {
            reference_file: file.to_string(),
            reference_sha256: sha.to_string(),
            simd_kernel_file: String::new(),
            unsafe_allowed: Vec::new(),
            thread_allowed: Vec::new(),
            allows: Vec::new(),
        }
    }

    #[test]
    fn matching_hash_passes() {
        let root = repo_root();
        let data = std::fs::read(root.join("crates/sim/src/reference.rs")).unwrap();
        let cfg = cfg_with("crates/sim/src/reference.rs", &sha256::hex_digest(&data));
        let mut out = Vec::new();
        check(&root, &cfg, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn drifted_hash_fails_with_both_hashes() {
        let root = repo_root();
        let cfg = cfg_with("crates/sim/src/reference.rs", &"0".repeat(64));
        let mut out = Vec::new();
        check(&root, &cfg, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("has changed"));
        assert!(out[0].message.contains(&"0".repeat(64)));
    }

    #[test]
    fn missing_file_is_loud() {
        let cfg = cfg_with("crates/sim/src/no_such_reference.rs", "abc");
        let mut out = Vec::new();
        check(&repo_root(), &cfg, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("cannot read"));
    }
}
