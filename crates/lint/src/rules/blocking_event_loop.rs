//! `blocking-in-event-loop`: the epoll thread must never block. Files in
//! [`super::EVENT_LOOP_HOT_FILES`] may not call `.lock()`,
//! `thread::sleep`, a blocking channel `.recv()`, or stream `.write_all`
//! — one stalled syscall there head-of-line-blocks every connection on
//! the acceptor.
//!
//! The rule is deliberately name-based and loud: a `.lock()` on anything
//! in the event-loop file is flagged even if the mutex is "only held for
//! a push", because that argument has to be made explicitly — in a
//! `lint:allow(blocking-in-event-loop): <why the critical section is
//! bounded>` escape — rather than silently. `try_lock`, `try_recv`, and
//! bounded `write` are the non-blocking alternatives the rule nudges
//! toward.

use super::EVENT_LOOP_HOT_FILES;
use crate::diag::Diagnostic;
use crate::scanner::FileCtx;

/// Rule name.
pub const RULE: &str = "blocking-in-event-loop";

/// Run the rule over one file.
pub fn check(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !EVENT_LOOP_HOT_FILES.contains(&ctx.path.as_str()) {
        return;
    }
    let toks = &ctx.tokens;
    let n = toks.len();
    for i in 0..n {
        let t = &toks[i];
        let Some(name) = t.ident() else { continue };
        if ctx.in_test(t.line) {
            continue;
        }
        let is_method = i >= 1 && toks[i - 1].is_punct(".");
        let called = toks.get(i + 1).is_some_and(|x| x.is_punct("("));
        let blocking_method = match name {
            "lock" | "recv" | "write_all" => is_method && called,
            _ => false,
        };
        // `thread::sleep(…)` / `sleep(…)` resolved through an import of
        // std::thread::sleep (or std::thread).
        let is_sleep = name == "sleep" && called && {
            let qualified = i >= 2
                && toks[i - 1].is_punct("::")
                && toks[i - 2]
                    .ident()
                    .is_some_and(|h| h == "thread" || ctx.resolve(h) == Some("std::thread"));
            let imported =
                !is_method && !qualified && ctx.resolve("sleep") == Some("std::thread::sleep");
            qualified || imported
        };
        if !(blocking_method || is_sleep) {
            continue;
        }
        let (what, fix) = match name {
            "lock" => (
                "`.lock()` (blocks on contention)",
                "use try_lock with a fallback, or justify the bounded critical \
                 section in a lint:allow escape",
            ),
            "recv" => (
                "blocking channel `.recv()`",
                "use try_recv and fold the check into the epoll wait",
            ),
            "write_all" => (
                "unbounded `.write_all()` (blocks until the peer drains)",
                "use bounded `write` with the connection's backpressure state",
            ),
            _ => (
                "`thread::sleep` (stalls every connection on this thread)",
                "use an epoll timeout or a timerfd",
            ),
        };
        out.push(Diagnostic::error(
            RULE,
            &ctx.path,
            t.line,
            format!("{what} in the event-loop hot file: the epoll thread must never block; {fix}"),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::FileCtx;

    const HOT: &str = "crates/serve/src/event_loop.rs";

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let ctx = FileCtx::new(path, src);
        let mut out = Vec::new();
        check(&ctx, &mut out);
        out
    }

    #[test]
    fn positive_lock_recv_write_all_sleep() {
        let src = "use std::thread;\n\
                   fn f(m: &std::sync::Mutex<u32>, rx: &std::sync::mpsc::Receiver<u32>) {\n\
                       let _g = m.lock().unwrap();\n\
                       let _v = rx.recv().unwrap();\n\
                       thread::sleep(std::time::Duration::from_millis(1));\n\
                   }\n\
                   fn g(s: &mut std::net::TcpStream, buf: &[u8]) {\n\
                       use std::io::Write;\n\
                       s.write_all(buf).unwrap();\n\
                   }\n";
        let d = run(HOT, src);
        let lines: Vec<u32> = d.iter().map(|x| x.line).collect();
        assert_eq!(lines, vec![3, 4, 5, 9], "{d:?}");
    }

    #[test]
    fn positive_imported_sleep() {
        let src = "use std::thread::sleep;\n\
                   use std::time::Duration;\n\
                   fn f() { sleep(Duration::from_millis(1)); }\n";
        let d = run(HOT, src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn negative_nonblocking_alternatives() {
        let src = "fn f(m: &std::sync::Mutex<u32>, rx: &std::sync::mpsc::Receiver<u32>) {\n\
                       if let Ok(_g) = m.try_lock() {}\n\
                       let _ = rx.try_recv();\n\
                   }\n\
                   fn g(s: &mut std::net::TcpStream, buf: &[u8]) -> std::io::Result<usize> {\n\
                       use std::io::Write;\n\
                       s.write(buf)\n\
                   }\n";
        assert!(run(HOT, src).is_empty());
    }

    #[test]
    fn negative_other_files_and_test_regions() {
        let src = "fn f(m: &std::sync::Mutex<u32>) { let _g = m.lock().unwrap(); }\n";
        assert!(run("crates/serve/src/shard.rs", src).is_empty());
        let src2 = "#[cfg(test)]\n\
                    mod tests {\n\
                        fn t() { std::thread::sleep(std::time::Duration::from_millis(1)); }\n\
                    }\n";
        assert!(run(HOT, src2).is_empty());
    }

    #[test]
    fn negative_unrelated_sleep_fn() {
        // A local helper *named* sleep is not std::thread::sleep.
        let src = "fn sleep(n: u64) -> u64 { n }\nfn f() { let _ = sleep(3); }\n";
        assert!(run(HOT, src).is_empty());
    }
}
