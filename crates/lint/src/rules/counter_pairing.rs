//! `counter-pairing`: resource telemetry counters come in pairs —
//! `*_opened`/`*_closed` and `*_acquired`/`*_released` — and both sides
//! must have at least one live `fetch_add` site. The serve churn tests
//! assert leak invariants like `sessions_opened - sessions_closed ==
//! live`, which silently rot the moment someone adds an open path
//! without a close path (or vice versa). Cross-file by nature: the
//! counter is declared in `telemetry.rs` and incremented wherever the
//! resource is created or torn down, so the rule runs over the
//! workspace index rather than one file.

use crate::diag::Diagnostic;
use crate::index::WorkspaceIndex;
use std::collections::BTreeMap;

/// Rule name.
pub const RULE: &str = "counter-pairing";

/// Counter-name suffixes that imply a paired twin.
pub const PAIRED_SUFFIXES: &[(&str, &str)] = &[("_opened", "_closed"), ("_acquired", "_released")];

/// Run the rule over the workspace index.
pub fn check(idx: &WorkspaceIndex, out: &mut Vec<Diagnostic>) {
    // First declaration / first increment site per counter name.
    let mut decl: BTreeMap<&str, (&str, u32)> = BTreeMap::new();
    for d in &idx.counter_decls {
        decl.entry(&d.name).or_insert((&d.file, d.line));
    }
    let mut inc: BTreeMap<&str, (&str, u32)> = BTreeMap::new();
    for a in &idx.fetch_adds {
        inc.entry(&a.name).or_insert((&a.file, a.line));
    }

    for (suffix, twin_suffix) in PAIRED_SUFFIXES {
        // Every stem seen with either suffix, declared or incremented.
        let stems: std::collections::BTreeSet<String> = decl
            .keys()
            .chain(inc.keys())
            .filter_map(|n| {
                n.strip_suffix(suffix)
                    .or_else(|| n.strip_suffix(twin_suffix))
            })
            .map(str::to_string)
            .collect();
        for stem in stems {
            let a = format!("{stem}{suffix}");
            let b = format!("{stem}{twin_suffix}");
            report_unbalanced(&a, &b, &decl, &inc, out);
            report_unbalanced(&b, &a, &decl, &inc, out);
        }
    }
}

/// If `present` is incremented somewhere but `missing` never is, report
/// it — at `missing`'s declaration when there is one (the counter exists
/// but nothing feeds it), else at `present`'s first increment (the twin
/// does not even exist).
fn report_unbalanced(
    present: &str,
    missing: &str,
    decl: &BTreeMap<&str, (&str, u32)>,
    inc: &BTreeMap<&str, (&str, u32)>,
    out: &mut Vec<Diagnostic>,
) {
    if !inc.contains_key(present) || inc.contains_key(missing) {
        return;
    }
    match decl.get(missing) {
        Some((file, line)) => out.push(Diagnostic::error(
            RULE,
            file,
            *line,
            format!(
                "counter `{missing}` is declared but never incremented while its pair \
                 `{present}` is: the churn leak invariant (`{present} - {missing}` bounds \
                 live resources) can no longer hold — add the `fetch_add` on the \
                 matching teardown/setup path"
            ),
        )),
        None => {
            let (file, line) = inc.get(present).copied().unwrap_or(("lint.toml", 1));
            out.push(Diagnostic::error(
                RULE,
                file,
                line,
                format!(
                    "counter `{present}` has no paired `{missing}` anywhere in the crate: \
                     paired telemetry (`*_opened`/`*_closed`, `*_acquired`/`*_released`) \
                     must count both directions or leaks become invisible"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index;
    use crate::scanner::FileCtx;

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ctxs: Vec<FileCtx> = files.iter().map(|(p, s)| FileCtx::new(p, s)).collect();
        let idx = index::build(&ctxs);
        let mut out = Vec::new();
        check(&idx, &mut out);
        out
    }

    const DECLS: &str = "use std::sync::atomic::{AtomicU64, Ordering};\n\
        pub struct T { pub conns_opened: AtomicU64, pub conns_closed: AtomicU64 }\n";

    #[test]
    fn positive_declared_but_never_incremented() {
        let src = format!(
            "{DECLS}impl T {{ pub fn open(&self) {{ self.conns_opened.fetch_add(1, Ordering::Relaxed); }} }}\n"
        );
        let d = run(&[("crates/serve/src/telemetry.rs", &src)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0]
            .message
            .contains("`conns_closed` is declared but never incremented"));
        assert_eq!(d[0].line, 2, "lands on the declaration");
    }

    #[test]
    fn positive_missing_twin_entirely() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
            pub struct T { pub bufs_acquired: AtomicU64 }\n\
            impl T { pub fn get(&self) { self.bufs_acquired.fetch_add(1, Ordering::Relaxed); } }\n";
        let d = run(&[("crates/serve/src/telemetry.rs", src)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("no paired `bufs_released`"), "{d:?}");
        assert_eq!(d[0].line, 3, "lands on the unpaired increment");
    }

    #[test]
    fn negative_both_sides_incremented_cross_file() {
        let inc_open = "pub fn open(t: &crate::telemetry::T) { t.conns_opened.fetch_add(1, std::sync::atomic::Ordering::Relaxed); }\n";
        let inc_close = "pub fn close(t: &crate::telemetry::T) { t.conns_closed.fetch_add(1, std::sync::atomic::Ordering::Relaxed); }\n";
        let d = run(&[
            ("crates/serve/src/telemetry.rs", DECLS),
            ("crates/serve/src/session.rs", inc_open),
            ("crates/serve/src/shard.rs", inc_close),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn negative_unpaired_suffixes_are_not_counters() {
        // Plain counters without a paired suffix carry no invariant.
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
            pub struct T { pub requests: AtomicU64 }\n\
            impl T { pub fn hit(&self) { self.requests.fetch_add(1, Ordering::Relaxed); } }\n";
        assert!(run(&[("crates/serve/src/telemetry.rs", src)]).is_empty());
    }

    #[test]
    fn negative_test_region_increment_does_not_satisfy_the_pair() {
        let src = format!(
            "{DECLS}impl T {{ pub fn open(&self) {{ self.conns_opened.fetch_add(1, Ordering::Relaxed); }} }}\n\
             #[cfg(test)]\n\
             mod tests {{ fn t(x: &super::T) {{ x.conns_closed.fetch_add(1, std::sync::atomic::Ordering::Relaxed); }} }}\n"
        );
        let d = run(&[("crates/serve/src/telemetry.rs", &src)]);
        assert_eq!(
            d.len(),
            1,
            "a test-only increment is not a close path: {d:?}"
        );
    }

    #[test]
    fn negative_out_of_scope_crate() {
        let src = format!(
            "{DECLS}impl T {{ pub fn open(&self) {{ self.conns_opened.fetch_add(1, Ordering::Relaxed); }} }}\n"
        );
        assert!(run(&[("crates/sim/src/x.rs", &src)]).is_empty());
    }
}
