//! `wall-clock-in-sim`: `std::time::Instant` / `SystemTime` anywhere
//! outside the exempt crates (`bench`, `serve`, `runtime`).
//!
//! The simulator has exactly one notion of time — the engine's cycle
//! counter. Wall-clock reads in simulation, learning, or stats code are
//! either dead weight or, worse, leak host timing into results (e.g. a
//! time-boxed training loop), which destroys reproducibility. Host time
//! legitimately exists in exactly three places: `crates/bench` measures
//! the host, `crates/serve` tracks real request deadlines and latency
//! telemetry for live clients, and `crates/runtime` stamps sweep-job
//! durations into the run journal and progress line. None of the three
//! feeds simulated statistics — the serve bit-identity tests pin that
//! wall time never reaches a model decision, and the sweep determinism
//! tests pin that journal timestamps never reach output bytes.

use super::WALL_CLOCK_CRATES;
use crate::diag::Diagnostic;
use crate::scanner::FileCtx;

/// Rule name.
pub const RULE: &str = "wall-clock-in-sim";

const BANNED: &[&str] = &["Instant", "SystemTime"];

/// Run the rule over one file.
pub fn check(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if WALL_CLOCK_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    let toks = &ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if !BANNED.contains(&name) {
            continue;
        }
        let resolved: Option<String> = if i >= 2 && toks[i - 1].is_punct("::") {
            // Qualified: resolve the path head (`std::time::Instant`,
            // `time::Instant` under `use std::time`), then append the
            // remaining segments.
            let mut head = i - 2;
            while head >= 2 && toks[head - 1].is_punct("::") {
                head -= 2;
            }
            toks[head].ident().map(|h| {
                let mut full = ctx.resolve(h).unwrap_or(h).to_string();
                let mut k = head + 2;
                while k < i {
                    if let Some(s) = toks[k].ident() {
                        full.push_str("::");
                        full.push_str(s);
                    }
                    k += 2;
                }
                full.push_str("::");
                full.push_str(name);
                full
            })
        } else {
            // Bare: resolve through an import or a `use std::time::*` glob.
            ctx.resolve(name).map(str::to_string).or_else(|| {
                ctx.uses
                    .iter()
                    .any(|(k, v)| k.starts_with('*') && v == "std::time")
                    .then(|| format!("std::time::{name}"))
            })
        };
        if resolved.as_deref() == Some(format!("std::time::{name}").as_str()) {
            out.push(Diagnostic::error(
                RULE,
                &ctx.path,
                t.line,
                format!(
                    "std::time::{name} outside crates/bench, crates/serve, and \
                     crates/runtime: simulated time must come from the engine's cycle \
                     counter; host timing belongs in bench (measurement), serve \
                     (deadlines/telemetry), or runtime (sweep journal/progress)"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::FileCtx;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let ctx = FileCtx::new(path, src);
        let mut out = Vec::new();
        check(&ctx, &mut out);
        out
    }

    #[test]
    fn positive_imported_instant() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); drop(t); }\n";
        let d = run("crates/sim/src/x.rs", src);
        // Fires on the import and the use site.
        assert_eq!(d.len(), 2, "{d:?}");
        assert_eq!(d[0].line, 1);
        assert_eq!(d[1].line, 2);
    }

    #[test]
    fn positive_fully_qualified_systemtime() {
        let src = "fn f() { let _ = std::time::SystemTime::now(); }\n";
        let d = run("crates/core/src/x.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("SystemTime"));
    }

    #[test]
    fn positive_module_alias() {
        let src = "use std::time;\nfn f() { let _ = time::Instant::now(); }\n";
        let d = run("crates/stats/src/x.rs", src);
        assert!(d.iter().any(|x| x.line == 2), "{d:?}");
    }

    #[test]
    fn negative_bench_is_exempt() {
        let src = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\n";
        assert!(run("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn negative_serve_is_exempt() {
        // The serving crate handles real deadlines and latency telemetry.
        let src = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\n";
        assert!(run("crates/serve/src/shard.rs", src).is_empty());
        assert!(run("crates/serve/src/server.rs", src).is_empty());
    }

    #[test]
    fn negative_runtime_is_exempt() {
        // The sweep executor stamps job durations into the run journal
        // and progress line; none of it feeds simulated statistics.
        let src = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\n";
        assert!(run("crates/runtime/src/journal.rs", src).is_empty());
        assert!(run("crates/runtime/src/progress.rs", src).is_empty());
    }

    #[test]
    fn negative_duration_and_unrelated_instant() {
        // Duration is fine (it is a plain value type), and a local type
        // named Instant is not std's.
        let src = "use std::time::Duration;\nstruct Instant;\nfn f() -> Instant { Instant }\n";
        assert!(run("crates/sim/src/x.rs", src).is_empty());
    }
}
