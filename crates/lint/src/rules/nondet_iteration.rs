//! `nondeterministic-iteration`: `std::collections::HashMap`/`HashSet`
//! with the default `RandomState` hasher in determinism-critical crates.
//!
//! The whole evaluation methodology rests on bit-identical reruns; a map
//! with a randomized hasher makes iteration order differ between
//! *processes*, so any stats, action-selection, or eviction path that
//! iterates one produces irreproducible figures. Two kinds of findings:
//!
//! 1. any mention of the std type with a default hasher (imports, type
//!    positions, constructors) — the type itself is the hazard;
//! 2. iteration calls (`.iter()`, `.keys()`, `.values()`, `.drain()`,
//!    `.into_iter()`, `for … in`) on bindings declared with such a type.
//!
//! `FxHashMap`/`FxHashSet` (seeded deterministic hasher, declared in
//! `resemble_trace::util`) and the BTree collections satisfy the rule; so
//! does a std map with an explicit `BuildHasherDefault<…>` parameter.

use super::DETERMINISM_CRATES;
use crate::diag::Diagnostic;
use crate::scanner::FileCtx;

/// Rule name.
pub const RULE: &str = "nondeterministic-iteration";

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
];

/// Run the rule over one file.
pub fn check(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !DETERMINISM_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        // Finding kind 1: the std type itself, unless an explicit hasher
        // parameter makes it deterministic.
        if let Some(name) = ctx.std_map_type_at(toks, i) {
            let needed = if name == "HashMap" { 3 } else { 2 };
            let explicit_hasher = toks.get(i + 1).is_some_and(|t| t.is_punct("<"))
                && generic_args(toks, i + 1) >= needed;
            if !explicit_hasher {
                out.push(Diagnostic::error(
                    RULE,
                    &ctx.path,
                    toks[i].line,
                    format!(
                        "std::collections::{name} uses a randomized hasher; iteration \
                         order differs between runs — use resemble_trace::util::Fx{name} \
                         (seeded deterministic hasher) or BTree{}",
                        if name == "HashMap" { "Map" } else { "Set" },
                    ),
                ));
            }
        }
        // Finding kind 2a: iteration method calls on tracked bindings.
        if i >= 2
            && toks[i].is_punct("(")
            && toks[i - 2].is_punct(".")
            && toks[i - 1]
                .ident()
                .is_some_and(|m| ITER_METHODS.contains(&m))
        {
            // Receiver: `<ident>.m()` or `self.<field>.m()`.
            let recv = toks.get(i.wrapping_sub(3)).and_then(|t| t.ident());
            if let Some(r) = recv {
                if ctx.std_map_bindings.contains(r) {
                    let method = toks[i - 1].ident().unwrap_or_default();
                    out.push(Diagnostic::error(
                        RULE,
                        &ctx.path,
                        toks[i - 1].line,
                        format!(
                            "`.{method}()` on `{r}` (std HashMap/HashSet with randomized \
                             hasher): iteration order is nondeterministic across runs"
                        ),
                    ));
                }
            }
        }
        // Finding kind 2b: `for … in [&][mut][self.]<binding> {`.
        if toks[i].is_ident("for") {
            if let Some((name, line)) = for_loop_receiver(toks, i) {
                if ctx.std_map_bindings.contains(name) {
                    out.push(Diagnostic::error(
                        RULE,
                        &ctx.path,
                        line,
                        format!(
                            "for-loop over `{name}` (std HashMap/HashSet with randomized \
                             hasher): order is nondeterministic across runs"
                        ),
                    ));
                }
            }
        }
    }
}

/// Top-level generic-argument count for `toks[i] == '<'`.
fn generic_args(toks: &[crate::lexer::Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut args = 1usize;
    for t in &toks[i..] {
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(">") {
            depth -= 1;
            if depth == 0 {
                return args;
            }
        } else if t.is_punct(">>") {
            depth -= 2;
            if depth <= 0 {
                return args;
            }
        } else if t.is_punct(",") && depth == 1 {
            args += 1;
        } else if t.is_punct(";") || t.is_punct("{") {
            break;
        }
    }
    0
}

/// If `toks[i] == for` heads a `for pat in expr {` whose expr is a plain
/// (optionally borrowed / `self.`-qualified) identifier, return it.
fn for_loop_receiver(toks: &[crate::lexer::Token], i: usize) -> Option<(&str, u32)> {
    // Find `in` before the body `{`, skipping the pattern.
    let mut j = i + 1;
    let mut depth = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if t.is_ident("in") && depth == 0 {
            break;
        } else if t.is_punct("{") {
            return None;
        }
        j += 1;
    }
    // Expr tokens between `in` and `{`.
    let start = j + 1;
    let mut k = start;
    while k < toks.len() && !toks[k].is_punct("{") {
        k += 1;
    }
    let expr = &toks[start..k];
    let mut e = 0;
    while e < expr.len() && (expr[e].is_punct("&") || expr[e].is_ident("mut")) {
        e += 1;
    }
    if e + 2 < expr.len() && expr[e].is_ident("self") && expr[e + 1].is_punct(".") {
        e += 2;
    }
    if e + 1 == expr.len() {
        return expr[e].ident().map(|s| (s, expr[e].line));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::FileCtx;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let ctx = FileCtx::new(path, src);
        let mut out = Vec::new();
        check(&ctx, &mut out);
        out
    }

    #[test]
    fn positive_import_and_iteration_flagged() {
        let src = "use std::collections::HashMap;\n\
                   struct S { m: HashMap<u64, u64> }\n\
                   impl S {\n\
                       fn f(&self) -> u64 { self.m.keys().sum() }\n\
                   }\n";
        let d = run("crates/core/src/x.rs", src);
        // Import line, field type, and the .keys() iteration all fire.
        assert!(d.len() >= 3, "{d:?}");
        assert!(d.iter().any(|x| x.line == 1));
        assert!(d.iter().any(|x| x.line == 4 && x.message.contains("keys")));
    }

    #[test]
    fn positive_for_loop_over_std_set() {
        let src = "use std::collections::HashSet;\n\
                   fn f() {\n\
                       let s: HashSet<u64> = HashSet::new();\n\
                       for v in &s { drop(v); }\n\
                   }\n";
        let d = run("crates/stats/src/x.rs", src);
        assert!(
            d.iter()
                .any(|x| x.line == 4 && x.message.contains("for-loop")),
            "{d:?}"
        );
    }

    #[test]
    fn negative_fx_and_btree_pass() {
        let src = "use resemble_trace::util::{FxHashMap, FxHashSet};\n\
                   use std::collections::BTreeMap;\n\
                   struct S { m: FxHashMap<u64, u64>, b: BTreeMap<u64, u64> }\n\
                   impl S { fn f(&self) -> u64 { self.m.keys().chain(self.b.keys()).sum() } }\n";
        assert!(run("crates/prefetch/src/x.rs", src).is_empty());
    }

    #[test]
    fn negative_explicit_hasher_passes() {
        let src = "use std::collections::HashMap;\n\
                   use std::hash::BuildHasherDefault;\n\
                   type Fx<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;\n";
        let d = run("crates/sim/src/x.rs", src);
        // The bare import still fires (line 1); the aliased type with an
        // explicit hasher does not (line 3).
        assert!(d.iter().all(|x| x.line == 1), "{d:?}");
    }

    #[test]
    fn negative_out_of_scope_crate() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u64, u64> = HashMap::new(); }\n";
        assert!(run("crates/trace/src/x.rs", src).is_empty());
        assert!(run("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn unrelated_hashmap_named_type_not_flagged() {
        // A local type that merely shares the name must not fire.
        let src = "struct HashMap;\nfn f() { let _ = HashMap; }\n";
        assert!(run("crates/core/src/x.rs", src).is_empty());
    }
}
