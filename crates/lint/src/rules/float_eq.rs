//! `float-eq`: `==` / `!=` with floating-point operands in learning code
//! (`crates/nn` and `crates/core/src/agent/`).
//!
//! Exact float comparison in gradient/Q-value math is almost always a
//! rounding-or-NaN trap. The rule fires when either side of an
//! equality operator is a float literal or an identifier whose declared
//! type annotation in this file is `f32`/`f64`. Intentional exact
//! comparisons (e.g. a `== 0.0` sparsity sentinel on values that are
//! assigned exactly) carry a `lint:allow` escape. Test regions exempt.

use super::float_eq_in_scope;
use crate::diag::Diagnostic;
use crate::lexer::{TokKind, Token};
use crate::scanner::FileCtx;
use std::collections::BTreeSet;

/// Rule name.
pub const RULE: &str = "float-eq";

/// Run the rule over one file.
pub fn check(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !float_eq_in_scope(ctx) {
        return;
    }
    let toks = &ctx.tokens;
    let float_idents = declared_floats(toks);
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.is_punct("==") || t.is_punct("!=")) || ctx.in_test(t.line) {
            continue;
        }
        let lhs_float = i >= 1 && is_float_operand(&toks[i - 1], &float_idents);
        let rhs_float = toks
            .get(i + 1)
            .is_some_and(|n| is_float_operand(n, &float_idents));
        if lhs_float || rhs_float {
            let op = if t.is_punct("==") { "==" } else { "!=" };
            out.push(Diagnostic::error(
                RULE,
                &ctx.path,
                t.line,
                format!(
                    "`{op}` on f32/f64 in learning code: exact float comparison is a \
                     rounding/NaN trap — compare |a - b| < eps, or add a lint:allow \
                     escape if the values are assigned exactly"
                ),
            ));
        }
    }
}

/// Identifiers annotated `: f32` / `: f64` anywhere in the file
/// (parameters, fields, lets). A per-file over-approximation is fine: a
/// name float-typed anywhere in a module is float-typed where compared.
fn declared_floats(toks: &[Token]) -> BTreeSet<&str> {
    let mut set = BTreeSet::new();
    for w in toks.windows(3) {
        if w[1].is_punct(":") && w[2].ident().is_some_and(|t| t == "f32" || t == "f64") {
            if let Some(name) = w[0].ident() {
                set.insert(name);
            }
        }
    }
    set
}

fn is_float_operand(t: &Token, float_idents: &BTreeSet<&str>) -> bool {
    match &t.kind {
        TokKind::Float => true,
        TokKind::Ident(n) => float_idents.contains(n.as_str()),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::FileCtx;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let ctx = FileCtx::new(path, src);
        let mut out = Vec::new();
        check(&ctx, &mut out);
        out
    }

    #[test]
    fn positive_literal_comparison() {
        let src = "fn f(x: f32) -> bool { x == 0.0 }\n";
        let d = run("crates/nn/src/matrix.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("=="));
    }

    #[test]
    fn positive_declared_float_ident_and_ne() {
        let src = "fn f(reward: f64, target: f64) -> bool { reward != target }\n";
        let d = run("crates/core/src/agent/dqn.rs", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("!="));
    }

    #[test]
    fn negative_int_comparison_and_epsilon() {
        let src = "fn f(a: u64, b: u64, x: f32, y: f32) -> bool {\n\
                       a == b && (x - y).abs() < 1e-6\n\
                   }\n";
        assert!(run("crates/nn/src/mlp.rs", src).is_empty());
    }

    #[test]
    fn negative_out_of_scope_paths() {
        let src = "fn f(x: f32) -> bool { x == 0.0 }\n";
        assert!(run("crates/core/src/replay.rs", src).is_empty());
        assert!(run("crates/sim/src/engine.rs", src).is_empty());
    }

    #[test]
    fn negative_test_region_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t(){ assert!(1.0 == 1.0); }\n}\n";
        assert!(run("crates/nn/src/matrix.rs", src).is_empty());
    }
}
