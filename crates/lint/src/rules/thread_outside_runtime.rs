//! `thread-outside-runtime`: raw thread creation — `std::thread::spawn`,
//! `std::thread::scope`, `std::thread::Builder` — is confined to the two
//! crates whose job is concurrency, plus the allowlisted bench binaries.
//!
//! The workspace has exactly two sanctioned thread pools: the
//! deterministic sweep executor in `crates/runtime` (ordered merge,
//! per-key seeds, panic isolation — DESIGN.md §9) and the serving stack
//! in `crates/serve` (epoll I/O + shard workers — DESIGN.md §8). A bare
//! `thread::spawn` anywhere else bypasses both: its completion order
//! leaks into output bytes, its panics vanish, and its RNG seeding is
//! whatever the caller improvised. Simulation fan-out goes through
//! `resemble_runtime::Sweep`; serving work goes through the server.
//!
//! `thread::sleep` and `available_parallelism` are not thread creation
//! and are not flagged. Method calls named `spawn` (e.g. `s.spawn(...)`
//! on an already-sanctioned scope handle) are skipped — the rule fires
//! on the `std::thread::scope` that produced the handle instead.

use super::{THREAD_ALLOWED_CRATES, THREAD_ALLOWED_FILES};
use crate::diag::Diagnostic;
use crate::scanner::FileCtx;

/// Rule name.
pub const RULE: &str = "thread-outside-runtime";

const BANNED: &[&str] = &["spawn", "scope", "Builder"];

/// Run the rule over one file.
pub fn check(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if THREAD_ALLOWED_CRATES.contains(&ctx.crate_name.as_str())
        || THREAD_ALLOWED_FILES.contains(&ctx.path.as_str())
    {
        return;
    }
    let toks = &ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if !BANNED.contains(&name) {
            continue;
        }
        // `handle.spawn(...)` is a method on an existing (already
        // diagnosed) scope, not thread creation by this file.
        if i >= 1 && toks[i - 1].is_punct(".") {
            continue;
        }
        let resolved: Option<String> = if i >= 2 && toks[i - 1].is_punct("::") {
            // Qualified: resolve the path head (`std::thread::spawn`,
            // `thread::scope` under `use std::thread`), then append the
            // remaining segments.
            let mut head = i - 2;
            while head >= 2 && toks[head - 1].is_punct("::") {
                head -= 2;
            }
            toks[head].ident().map(|h| {
                let mut full = ctx.resolve(h).unwrap_or(h).to_string();
                let mut k = head + 2;
                while k < i {
                    if let Some(s) = toks[k].ident() {
                        full.push_str("::");
                        full.push_str(s);
                    }
                    k += 2;
                }
                full.push_str("::");
                full.push_str(name);
                full
            })
        } else {
            // Bare: resolve through `use std::thread::spawn` or a
            // `use std::thread::*` glob.
            ctx.resolve(name).map(str::to_string).or_else(|| {
                ctx.uses
                    .iter()
                    .any(|(k, v)| k.starts_with('*') && v == "std::thread")
                    .then(|| format!("std::thread::{name}"))
            })
        };
        if resolved.as_deref() == Some(format!("std::thread::{name}").as_str()) {
            out.push(Diagnostic::error(
                RULE,
                &ctx.path,
                t.line,
                format!(
                    "std::thread::{name} outside crates/runtime, crates/serve, and the \
                     allowlisted bench binaries: raw threads bypass the deterministic \
                     executor (ordered merge, per-key seeds, panic isolation); run sweep \
                     jobs through resemble_runtime::Sweep, or serving work through \
                     crates/serve"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::FileCtx;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let ctx = FileCtx::new(path, src);
        let mut out = Vec::new();
        check(&ctx, &mut out);
        out
    }

    #[test]
    fn positive_qualified_spawn_and_scope() {
        let src = "fn f() {\n\
                       let h = std::thread::spawn(|| 1);\n\
                       let _ = h.join();\n\
                       std::thread::scope(|s| { s.spawn(|| 2); });\n\
                   }\n";
        let d = run("crates/bench/src/runner.rs", src);
        let lines: Vec<u32> = d.iter().map(|x| x.line).collect();
        // Fires on the spawn and the scope; `s.spawn` is a method call on
        // the (already-diagnosed) scope handle and is skipped.
        assert_eq!(lines, vec![2, 4], "{d:?}");
    }

    #[test]
    fn positive_module_alias_and_builder() {
        let src = "use std::thread;\n\
                   fn f() {\n\
                       let _ = thread::spawn(|| 0);\n\
                       let _ = thread::Builder::new();\n\
                   }\n";
        let d = run("crates/sim/src/x.rs", src);
        let lines: Vec<u32> = d.iter().map(|x| x.line).collect();
        assert_eq!(lines, vec![3, 4], "{d:?}");
    }

    #[test]
    fn positive_imported_spawn() {
        let src = "use std::thread::spawn;\nfn f() { let _ = spawn(|| 0); }\n";
        let d = run("crates/core/src/x.rs", src);
        // The import line and the call site both fire.
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].message.contains("resemble_runtime::Sweep"));
    }

    #[test]
    fn negative_runtime_and_serve_are_exempt() {
        let src = "fn f() { std::thread::scope(|s| { s.spawn(|| 1); }); }\n";
        assert!(run("crates/runtime/src/executor.rs", src).is_empty());
        assert!(run("crates/runtime/tests/executor.rs", src).is_empty());
        assert!(run("crates/serve/src/server.rs", src).is_empty());
        assert!(run("crates/serve/tests/churn.rs", src).is_empty());
    }

    #[test]
    fn negative_allowlisted_bench_bins() {
        let src = "fn f() { std::thread::scope(|s| { s.spawn(|| 1); }); }\n";
        assert!(run("crates/bench/src/bin/serve_bench.rs", src).is_empty());
        assert!(run("crates/bench/src/bin/serve.rs", src).is_empty());
        // Any other bench file is in scope.
        assert!(!run("crates/bench/src/bin/ablations.rs", src).is_empty());
    }

    #[test]
    fn negative_sleep_parallelism_and_unrelated_names() {
        // Not thread creation: sleep, available_parallelism.
        let src = "fn f() {\n\
                       std::thread::sleep(std::time::Duration::from_millis(1));\n\
                       let _ = std::thread::available_parallelism();\n\
                   }\n";
        assert!(run("crates/sim/src/x.rs", src).is_empty());
        // A local fn named spawn, a tokio-style method, a local scope var.
        let src2 = "fn spawn(n: u64) -> u64 { n }\n\
                    fn f(pool: &Pool, scope: u32) -> u64 { pool.spawn(); spawn(scope as u64) }\n";
        assert!(run("crates/sim/src/x.rs", src2).is_empty());
    }
}
