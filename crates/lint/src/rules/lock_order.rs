//! `lock-order`: potential-deadlock detection for `crates/serve`.
//!
//! From the workspace index ([`crate::index`]) the rule builds the
//! inter-lock acquisition graph: an edge `A → B` means some function
//! acquires lock `B` — directly, or transitively through a call — while
//! (lexically) holding lock `A`. Two findings come out of it:
//!
//! * **cycles** — `A → B` and `B → A` (or any longer ring) means two
//!   threads can each hold one lock while waiting for the other: the
//!   classic ordering deadlock. The diagnostic spells out the full chain
//!   with one witness site (function, file, line, held lock) per edge.
//! * **self-edges** — re-acquiring a lock already held; with
//!   `std::sync::Mutex` (non-reentrant) that deadlocks a single thread
//!   on its own.
//!
//! The graph is lexical and over-approximate (guard regions run to the
//! last `drop`, call resolution is name-based — see DESIGN.md §8), so an
//! edge can exist that no execution takes. That is the right bias for a
//! deadlock lint: a false edge only surfaces if it completes a cycle,
//! and then a `lint:allow(lock-order): <why the order is safe>` escape
//! at the witness line records the argument.

use crate::diag::Diagnostic;
use crate::index::{resolve_call, WorkspaceIndex};
use std::collections::{BTreeMap, BTreeSet};

/// Rule name.
pub const RULE: &str = "lock-order";

/// One acquired-while-holding observation backing a graph edge.
#[derive(Debug, Clone)]
struct Witness {
    /// Function (qualified name) where the inner acquisition happens.
    func: String,
    /// File of the inner acquisition.
    file: String,
    /// Line of the inner acquisition (or the call that leads to it).
    line: u32,
    /// Whether the inner lock is taken via a call rather than directly.
    via_call: Option<String>,
}

/// Run the rule over the workspace index.
pub fn check(idx: &WorkspaceIndex, out: &mut Vec<Diagnostic>) {
    // Edge map: (held, acquired) → first witness, in deterministic order.
    let mut edges: BTreeMap<(String, String), Witness> = BTreeMap::new();

    for (fi, f) in idx.fns.iter().enumerate() {
        for a in &f.acquires {
            // Events strictly inside the hold region of `a`.
            for b in &f.acquires {
                if b.tok <= a.tok || b.tok >= a.end {
                    continue;
                }
                if b.lock == a.lock {
                    out.push(Diagnostic::error(
                        RULE,
                        &f.file,
                        b.line,
                        format!(
                            "lock `{}` re-acquired in `{}` while already held (acquired at \
                             line {}): std::sync::Mutex is not reentrant — this deadlocks \
                             the calling thread",
                            a.lock, f.qual, a.line
                        ),
                    ));
                    continue;
                }
                edges
                    .entry((a.lock.clone(), b.lock.clone()))
                    .or_insert_with(|| Witness {
                        func: f.qual.clone(),
                        file: f.file.clone(),
                        line: b.line,
                        via_call: None,
                    });
            }
            for c in &f.calls {
                if c.tok <= a.tok || c.tok >= a.end {
                    continue;
                }
                let mut callee_locks: BTreeSet<&String> = BTreeSet::new();
                for j in resolve_call(idx, fi, c) {
                    callee_locks.extend(idx.locks_used[j].iter());
                }
                for lock in callee_locks {
                    if *lock == a.lock {
                        // Transitive re-acquisition: report at the call.
                        out.push(Diagnostic::error(
                            RULE,
                            &f.file,
                            c.line,
                            format!(
                                "call to `{}` may re-acquire `{}` which `{}` already holds \
                                 (acquired at line {}): std::sync::Mutex is not reentrant \
                                 — this deadlocks the calling thread",
                                c.name, a.lock, f.qual, a.line
                            ),
                        ));
                        continue;
                    }
                    edges
                        .entry((a.lock.clone(), lock.clone()))
                        .or_insert_with(|| Witness {
                            func: f.qual.clone(),
                            file: f.file.clone(),
                            line: c.line,
                            via_call: Some(c.name.clone()),
                        });
                }
            }
        }
    }

    // Cycle detection over the edge set: BFS from each node back to
    // itself, smallest cycle first; dedupe by the canonical rotation.
    let mut adj: BTreeMap<&String, Vec<&String>> = BTreeMap::new();
    for (held, acquired) in edges.keys() {
        adj.entry(held).or_default().push(acquired);
    }
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for start in adj.keys().copied() {
        let Some(cycle) = shortest_cycle_through(&adj, start) else {
            continue;
        };
        if !reported.insert(canonical_rotation(&cycle)) {
            continue;
        }
        // Describe every edge of the cycle with its witness.
        let ring: Vec<String> = cycle.iter().map(|l| format!("`{l}`")).collect();
        let mut msg = format!(
            "potential deadlock: lock acquisition cycle {} -> {}",
            ring.join(" -> "),
            ring[0]
        );
        let mut first_site: Option<(&str, u32)> = None;
        for w in 0..cycle.len() {
            let held = &cycle[w];
            let acquired = &cycle[(w + 1) % cycle.len()];
            let Some(wit) = edges.get(&(held.clone(), acquired.clone())) else {
                continue;
            };
            if first_site.is_none() {
                first_site = Some((wit.file.as_str(), wit.line));
            }
            let how = match &wit.via_call {
                Some(callee) => format!("via call to `{callee}`"),
                None => "directly".to_string(),
            };
            msg.push_str(&format!(
                "; `{acquired}` acquired {how} at {}:{} in `{}` while holding `{held}`",
                wit.file, wit.line, wit.func
            ));
        }
        let (file, line) = first_site.unwrap_or(("lint.toml", 1));
        out.push(Diagnostic::error(RULE, file, line, msg));
    }
}

/// Shortest cycle that starts and ends at `start`, as the node sequence
/// without the repeated endpoint.
fn shortest_cycle_through<'a>(
    adj: &BTreeMap<&'a String, Vec<&'a String>>,
    start: &'a String,
) -> Option<Vec<String>> {
    // BFS storing predecessor chains; first time we step back onto
    // `start` we have a shortest ring through it.
    let mut prev: BTreeMap<&String, &String> = BTreeMap::new();
    let mut queue: Vec<&String> = vec![start];
    let mut seen: BTreeSet<&String> = BTreeSet::new();
    seen.insert(start);
    let mut qi = 0;
    while qi < queue.len() {
        let node = queue[qi];
        qi += 1;
        for next in adj.get(node).into_iter().flatten() {
            if *next == start {
                // Unwind node → … → start.
                let mut path = vec![node];
                while let Some(p) = prev.get(*path.last().expect("nonempty")) {
                    path.push(p);
                }
                path.reverse();
                return Some(path.into_iter().cloned().collect());
            }
            if seen.insert(next) {
                prev.insert(next, node);
                queue.push(next);
            }
        }
    }
    None
}

/// Rotate the cycle so it starts at its smallest node — one canonical
/// form per ring regardless of entry point.
fn canonical_rotation(cycle: &[String]) -> Vec<String> {
    let Some(min_at) = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, l)| l.as_str())
        .map(|(i, _)| i)
    else {
        return Vec::new();
    };
    let mut rot = Vec::with_capacity(cycle.len());
    for k in 0..cycle.len() {
        rot.push(cycle[(min_at + k) % cycle.len()].clone());
    }
    rot
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index;
    use crate::scanner::FileCtx;

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ctxs: Vec<FileCtx> = files.iter().map(|(p, s)| FileCtx::new(p, s)).collect();
        let idx = index::build(&ctxs);
        let mut out = Vec::new();
        check(&idx, &mut out);
        out
    }

    const SEEDED_CYCLE: &str = "use std::sync::Mutex;\n\
        struct A { m: Mutex<u32> }\n\
        struct B { n: Mutex<u32> }\n\
        fn ab(a: &A, b: &B) { let g = a.m.lock().unwrap(); let h = b.n.lock().unwrap(); drop(h); drop(g); }\n\
        fn ba(a: &A, b: &B) { let h = b.n.lock().unwrap(); let g = a.m.lock().unwrap(); drop(g); drop(h); }\n";

    #[test]
    fn seeded_two_lock_cycle_is_detected() {
        let d = run(&[("crates/serve/src/x.rs", SEEDED_CYCLE)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("potential deadlock"), "{d:?}");
        assert!(d[0].message.contains("`A::m`") && d[0].message.contains("`B::n`"));
        assert!(d[0].message.contains("while holding"), "{d:?}");
        // Witness anchoring: the diagnostic lands on a real line so an
        // inline escape can suppress it.
        assert!(d[0].line > 0 && d[0].path == "crates/serve/src/x.rs");
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "use std::sync::Mutex;\n\
            struct A { m: Mutex<u32> }\n\
            struct B { n: Mutex<u32> }\n\
            fn ab(a: &A, b: &B) { let g = a.m.lock().unwrap(); let h = b.n.lock().unwrap(); drop(h); drop(g); }\n\
            fn ab2(a: &A, b: &B) { let g = a.m.lock().unwrap(); let h = b.n.lock().unwrap(); drop(h); drop(g); }\n";
        assert!(run(&[("crates/serve/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn drop_breaks_the_hold_region() {
        // The first lock is dropped before the second is taken: no edge,
        // no cycle, even with opposite orders.
        let src = "use std::sync::Mutex;\n\
            struct A { m: Mutex<u32> }\n\
            struct B { n: Mutex<u32> }\n\
            fn ab(a: &A, b: &B) { let g = a.m.lock().unwrap(); drop(g); let h = b.n.lock().unwrap(); drop(h); }\n\
            fn ba(a: &A, b: &B) { let h = b.n.lock().unwrap(); drop(h); let g = a.m.lock().unwrap(); drop(g); }\n";
        assert!(run(&[("crates/serve/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn cycle_through_a_call_is_detected() {
        // `ab` holds A::m and calls helper(), which takes B::n; `ba` does
        // the reverse directly.
        let src = "use std::sync::Mutex;\n\
            struct A { m: Mutex<u32> }\n\
            struct B { n: Mutex<u32> }\n\
            fn helper(b: &B) { let h = b.n.lock().unwrap(); drop(h); }\n\
            fn ab(a: &A, b: &B) { let g = a.m.lock().unwrap(); helper(b); drop(g); }\n\
            fn ba(a: &A, b: &B) { let h = b.n.lock().unwrap(); let g = a.m.lock().unwrap(); drop(g); drop(h); }\n";
        let d = run(&[("crates/serve/src/x.rs", src)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("via call to `helper`"), "{d:?}");
    }

    #[test]
    fn cross_file_cycle_is_detected() {
        let a = "use std::sync::Mutex;\n\
            pub struct A { pub m: Mutex<u32> }\n\
            pub struct B { pub n: Mutex<u32> }\n\
            pub fn ab(a: &A, b: &B) { let g = a.m.lock().unwrap(); let h = b.n.lock().unwrap(); drop(h); drop(g); }\n";
        let b = "use crate::a::{A, B};\n\
            pub fn ba(a: &A, b: &B) { let h = b.n.lock().unwrap(); let g = a.m.lock().unwrap(); drop(g); drop(h); }\n";
        let d = run(&[("crates/serve/src/a.rs", a), ("crates/serve/src/b.rs", b)]);
        assert_eq!(d.len(), 1, "cross-file edge graph: {d:?}");
    }

    #[test]
    fn self_reacquire_is_a_direct_deadlock() {
        let src = "use std::sync::Mutex;\n\
            struct A { m: Mutex<u32> }\n\
            fn f(a: &A) { let g = a.m.lock().unwrap(); let h = a.m.lock().unwrap(); drop(h); drop(g); }\n";
        let d = run(&[("crates/serve/src/x.rs", src)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("not reentrant"), "{d:?}");
    }

    #[test]
    fn guard_returning_helper_counts_at_call_sites() {
        // `S::lock` returns the guard; callers that then take T::n create
        // the edge S::m → T::n, and the reverse order elsewhere closes the
        // cycle.
        let src = "use std::sync::{Mutex, MutexGuard};\n\
            struct S { m: Mutex<u32> }\n\
            struct T { n: Mutex<u32> }\n\
            impl S { fn lock(&self) -> MutexGuard<'_, u32> { self.m.lock().unwrap() } }\n\
            fn ab(s: &S, t: &T) { let g = s.lock(); let h = t.n.lock().unwrap(); drop(h); drop(g); }\n\
            fn ba(s: &S, t: &T) { let h = t.n.lock().unwrap(); let g = s.lock(); drop(g); drop(h); }\n";
        let d = run(&[("crates/serve/src/x.rs", src)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(
            d[0].message.contains("`S::m`") && d[0].message.contains("`T::n`"),
            "{d:?}"
        );
    }

    #[test]
    fn out_of_scope_crate_is_ignored() {
        let d = run(&[("crates/sim/src/x.rs", SEEDED_CYCLE)]);
        assert!(d.is_empty(), "{d:?}");
    }
}
