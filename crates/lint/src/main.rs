//! CLI for `resemble-lint`.
//!
//! Usage:
//!   cargo run -p resemble-lint -- --check
//!   cargo run -p resemble-lint -- --root /path/to/workspace
//!   cargo run -p resemble-lint -- --list-rules
//!
//! Exit status: 0 when no error-severity diagnostics, 1 when any rule
//! fires at error severity, 2 on usage errors. `--check` is the explicit
//! gate spelling used by CI; it is also the default behaviour.

use resemble_lint::{lint_workspace, rules};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: resemble-lint [--check] [--root <dir>] [--list-rules]\n\
                     \n\
                     --check        gate mode (default): exit 1 on any error diagnostic\n\
                     --root <dir>   workspace root (default: walk up from cwd to lint.toml)\n\
                     --list-rules   print the rule set and exit";

/// Walk up from `start` to the directory holding `lint.toml`.
fn find_root(start: PathBuf) -> PathBuf {
    let mut dir = start.clone();
    loop {
        if dir.join("lint.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return start; // fall through: lint_workspace reports the miss
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {}
            "--root" => {
                let Some(dir) = args.next() else {
                    eprintln!("error: --root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                };
                root = Some(PathBuf::from(dir));
            }
            "--list-rules" => {
                for (name, desc) in rules::RULES {
                    println!("{name}\n    {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = root.unwrap_or_else(|| {
        find_root(std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")))
    });
    let report = lint_workspace(&root);
    for d in &report.diagnostics {
        println!("{d}");
    }
    println!(
        "resemble-lint: scanned {} files: {} error(s), {} warning(s)",
        report.files_scanned,
        report.errors(),
        report.warnings()
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
