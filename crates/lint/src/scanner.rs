//! Per-file analysis context built on top of the lexer: import
//! resolution, `#[cfg(test)]` region detection, `lint:allow` escape
//! parsing, and a lightweight scan for bindings declared with
//! `std::collections` map types. Rules consume a [`FileCtx`] and emit
//! diagnostics; everything here is shared between rules.

use crate::lexer::{lex, Comment, Lexed, TokKind, Token};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::RangeInclusive;

/// One parsed `lint:allow` escape.
#[derive(Debug)]
pub struct AllowEscape {
    /// Rules the escape names.
    pub rules: Vec<String>,
    /// 1-based line of the comment.
    pub line: u32,
    /// Whether any diagnostic consulted (and was suppressed by) it.
    pub used: RefCell<bool>,
}

/// Analysis context for one source file.
pub struct FileCtx {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Crate directory name: `sim`, `core`, … (`root` for the top-level
    /// package's `src/`, `tests/`, `examples/`).
    pub crate_name: String,
    /// Whole file is test/bench/example code by location.
    pub test_path: bool,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Comments in source order (rules such as `unsafe-undocumented`
    /// inspect them for `// SAFETY:` documentation).
    pub comments: Vec<Comment>,
    /// `lint:allow` escapes found in comments.
    pub allows: Vec<AllowEscape>,
    /// Line ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub test_regions: Vec<RangeInclusive<u32>>,
    /// Local name → fully-qualified path, from `use` declarations.
    pub uses: BTreeMap<String, String>,
    /// Identifiers declared with a `std::collections::HashMap`/`HashSet`
    /// type that uses the default (randomized) hasher.
    pub std_map_bindings: BTreeSet<String>,
}

/// Classify a workspace-relative path into its crate directory name.
pub fn crate_of(rel: &str) -> String {
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some((name, _)) = rest.split_once('/') {
            return name.to_string();
        }
    }
    "root".to_string()
}

/// Whether the path is test/bench/example code by location alone.
pub fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.starts_with("benches/")
        || rel.starts_with("examples/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
}

impl FileCtx {
    /// Lex and scan one file.
    pub fn new(rel_path: &str, src: &str) -> Self {
        let lexed = lex(src);
        let mut ctx = FileCtx {
            path: rel_path.to_string(),
            crate_name: crate_of(rel_path),
            test_path: is_test_path(rel_path),
            tokens: Vec::new(),
            comments: Vec::new(),
            allows: Vec::new(),
            test_regions: Vec::new(),
            uses: BTreeMap::new(),
            std_map_bindings: BTreeSet::new(),
        };
        ctx.scan_allows(&lexed);
        ctx.tokens = lexed.tokens;
        ctx.comments = lexed.comments;
        ctx.scan_test_regions();
        ctx.scan_uses();
        ctx.scan_std_map_bindings();
        ctx
    }

    /// Whether `line` is inside test code (by path or `cfg(test)` region).
    pub fn in_test(&self, line: u32) -> bool {
        self.test_path || self.test_regions.iter().any(|r| r.contains(&line))
    }

    /// Resolve a bare identifier through the file's imports. Returns the
    /// fully-qualified path when imported, else `None`.
    pub fn resolve(&self, name: &str) -> Option<&str> {
        self.uses.get(name).map(String::as_str)
    }

    /// Does a diagnostic for `rule` at `line` hit a `lint:allow` escape?
    /// An escape applies to its own line (trailing comment) and the line
    /// directly below it (comment-above style). Marks the escape used.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        for a in &self.allows {
            if (a.line == line || a.line + 1 == line) && a.rules.iter().any(|r| r == rule) {
                *a.used.borrow_mut() = true;
                return true;
            }
        }
        false
    }

    /// Parse `lint:allow(rule_a, rule_b): reason` escapes out of comments.
    /// A missing or empty reason invalidates the escape (rules that hit it
    /// will still fire; the config loader reports it separately).
    fn scan_allows(&mut self, lexed: &Lexed) {
        for c in &lexed.comments {
            // Anchored to the comment start (after doc-comment markers) so
            // prose that merely *mentions* the syntax is not an escape.
            let trimmed = c.text.trim_start_matches(['/', '!', '*', ' ', '\t']);
            let Some(rest) = trimmed.strip_prefix("lint:allow(") else {
                continue;
            };
            let Some(close) = rest.find(')') else {
                continue;
            };
            let rules: Vec<String> = rest[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            let after = rest[close + 1..].trim_start();
            let reason_ok = after.starts_with(':') && !after[1..].trim().is_empty();
            if rules.is_empty() || !reason_ok {
                // Malformed escape: treat as absent so the underlying
                // diagnostic still fires (loud beats silent).
                continue;
            }
            self.allows.push(AllowEscape {
                rules,
                line: c.line,
                used: RefCell::new(false),
            });
        }
    }

    /// Find items annotated `#[cfg(test)]` / `#[test]` (or any attribute
    /// mentioning `test`, covering `cfg(all(test, …))`) and record the line
    /// span of the item body.
    fn scan_test_regions(&mut self) {
        let toks = &self.tokens;
        let n = toks.len();
        let mut i = 0;
        while i < n {
            if !(toks[i].is_punct("#") && i + 1 < n && toks[i + 1].is_punct("[")) {
                i += 1;
                continue;
            }
            let attr_line = toks[i].line;
            // Collect the attribute, tracking bracket depth.
            let mut j = i + 1;
            let mut depth = 0i32;
            let mut mentions_test = false;
            while j < n {
                if toks[j].is_punct("[") {
                    depth += 1;
                } else if toks[j].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                } else if toks[j].is_ident("test") {
                    mentions_test = true;
                }
                j += 1;
            }
            if !mentions_test {
                i = j;
                continue;
            }
            // Skip any further attributes before the item.
            while j + 1 < n && toks[j].is_punct("#") && toks[j + 1].is_punct("[") {
                let mut d = 0i32;
                j += 1;
                while j < n {
                    if toks[j].is_punct("[") {
                        d += 1;
                    } else if toks[j].is_punct("]") {
                        d -= 1;
                        if d == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            // The item body is the first `{` (a `;` first means no body).
            let mut body = None;
            let mut k = j;
            while k < n {
                if toks[k].is_punct("{") {
                    body = Some(k);
                    break;
                }
                if toks[k].is_punct(";") {
                    break;
                }
                k += 1;
            }
            let Some(open) = body else {
                self.test_regions.push(attr_line..=toks[j.min(n - 1)].line);
                i = k.max(j);
                continue;
            };
            // Match braces to find the end of the item.
            let mut d = 0i32;
            let mut end = open;
            for (idx, t) in toks.iter().enumerate().skip(open) {
                if t.is_punct("{") {
                    d += 1;
                } else if t.is_punct("}") {
                    d -= 1;
                    if d == 0 {
                        end = idx;
                        break;
                    }
                }
            }
            self.test_regions.push(attr_line..=toks[end].line);
            i = end + 1;
        }
    }

    /// Parse `use` declarations into the local-name → full-path map.
    /// Handles groups, renames, globs (recorded as `prefix::*` under the
    /// reserved key `*N`), and `self` in groups.
    fn scan_uses(&mut self) {
        let toks = self.tokens.clone();
        let n = toks.len();
        let mut i = 0;
        while i < n {
            if !toks[i].is_ident("use") {
                i += 1;
                continue;
            }
            // Parse one use-tree up to the terminating `;`.
            let mut end = i + 1;
            let mut depth = 0i32;
            while end < n {
                if toks[end].is_punct("{") {
                    depth += 1;
                } else if toks[end].is_punct("}") {
                    depth -= 1;
                } else if toks[end].is_punct(";") && depth == 0 {
                    break;
                }
                end += 1;
            }
            let tree = &toks[i + 1..end.min(n)];
            self.parse_use_tree(tree, String::new());
            i = end + 1;
        }
    }

    /// Recursive use-tree parse: `tree` is the token slice after `use` (or
    /// inside a group), `prefix` the accumulated path so far.
    fn parse_use_tree(&mut self, tree: &[Token], prefix: String) {
        // Split the tree at top-level commas (only inside groups).
        let mut parts: Vec<&[Token]> = Vec::new();
        let mut depth = 0i32;
        let mut start = 0usize;
        for (idx, t) in tree.iter().enumerate() {
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
            } else if t.is_punct(",") && depth == 0 {
                parts.push(&tree[start..idx]);
                start = idx + 1;
            }
        }
        parts.push(&tree[start..]);

        for part in parts {
            if part.is_empty() {
                continue;
            }
            let mut path = prefix.clone();
            let mut j = 0;
            let mut last_seg = String::new();
            while j < part.len() {
                match &part[j].kind {
                    TokKind::Ident(s) if s == "as" => {
                        // Rename: next ident is the local name.
                        if let Some(local) = part.get(j + 1).and_then(Token::ident) {
                            self.uses.insert(local.to_string(), path.clone());
                        }
                        j = part.len();
                    }
                    TokKind::Ident(s) if s == "self" && !path.is_empty() => {
                        // `self` in a group: binds the prefix's last segment.
                        if let Some(seg) = path.rsplit("::").next() {
                            self.uses.insert(seg.to_string(), path.clone());
                        }
                        last_seg.clear();
                        j += 1;
                    }
                    TokKind::Ident(s) => {
                        if !path.is_empty() {
                            path.push_str("::");
                        }
                        path.push_str(s);
                        last_seg = s.clone();
                        j += 1;
                    }
                    TokKind::Punct("::") => {
                        j += 1;
                    }
                    TokKind::Punct("*") => {
                        // Glob: remember the prefix under a reserved key.
                        let key = format!("*{}", self.uses.len());
                        self.uses.insert(key, path.clone());
                        last_seg.clear();
                        j += 1;
                    }
                    TokKind::Punct("{") => {
                        // Group: recurse over its contents.
                        let mut d = 0i32;
                        let mut close = j;
                        for (idx, t) in part.iter().enumerate().skip(j) {
                            if t.is_punct("{") {
                                d += 1;
                            } else if t.is_punct("}") {
                                d -= 1;
                                if d == 0 {
                                    close = idx;
                                    break;
                                }
                            }
                        }
                        self.parse_use_tree(&part[j + 1..close], path.clone());
                        last_seg.clear();
                        j = close + 1;
                    }
                    _ => {
                        j += 1;
                    }
                }
            }
            if !last_seg.is_empty() {
                self.uses.insert(last_seg, path);
            }
        }
    }

    /// Record identifiers bound to `std::collections::HashMap`/`HashSet`
    /// with the default hasher: annotated bindings (`x: HashMap<K, V>`)
    /// and constructor bindings (`let x = HashMap::new()`).
    fn scan_std_map_bindings(&mut self) {
        let toks = self.tokens.clone();
        let n = toks.len();
        for i in 0..n {
            let Some(name) = self.std_map_type_at(&toks, i) else {
                continue;
            };
            // Generic-argument count decides whether a hasher is explicit.
            let needed = if name == "HashMap" { 3 } else { 2 };
            let args = generic_arg_count(&toks, i + 1);
            if args >= needed {
                continue; // explicit hasher: deterministic by construction
            }
            // Annotated binding: `<ident> : [path::]Type`.
            let mut k = i;
            while k > 0
                && (toks[k - 1].is_punct("::")
                    || toks[k - 1]
                        .ident()
                        .is_some_and(|s| s == "std" || s == "collections"))
            {
                k -= 1;
            }
            if k >= 2 && toks[k - 1].is_punct(":") {
                if let Some(id) = toks[k - 2].ident() {
                    self.std_map_bindings.insert(id.to_string());
                }
            }
            // Constructor binding: `let [mut] <ident> = Type::new(…)`.
            if toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
                && toks.get(i + 2).is_some_and(|t| {
                    t.ident()
                        .is_some_and(|s| s == "new" || s == "default" || s == "with_capacity")
                })
                && k >= 2
                && toks[k - 1].is_punct("=")
            {
                let mut b = k - 2;
                if toks[b].is_ident("mut") && b > 0 {
                    b -= 1;
                }
                if let Some(id) = toks[b].ident() {
                    self.std_map_bindings.insert(id.to_string());
                }
            }
        }
    }

    /// If the token at `i` names `std::collections::HashMap`/`HashSet`
    /// (bare-imported, glob-imported from std::collections, or written as
    /// a full path ending here), return the type name.
    pub fn std_map_type_at(&self, toks: &[Token], i: usize) -> Option<&'static str> {
        let name = toks[i].ident()?;
        let canonical: &'static str = match name {
            "HashMap" => "HashMap",
            "HashSet" => "HashSet",
            _ => {
                // Renamed import: resolve the alias.
                let full = self.resolve(name)?;
                if full == "std::collections::HashMap" {
                    "HashMap"
                } else if full == "std::collections::HashSet" {
                    "HashSet"
                } else {
                    return None;
                }
            }
        };
        if name == "HashMap" || name == "HashSet" {
            // Bare name: must resolve through an import, a glob of
            // std::collections, or be part of a literal full path.
            let via_import = self
                .resolve(name)
                .is_some_and(|p| p == format!("std::collections::{name}"));
            let via_glob = self
                .uses
                .iter()
                .any(|(k, v)| k.starts_with('*') && v == "std::collections");
            let via_path = i >= 4
                && toks[i - 1].is_punct("::")
                && toks[i - 2].is_ident("collections")
                && toks[i - 3].is_punct("::")
                && toks[i - 4].is_ident("std");
            if !(via_import || via_glob || via_path) {
                return None;
            }
        }
        Some(canonical)
    }
}

/// Count top-level generic arguments of a `<…>` list starting at `toks[i]`
/// (which must be `<`); returns 0 when `toks[i]` is not `<`. `>>` closes
/// two levels.
fn generic_arg_count(toks: &[Token], i: usize) -> usize {
    if toks.get(i).map(|t| t.is_punct("<")) != Some(true) {
        return 0;
    }
    let mut depth = 1i32;
    let mut args = 1usize;
    let mut j = i + 1;
    while j < toks.len() && depth > 0 {
        let t = &toks[j];
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(">") {
            depth -= 1;
        } else if t.is_punct(">>") {
            depth -= 2;
        } else if t.is_punct("(") || t.is_punct("[") {
            depth += 1; // tuple/array types nest commas too
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if t.is_punct(",") && depth == 1 {
            args += 1;
        } else if t.is_punct(";") || t.is_punct("{") {
            break; // runaway: `<` was a comparison, not generics
        }
        j += 1;
    }
    if depth > 0 {
        0 // not a generic list after all
    } else {
        args
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_classification() {
        assert_eq!(crate_of("crates/sim/src/engine.rs"), "sim");
        assert_eq!(crate_of("src/lib.rs"), "root");
        assert_eq!(crate_of("tests/end_to_end.rs"), "root");
        assert!(is_test_path("tests/end_to_end.rs"));
        assert!(is_test_path("crates/bench/benches/micro.rs"));
        assert!(!is_test_path("crates/sim/src/engine.rs"));
    }

    #[test]
    fn use_map_groups_renames_and_globs() {
        let ctx = FileCtx::new(
            "crates/sim/src/x.rs",
            "use std::collections::{HashMap as Map, HashSet, VecDeque};\n\
             use std::time::Instant;\n\
             use std::collections::*;\n",
        );
        assert_eq!(ctx.resolve("Map").unwrap(), "std::collections::HashMap");
        assert_eq!(ctx.resolve("HashSet").unwrap(), "std::collections::HashSet");
        assert_eq!(ctx.resolve("Instant").unwrap(), "std::time::Instant");
        assert!(ctx
            .uses
            .iter()
            .any(|(k, v)| k.starts_with('*') && v == "std::collections"));
    }

    #[test]
    fn cfg_test_region_spans_module() {
        let src = "pub fn live() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { assert!(true); }\n\
                   }\n";
        let ctx = FileCtx::new("crates/sim/src/x.rs", src);
        assert!(!ctx.in_test(1));
        assert!(ctx.in_test(3));
        assert!(ctx.in_test(5));
    }

    #[test]
    fn allow_escape_requires_reason() {
        let src = "// lint:allow(float-eq): exact sentinel comparison\n\
                   let a = 1.0 == b;\n\
                   // lint:allow(float-eq)\n\
                   let c = 2.0 == d;\n";
        let ctx = FileCtx::new("crates/nn/src/x.rs", src);
        assert_eq!(ctx.allows.len(), 1, "reasonless escape is ignored");
        assert!(ctx.allowed("float-eq", 2));
        assert!(!ctx.allowed("float-eq", 4));
    }

    #[test]
    fn std_map_bindings_tracked_unless_hasher_explicit() {
        let src = "use std::collections::HashMap;\n\
                   use std::hash::BuildHasherDefault;\n\
                   struct S {\n\
                       bad: HashMap<u64, u64>,\n\
                       good: HashMap<u64, u64, BuildHasherDefault<MyHasher>>,\n\
                   }\n\
                   fn f() { let m = HashMap::new(); }\n";
        let ctx = FileCtx::new("crates/core/src/x.rs", src);
        assert!(ctx.std_map_bindings.contains("bad"));
        assert!(ctx.std_map_bindings.contains("m"));
        assert!(!ctx.std_map_bindings.contains("good"));
    }
}
