//! A hand-rolled Rust lexer — just enough fidelity for repo-local static
//! analysis. It produces a token stream with line numbers plus a separate
//! comment list (comments carry the `// lint:allow(...)` escapes), and it
//! never allocates for punctuation.
//!
//! Fidelity notes: raw strings (`r#"…"#`), byte strings, char literals,
//! lifetimes, nested block comments, and numeric literals (with suffix and
//! exponent forms, so float literals can be told apart from integers) are
//! all handled. Anything the rules never look inside — macro bodies,
//! attribute grammar — is simply lexed as ordinary tokens.

/// Kind of a lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers are unescaped: `r#fn` → `fn`).
    Ident(String),
    /// Lifetime such as `'a` (name without the quote).
    Lifetime(String),
    /// Integer literal (any base, any suffix).
    Int,
    /// Float literal (`1.0`, `1.`, `1e-3`, `2f32`, …).
    Float,
    /// String, raw string, byte string, byte, or char literal.
    Literal,
    /// Punctuation, longest-match (`::`, `==`, `..=`, `>>`, single chars).
    Punct(&'static str),
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokKind,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// `true` when the token is the given punctuation.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(&self.kind, TokKind::Punct(q) if *q == p)
    }

    /// `true` when the token is the given identifier/keyword.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(&self.kind, TokKind::Ident(s) if s == name)
    }
}

/// A comment with position info, used for `lint:allow` escapes.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// Lexer output: the token stream plus all comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character punctuation, longest first. Everything else is lexed as
/// a single-character `Punct`.
const PUNCTS: &[&str] = &[
    "..=", "<<=", ">>=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Single-character punctuation interned as `&'static str`.
fn single(c: char) -> &'static str {
    match c {
        '(' => "(",
        ')' => ")",
        '{' => "{",
        '}' => "}",
        '[' => "[",
        ']' => "]",
        '<' => "<",
        '>' => ">",
        ',' => ",",
        ';' => ";",
        ':' => ":",
        '.' => ".",
        '=' => "=",
        '+' => "+",
        '-' => "-",
        '*' => "*",
        '/' => "/",
        '%' => "%",
        '!' => "!",
        '&' => "&",
        '|' => "|",
        '^' => "^",
        '~' => "~",
        '#' => "#",
        '?' => "?",
        '@' => "@",
        '$' => "$",
        _ => "\u{0}", // unknown byte: emitted but matched by nothing
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens and comments. Never fails: unterminated literals
/// consume to end-of-file (the real compiler will reject such files long
/// before the linter matters).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = b.len();

    macro_rules! bump_lines {
        ($s:expr, $e:expr) => {
            for k in $s..$e {
                if b[k] == '\n' {
                    line += 1;
                }
            }
        };
    }

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && b[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                text: b[start..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start_line = line;
            let mut depth = 1;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if b[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            out.comments.push(Comment {
                text: b[i + 2..j.saturating_sub(2).max(i + 2)].iter().collect(),
                line: start_line,
            });
            i = j;
            continue;
        }
        // Raw strings and raw identifiers: r"…", r#"…"#, r#ident, br#"…"#.
        if (c == 'r' || c == 'b') && i + 1 < n {
            // b'…' byte char / b"…" byte string are handled by the generic
            // quote paths below after skipping the prefix.
            let mut j = i;
            let mut raw = false;
            if b[j] == 'b' && j + 1 < n && b[j + 1] == 'r' {
                j += 2;
                raw = true;
            } else if b[j] == 'r' {
                j += 1;
                raw = true;
            }
            if raw {
                let mut hashes = 0;
                while j < n && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && b[j] == '"' {
                    // Raw (byte) string: scan for `"` followed by `hashes` #s.
                    let tok_line = line;
                    let mut k = j + 1;
                    'scan: while k < n {
                        if b[k] == '\n' {
                            line += 1;
                        }
                        if b[k] == '"' {
                            let mut h = 0;
                            while h < hashes && k + 1 + h < n && b[k + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                k += 1 + hashes;
                                break 'scan;
                            }
                        }
                        k += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Literal,
                        line: tok_line,
                    });
                    i = k;
                    continue;
                }
                if hashes > 0 && j < n && is_ident_start(b[j]) && b[i] == 'r' && hashes == 1 {
                    // Raw identifier r#foo: lex the ident, drop the escape.
                    let mut k = j;
                    while k < n && is_ident_continue(b[k]) {
                        k += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Ident(b[j..k].iter().collect()),
                        line,
                    });
                    i = k;
                    continue;
                }
                // Not actually raw syntax — fall through to ident lexing.
            }
        }
        // Byte char/string prefix: skip the `b`, let the quote path run.
        if c == 'b' && i + 1 < n && (b[i + 1] == '"' || b[i + 1] == '\'') {
            i += 1;
            continue;
        }
        // String literal.
        if c == '"' {
            let tok_line = line;
            let mut j = i + 1;
            while j < n {
                match b[j] {
                    '\\' => j += 2,
                    '"' => {
                        j += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Literal,
                line: tok_line,
            });
            i = j;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // Lifetime: 'ident not followed by a closing quote.
            if i + 1 < n && is_ident_start(b[i + 1]) {
                let mut j = i + 1;
                while j < n && is_ident_continue(b[j]) {
                    j += 1;
                }
                if j < n && b[j] == '\'' && j == i + 2 {
                    // 'x' — a char literal.
                    out.tokens.push(Token {
                        kind: TokKind::Literal,
                        line,
                    });
                    i = j + 1;
                    continue;
                }
                out.tokens.push(Token {
                    kind: TokKind::Lifetime(b[i + 1..j].iter().collect()),
                    line,
                });
                i = j;
                continue;
            }
            // Escaped or symbolic char literal: scan to the closing quote.
            let mut j = i + 1;
            while j < n {
                match b[j] {
                    '\\' => j += 2,
                    '\'' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Literal,
                line,
            });
            i = j;
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i;
            let mut float = false;
            if c == '0' && j + 1 < n && matches!(b[j + 1], 'x' | 'o' | 'b') {
                j += 2;
                while j < n && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
            } else {
                while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
                    j += 1;
                }
                // Fraction: a '.' followed by a digit, or by nothing
                // ident-like (so `1.max(…)` stays an integer).
                if j < n && b[j] == '.' {
                    let next = b.get(j + 1).copied();
                    let method_or_range =
                        matches!(next, Some(c2) if is_ident_start(c2)) || next == Some('.');
                    if !method_or_range {
                        float = true;
                        j += 1;
                        while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
                            j += 1;
                        }
                    }
                }
                // Exponent.
                if j < n && matches!(b[j], 'e' | 'E') {
                    let mut k = j + 1;
                    if k < n && matches!(b[k], '+' | '-') {
                        k += 1;
                    }
                    if k < n && b[k].is_ascii_digit() {
                        float = true;
                        j = k;
                        while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
                            j += 1;
                        }
                    }
                }
                // Suffix (u64, f32, …): a float suffix forces float.
                if j < n && is_ident_start(b[j]) {
                    let s = j;
                    while j < n && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    let suffix: String = b[s..j].iter().collect();
                    if suffix == "f32" || suffix == "f64" {
                        float = true;
                    }
                }
            }
            let _ = start;
            out.tokens.push(Token {
                kind: if float { TokKind::Float } else { TokKind::Int },
                line,
            });
            i = j;
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let mut j = i;
            while j < n && is_ident_continue(b[j]) {
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident(b[i..j].iter().collect()),
                line,
            });
            i = j;
            continue;
        }
        // Punctuation, longest match first.
        let mut matched = false;
        for p in PUNCTS {
            let pc: Vec<char> = p.chars().collect();
            if i + pc.len() <= n && b[i..i + pc.len()] == pc[..] {
                out.tokens.push(Token {
                    kind: TokKind::Punct(p),
                    line,
                });
                bump_lines!(i, i + pc.len());
                i += pc.len();
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        out.tokens.push(Token {
            kind: TokKind::Punct(single(c)),
            line,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let l = lex("fn main() {\n    let x = 1;\n}\n");
        assert!(l.tokens[0].is_ident("fn"));
        assert_eq!(l.tokens[0].line, 1);
        let x = l.tokens.iter().find(|t| t.is_ident("x")).unwrap();
        assert_eq!(x.line, 2);
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let l = lex("let a = 1; // trailing note\n/* block\nspan */ let b = 2;\n");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].text.trim(), "trailing note");
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
        // `b` is on line 3 (block comment spanned a newline).
        let b = l.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn strings_hide_their_contents() {
        // Banned-looking names inside literals must not produce idents.
        let l = lex(r#"let s = "HashMap::new() unwrap"; let c = 'H';"#);
        assert!(!idents(r#"let s = "HashMap::new() unwrap";"#)
            .iter()
            .any(|i| i == "HashMap" || i == "unwrap"));
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Literal)
                .count(),
            2
        );
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let l = lex(r##"let s = r#"quote " inside"#; let r#fn = 1;"##);
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Literal)
                .count(),
            1
        );
        assert!(l.tokens.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn float_vs_int_classification() {
        let l = lex("1.0 2 3e4 5f32 6u64 7.max(8) 0x1f 9.");
        let kinds: Vec<&TokKind> = l
            .tokens
            .iter()
            .map(|t| &t.kind)
            .filter(|k| matches!(k, TokKind::Float | TokKind::Int))
            .collect();
        assert_eq!(
            kinds,
            vec![
                &TokKind::Float, // 1.0
                &TokKind::Int,   // 2
                &TokKind::Float, // 3e4
                &TokKind::Float, // 5f32
                &TokKind::Int,   // 6u64
                &TokKind::Int,   // 7 (method call)
                &TokKind::Int,   // 8
                &TokKind::Int,   // 0x1f
                &TokKind::Float, // 9.
            ]
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'a'; let nl = '\\n'; }");
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| matches!(t.kind, TokKind::Lifetime(_)))
                .count(),
            2
        );
        assert_eq!(
            l.tokens
                .iter()
                .filter(|t| t.kind == TokKind::Literal)
                .count(),
            2
        );
    }

    #[test]
    fn multichar_punct_longest_match() {
        let l = lex("a == b != c :: d ..= e >> f");
        let puncts: Vec<&str> = l
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Punct(p) => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::", "..=", ">>"]);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ let x = 1;");
        assert_eq!(l.comments.len(), 1);
        assert!(l.tokens.iter().any(|t| t.is_ident("x")));
    }
}
