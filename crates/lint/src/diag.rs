//! Diagnostics: severity, rendering, and stable ordering.

use std::fmt;

/// Diagnostic severity. `Error` fails `--check`; `Warn` is advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: printed, never fails the gate.
    Warn,
    /// Violation: fails `--check`.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warn => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding, anchored to `file:line`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule name (`nondeterministic-iteration`, …).
    pub rule: &'static str,
    /// Severity of this finding.
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line (0 for whole-file findings such as hash mismatches).
    pub line: u32,
    /// Human-readable message.
    pub message: String,
}

impl Diagnostic {
    /// Build an error diagnostic.
    pub fn error(rule: &'static str, path: &str, line: u32, message: String) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Error,
            path: path.to_string(),
            line,
            message,
        }
    }

    /// Build a warning diagnostic.
    pub fn warn(rule: &'static str, path: &str, line: u32, message: String) -> Self {
        Diagnostic {
            rule,
            severity: Severity::Warn,
            path: path.to_string(),
            line,
            message,
        }
    }

    /// Stable sort key: path, line, rule.
    pub fn sort_key(&self) -> (String, u32, &'static str) {
        (self.path.clone(), self.line, self.rule)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}:{}: {}",
            self.severity, self.rule, self.path, self.line, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_file_line_parsable() {
        let d = Diagnostic::error("float-eq", "crates/nn/src/matrix.rs", 107, "msg".into());
        assert_eq!(
            d.to_string(),
            "error[float-eq]: crates/nn/src/matrix.rs:107: msg"
        );
    }
}
