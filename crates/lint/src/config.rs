//! `lint.toml` loading and validation.
//!
//! The parser is a deliberate TOML subset — `[section]`, `[[array]]`,
//! `key = "string"` / `key = integer`, `#` comments — which is all the
//! checked-in config uses. Unknown syntax is a hard error so config typos
//! cannot silently disable a rule. Validation is loud: an allowlist entry
//! pointing at a deleted file is an error, not a stale no-op.

use crate::diag::Diagnostic;
use std::path::Path;

/// One file-level allowlist entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule the entry suppresses.
    pub rule: String,
    /// Workspace-relative path it applies to.
    pub path: String,
    /// Why the exemption exists (required).
    pub reason: String,
    /// Line in lint.toml (for diagnostics).
    pub line: u32,
}

/// One `[[unsafe-allowed]]` entry: a file sanctioned to contain `unsafe`,
/// with the reason it needs to.
#[derive(Debug, Clone)]
pub struct UnsafeAllowedEntry {
    /// Workspace-relative path of the allowlisted file.
    pub file: String,
    /// Why this file legitimately holds unsafe code (required).
    pub reason: String,
    /// Line in lint.toml (for diagnostics).
    pub line: u32,
}

/// One `[[thread-allowed]]` entry: a file outside the thread-owning
/// crates sanctioned to create raw threads, with the reason it needs to.
#[derive(Debug, Clone)]
pub struct ThreadAllowedEntry {
    /// Workspace-relative path of the allowlisted file.
    pub file: String,
    /// Why this file legitimately creates threads (required).
    pub reason: String,
    /// Line in lint.toml (for diagnostics).
    pub line: u32,
}

/// Parsed `lint.toml`.
#[derive(Debug, Default)]
pub struct LintConfig {
    /// Path of the frozen reference file.
    pub reference_file: String,
    /// Its committed SHA-256.
    pub reference_sha256: String,
    /// Sanctioned SIMD kernel module for `simd-outside-kernel` (optional;
    /// documents the exemption — the rule's scope table is authoritative,
    /// and validation flags a mismatch between the two).
    pub simd_kernel_file: String,
    /// Files sanctioned to contain `unsafe` (`unsafe-undocumented`;
    /// optional like the SIMD section — the rule's scope table
    /// `rules::UNSAFE_ALLOWED_FILES` is authoritative, and when the
    /// section is present validation requires exact agreement in both
    /// directions).
    pub unsafe_allowed: Vec<UnsafeAllowedEntry>,
    /// Files outside crates/runtime and crates/serve sanctioned to create
    /// raw threads (`thread-outside-runtime`; optional like the unsafe
    /// section — the rule's scope table `rules::THREAD_ALLOWED_FILES` is
    /// authoritative, and when the section is present validation requires
    /// exact agreement in both directions).
    pub thread_allowed: Vec<ThreadAllowedEntry>,
    /// File-level rule exemptions.
    pub allows: Vec<AllowEntry>,
}

/// Strip a trailing `#` comment that is outside any string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_escape = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_escape => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_escape = c == '\\' && !prev_escape;
    }
    line
}

/// Parse a `key = value` line; values are quoted strings or bare integers.
fn parse_kv(line: &str) -> Option<(String, String)> {
    let (k, v) = line.split_once('=')?;
    let k = k.trim().to_string();
    let v = v.trim();
    let v = if let Some(stripped) = v.strip_prefix('"') {
        stripped.strip_suffix('"')?.to_string()
    } else {
        // Bare value: accept integers only.
        if !v.chars().all(|c| c.is_ascii_digit()) || v.is_empty() {
            return None;
        }
        v.to_string()
    };
    Some((k, v))
}

impl LintConfig {
    /// Parse config text. Returns the config or a list of parse errors
    /// (attributed to `path` for display).
    pub fn parse(text: &str, path: &str) -> Result<LintConfig, Vec<Diagnostic>> {
        let mut cfg = LintConfig::default();
        let mut errors = Vec::new();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx as u32 + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                section = format!("[[{}]]", name.trim());
                if name.trim() == "allow" {
                    cfg.allows.push(AllowEntry {
                        rule: String::new(),
                        path: String::new(),
                        reason: String::new(),
                        line: line_no,
                    });
                } else if name.trim() == "unsafe-allowed" {
                    cfg.unsafe_allowed.push(UnsafeAllowedEntry {
                        file: String::new(),
                        reason: String::new(),
                        line: line_no,
                    });
                } else if name.trim() == "thread-allowed" {
                    cfg.thread_allowed.push(ThreadAllowedEntry {
                        file: String::new(),
                        reason: String::new(),
                        line: line_no,
                    });
                }
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = name.trim().to_string();
                continue;
            }
            let Some((k, v)) = parse_kv(line) else {
                errors.push(Diagnostic::error(
                    "lint-config",
                    path,
                    line_no,
                    format!("unparseable line: `{}`", raw.trim()),
                ));
                continue;
            };
            match (section.as_str(), k.as_str()) {
                ("reference-engine-frozen", "file") => cfg.reference_file = v,
                ("reference-engine-frozen", "sha256") => cfg.reference_sha256 = v,
                ("simd-outside-kernel", "file") => cfg.simd_kernel_file = v,
                ("[[allow]]", _) => {
                    let Some(entry) = cfg.allows.last_mut() else {
                        continue;
                    };
                    match k.as_str() {
                        "rule" => entry.rule = v,
                        "path" => entry.path = v,
                        "reason" => entry.reason = v,
                        other => errors.push(Diagnostic::error(
                            "lint-config",
                            path,
                            line_no,
                            format!("unknown [[allow]] key `{other}`"),
                        )),
                    }
                }
                ("[[unsafe-allowed]]", _) => {
                    let Some(entry) = cfg.unsafe_allowed.last_mut() else {
                        continue;
                    };
                    match k.as_str() {
                        "file" => entry.file = v,
                        "reason" => entry.reason = v,
                        other => errors.push(Diagnostic::error(
                            "lint-config",
                            path,
                            line_no,
                            format!("unknown [[unsafe-allowed]] key `{other}`"),
                        )),
                    }
                }
                ("[[thread-allowed]]", _) => {
                    let Some(entry) = cfg.thread_allowed.last_mut() else {
                        continue;
                    };
                    match k.as_str() {
                        "file" => entry.file = v,
                        "reason" => entry.reason = v,
                        other => errors.push(Diagnostic::error(
                            "lint-config",
                            path,
                            line_no,
                            format!("unknown [[thread-allowed]] key `{other}`"),
                        )),
                    }
                }
                ("", "schema_version") => {}
                (sec, key) => errors.push(Diagnostic::error(
                    "lint-config",
                    path,
                    line_no,
                    format!("unknown key `{key}` in section `{sec}`"),
                )),
            }
        }
        if errors.is_empty() {
            Ok(cfg)
        } else {
            Err(errors)
        }
    }

    /// Validate the config against the workspace: allowlist entries must
    /// be complete and point at files that still exist, and the frozen
    /// reference file must be configured. Failures are loud errors so a
    /// refactor cannot leave dead exemptions behind.
    pub fn validate(&self, root: &Path, config_path: &str) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        if self.reference_file.is_empty() || self.reference_sha256.is_empty() {
            out.push(Diagnostic::error(
                "lint-config",
                config_path,
                0,
                "missing [reference-engine-frozen] file/sha256".to_string(),
            ));
        }
        if !self.simd_kernel_file.is_empty() {
            if !root.join(&self.simd_kernel_file).is_file() {
                out.push(Diagnostic::error(
                    "lint-config",
                    config_path,
                    0,
                    format!(
                        "[simd-outside-kernel] file `{}` does not exist",
                        self.simd_kernel_file
                    ),
                ));
            }
            if !crate::rules::SIMD_KERNEL_FILES.contains(&self.simd_kernel_file.as_str()) {
                out.push(Diagnostic::error(
                    "lint-config",
                    config_path,
                    0,
                    format!(
                        "[simd-outside-kernel] file `{}` disagrees with the rule's scope \
                         table (rules::SIMD_KERNEL_FILES) — update both in the same change",
                        self.simd_kernel_file
                    ),
                ));
            }
        }
        // [[unsafe-allowed]] is optional as a whole (scratch workspaces in
        // the driver tests omit it), but once present it must agree with
        // the rule's scope table exactly — in both directions — so the
        // documented allowlist and the enforced one cannot drift.
        if !self.unsafe_allowed.is_empty() {
            for e in &self.unsafe_allowed {
                if e.file.is_empty() || e.reason.is_empty() {
                    out.push(Diagnostic::error(
                        "lint-config",
                        config_path,
                        e.line,
                        "[[unsafe-allowed]] entries need file and reason".to_string(),
                    ));
                    continue;
                }
                if !root.join(&e.file).is_file() {
                    out.push(Diagnostic::error(
                        "lint-config",
                        config_path,
                        e.line,
                        format!(
                            "stale [[unsafe-allowed]] entry: `{}` does not exist — \
                             remove the entry or fix the path",
                            e.file
                        ),
                    ));
                }
                if !crate::rules::UNSAFE_ALLOWED_FILES.contains(&e.file.as_str()) {
                    out.push(Diagnostic::error(
                        "lint-config",
                        config_path,
                        e.line,
                        format!(
                            "[[unsafe-allowed]] entry `{}` disagrees with the rule's scope \
                             table (rules::UNSAFE_ALLOWED_FILES) — update both in the same \
                             change",
                            e.file
                        ),
                    ));
                }
            }
            for f in crate::rules::UNSAFE_ALLOWED_FILES {
                if !self.unsafe_allowed.iter().any(|e| e.file == *f) {
                    out.push(Diagnostic::error(
                        "lint-config",
                        config_path,
                        0,
                        format!(
                            "rules::UNSAFE_ALLOWED_FILES contains `{f}` but lint.toml has \
                             no matching [[unsafe-allowed]] entry — add one with the \
                             reason the file needs unsafe"
                        ),
                    ));
                }
            }
        }
        // [[thread-allowed]] follows the same contract as
        // [[unsafe-allowed]]: optional as a whole, but once present it
        // must mirror rules::THREAD_ALLOWED_FILES exactly.
        if !self.thread_allowed.is_empty() {
            for e in &self.thread_allowed {
                if e.file.is_empty() || e.reason.is_empty() {
                    out.push(Diagnostic::error(
                        "lint-config",
                        config_path,
                        e.line,
                        "[[thread-allowed]] entries need file and reason".to_string(),
                    ));
                    continue;
                }
                if !root.join(&e.file).is_file() {
                    out.push(Diagnostic::error(
                        "lint-config",
                        config_path,
                        e.line,
                        format!(
                            "stale [[thread-allowed]] entry: `{}` does not exist — \
                             remove the entry or fix the path",
                            e.file
                        ),
                    ));
                }
                if !crate::rules::THREAD_ALLOWED_FILES.contains(&e.file.as_str()) {
                    out.push(Diagnostic::error(
                        "lint-config",
                        config_path,
                        e.line,
                        format!(
                            "[[thread-allowed]] entry `{}` disagrees with the rule's scope \
                             table (rules::THREAD_ALLOWED_FILES) — update both in the same \
                             change",
                            e.file
                        ),
                    ));
                }
            }
            for f in crate::rules::THREAD_ALLOWED_FILES {
                if !self.thread_allowed.iter().any(|e| e.file == *f) {
                    out.push(Diagnostic::error(
                        "lint-config",
                        config_path,
                        0,
                        format!(
                            "rules::THREAD_ALLOWED_FILES contains `{f}` but lint.toml has \
                             no matching [[thread-allowed]] entry — add one with the \
                             reason the file creates threads"
                        ),
                    ));
                }
            }
        }
        for a in &self.allows {
            if a.rule.is_empty() || a.path.is_empty() || a.reason.is_empty() {
                out.push(Diagnostic::error(
                    "lint-config",
                    config_path,
                    a.line,
                    "[[allow]] entries need rule, path, and reason".to_string(),
                ));
                continue;
            }
            if !root.join(&a.path).is_file() {
                out.push(Diagnostic::error(
                    "lint-config",
                    config_path,
                    a.line,
                    format!(
                        "stale allowlist entry: `{}` does not exist (rule `{}`) — \
                         remove the entry or fix the path",
                        a.path, a.rule
                    ),
                ));
            }
        }
        out
    }

    /// Whether a file-level allow suppresses `rule` for `path`.
    pub fn allows_file(&self, rule: &str, path: &str) -> bool {
        self.allows.iter().any(|a| a.rule == rule && a.path == path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn repo_root() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap()
            .to_path_buf()
    }

    #[test]
    fn parses_reference_and_allows() {
        let text = "schema_version = 1\n\
                    [reference-engine-frozen]\n\
                    file = \"crates/sim/src/reference.rs\"\n\
                    sha256 = \"abc123\" # committed hash\n\
                    [[allow]]\n\
                    rule = \"float-eq\"\n\
                    path = \"crates/nn/src/matrix.rs\"\n\
                    reason = \"exact sparsity sentinel\"\n";
        let cfg = LintConfig::parse(text, "lint.toml").unwrap();
        assert_eq!(cfg.reference_file, "crates/sim/src/reference.rs");
        assert_eq!(cfg.reference_sha256, "abc123");
        assert_eq!(cfg.allows.len(), 1);
        assert!(cfg.allows_file("float-eq", "crates/nn/src/matrix.rs"));
        assert!(!cfg.allows_file("float-eq", "crates/nn/src/mlp.rs"));
    }

    #[test]
    fn simd_kernel_section_is_optional_but_checked() {
        // Absent: fine (scratch workspaces in the driver tests omit it).
        let base = "[reference-engine-frozen]\n\
                    file = \"crates/sim/src/reference.rs\"\n\
                    sha256 = \"abc\"\n";
        let cfg = LintConfig::parse(base, "lint.toml").unwrap();
        assert!(cfg.simd_kernel_file.is_empty());

        // Present and matching the rule's scope table: no findings.
        let good = format!("{base}[simd-outside-kernel]\nfile = \"crates/nn/src/simd.rs\"\n");
        let cfg = LintConfig::parse(&good, "lint.toml").unwrap();
        assert!(cfg
            .validate(&repo_root(), "lint.toml")
            .iter()
            .all(|d| !d.message.contains("simd-outside-kernel")));

        // Present but pointing somewhere else: loud on the mismatch (and
        // on nonexistence when the path is also stale).
        let bad = format!("{base}[simd-outside-kernel]\nfile = \"crates/nn/src/matrix.rs\"\n");
        let cfg = LintConfig::parse(&bad, "lint.toml").unwrap();
        let diags = cfg.validate(&repo_root(), "lint.toml");
        assert!(
            diags.iter().any(|d| d.message.contains("disagrees")),
            "{diags:?}"
        );
    }

    #[test]
    fn unsafe_allowed_section_is_optional_but_must_match_the_scope_table() {
        let base = "[reference-engine-frozen]\n\
                    file = \"crates/sim/src/reference.rs\"\n\
                    sha256 = \"abc\"\n";
        // Absent: fine.
        let cfg = LintConfig::parse(base, "lint.toml").unwrap();
        assert!(cfg.unsafe_allowed.is_empty());

        // Complete and matching: no unsafe-allowed findings.
        let mut good = base.to_string();
        for f in crate::rules::UNSAFE_ALLOWED_FILES {
            good.push_str(&format!(
                "[[unsafe-allowed]]\nfile = \"{f}\"\nreason = \"needed\"\n"
            ));
        }
        let cfg = LintConfig::parse(&good, "lint.toml").unwrap();
        let diags = cfg.validate(&repo_root(), "lint.toml");
        assert!(
            diags.iter().all(|d| !d.message.contains("unsafe-allowed")),
            "{diags:?}"
        );

        // An entry outside the scope table disagrees loudly.
        let bad = format!(
            "{good}[[unsafe-allowed]]\nfile = \"crates/sim/src/engine.rs\"\nreason = \"nope\"\n"
        );
        let cfg = LintConfig::parse(&bad, "lint.toml").unwrap();
        let diags = cfg.validate(&repo_root(), "lint.toml");
        assert!(
            diags.iter().any(|d| d.message.contains("disagrees")),
            "{diags:?}"
        );

        // A partial list misses table files: loud in the other direction.
        let partial = format!(
            "{base}[[unsafe-allowed]]\nfile = \"crates/nn/src/simd.rs\"\nreason = \"kernels\"\n"
        );
        let cfg = LintConfig::parse(&partial, "lint.toml").unwrap();
        let diags = cfg.validate(&repo_root(), "lint.toml");
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("no matching [[unsafe-allowed]] entry")),
            "{diags:?}"
        );

        // Entries without a reason are rejected.
        let bare = format!("{base}[[unsafe-allowed]]\nfile = \"crates/nn/src/simd.rs\"\n");
        let cfg = LintConfig::parse(&bare, "lint.toml").unwrap();
        let diags = cfg.validate(&repo_root(), "lint.toml");
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("need file and reason")),
            "{diags:?}"
        );
    }

    #[test]
    fn thread_allowed_section_is_optional_but_must_match_the_scope_table() {
        let base = "[reference-engine-frozen]\n\
                    file = \"crates/sim/src/reference.rs\"\n\
                    sha256 = \"abc\"\n";
        // Absent: fine.
        let cfg = LintConfig::parse(base, "lint.toml").unwrap();
        assert!(cfg.thread_allowed.is_empty());

        // Complete and matching: no thread-allowed findings.
        let mut good = base.to_string();
        for f in crate::rules::THREAD_ALLOWED_FILES {
            good.push_str(&format!(
                "[[thread-allowed]]\nfile = \"{f}\"\nreason = \"load driver\"\n"
            ));
        }
        let cfg = LintConfig::parse(&good, "lint.toml").unwrap();
        let diags = cfg.validate(&repo_root(), "lint.toml");
        assert!(
            diags.iter().all(|d| !d.message.contains("thread-allowed")),
            "{diags:?}"
        );

        // An entry outside the scope table disagrees loudly.
        let bad = format!(
            "{good}[[thread-allowed]]\nfile = \"crates/sim/src/engine.rs\"\nreason = \"nope\"\n"
        );
        let cfg = LintConfig::parse(&bad, "lint.toml").unwrap();
        let diags = cfg.validate(&repo_root(), "lint.toml");
        assert!(
            diags.iter().any(|d| d.message.contains("disagrees")),
            "{diags:?}"
        );

        // A partial list misses table files: loud in the other direction.
        let partial = format!(
            "{base}[[thread-allowed]]\nfile = \"crates/bench/src/bin/serve.rs\"\n\
             reason = \"probe client threads\"\n"
        );
        let cfg = LintConfig::parse(&partial, "lint.toml").unwrap();
        let diags = cfg.validate(&repo_root(), "lint.toml");
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("no matching [[thread-allowed]] entry")),
            "{diags:?}"
        );

        // Entries without a reason are rejected.
        let bare = format!("{base}[[thread-allowed]]\nfile = \"crates/bench/src/bin/serve.rs\"\n");
        let cfg = LintConfig::parse(&bare, "lint.toml").unwrap();
        let diags = cfg.validate(&repo_root(), "lint.toml");
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains("need file and reason")),
            "{diags:?}"
        );
    }

    #[test]
    fn unknown_keys_are_errors() {
        let err = LintConfig::parse("[reference-engine-frozen]\nsha512 = \"x\"\n", "lint.toml")
            .unwrap_err();
        assert!(err[0].message.contains("unknown key"));
    }

    #[test]
    fn stale_allow_path_fails_loudly() {
        let text = "[reference-engine-frozen]\n\
                    file = \"crates/sim/src/reference.rs\"\n\
                    sha256 = \"abc\"\n\
                    [[allow]]\n\
                    rule = \"float-eq\"\n\
                    path = \"crates/nn/src/deleted_module.rs\"\n\
                    reason = \"left behind by a refactor\"\n";
        let cfg = LintConfig::parse(text, "lint.toml").unwrap();
        let diags = cfg.validate(&repo_root(), "lint.toml");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("stale allowlist entry"));
        assert!(diags[0].message.contains("deleted_module.rs"));
    }

    #[test]
    fn incomplete_allow_entry_is_an_error() {
        let text = "[reference-engine-frozen]\n\
                    file = \"crates/sim/src/reference.rs\"\n\
                    sha256 = \"abc\"\n\
                    [[allow]]\n\
                    rule = \"float-eq\"\n";
        let cfg = LintConfig::parse(text, "lint.toml").unwrap();
        let diags = cfg.validate(&repo_root(), "lint.toml");
        assert!(diags
            .iter()
            .any(|d| d.message.contains("need rule, path, and reason")));
    }
}
