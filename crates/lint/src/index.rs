//! Workspace symbol/occurrence index: the cross-file analysis layer.
//!
//! Per-file rules see one [`FileCtx`] at a time; the concurrency rules
//! (`lock-order`, `counter-pairing`) need to reason about the whole
//! crate — which struct fields are locks, which functions acquire them,
//! who calls whom while holding what, and where every telemetry counter
//! is incremented. This module builds that picture lexically, on top of
//! the existing token streams, with no type information:
//!
//! 1. **Lock registry** — every struct field whose declared type mentions
//!    `Mutex` / `RwLock` (including through `Arc<…>`) becomes a named
//!    lock `Type::field`.
//! 2. **Function table** — every `fn` with a body, qualified by its
//!    enclosing `impl` type (`Shard::lock`) or bare for free functions,
//!    with the token range of the body.
//! 3. **Occurrences** — inside each body: lock acquisitions
//!    (`x.field.lock()` / `.read()` / `.write()` on a registered field),
//!    method/function calls, `drop(guard)` sites, and
//!    `counter.fetch_add(…)` sites.
//! 4. **Guard regions** — each acquisition gets a lexical *hold region*:
//!    from the acquisition to the **last** `drop(guard)` of its binding
//!    (conservative: branches may drop earlier), or to the end of the
//!    statement for un-bound temporaries, or to the end of the function
//!    when the guard is the tail expression — in which case the function
//!    is marked as *returning* that guard, and its call sites count as
//!    acquisitions themselves (`Shard::lock()` → holds `Shard::inner`).
//! 5. **Call summaries** — a fixpoint propagates the set of locks each
//!    function may acquire through the (name-resolved) call graph, so
//!    `f` holding lock A while calling `g` picks up every lock `g` can
//!    take, transitively.
//!
//! Known limits, by construction (documented in DESIGN.md): resolution
//! is by method *name* (a `self.`-receiver prefers the enclosing impl;
//! other receivers match any function of that name in the indexed
//! crates), guard scopes are lexical rather than control-flow-aware, and
//! nested `fn` items attribute their occurrences to the enclosing
//! function too. All of these over-approximate, which for deadlock
//! detection errs on the loud side; false positives take a
//! `lint:allow(lock-order)` with a reason.

use crate::lexer::Token;
use crate::scanner::FileCtx;
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose files are indexed (the concurrency-rule scope).
pub use crate::rules::LOCK_ORDER_CRATES as INDEXED_CRATES;

/// What a registered lock's acquisition methods are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `std::sync::Mutex`: acquired via `.lock()`.
    Mutex,
    /// `std::sync::RwLock`: acquired via `.read()` / `.write()`.
    RwLock,
}

/// One lock acquisition occurrence inside a function body.
#[derive(Debug, Clone)]
pub struct Acquire {
    /// Canonical lock name, `Type::field`.
    pub lock: String,
    /// 1-based source line of the acquisition.
    pub line: u32,
    /// Token index of the acquiring method name.
    pub tok: usize,
    /// Token index where the guard's lexical hold region ends.
    pub end: usize,
    /// The guard escapes the function as its return value.
    pub tail_guard: bool,
}

/// One call occurrence inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Bare callee name (`send`, `collect`, …).
    pub name: String,
    /// The receiver is literally `self`.
    pub recv_self: bool,
    /// 1-based source line.
    pub line: u32,
    /// Token index of the callee name.
    pub tok: usize,
}

/// One indexed function.
#[derive(Debug)]
pub struct FnInfo {
    /// Qualified name: `Type::name` inside an impl, else the bare name.
    pub qual: String,
    /// Unqualified name, for call resolution.
    pub bare: String,
    /// Enclosing `impl` type, if any.
    pub owner: Option<String>,
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body (indices of `{` and `}` inclusive).
    pub body: (usize, usize),
    /// Direct lock acquisitions, in token order.
    pub acquires: Vec<Acquire>,
    /// Calls, in token order.
    pub calls: Vec<Call>,
    /// Lock whose guard this function returns to its caller, if any.
    pub returns_guard_of: Option<String>,
}

/// A `counter.fetch_add(…)` or counter field declaration occurrence.
#[derive(Debug, Clone)]
pub struct CounterSite {
    /// Counter (field/binding) name.
    pub name: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
}

/// The cross-file index the workspace rules consume.
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    /// Every indexed function, in (file, token) order.
    pub fns: Vec<FnInfo>,
    /// Registered locks: canonical name → kind.
    pub locks: BTreeMap<String, LockKind>,
    /// Field name → canonical lock names sharing it (usually one).
    pub lock_fields: BTreeMap<String, Vec<String>>,
    /// Atomic counter field declarations (`name: AtomicU64`).
    pub counter_decls: Vec<CounterSite>,
    /// `*.fetch_add(…)` sites.
    pub fetch_adds: Vec<CounterSite>,
    /// Per-function set of locks it may acquire, transitively (parallel
    /// to `fns`).
    pub locks_used: Vec<BTreeSet<String>>,
}

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "let", "fn", "in", "as", "move",
    "unsafe", "break", "continue", "where", "impl", "dyn", "ref", "mut", "pub",
];

/// Find the matching `}` for the `{` at `open` (returns `open` when
/// unbalanced — callers treat that as an empty body).
fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (idx, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return idx;
            }
        }
    }
    open
}

/// Build the index over every file of the indexed crates, skipping test
/// code (test paths and `#[cfg(test)]` regions).
pub fn build(ctxs: &[FileCtx]) -> WorkspaceIndex {
    let mut idx = WorkspaceIndex::default();
    let in_scope =
        |ctx: &&FileCtx| INDEXED_CRATES.contains(&ctx.crate_name.as_str()) && !ctx.test_path;

    // Pass 1: lock registry and counter occurrences.
    for ctx in ctxs.iter().filter(in_scope) {
        scan_struct_lock_fields(ctx, &mut idx);
        scan_counters(ctx, &mut idx);
    }

    // Pass 2: function table with direct acquisitions and calls.
    for ctx in ctxs.iter().filter(in_scope) {
        scan_fns(ctx, &mut idx);
    }

    // Pass 3: guard-returning helpers, one extra round so a wrapper of a
    // guard-returning helper is recognised too (the live tree has depth
    // one: `Shard::lock`).
    for _ in 0..2 {
        propagate_returned_guards(&mut idx, ctxs);
    }

    // Pass 4: a call to a guard-returning helper IS an acquisition at the
    // call site (`let g = self.lock();` holds `Shard::inner` until the
    // guard dies) — materialise those as synthetic acquires with their
    // own hold regions.
    add_synthetic_acquires(&mut idx, ctxs);

    // Pass 5: transitive lock-use summaries over the call graph.
    idx.locks_used = locks_used_fixpoint(&idx);
    idx
}

/// Register `Type::field` for every struct field whose type mentions
/// `Mutex`/`RwLock`.
fn scan_struct_lock_fields(ctx: &FileCtx, idx: &mut WorkspaceIndex) {
    let toks = &ctx.tokens;
    let n = toks.len();
    let mut i = 0;
    while i < n {
        if !toks[i].is_ident("struct") || ctx.in_test(toks[i].line) {
            i += 1;
            continue;
        }
        let Some(ty) = toks.get(i + 1).and_then(Token::ident).map(str::to_string) else {
            i += 1;
            continue;
        };
        // Find the field block `{`; a `;` or `(` first means unit/tuple.
        let mut open = None;
        let mut j = i + 2;
        let mut angle = 0i32;
        while j < n {
            if toks[j].is_punct("<") {
                angle += 1;
            } else if toks[j].is_punct(">") {
                angle -= 1;
            } else if angle <= 0 && (toks[j].is_punct(";") || toks[j].is_punct("(")) {
                break;
            } else if angle <= 0 && toks[j].is_punct("{") {
                open = Some(j);
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j.max(i + 1);
            continue;
        };
        let close = match_brace(toks, open);
        // Fields at depth 1: `name : <type tokens> ,` — a type mentioning
        // Mutex/RwLock registers the field.
        let mut k = open + 1;
        while k < close {
            let field = toks[k].ident().map(str::to_string);
            if let (Some(field), true) = (field, toks.get(k + 1).is_some_and(|t| t.is_punct(":"))) {
                // Scan the type tokens to the field-separating comma.
                let mut depth = 0i32;
                let mut m = k + 2;
                let mut kind = None;
                while m < close {
                    let t = &toks[m];
                    if t.is_punct("<") || t.is_punct("(") || t.is_punct("[") {
                        depth += 1;
                    } else if t.is_punct(">") || t.is_punct(")") || t.is_punct("]") {
                        depth -= 1;
                    } else if t.is_punct(">>") {
                        depth -= 2;
                    } else if t.is_punct(",") && depth <= 0 {
                        break;
                    } else if t.is_ident("Mutex") {
                        kind = Some(LockKind::Mutex);
                    } else if t.is_ident("RwLock") && kind.is_none() {
                        kind = Some(LockKind::RwLock);
                    }
                    m += 1;
                }
                if let Some(kind) = kind {
                    let canonical = format!("{ty}::{field}");
                    idx.locks.insert(canonical.clone(), kind);
                    idx.lock_fields.entry(field).or_default().push(canonical);
                }
                k = m + 1;
                continue;
            }
            k += 1;
        }
        i = close + 1;
    }
}

/// Record `name: AtomicU64` field declarations and `name.fetch_add(…)`
/// sites (test code excluded).
fn scan_counters(ctx: &FileCtx, idx: &mut WorkspaceIndex) {
    let toks = &ctx.tokens;
    let n = toks.len();
    for i in 0..n {
        let Some(name) = toks[i].ident() else {
            continue;
        };
        if ctx.in_test(toks[i].line) {
            continue;
        }
        // Declaration: `name : [path::]AtomicU64`.
        if toks.get(i + 1).is_some_and(|t| t.is_punct(":")) {
            let mut j = i + 2;
            while j < n
                && (toks[j].is_punct("::")
                    || toks[j]
                        .ident()
                        .is_some_and(|s| s == "std" || s == "sync" || s == "atomic"))
            {
                j += 1;
            }
            if toks
                .get(j)
                .is_some_and(|t| t.is_ident("AtomicU64") || t.is_ident("AtomicUsize"))
            {
                idx.counter_decls.push(CounterSite {
                    name: name.to_string(),
                    file: ctx.path.clone(),
                    line: toks[i].line,
                });
            }
        }
        // Increment: `name . fetch_add (`.
        if toks.get(i + 1).is_some_and(|t| t.is_punct("."))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("fetch_add"))
            && toks.get(i + 3).is_some_and(|t| t.is_punct("("))
        {
            idx.fetch_adds.push(CounterSite {
                name: name.to_string(),
                file: ctx.path.clone(),
                line: toks[i + 2].line,
            });
        }
    }
}

/// Collect every `fn` with a body, qualified by enclosing `impl` type.
fn scan_fns(ctx: &FileCtx, idx: &mut WorkspaceIndex) {
    let toks = &ctx.tokens;
    let n = toks.len();

    // Impl spans: (type name, body token range).
    let mut impls: Vec<(String, (usize, usize))> = Vec::new();
    let mut i = 0;
    while i < n {
        if !toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // Skip generic parameters directly after `impl`.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct("<")) {
            let mut d = 0i32;
            while j < n {
                if toks[j].is_punct("<") {
                    d += 1;
                } else if toks[j].is_punct(">") {
                    d -= 1;
                    if d == 0 {
                        j += 1;
                        break;
                    }
                } else if toks[j].is_punct(">>") {
                    d -= 2;
                    if d <= 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Path segments up to `for` / `where` / `{`; `impl Trait for Type`
        // attributes methods to `Type`.
        let mut last_path_ident = String::new();
        let mut d = 0i32;
        while j < n {
            let t = &toks[j];
            if t.is_punct("<") {
                d += 1;
            } else if t.is_punct(">") {
                d -= 1;
            } else if t.is_punct(">>") {
                d -= 2;
            } else if d <= 0 {
                if t.is_punct("{") {
                    break;
                }
                if t.is_ident("for") {
                    last_path_ident.clear(); // the real type follows
                } else if t.is_ident("where") {
                    // generic bounds until `{`
                } else if let Some(s) = t.ident() {
                    last_path_ident = s.to_string();
                }
            }
            j += 1;
        }
        if j < n && toks[j].is_punct("{") && !last_path_ident.is_empty() {
            let close = match_brace(toks, j);
            impls.push((last_path_ident, (j, close)));
            // Do not skip past the impl body: `fn` scanning below is a
            // separate pass, and impls do not nest.
        }
        i = j.max(i + 1);
    }

    let owner_of = |tok: usize| -> Option<String> {
        impls
            .iter()
            .filter(|(_, (open, close))| *open < tok && tok < *close)
            .map(|(ty, _)| ty.clone())
            .next_back() // innermost span
    };

    let mut i = 0;
    while i < n {
        if !toks[i].is_ident("fn") || ctx.in_test(toks[i].line) {
            i += 1;
            continue;
        }
        let Some(bare) = toks.get(i + 1).and_then(Token::ident).map(str::to_string) else {
            i += 1;
            continue;
        };
        // Find the body `{` (a `;` at depth 0 first means a declaration,
        // e.g. inside `extern "C" { … }`).
        let mut j = i + 2;
        let mut d = 0i32;
        let mut open = None;
        while j < n {
            let t = &toks[j];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("<") {
                d += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct(">") {
                d -= 1;
            } else if t.is_punct(">>") {
                d -= 2;
            } else if d <= 0 && t.is_punct(";") {
                break;
            } else if d <= 0 && t.is_punct("{") {
                open = Some(j);
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j.max(i + 1);
            continue;
        };
        let close = match_brace(toks, open);
        let owner = owner_of(i);
        let qual = match &owner {
            Some(ty) => format!("{ty}::{bare}"),
            None => bare.clone(),
        };
        let mut info = FnInfo {
            qual,
            bare,
            owner,
            file: ctx.path.clone(),
            line: toks[i].line,
            body: (open, close),
            acquires: Vec::new(),
            calls: Vec::new(),
            returns_guard_of: None,
        };
        scan_body(ctx, idx, &mut info);
        if let Some(tail) = info.acquires.iter().find(|a| a.tail_guard) {
            info.returns_guard_of = Some(tail.lock.clone());
        }
        idx.fns.push(info);
        // Continue scanning *inside* the body too (nested fns), so do not
        // jump past `close`.
        i += 2;
    }
}

/// Scan one function body for acquisitions and calls.
fn scan_body(ctx: &FileCtx, idx: &WorkspaceIndex, info: &mut FnInfo) {
    let toks = &ctx.tokens;
    let (open, close) = info.body;
    let mut acquire_toks = BTreeSet::new();
    let mut k = open + 1;
    while k < close {
        let t = &toks[k];
        let Some(name) = t.ident() else {
            k += 1;
            continue;
        };
        // Acquisition: `<field> . lock ( )` (or `.read()`/`.write()` on a
        // registered RwLock field).
        let is_method = k >= 1 && toks[k - 1].is_punct(".");
        let zero_arg = toks.get(k + 1).is_some_and(|x| x.is_punct("("))
            && toks.get(k + 2).is_some_and(|x| x.is_punct(")"));
        if is_method && zero_arg && matches!(name, "lock" | "read" | "write") && k >= 2 {
            if let Some(field) = toks[k - 2].ident() {
                if let Some(cands) = idx.lock_fields.get(field) {
                    let want = if name == "lock" {
                        LockKind::Mutex
                    } else {
                        LockKind::RwLock
                    };
                    let matching: Vec<&String> = cands
                        .iter()
                        .filter(|c| idx.locks.get(*c) == Some(&want))
                        .collect();
                    if let Some(lock) = matching.first() {
                        let (end, tail_guard) = guard_region(toks, open, close, k);
                        info.acquires.push(Acquire {
                            lock: (*lock).clone(),
                            line: t.line,
                            tok: k,
                            end,
                            tail_guard,
                        });
                        acquire_toks.insert(k);
                        k += 1;
                        continue;
                    }
                }
            }
        }
        // Call: `name (` — a macro is `name ! (`, so requiring `(` right
        // after the name already excludes it.
        if toks.get(k + 1).is_some_and(|x| x.is_punct("("))
            && !KEYWORDS.contains(&name)
            && name != "drop"
            && !acquire_toks.contains(&k)
        {
            let recv_self = is_method && k >= 2 && toks[k - 2].is_ident("self");
            info.calls.push(Call {
                name: name.to_string(),
                recv_self,
                line: t.line,
                tok: k,
            });
        }
        k += 1;
    }
}

/// Lexical hold region of the guard produced by the acquisition at token
/// `at`: `(end_token, guard_is_tail_expression)`.
fn guard_region(toks: &[Token], open: usize, close: usize, at: usize) -> (usize, bool) {
    // Statement start: the token after the previous `;`/`{`/`}`.
    let mut s = at;
    while s > open {
        if toks[s - 1].is_punct(";") || toks[s - 1].is_punct("{") || toks[s - 1].is_punct("}") {
            break;
        }
        s -= 1;
    }
    // Binding: `let [mut] <ident> = …`.
    let mut guard_var = None;
    if toks.get(s).is_some_and(|t| t.is_ident("let")) {
        let mut v = s + 1;
        if toks.get(v).is_some_and(|t| t.is_ident("mut")) {
            v += 1;
        }
        match toks.get(v).and_then(Token::ident) {
            Some(id) => guard_var = Some(id.to_string()),
            // Pattern binding (`let (g, _) = …`): conservatively hold to
            // the end of the function.
            None => return (close, false),
        }
    }
    match guard_var {
        Some(v) => {
            // A later `let [mut] v = …` re-binding kills this guard, so
            // the region never extends past it (otherwise a loop that
            // re-locks under the same name would look like a
            // self-deadlock).
            let mut limit = close;
            let mut k = at + 1;
            while k + 2 < close {
                if toks[k].is_ident("let") {
                    let mut m = k + 1;
                    if toks.get(m).is_some_and(|t| t.is_ident("mut")) {
                        m += 1;
                    }
                    if toks.get(m).is_some_and(|t| t.is_ident(&v))
                        && toks.get(m + 1).is_some_and(|t| t.is_punct("="))
                    {
                        limit = k;
                        break;
                    }
                }
                k += 1;
            }
            // Last `drop ( v )` before the limit, else held to the limit
            // (conservative: branches may drop earlier).
            let mut end = limit;
            let mut k = at;
            while k + 3 < limit {
                if toks[k].is_ident("drop")
                    && toks[k + 1].is_punct("(")
                    && toks[k + 2].is_ident(&v)
                    && toks[k + 3].is_punct(")")
                {
                    end = k;
                }
                k += 1;
            }
            (end, false)
        }
        None => {
            // An explicit `return <acquire>…` hands the guard to the
            // caller regardless of the trailing `;`.
            if toks.get(s).is_some_and(|t| t.is_ident("return")) {
                return (close, true);
            }
            // Temporary: held to the end of the statement; a statement
            // that never terminates before the body's `}` is the tail
            // expression — the guard escapes to the caller.
            let mut d = 0i32;
            let mut k = at + 1;
            while k < close {
                let t = &toks[k];
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                    d += 1;
                } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                    d -= 1;
                } else if t.is_punct(";") && d <= 0 {
                    return (k, false);
                }
                k += 1;
            }
            (close, true)
        }
    }
}

/// Mark wrappers of guard-returning helpers as guard-returning too: a
/// call to such a helper in tail position re-exports the guard.
fn propagate_returned_guards(idx: &mut WorkspaceIndex, ctxs: &[FileCtx]) {
    let returners: BTreeMap<String, String> = idx
        .fns
        .iter()
        .filter_map(|f| f.returns_guard_of.clone().map(|l| (f.bare.clone(), l)))
        .collect();
    let toks_of: BTreeMap<&str, &FileCtx> = ctxs.iter().map(|c| (c.path.as_str(), c)).collect();
    for f in &mut idx.fns {
        if f.returns_guard_of.is_some() {
            continue;
        }
        let Some(ctx) = toks_of.get(f.file.as_str()) else {
            continue;
        };
        for c in &f.calls {
            let Some(lock) = returners.get(&c.name) else {
                continue;
            };
            let (_, tail) = guard_region(&ctx.tokens, f.body.0, f.body.1, c.tok);
            if tail {
                f.returns_guard_of = Some(lock.clone());
                break;
            }
        }
    }
}

/// Materialise calls to guard-returning helpers as acquisitions at the
/// call site, with the hold region computed from the call's binding.
fn add_synthetic_acquires(idx: &mut WorkspaceIndex, ctxs: &[FileCtx]) {
    let returners: BTreeMap<String, String> = idx
        .fns
        .iter()
        .filter_map(|f| f.returns_guard_of.clone().map(|l| (f.bare.clone(), l)))
        .collect();
    if returners.is_empty() {
        return;
    }
    let toks_of: BTreeMap<&str, &FileCtx> = ctxs.iter().map(|c| (c.path.as_str(), c)).collect();
    for f in &mut idx.fns {
        let Some(ctx) = toks_of.get(f.file.as_str()) else {
            continue;
        };
        let mut synth = Vec::new();
        for c in &f.calls {
            let Some(lock) = returners.get(&c.name) else {
                continue;
            };
            let (end, tail_guard) = guard_region(&ctx.tokens, f.body.0, f.body.1, c.tok);
            synth.push(Acquire {
                lock: lock.clone(),
                line: c.line,
                tok: c.tok,
                end,
                tail_guard,
            });
        }
        if !synth.is_empty() {
            f.acquires.extend(synth);
            f.acquires.sort_by_key(|a| a.tok);
        }
    }
}

/// Fixpoint of "locks this function may acquire, transitively".
fn locks_used_fixpoint(idx: &WorkspaceIndex) -> Vec<BTreeSet<String>> {
    let mut used: Vec<BTreeSet<String>> = idx
        .fns
        .iter()
        .map(|f| {
            let mut s: BTreeSet<String> = f.acquires.iter().map(|a| a.lock.clone()).collect();
            if let Some(l) = &f.returns_guard_of {
                s.insert(l.clone());
            }
            s
        })
        .collect();
    for _ in 0..idx.fns.len().max(1) {
        let mut changed = false;
        for i in 0..idx.fns.len() {
            let mut add = BTreeSet::new();
            for c in &idx.fns[i].calls {
                for j in resolve_call(idx, i, c) {
                    for l in &used[j] {
                        if !used[i].contains(l) {
                            add.insert(l.clone());
                        }
                    }
                }
            }
            if !add.is_empty() {
                used[i].extend(add);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    used
}

/// Resolve a call site to candidate function indices: a `self.` receiver
/// prefers the enclosing impl's method, otherwise every indexed function
/// with the bare name matches.
pub fn resolve_call(idx: &WorkspaceIndex, caller: usize, call: &Call) -> Vec<usize> {
    if call.recv_self {
        if let Some(ty) = &idx.fns[caller].owner {
            let qual = format!("{ty}::{}", call.name);
            let exact: Vec<usize> = idx
                .fns
                .iter()
                .enumerate()
                .filter(|(_, f)| f.qual == qual)
                .map(|(i, _)| i)
                .collect();
            if !exact.is_empty() {
                return exact;
            }
        }
    }
    idx.fns
        .iter()
        .enumerate()
        .filter(|(i, f)| f.bare == call.name && *i != caller)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(path: &str, src: &str) -> FileCtx {
        FileCtx::new(path, src)
    }

    #[test]
    fn lock_fields_are_registered_through_arc() {
        let c = ctx(
            "crates/serve/src/x.rs",
            "use std::sync::{Arc, Mutex, RwLock};\n\
             struct S { inner: Arc<Mutex<u32>>, map: RwLock<Vec<u8>>, plain: u32 }\n",
        );
        let idx = build(std::slice::from_ref(&c));
        assert_eq!(idx.locks.get("S::inner"), Some(&LockKind::Mutex));
        assert_eq!(idx.locks.get("S::map"), Some(&LockKind::RwLock));
        assert!(!idx.locks.contains_key("S::plain"));
    }

    #[test]
    fn acquisition_site_and_drop_bounded_region() {
        let c = ctx(
            "crates/serve/src/x.rs",
            "use std::sync::Mutex;\n\
             struct S { m: Mutex<u32> }\n\
             fn f(s: &S) {\n\
                 let g = s.m.lock().unwrap();\n\
                 drop(g);\n\
                 side_effect();\n\
             }\n",
        );
        let idx = build(std::slice::from_ref(&c));
        let f = idx.fns.iter().find(|f| f.bare == "f").expect("indexed");
        assert_eq!(f.acquires.len(), 1);
        let a = &f.acquires[0];
        assert_eq!(a.lock, "S::m");
        assert_eq!(a.line, 4);
        // The region ends at the drop: the later call is not under it.
        let call = f.calls.iter().find(|c| c.name == "side_effect").unwrap();
        assert!(a.end < call.tok, "drop(g) should end the hold region");
    }

    #[test]
    fn tail_guard_marks_fn_as_guard_returning_and_propagates() {
        let c = ctx(
            "crates/serve/src/x.rs",
            "use std::sync::{Mutex, MutexGuard};\n\
             struct S { m: Mutex<u32> }\n\
             impl S {\n\
                 fn lock(&self) -> MutexGuard<'_, u32> {\n\
                     self.m.lock().unwrap()\n\
                 }\n\
                 fn wrapper(&self) -> MutexGuard<'_, u32> {\n\
                     self.lock()\n\
                 }\n\
             }\n",
        );
        let idx = build(std::slice::from_ref(&c));
        let lockfn = idx.fns.iter().find(|f| f.qual == "S::lock").unwrap();
        assert_eq!(lockfn.returns_guard_of.as_deref(), Some("S::m"));
        let wrapper = idx.fns.iter().find(|f| f.qual == "S::wrapper").unwrap();
        assert_eq!(wrapper.returns_guard_of.as_deref(), Some("S::m"));
    }

    #[test]
    fn counters_and_fetch_adds_are_collected_outside_tests() {
        let c = ctx(
            "crates/serve/src/t.rs",
            "use std::sync::atomic::{AtomicU64, Ordering};\n\
             pub struct T { pub conns_opened: AtomicU64, pub conns_closed: AtomicU64 }\n\
             impl T { pub fn open(&self) { self.conns_opened.fetch_add(1, Ordering::Relaxed); } }\n\
             #[cfg(test)]\n\
             mod tests { fn t(x: &super::T) { x.conns_closed.fetch_add(1, std::sync::atomic::Ordering::Relaxed); } }\n",
        );
        let idx = build(std::slice::from_ref(&c));
        let decls: Vec<&str> = idx.counter_decls.iter().map(|d| d.name.as_str()).collect();
        assert!(decls.contains(&"conns_opened") && decls.contains(&"conns_closed"));
        let adds: Vec<&str> = idx.fetch_adds.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(adds, vec!["conns_opened"], "test-region add excluded");
    }

    #[test]
    fn out_of_scope_crates_are_not_indexed() {
        let c = ctx(
            "crates/sim/src/x.rs",
            "use std::sync::Mutex;\nstruct S { m: Mutex<u32> }\nfn f(s: &S) { let _g = s.m.lock(); }\n",
        );
        let idx = build(std::slice::from_ref(&c));
        assert!(idx.fns.is_empty());
        assert!(idx.locks.is_empty());
    }
}
