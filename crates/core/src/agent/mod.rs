//! RL agents: the MLP/DQN controller and the tabular Q-learning variant.

pub mod dqn;
pub mod tabular;

pub use dqn::{Datapath, DqnAgent};
pub use tabular::TabularAgent;
