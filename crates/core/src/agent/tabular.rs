//! Tabular Q-learning ensemble agent (paper §IV-F, Fig 5).
//!
//! States are hashed (4- or 8-bit per element, Eq. 12) and *tokenized*:
//! because the hashed state space is sparse, unique state vectors map to
//! dense row indices of the Q-table, compressing `2^{BS}·A` theoretical
//! entries down to `A · #unique-states` (Table IV). Rewards arrive lazily
//! through a small pending buffer (no replay memory needed: each
//! transition performs exactly one Q update once its reward and next
//! state are known, Eq. 13).

use crate::config::ResembleConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use resemble_trace::util::FxHashMap;
use std::collections::VecDeque;

/// A pending transition awaiting reward and/or next state.
#[derive(Debug, Clone)]
struct Pending {
    id: u64,
    token: u32,
    action: usize,
    prefetch_blocks: Vec<u64>,
    hits: u32,
    reward: Option<f32>,
    next_token: Option<u32>,
    applied: bool,
}

/// Tabular Q-learning agent with state tokenization.
pub struct TabularAgent {
    cfg: ResembleConfig,
    /// hash bits per state element (4 or 8 in the paper)
    hash_bits: u32,
    /// state-vector key → token
    tokens: FxHashMap<u64, u32>,
    /// Q-table: token → per-action values
    q: Vec<Vec<f32>>,
    pending: VecDeque<Pending>,
    by_block: FxHashMap<u64, Vec<u64>>,
    next_id: u64,
    rng: StdRng,
    step: u64,
    /// Q updates performed
    pub updates: u64,
}

impl TabularAgent {
    /// Build a tabular agent; `hash_bits` is B in Table IV (4 or 8).
    pub fn new(cfg: ResembleConfig, hash_bits: u32, seed: u64) -> Self {
        assert!(hash_bits > 0 && hash_bits <= 16);
        Self {
            cfg,
            hash_bits,
            tokens: FxHashMap::default(),
            q: Vec::new(),
            pending: VecDeque::new(),
            by_block: FxHashMap::default(),
            next_id: 0,
            rng: StdRng::seed_from_u64(seed),
            step: 0,
            updates: 0,
        }
    }

    /// Hash bits per state element.
    pub fn hash_bits(&self) -> u32 {
        self.hash_bits
    }

    /// Number of unique states tokenized so far (Table IV "token" rows).
    pub fn unique_states(&self) -> usize {
        self.tokens.len()
    }

    /// Q-table entries currently allocated (`A × unique states`).
    pub fn table_entries(&self) -> usize {
        self.q.len() * self.cfg.action_dim
    }

    /// Current ε.
    pub fn epsilon(&self) -> f64 {
        self.cfg.epsilon(self.step)
    }

    /// Map a hashed state vector to its dense token, allocating on first
    /// sight (the Fig 5 "Mapping" stage).
    pub fn tokenize(&mut self, state: &[u16]) -> u32 {
        let mut key = 0xcbf2_9ce4_8422_2325u64;
        for &e in state {
            key = (key ^ e as u64).wrapping_mul(0x1000_0000_01b3);
        }
        match self.tokens.get(&key) {
            Some(&t) => t,
            None => {
                let t = self.q.len() as u32;
                self.tokens.insert(key, t);
                self.q.push(vec![0.0; self.cfg.action_dim]);
                t
            }
        }
    }

    /// ε-greedy action for a token; ties (notably the all-zero rows of
    /// freshly tokenized states) are broken uniformly at random.
    pub fn select_action(&mut self, token: u32) -> usize {
        let eps = self.cfg.epsilon(self.step);
        self.step += 1;
        if self.rng.gen_bool(eps) {
            self.rng.gen_range(0..self.cfg.action_dim)
        } else {
            let row = &self.q[token as usize];
            let best = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let ties = row.iter().filter(|&&v| v == best).count();
            let mut pick = self.rng.gen_range(0..ties);
            row.iter()
                .position(|&v| {
                    if v == best {
                        if pick == 0 {
                            return true;
                        }
                        pick -= 1;
                    }
                    false
                })
                .expect("at least one maximum")
        }
    }

    /// Greedy action for a token (deterministic, ties to the lowest index).
    pub fn greedy_action(&self, token: u32) -> usize {
        let row = &self.q[token as usize];
        let mut best = 0;
        for i in 1..row.len() {
            if row[i] > row[best] {
                best = i;
            }
        }
        best
    }

    /// Q-value row for a token (for inspection/tests).
    pub fn q_row(&self, token: u32) -> &[f32] {
        &self.q[token as usize]
    }

    /// Record a taken transition; empty `prefetch_blocks` = NP (reward 0).
    /// Like the replay memory, the reward is the number of issued blocks
    /// demanded within the window (or −1 when none is).
    pub fn record(&mut self, token: u32, action: usize, prefetch_blocks: &[u64]) {
        let id = self.next_id;
        self.next_id += 1;
        let reward = if prefetch_blocks.is_empty() {
            Some(0.0)
        } else {
            None
        };
        self.pending.push_back(Pending {
            id,
            token,
            action,
            prefetch_blocks: prefetch_blocks.to_vec(),
            hits: 0,
            reward,
            next_token: None,
            applied: false,
        });
        for &b in prefetch_blocks {
            self.by_block.entry(b).or_default().push(id);
        }
        // Bound the buffer: entries older than the reward window that were
        // already applied can go.
        while self.pending.len() > 2 * self.cfg.window {
            if let Some(front) = self.pending.front() {
                if front.applied {
                    self.pending.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    /// Fill in the next-state token for the most recent transition.
    pub fn set_next_token(&mut self, next_token: u32) {
        // The most recent pending entry without a next token is the one
        // recorded at t-1.
        if let Some(p) = self
            .pending
            .iter_mut()
            .rev()
            .find(|p| p.next_token.is_none())
        {
            p.next_token = Some(next_token);
        }
        self.flush_ready();
    }

    /// Process a demand access: credits hits to pending prefetches of
    /// `block`, finalizes entries older than the window (+hits or −1) —
    /// the lazy-sampling analogue.
    pub fn on_access(&mut self, block: u64, assigned: &mut Vec<f32>) {
        assigned.clear();
        if let Some(ids) = self.by_block.remove(&block) {
            for id in ids {
                if let Some(p) = self.pending.iter_mut().find(|p| p.id == id) {
                    if p.reward.is_none() {
                        p.hits += 1;
                        assigned.push(1.0);
                        if p.hits as usize >= p.prefetch_blocks.len() {
                            p.reward = Some(p.hits as f32);
                        }
                    }
                }
            }
        }
        let horizon = self.next_id.saturating_sub(self.cfg.window as u64);
        let mut stale: Vec<(u64, Vec<u64>)> = Vec::new();
        for p in self.pending.iter_mut() {
            if p.id >= horizon {
                break;
            }
            if p.reward.is_none() {
                let r = if p.hits > 0 { p.hits as f32 } else { -1.0 };
                p.reward = Some(r);
                if p.hits == 0 {
                    assigned.push(-1.0);
                }
                stale.push((p.id, p.prefetch_blocks.clone()));
            }
        }
        for (id, blocks) in stale {
            for b in blocks {
                if let Some(ids) = self.by_block.get_mut(&b) {
                    ids.retain(|&x| x != id);
                    if ids.is_empty() {
                        self.by_block.remove(&b);
                    }
                }
            }
        }
        self.flush_ready();
    }

    /// Apply Eq. 13 to every pending transition whose reward and next
    /// token are both known.
    fn flush_ready(&mut self) {
        let alpha = self.cfg.learning_rate;
        let gamma = self.cfg.gamma;
        for i in 0..self.pending.len() {
            let (token, action, reward, next_token) = {
                let p = &self.pending[i];
                if p.applied {
                    continue;
                }
                match (p.reward, p.next_token) {
                    (Some(r), Some(n)) => (p.token, p.action, r, n),
                    _ => continue,
                }
            };
            let max_next = self.q[next_token as usize]
                .iter()
                .copied()
                .fold(f32::NEG_INFINITY, f32::max);
            let qsa = self.q[token as usize][action];
            self.q[token as usize][action] = qsa + alpha * (reward + gamma * max_next - qsa);
            self.pending[i].applied = true;
            self.updates += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ResembleConfig {
        ResembleConfig {
            state_dim: 2,
            action_dim: 3,
            window: 8,
            eps_start: 0.5,
            eps_end: 0.0,
            eps_decay: 20.0,
            learning_rate: 0.3,
            ..ResembleConfig::default()
        }
    }

    #[test]
    fn tokenization_is_stable_and_dense() {
        let mut a = TabularAgent::new(cfg(), 8, 1);
        let t1 = a.tokenize(&[3, 200]);
        let t2 = a.tokenize(&[5, 7]);
        let t1b = a.tokenize(&[3, 200]);
        assert_eq!(t1, t1b);
        assert_ne!(t1, t2);
        assert_eq!(a.unique_states(), 2);
        assert_eq!(a.table_entries(), 6);
    }

    #[test]
    fn q_update_applies_eq13() {
        let mut a = TabularAgent::new(cfg(), 8, 1);
        let s = a.tokenize(&[1, 1]);
        let s2 = a.tokenize(&[2, 2]);
        a.record(s, 0, &[0x9]);
        a.set_next_token(s2);
        let mut rewards = Vec::new();
        a.on_access(0x9, &mut rewards); // hit: r = +1
        assert_eq!(rewards, vec![1.0]);
        // Q(s,0) = 0 + 0.3 * (1 + 0.9*0 - 0) = 0.3
        assert!((a.q_row(s)[0] - 0.3).abs() < 1e-6);
        assert_eq!(a.updates, 1);
    }

    #[test]
    fn expiry_gives_negative_reward() {
        let mut a = TabularAgent::new(cfg(), 8, 1);
        let s = a.tokenize(&[1, 1]);
        a.record(s, 1, &[0x42]);
        a.set_next_token(s);
        let mut rewards = Vec::new();
        // Push the horizon past the window with NP records.
        for _ in 0..10 {
            a.record(s, 2, &[]);
            a.set_next_token(s);
            a.on_access(0x1, &mut rewards);
        }
        assert!(a.q_row(s)[1] < 0.0, "q={:?}", a.q_row(s));
    }

    #[test]
    fn np_action_rewards_zero() {
        let mut a = TabularAgent::new(cfg(), 8, 1);
        let s = a.tokenize(&[1, 1]);
        a.record(s, 2, &[]);
        a.set_next_token(s);
        // r=0, maxQ(s')=0 → Q stays 0.
        assert_eq!(a.q_row(s)[2], 0.0);
        assert_eq!(a.updates, 1);
    }

    #[test]
    fn learns_dominant_action_greedily() {
        let mut a = TabularAgent::new(cfg(), 8, 3);
        let s = a.tokenize(&[7, 7]);
        let mut rewards = Vec::new();
        for _ in 0..200 {
            let act = a.select_action(s);
            let blocks: &[u64] = match act {
                0 => &[0xA], // will hit
                1 => &[0xB], // will expire
                _ => &[],
            };
            a.record(s, act, blocks);
            a.set_next_token(s);
            a.on_access(0xA, &mut rewards);
        }
        assert_eq!(a.greedy_action(s), 0, "q={:?}", a.q_row(s));
    }

    #[test]
    fn pending_buffer_stays_bounded() {
        let mut a = TabularAgent::new(cfg(), 8, 1);
        let s = a.tokenize(&[1, 2]);
        let mut r = Vec::new();
        for i in 0..1000u64 {
            a.record(s, 0, &[0x1000 + i]);
            a.set_next_token(s);
            a.on_access(0x1, &mut r);
        }
        assert!(
            a.pending.len() <= 2 * cfg().window + 4,
            "len={}",
            a.pending.len()
        );
    }

    #[test]
    fn four_bit_hash_yields_fewer_unique_states() {
        // Same stream of states hashed at 4 vs 8 bits: 4-bit must coarsen.
        use crate::preprocess::fold_hash;
        let mut a4 = TabularAgent::new(cfg(), 4, 1);
        let mut a8 = TabularAgent::new(cfg(), 8, 1);
        for i in 0..500u64 {
            let raw = [i * 77, i * 131 + 5];
            let s4: Vec<u16> = raw.iter().map(|&v| fold_hash(v, 4) as u16).collect();
            let s8: Vec<u16> = raw.iter().map(|&v| fold_hash(v, 8) as u16).collect();
            a4.tokenize(&s4);
            a8.tokenize(&s8);
        }
        assert!(a4.unique_states() < a8.unique_states());
        assert!(a4.unique_states() <= 256); // 2^(4*2)
    }
}
