//! MLP-based DQN ensemble agent (paper §IV-C/E, Algorithm 1).
//!
//! Two shallow MLPs approximate the Q-function: the *policy net* trains
//! online every `I_p` steps on lazily-sampled valid transitions; the
//! *target net* serves inference and the bootstrap targets (Eq. 10). Every
//! `I_t` steps the two networks *switch roles* and synchronize — the
//! paper's trick for avoiding weight-copy stalls in hardware.

use crate::config::ResembleConfig;
use crate::replay::ReplayMemory;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use resemble_nn::{Activation, GradBuffer, Mlp, Scratch, Sgd};

/// DQN agent with decaying ε-greedy action selection.
pub struct DqnAgent {
    cfg: ResembleConfig,
    policy: Mlp,
    target: Mlp,
    scratch_p: Scratch,
    scratch_t: Scratch,
    grads: GradBuffer,
    opt: Sgd,
    rng: StdRng,
    step: u64,
    /// training statistics
    pub train_steps: u64,
    /// role switches performed
    pub role_switches: u64,
    /// when set, `train_tick` is a no-op (frozen inference, used by the
    /// quantization study)
    pub frozen: bool,
}

impl DqnAgent {
    /// Build an agent for the given configuration.
    pub fn new(cfg: ResembleConfig, seed: u64) -> Self {
        let sizes = [cfg.input_dim(), cfg.hidden_dim, cfg.action_dim];
        let policy = Mlp::new(&sizes, Activation::Relu, seed);
        let target = policy.clone();
        let scratch_p = policy.make_scratch();
        let scratch_t = target.make_scratch();
        let grads = policy.make_grad_buffer();
        Self {
            opt: Sgd::new(cfg.learning_rate),
            cfg,
            policy,
            target,
            scratch_p,
            scratch_t,
            grads,
            rng: StdRng::seed_from_u64(seed ^ 0x5EED),
            step: 0,
            train_steps: 0,
            role_switches: 0,
            frozen: false,
        }
    }

    /// Quantize both networks to `bits`-bit fixed point (hardware study,
    /// paper §VIII); returns the RMS parameter error of the inference net.
    pub fn quantize(&mut self, bits: u32) -> f32 {
        let (_, rms) = resemble_nn::quantize_mlp(&mut self.target, bits);
        resemble_nn::quantize_mlp(&mut self.policy, bits);
        rms
    }

    /// Current ε under the decay schedule.
    pub fn epsilon(&self) -> f64 {
        self.cfg.epsilon(self.step)
    }

    /// Total parameters across both networks.
    pub fn param_count(&self) -> usize {
        self.policy.param_count() + self.target.param_count()
    }

    /// Q-values of the inference (target) network for a state.
    pub fn q_values(&mut self, state: &[f32]) -> &[f32] {
        self.target.forward(state, &mut self.scratch_t)
    }

    /// ε-greedy action selection on the inference network (Eq. 8 /
    /// Algorithm 1 lines 10–14). Advances the exploration step counter.
    pub fn select_action(&mut self, state: &[f32]) -> usize {
        let eps = self.cfg.epsilon(self.step);
        self.step += 1;
        if self.rng.gen_bool(eps) {
            self.rng.gen_range(0..self.cfg.action_dim)
        } else {
            self.target.argmax(state, &mut self.scratch_t)
        }
    }

    /// Greedy action (no exploration), for evaluation probes.
    pub fn greedy_action(&mut self, state: &[f32]) -> usize {
        self.target.argmax(state, &mut self.scratch_t)
    }

    /// One online-training tick (Algorithm 1 lines 31–39): every `I_p`
    /// steps sample a batch of valid transitions and take one SGD step on
    /// the policy net; every `I_t` steps switch the networks' roles.
    pub fn train_tick(&mut self, replay: &mut ReplayMemory) {
        if self.frozen {
            return;
        }
        if self.step.is_multiple_of(self.cfg.policy_update_interval) {
            self.train_once(replay);
        }
        if self.step > 0 && self.step.is_multiple_of(self.cfg.target_update_interval) {
            self.role_switch();
        }
    }

    /// Sample and apply one batch update (Eq. 9–11).
    fn train_once(&mut self, replay: &mut ReplayMemory) {
        let ids = replay.sample_ids(self.cfg.batch_size, &mut self.rng);
        if ids.is_empty() {
            return;
        }
        let gamma = self.cfg.gamma;
        let a_dim = self.cfg.action_dim;
        let mut out_grad = vec![0.0f32; a_dim];
        for id in ids {
            let Some(t) = replay.get(id) else { continue };
            let (reward, next) = match (t.reward, t.next_state.as_ref()) {
                (Some(r), Some(n)) => (r, n),
                _ => continue,
            };
            // y_j = r_j + γ max_a' MLP_t(s_{j+1}, a')
            let q_next = self.target.forward(next, &mut self.scratch_t);
            let max_next = q_next.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let y = reward + gamma * max_next;
            // Gradient of 0.5 (Q(s,a) - y)^2 wrt the selected action only.
            let q = self.policy.forward(&t.state, &mut self.scratch_p);
            out_grad.fill(0.0);
            out_grad[t.action] = q[t.action] - y;
            let action = t.action;
            let _ = action;
            self.policy
                .backward(&mut self.scratch_p, &out_grad, &mut self.grads);
        }
        self.policy.apply_grads(&mut self.grads, &mut self.opt);
        self.train_steps += 1;
    }

    /// Swap the roles of policy and target net, then synchronize (the
    /// paper's stall-free alternative to copying weights into the
    /// inference net).
    fn role_switch(&mut self) {
        std::mem::swap(&mut self.policy, &mut self.target);
        std::mem::swap(&mut self.scratch_p, &mut self.scratch_t);
        // Synchronize: the new policy resumes from the freshly-trained
        // weights now serving inference.
        self.policy.copy_params_from(&self.target);
        self.grads.clear();
        self.role_switches += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg2() -> ResembleConfig {
        // 2 prefetchers, 3 actions, tiny nets for fast tests.
        ResembleConfig {
            state_dim: 2,
            action_dim: 3,
            hidden_dim: 16,
            batch_size: 16,
            eps_start: 0.9,
            eps_end: 0.0,
            eps_decay: 30.0,
            learning_rate: 0.05,
            ..ResembleConfig::default()
        }
    }

    /// Synthetic environment: action 0 always pays +1, action 1 always −1,
    /// action 2 (NP) pays 0; state is noise. The agent must learn to pick
    /// action 0.
    #[test]
    fn learns_dominant_action() {
        let cfg = cfg2();
        let mut agent = DqnAgent::new(cfg, 7);
        let mut replay = ReplayMemory::new(cfg.replay_capacity, cfg.window);
        let mut rng = StdRng::seed_from_u64(3);
        let mut prev: Option<u64> = None;
        for _ in 0..1500 {
            let s = vec![rng.gen::<f32>(), rng.gen::<f32>()];
            if let Some(p) = prev {
                replay.set_next_state(p, &s);
            }
            let a = agent.select_action(&s);
            let r = match a {
                0 => 1.0,
                1 => -1.0,
                _ => 0.0,
            };
            // Deliver the reward synchronously via direct assignment: push
            // as NP (reward 0) is wrong, so push with a fake block and hit
            // or expire it — simpler: emulate by pushing prefetch and
            // immediately accessing/hitting for +1 or letting it expire.
            let id = if r == 0.0 {
                replay.push(s.clone(), a, &[])
            } else {
                let block = if r > 0.0 { 0xAAA } else { 0xBBB };
                replay.push(s.clone(), a, &[block])
            };
            // +1 rewards hit next access; −1 rewards expire via window.
            let mut assigned = Vec::new();
            replay.on_access(0xAAA, &mut assigned);
            prev = Some(id);
            agent.train_tick(&mut replay);
        }
        // Greedy policy should now prefer action 0.
        let mut wins = 0;
        for _ in 0..50 {
            let s = vec![rng.gen::<f32>(), rng.gen::<f32>()];
            if agent.greedy_action(&s) == 0 {
                wins += 1;
            }
        }
        assert!(wins >= 40, "wins={wins}/50");
        assert!(agent.train_steps > 0);
    }

    #[test]
    fn epsilon_decays_with_steps() {
        let mut agent = DqnAgent::new(cfg2(), 1);
        let e0 = agent.epsilon();
        for _ in 0..200 {
            let _ = agent.select_action(&[0.0, 0.0]);
        }
        assert!(agent.epsilon() < e0 / 2.0);
    }

    #[test]
    fn role_switch_happens_every_it_steps() {
        let cfg = cfg2();
        let mut agent = DqnAgent::new(cfg, 2);
        let mut replay = ReplayMemory::new(64, 8);
        for _ in 0..100 {
            let _ = agent.select_action(&[0.1, 0.2]);
            agent.train_tick(&mut replay);
        }
        assert_eq!(agent.role_switches, 100 / cfg.target_update_interval);
    }

    #[test]
    fn networks_agree_after_switch() {
        let cfg = cfg2();
        let mut agent = DqnAgent::new(cfg, 5);
        agent.role_switch();
        let s = [0.3f32, 0.7];
        let qp = agent.policy.predict(&s);
        let qt = agent.target.predict(&s);
        assert_eq!(qp, qt);
    }

    #[test]
    fn param_count_matches_table_iv_for_paper_dims() {
        let agent = DqnAgent::new(ResembleConfig::default(), 0);
        // Two nets of 1005 parameters each (Table IV / Table VIII).
        assert_eq!(agent.param_count(), 2 * 1005);
    }

    #[test]
    fn frozen_agent_does_not_train() {
        let cfg = cfg2();
        let mut agent = DqnAgent::new(cfg, 3);
        agent.frozen = true;
        let mut replay = ReplayMemory::new(64, 8);
        let id = replay.push(vec![0.0, 0.0], 2, &[]);
        replay.set_next_state(id, &[0.1, 0.1]);
        for _ in 0..50 {
            let _ = agent.select_action(&[0.0, 0.0]);
            agent.train_tick(&mut replay);
        }
        assert_eq!(agent.train_steps, 0);
        assert_eq!(agent.role_switches, 0);
    }

    #[test]
    fn quantize_preserves_behaviour_at_16_bits() {
        let mut agent = DqnAgent::new(cfg2(), 5);
        let s = [0.3f32, 0.8];
        let before = agent.greedy_action(&s);
        let rms = agent.quantize(16);
        assert!(rms < 1e-4);
        assert_eq!(agent.greedy_action(&s), before);
    }

    #[test]
    fn train_tick_with_empty_replay_is_safe() {
        let cfg = cfg2();
        let mut agent = DqnAgent::new(cfg, 9);
        let mut replay = ReplayMemory::new(16, 4);
        for _ in 0..50 {
            let _ = agent.select_action(&[0.0, 0.0]);
            agent.train_tick(&mut replay);
        }
    }
}
