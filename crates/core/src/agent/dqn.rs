//! MLP-based DQN ensemble agent (paper §IV-C/E, Algorithm 1).
//!
//! Two shallow MLPs approximate the Q-function: the *policy net* trains
//! online every `I_p` steps on lazily-sampled valid transitions; the
//! *target net* serves inference and the bootstrap targets (Eq. 10). Every
//! `I_t` steps the two networks *switch roles* and synchronize — the
//! paper's trick for avoiding weight-copy stalls in hardware.
//!
//! Training runs through one of two [`Datapath`]s: the default **batched**
//! path gathers the sampled minibatch into flat matrices and takes one
//! GEMM forward per network plus one GEMM backward per SGD step, while the
//! **per-sample** reference path loops scalar forward/backward passes like
//! the original implementation. The batch kernels preserve per-element
//! accumulation order, so both datapaths produce bit-identical networks —
//! a property the perf gate checks end-to-end by comparing simulator
//! statistics across datapaths.

use crate::config::ResembleConfig;
use crate::replay::ReplayMemory;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use resemble_nn::checkpoint::{load_mlp_binary, save_mlp_binary};
use resemble_nn::{Activation, BatchScratch, GradBuffer, Matrix, Mlp, Scratch, Sgd};
use std::io::{self, Read, Write};

/// Magic bytes opening a DQN agent checkpoint.
pub const DQN_MAGIC: [u8; 8] = *b"RSMBDQN1";

/// Agent checkpoint format version written by [`DqnAgent::save_checkpoint`].
pub const DQN_VERSION: u32 = 1;

/// Which `train_once` implementation the agent runs. Both produce
/// bit-identical networks; `PerSample` exists as the measurement reference
/// for the controller-throughput perf gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Datapath {
    /// Minibatch GEMM datapath: one batched target-forward, one batched
    /// policy-forward, one batched backward per SGD step.
    #[default]
    Batched,
    /// Scalar reference datapath: per-sample forward/backward loops.
    PerSample,
}

/// DQN agent with decaying ε-greedy action selection.
pub struct DqnAgent {
    cfg: ResembleConfig,
    policy: Mlp,
    target: Mlp,
    scratch_p: Scratch,
    scratch_t: Scratch,
    batch_scratch_p: BatchScratch,
    batch_scratch_t: BatchScratch,
    grads: GradBuffer,
    opt: Sgd,
    rng: StdRng,
    step: u64,
    datapath: Datapath,
    // --- reusable minibatch gather buffers (allocation-free steady state) ---
    ids_buf: Vec<u64>,
    batch_ids: Vec<u64>,
    actions_buf: Vec<usize>,
    targets_buf: Vec<f32>,
    batch_states: Matrix,
    batch_next: Matrix,
    out_grads: Matrix,
    /// training statistics
    pub train_steps: u64,
    /// role switches performed
    pub role_switches: u64,
    /// when set, `train_tick` is a no-op (frozen inference, used by the
    /// quantization study)
    pub frozen: bool,
}

impl DqnAgent {
    /// Build an agent for the given configuration.
    pub fn new(cfg: ResembleConfig, seed: u64) -> Self {
        let sizes = [cfg.input_dim(), cfg.hidden_dim, cfg.action_dim];
        let policy = Mlp::new(&sizes, Activation::Relu, seed);
        let target = policy.clone();
        let scratch_p = policy.make_scratch();
        let scratch_t = target.make_scratch();
        let batch_scratch_p = policy.make_batch_scratch(cfg.batch_size);
        let batch_scratch_t = target.make_batch_scratch(cfg.batch_size);
        let grads = policy.make_grad_buffer();
        Self {
            opt: Sgd::new(cfg.learning_rate),
            cfg,
            policy,
            target,
            scratch_p,
            scratch_t,
            batch_scratch_p,
            batch_scratch_t,
            grads,
            rng: StdRng::seed_from_u64(seed ^ 0x5EED),
            step: 0,
            datapath: Datapath::default(),
            ids_buf: Vec::new(),
            batch_ids: Vec::new(),
            actions_buf: Vec::new(),
            targets_buf: Vec::new(),
            batch_states: Matrix::default(),
            batch_next: Matrix::default(),
            out_grads: Matrix::default(),
            train_steps: 0,
            role_switches: 0,
            frozen: false,
        }
    }

    /// The training datapath in use.
    pub fn datapath(&self) -> Datapath {
        self.datapath
    }

    /// Select the training datapath. Switching never changes results —
    /// both paths are bit-identical — only throughput.
    pub fn set_datapath(&mut self, dp: Datapath) {
        self.datapath = dp;
    }

    /// Quantize both networks to `bits`-bit fixed point (hardware study,
    /// paper §VIII); returns the RMS parameter error of the inference net.
    pub fn quantize(&mut self, bits: u32) -> f32 {
        let (_, rms) = resemble_nn::quantize_mlp(&mut self.target, bits);
        resemble_nn::quantize_mlp(&mut self.policy, bits);
        rms
    }

    /// Current ε under the decay schedule.
    pub fn epsilon(&self) -> f64 {
        self.cfg.epsilon(self.step)
    }

    /// Total parameters across both networks.
    pub fn param_count(&self) -> usize {
        self.policy.param_count() + self.target.param_count()
    }

    /// Bit patterns of every parameter (policy net, then target net) —
    /// the bit-identity probe used by determinism and serving tests.
    pub fn param_bits(&self) -> Vec<u32> {
        self.policy
            .flat_params()
            .iter()
            .chain(self.target.flat_params().iter())
            .map(|v| v.to_bits())
            .collect()
    }

    /// Q-values of the inference (target) network for a state.
    pub fn q_values(&mut self, state: &[f32]) -> &[f32] {
        self.target.forward(state, &mut self.scratch_t)
    }

    /// The network currently serving inference (the target net). Sessions
    /// that share frozen weights are pooled by cloning this network once;
    /// frozen agents never train or role-switch, so the clone stays
    /// bit-identical to the original for the life of the pool entry.
    pub fn inference_net(&self) -> &Mlp {
        &self.target
    }

    /// Serialize the agent's learned state: both networks (policy then
    /// target, in the [`resemble_nn::checkpoint`] binary format) plus the
    /// exploration/training counters, behind a versioned header with the
    /// architecture fingerprint. The byte stream is deterministic — a
    /// function of the parameter bits and counters only.
    ///
    /// The ε-greedy RNG stream is *not* serialized: a restored agent
    /// resumes the ε schedule exactly (from the saved `step`) but draws
    /// fresh exploration randomness from its construction seed. Restores
    /// into a freshly built agent are therefore deterministic given the
    /// same `(seed, checkpoint)` pair, which is what the serve layer's
    /// warm-resume test pins.
    pub fn save_checkpoint<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&DQN_MAGIC)?;
        w.write_all(&DQN_VERSION.to_le_bytes())?;
        for dim in [
            self.cfg.input_dim(),
            self.cfg.hidden_dim,
            self.cfg.action_dim,
        ] {
            let d = u32::try_from(dim)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "dimension overflow"))?;
            w.write_all(&d.to_le_bytes())?;
        }
        w.write_all(&self.step.to_le_bytes())?;
        w.write_all(&self.train_steps.to_le_bytes())?;
        w.write_all(&self.role_switches.to_le_bytes())?;
        w.write_all(&[u8::from(self.frozen), 0, 0, 0])?;
        save_mlp_binary(w, &self.policy)?;
        save_mlp_binary(w, &self.target)
    }

    /// Restore state written by [`DqnAgent::save_checkpoint`] into this
    /// agent. The checkpoint's architecture fingerprint must match this
    /// agent's configuration; parameters are loaded in place so every
    /// scratch buffer stays valid. Returns `InvalidData` on any mismatch
    /// without modifying the agent.
    pub fn restore_checkpoint<R: Read>(&mut self, r: &mut R) -> io::Result<()> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if magic != DQN_MAGIC {
            return Err(bad("not a DQN agent checkpoint (bad magic)"));
        }
        let mut b4 = [0u8; 4];
        r.read_exact(&mut b4)?;
        if u32::from_le_bytes(b4) != DQN_VERSION {
            return Err(bad("unsupported agent checkpoint version"));
        }
        for expect in [
            self.cfg.input_dim(),
            self.cfg.hidden_dim,
            self.cfg.action_dim,
        ] {
            r.read_exact(&mut b4)?;
            if u32::from_le_bytes(b4) as usize != expect {
                return Err(bad("checkpoint architecture does not match this agent"));
            }
        }
        let mut b8 = [0u8; 8];
        r.read_exact(&mut b8)?;
        let step = u64::from_le_bytes(b8);
        r.read_exact(&mut b8)?;
        let train_steps = u64::from_le_bytes(b8);
        r.read_exact(&mut b8)?;
        let role_switches = u64::from_le_bytes(b8);
        r.read_exact(&mut b4)?;
        let frozen = b4[0] != 0;
        let policy = load_mlp_binary(r)?;
        let target = load_mlp_binary(r)?;
        if policy.sizes() != self.policy.sizes() || target.sizes() != self.target.sizes() {
            return Err(bad("checkpoint network shapes do not match this agent"));
        }
        self.policy.load_flat(&policy.flat_params());
        self.target.load_flat(&target.flat_params());
        self.step = step;
        self.train_steps = train_steps;
        self.role_switches = role_switches;
        self.frozen = frozen;
        self.grads.clear();
        Ok(())
    }

    /// ε-greedy action selection on the inference network (Eq. 8 /
    /// Algorithm 1 lines 10–14). Advances the exploration step counter.
    pub fn select_action(&mut self, state: &[f32]) -> usize {
        let eps = self.cfg.epsilon(self.step);
        self.step += 1;
        if self.rng.gen_bool(eps) {
            self.rng.gen_range(0..self.cfg.action_dim)
        } else {
            self.target.argmax(state, &mut self.scratch_t)
        }
    }

    /// Greedy action (no exploration), for evaluation probes.
    pub fn greedy_action(&mut self, state: &[f32]) -> usize {
        self.target.argmax(state, &mut self.scratch_t)
    }

    /// Upper bound on how many consecutive decisions can be served off a
    /// *constant* inference network: the steps remaining until the next
    /// role switch. Training between switches updates only the policy
    /// net, so up to this many states may be pushed through one
    /// [`Mlp::forward_batch`] call (see [`DqnAgent::q_batch_into`]) and
    /// still match per-step [`DqnAgent::select_action`] bit-for-bit.
    /// Frozen agents never switch, so their bound is unlimited.
    pub fn decision_window_bound(&self) -> usize {
        if self.frozen {
            return usize::MAX;
        }
        let it = self.cfg.target_update_interval.max(1);
        usize::try_from(it - (self.step % it)).unwrap_or(usize::MAX)
    }

    /// Batched Q-values of the inference (target) network, one row per
    /// row of `states`, copied into `out`. Each row is bit-identical to
    /// [`DqnAgent::q_values`] on that state (the batch kernels preserve
    /// per-element accumulation order), so callers may argmax rows in
    /// place of per-state forwards.
    pub fn q_batch_into(&mut self, states: &Matrix, out: &mut Matrix) {
        let q = self.target.forward_batch(states, &mut self.batch_scratch_t);
        out.resize(q.rows(), q.cols());
        out.as_mut_slice().copy_from_slice(q.as_slice());
    }

    /// ε-greedy selection from a precomputed Q row, advancing the
    /// exploration step counter. Bit-identical to
    /// [`DqnAgent::select_action`] whenever `q_row` equals the target
    /// network's forward output for the state: the ε draw, the explore
    /// branch, and the ties-broken-low argmax all match.
    pub fn select_action_from_q(&mut self, q_row: &[f32]) -> usize {
        debug_assert_eq!(q_row.len(), self.cfg.action_dim, "Q row width");
        let eps = self.cfg.epsilon(self.step);
        self.step += 1;
        if self.rng.gen_bool(eps) {
            self.rng.gen_range(0..self.cfg.action_dim)
        } else {
            let mut best = 0;
            for i in 1..q_row.len() {
                if q_row[i] > q_row[best] {
                    best = i;
                }
            }
            best
        }
    }

    /// One online-training tick (Algorithm 1 lines 31–39): every `I_p`
    /// steps sample a batch of valid transitions and take one SGD step on
    /// the policy net; every `I_t` steps switch the networks' roles.
    pub fn train_tick(&mut self, replay: &mut ReplayMemory) {
        if self.frozen {
            return;
        }
        if self.step.is_multiple_of(self.cfg.policy_update_interval) {
            self.train_once(replay);
        }
        if self.step > 0 && self.step.is_multiple_of(self.cfg.target_update_interval) {
            self.role_switch();
        }
    }

    /// Sample and apply one batch update (Eq. 9–11) through the selected
    /// [`Datapath`]. Public so the micro-benchmarks can drive a training
    /// step directly.
    pub fn train_once(&mut self, replay: &ReplayMemory) {
        // Both datapaths draw the same ids from the same RNG stream.
        let (rng, ids) = (&mut self.rng, &mut self.ids_buf);
        replay.sample_into(self.cfg.batch_size, rng, ids);
        if self.ids_buf.is_empty() {
            return;
        }
        match self.datapath {
            Datapath::Batched => self.train_once_batched(replay),
            Datapath::PerSample => self.train_once_per_sample(replay),
        }
    }

    /// Batched datapath: gather the sampled transitions into flat
    /// minibatch matrices, then one target [`Mlp::forward_batch`] for the
    /// bootstrap targets, one policy `forward_batch`, and one
    /// [`Mlp::backward_batch`] accumulate every gradient of the SGD step.
    fn train_once_batched(&mut self, replay: &ReplayMemory) {
        let gamma = self.cfg.gamma;
        let a_dim = self.cfg.action_dim;
        let dim = replay.state_dim();
        // Gather the valid sampled transitions, preserving draw order so
        // gradient accumulation matches the per-sample reference exactly.
        self.batch_ids.clear();
        self.actions_buf.clear();
        self.targets_buf.clear();
        for i in 0..self.ids_buf.len() {
            let id = self.ids_buf[i];
            let Some(t) = replay.get(id) else { continue };
            if let (Some(r), Some(_)) = (t.reward, t.next_state) {
                self.batch_ids.push(id);
                self.actions_buf.push(t.action);
                self.targets_buf.push(r);
            }
        }
        let b = self.batch_ids.len();
        self.batch_states.resize(b, dim);
        self.batch_next.resize(b, dim);
        for (i, &id) in self.batch_ids.iter().enumerate() {
            let t = replay.get(id).expect("gathered id is live");
            self.batch_states.row_mut(i).copy_from_slice(t.state);
            self.batch_next
                .row_mut(i)
                .copy_from_slice(t.next_state.expect("gathered id is valid"));
        }
        // y_j = r_j + γ max_a' MLP_t(s_{j+1}, a'), one batched forward.
        let q_next = self
            .target
            .forward_batch(&self.batch_next, &mut self.batch_scratch_t);
        for (i, y) in self.targets_buf.iter_mut().enumerate() {
            let max_next = q_next
                .row(i)
                .iter()
                .copied()
                .fold(f32::NEG_INFINITY, f32::max);
            *y += gamma * max_next;
        }
        // Gradient of 0.5 (Q(s,a) - y)^2 wrt the selected actions only:
        // one batched policy forward, a sparse out-grad matrix, one
        // batched backward.
        self.out_grads.resize(b, a_dim);
        self.out_grads.clear();
        let q = self
            .policy
            .forward_batch(&self.batch_states, &mut self.batch_scratch_p);
        for i in 0..b {
            let a = self.actions_buf[i];
            *self.out_grads.get_mut(i, a) = q.get(i, a) - self.targets_buf[i];
        }
        self.policy
            .backward_batch(&mut self.batch_scratch_p, &self.out_grads, &mut self.grads);
        self.policy.apply_grads(&mut self.grads, &mut self.opt);
        self.train_steps += 1;
    }

    /// Scalar reference datapath: the original per-sample loop, kept as
    /// the measurement baseline for the controller perf gate.
    fn train_once_per_sample(&mut self, replay: &ReplayMemory) {
        let gamma = self.cfg.gamma;
        let a_dim = self.cfg.action_dim;
        let mut out_grad = vec![0.0f32; a_dim];
        for i in 0..self.ids_buf.len() {
            let id = self.ids_buf[i];
            let Some(t) = replay.get(id) else { continue };
            let (reward, next) = match (t.reward, t.next_state) {
                (Some(r), Some(n)) => (r, n),
                _ => continue,
            };
            // y_j = r_j + γ max_a' MLP_t(s_{j+1}, a')
            let q_next = self.target.forward(next, &mut self.scratch_t);
            let max_next = q_next.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let y = reward + gamma * max_next;
            // Gradient of 0.5 (Q(s,a) - y)^2 wrt the selected action only.
            let q = self.policy.forward(t.state, &mut self.scratch_p);
            out_grad.fill(0.0);
            out_grad[t.action] = q[t.action] - y;
            self.policy
                .backward(&mut self.scratch_p, &out_grad, &mut self.grads);
        }
        self.policy.apply_grads(&mut self.grads, &mut self.opt);
        self.train_steps += 1;
    }

    /// Swap the roles of policy and target net, then synchronize (the
    /// paper's stall-free alternative to copying weights into the
    /// inference net).
    fn role_switch(&mut self) {
        std::mem::swap(&mut self.policy, &mut self.target);
        std::mem::swap(&mut self.scratch_p, &mut self.scratch_t);
        std::mem::swap(&mut self.batch_scratch_p, &mut self.batch_scratch_t);
        // Synchronize: the new policy resumes from the freshly-trained
        // weights now serving inference.
        self.policy.copy_params_from(&self.target);
        self.grads.clear();
        self.role_switches += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg2() -> ResembleConfig {
        // 2 prefetchers, 3 actions, tiny nets for fast tests.
        ResembleConfig {
            state_dim: 2,
            action_dim: 3,
            hidden_dim: 16,
            batch_size: 16,
            eps_start: 0.9,
            eps_end: 0.0,
            eps_decay: 30.0,
            learning_rate: 0.05,
            ..ResembleConfig::default()
        }
    }

    /// Synthetic environment: action 0 always pays +1, action 1 always −1,
    /// action 2 (NP) pays 0; state is noise. Drives `steps` iterations of
    /// select/push/train against a replay and returns the agent.
    fn run_synthetic(datapath: Datapath, steps: usize, seed: u64) -> DqnAgent {
        let cfg = cfg2();
        let mut agent = DqnAgent::new(cfg, seed);
        agent.set_datapath(datapath);
        let mut replay = ReplayMemory::new(cfg.replay_capacity, cfg.window, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut prev: Option<u64> = None;
        let mut assigned = Vec::new();
        for _ in 0..steps {
            let s = [rng.gen::<f32>(), rng.gen::<f32>()];
            if let Some(p) = prev {
                replay.set_next_state(p, &s);
            }
            let a = agent.select_action(&s);
            let r = match a {
                0 => 1.0,
                1 => -1.0,
                _ => 0.0,
            };
            // Deliver the reward synchronously: +1 rewards hit on the next
            // access; −1 rewards expire via the window.
            let id = if r == 0.0 {
                replay.push(&s, a, &[])
            } else {
                let block = if r > 0.0 { 0xAAA } else { 0xBBB };
                replay.push(&s, a, &[block])
            };
            replay.on_access(0xAAA, &mut assigned);
            prev = Some(id);
            agent.train_tick(&mut replay);
        }
        agent
    }

    #[test]
    fn learns_dominant_action() {
        let mut agent = run_synthetic(Datapath::Batched, 1500, 7);
        // Greedy policy should now prefer action 0.
        let mut rng = StdRng::seed_from_u64(77);
        let mut wins = 0;
        for _ in 0..50 {
            let s = [rng.gen::<f32>(), rng.gen::<f32>()];
            if agent.greedy_action(&s) == 0 {
                wins += 1;
            }
        }
        assert!(wins >= 40, "wins={wins}/50");
        assert!(agent.train_steps > 0);
    }

    #[test]
    fn datapaths_produce_bit_identical_networks() {
        // Same seeds, same environment, different datapaths: the batch
        // kernels preserve accumulation order, so the trained parameters
        // must agree to the bit.
        let a = run_synthetic(Datapath::Batched, 600, 11);
        let b = run_synthetic(Datapath::PerSample, 600, 11);
        assert_eq!(a.train_steps, b.train_steps);
        let bits = |m: &Mlp| {
            m.flat_params()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&a.policy), bits(&b.policy));
        assert_eq!(bits(&a.target), bits(&b.target));
    }

    #[test]
    fn epsilon_decays_with_steps() {
        let mut agent = DqnAgent::new(cfg2(), 1);
        let e0 = agent.epsilon();
        for _ in 0..200 {
            let _ = agent.select_action(&[0.0, 0.0]);
        }
        assert!(agent.epsilon() < e0 / 2.0);
    }

    #[test]
    fn role_switch_happens_every_it_steps() {
        let cfg = cfg2();
        let mut agent = DqnAgent::new(cfg, 2);
        let mut replay = ReplayMemory::new(64, 8, 2);
        for _ in 0..100 {
            let _ = agent.select_action(&[0.1, 0.2]);
            agent.train_tick(&mut replay);
        }
        assert_eq!(agent.role_switches, 100 / cfg.target_update_interval);
    }

    #[test]
    fn networks_agree_after_switch() {
        let cfg = cfg2();
        let mut agent = DqnAgent::new(cfg, 5);
        agent.role_switch();
        let s = [0.3f32, 0.7];
        let qp = agent.policy.predict(&s);
        let qt = agent.target.predict(&s);
        assert_eq!(qp, qt);
    }

    #[test]
    fn param_count_matches_table_iv_for_paper_dims() {
        let agent = DqnAgent::new(ResembleConfig::default(), 0);
        // Two nets of 1005 parameters each (Table IV / Table VIII).
        assert_eq!(agent.param_count(), 2 * 1005);
    }

    #[test]
    fn frozen_agent_does_not_train() {
        let cfg = cfg2();
        let mut agent = DqnAgent::new(cfg, 3);
        agent.frozen = true;
        let mut replay = ReplayMemory::new(64, 8, 2);
        let id = replay.push(&[0.0, 0.0], 2, &[]);
        replay.set_next_state(id, &[0.1, 0.1]);
        for _ in 0..50 {
            let _ = agent.select_action(&[0.0, 0.0]);
            agent.train_tick(&mut replay);
        }
        assert_eq!(agent.train_steps, 0);
        assert_eq!(agent.role_switches, 0);
    }

    #[test]
    fn quantize_preserves_behaviour_at_16_bits() {
        let mut agent = DqnAgent::new(cfg2(), 5);
        let s = [0.3f32, 0.8];
        let before = agent.greedy_action(&s);
        let rms = agent.quantize(16);
        assert!(rms < 1e-4);
        assert_eq!(agent.greedy_action(&s), before);
    }

    #[test]
    fn select_action_from_q_matches_select_action() {
        // Two agents with identical seeds: one selects from states, the
        // other from precomputed Q rows. Actions and exploration state
        // must stay in lockstep.
        let cfg = cfg2();
        let mut a = DqnAgent::new(cfg, 13);
        let mut b = DqnAgent::new(cfg, 13);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..300 {
            let s = [rng.gen::<f32>(), rng.gen::<f32>()];
            let q: Vec<f32> = b.q_values(&s).to_vec();
            assert_eq!(a.select_action(&s), b.select_action_from_q(&q));
        }
        assert_eq!(a.epsilon(), b.epsilon());
    }

    #[test]
    fn q_batch_rows_match_per_state_q_values() {
        let cfg = cfg2();
        let mut agent = DqnAgent::new(cfg, 21);
        let states = Matrix::from_fn(7, 2, |r, c| ((r * 2 + c) as f32 * 0.23).sin());
        let mut q = Matrix::default();
        agent.q_batch_into(&states, &mut q);
        for r in 0..7 {
            let expect: Vec<u32> = agent
                .q_values(states.row(r))
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let got: Vec<u32> = q.row(r).iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, expect, "row {r}");
        }
    }

    #[test]
    fn decision_window_bound_tracks_role_switches() {
        let cfg = cfg2();
        let it = cfg.target_update_interval as usize;
        let mut agent = DqnAgent::new(cfg, 2);
        let mut replay = ReplayMemory::new(64, 8, 2);
        assert_eq!(agent.decision_window_bound(), it);
        for k in 0..(2 * it) {
            let _ = agent.select_action(&[0.1, 0.2]);
            agent.train_tick(&mut replay);
            let expect = it - ((k + 1) % it);
            assert_eq!(
                agent.decision_window_bound(),
                expect,
                "after step {}",
                k + 1
            );
        }
        agent.frozen = true;
        assert_eq!(agent.decision_window_bound(), usize::MAX);
    }

    #[test]
    fn checkpoint_round_trip_restores_bit_identical_q_values() {
        let mut trained = run_synthetic(Datapath::Batched, 800, 17);
        let mut buf = Vec::new();
        trained.save_checkpoint(&mut buf).expect("saves");
        let mut fresh = DqnAgent::new(cfg2(), 17);
        assert_ne!(fresh.param_bits(), trained.param_bits());
        fresh
            .restore_checkpoint(&mut buf.as_slice())
            .expect("restores");
        assert_eq!(fresh.param_bits(), trained.param_bits());
        assert_eq!(fresh.train_steps, trained.train_steps);
        assert_eq!(fresh.role_switches, trained.role_switches);
        assert_eq!(fresh.epsilon(), trained.epsilon(), "ε schedule resumes");
        let s = [0.42f32, -0.17];
        let a: Vec<u32> = trained.q_values(&s).iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = fresh.q_values(&s).iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "restored Q-values diverged");
    }

    #[test]
    fn checkpoint_serialization_is_deterministic() {
        let agent = run_synthetic(Datapath::Batched, 300, 5);
        let mut a = Vec::new();
        let mut b = Vec::new();
        agent.save_checkpoint(&mut a).expect("saves");
        agent.save_checkpoint(&mut b).expect("saves");
        assert_eq!(a, b);
    }

    #[test]
    fn checkpoint_rejects_architecture_mismatch_without_modifying() {
        let agent = DqnAgent::new(cfg2(), 1);
        let mut buf = Vec::new();
        agent.save_checkpoint(&mut buf).expect("saves");
        // Paper dims (4-wide state) vs the test's 2-wide state.
        let mut other = DqnAgent::new(ResembleConfig::default(), 9);
        let before = other.param_bits();
        assert!(other.restore_checkpoint(&mut buf.as_slice()).is_err());
        assert_eq!(
            other.param_bits(),
            before,
            "failed restore must not touch nets"
        );

        let mut corrupt = buf.clone();
        corrupt[0] ^= 0xFF;
        let mut same = DqnAgent::new(cfg2(), 1);
        assert!(same.restore_checkpoint(&mut corrupt.as_slice()).is_err());
    }

    #[test]
    fn train_tick_with_empty_replay_is_safe() {
        for dp in [Datapath::Batched, Datapath::PerSample] {
            let cfg = cfg2();
            let mut agent = DqnAgent::new(cfg, 9);
            agent.set_datapath(dp);
            let mut replay = ReplayMemory::new(16, 4, 2);
            for _ in 0..50 {
                let _ = agent.select_action(&[0.0, 0.0]);
                agent.train_tick(&mut replay);
            }
        }
    }
}
