//! # resemble-core
//!
//! The paper's primary contribution: ReSemble, a reinforcement-learning
//! ensemble framework for data prefetching (SC 2022). The framework wraps
//! a bank of input prefetchers (BO, SPP, ISB, Domino by default — Table
//! II), observes their per-access suggestions, and learns online which
//! suggestion to issue:
//!
//! * [`ResembleMlp`] — the DQN controller: hash-and-norm preprocessing
//!   (Eq. 6), a shallow policy/target MLP pair with role switching
//!   (§IV-E), replay memory with *lazy sampling* (§IV-D), decaying
//!   ε-greedy selection (Eq. 8).
//! * [`ResembleTabular`] — the hardware-lean tabular variant (§IV-F):
//!   hashed states (Eq. 12), tokenized Q-table (Fig 5), pending-buffer
//!   lazy rewards (Eq. 13).
//! * [`SbpE`] — the extended Sandbox Prefetcher baseline (§V-C1).
//! * [`overhead`] — the analytic latency/storage models of §VI-A.
//!
//! ```
//! use resemble_core::ResembleMlp;
//! use resemble_prefetch::Prefetcher;
//! use resemble_trace::MemAccess;
//!
//! let mut ensemble = ResembleMlp::from_paper(42);
//! let mut out = Vec::new();
//! ensemble.on_access(&MemAccess::load(0, 0x400, 0x1000), false, &mut out);
//! assert!(out.len() <= 1); // one selected suggestion or none (NP)
//! ```

#![warn(missing_docs)]

pub mod agent;
pub mod baselines;
pub mod config;
pub mod ensemble;
pub mod oracle;
pub mod overhead;
pub mod preprocess;
pub mod replay;

pub use agent::{Datapath, DqnAgent, TabularAgent};
pub use baselines::{RoundRobinSelect, SbpE, StaticSelect};
pub use config::ResembleConfig;
pub use ensemble::{EnsembleStats, ResembleMlp, ResembleTabular};
pub use oracle::{oracle_selection, OracleReport};
pub use replay::{ReplayMemory, TransitionView};
