//! Observation preprocessing (paper §IV-B, Eq. 4–6 and Eq. 12).
//!
//! The observation is the vector of top-1 predictions from the input
//! prefetchers, `o_t = [p_1 … p_N]`, spatial first then temporal. Spatial
//! predictions are encoded as page-normalized deltas from the trigger
//! address; temporal predictions are compressed with a bit-folding hash
//! and normalized ("hash and norm"). Missing predictions are zero-padded.
//! The tabular variant (Eq. 12) hashes both kinds without normalization.

use crate::config::ResembleConfig;
use resemble_prefetch::PredictionKind;

/// Bit-folding hash: XOR-fold a 64-bit value down to `bits` bits.
///
/// This is the paper's hardware-friendly hash (`T_h = ⌈log2⌈64/bits⌉⌉`
/// XOR stages in Table VII).
#[inline]
pub fn fold_hash(value: u64, bits: u32) -> u64 {
    assert!(bits > 0 && bits <= 64);
    if bits == 64 {
        return value;
    }
    let mask = (1u64 << bits) - 1;
    let mut v = value;
    let mut out = 0u64;
    while v != 0 {
        out ^= v & mask;
        v >>= bits;
    }
    out
}

/// Preprocess one prediction into an MLP state feature (Eq. 6).
#[inline]
pub fn mlp_feature(
    prediction: Option<u64>,
    kind: PredictionKind,
    current_addr: u64,
    cfg: &ResembleConfig,
) -> f32 {
    let Some(p) = prediction else { return 0.0 };
    match kind {
        PredictionKind::Spatial => {
            let delta = p.abs_diff(current_addr);
            delta as f32 / (1u64 << cfg.page_offset) as f32
        }
        PredictionKind::Temporal => {
            fold_hash(p, cfg.hash_bits) as f32 / (1u64 << cfg.hash_bits) as f32
        }
    }
}

/// Build the full MLP state vector from an observation (Eq. 5), appending
/// the normalized hashed PC when `cfg.with_pc` is set (Table VI ablation).
pub fn mlp_state(
    obs: &[Option<u64>],
    kinds: &[PredictionKind],
    current_addr: u64,
    pc: u64,
    cfg: &ResembleConfig,
    out: &mut Vec<f32>,
) {
    assert_eq!(obs.len(), kinds.len());
    assert_eq!(
        obs.len(),
        cfg.state_dim,
        "observation size must match state_dim"
    );
    out.clear();
    for (p, k) in obs.iter().zip(kinds) {
        out.push(mlp_feature(*p, *k, current_addr, cfg));
    }
    if cfg.with_pc {
        out.push(fold_hash(pc, cfg.hash_bits) as f32 / (1u64 << cfg.hash_bits) as f32);
    }
}

/// Preprocess one prediction into a tabular state element (Eq. 12): hash
/// of the delta for spatial predictions, hash of the address for temporal
/// ones, no normalization. Missing predictions map to 0.
#[inline]
pub fn tabular_feature(
    prediction: Option<u64>,
    kind: PredictionKind,
    current_addr: u64,
    hash_bits: u32,
) -> u16 {
    let Some(p) = prediction else { return 0 };
    let v = match kind {
        PredictionKind::Spatial => fold_hash(p.abs_diff(current_addr), hash_bits),
        PredictionKind::Temporal => fold_hash(p, hash_bits),
    };
    v as u16
}

/// Build the tabular state vector (plus optional hashed PC element).
pub fn tabular_state(
    obs: &[Option<u64>],
    kinds: &[PredictionKind],
    current_addr: u64,
    pc: u64,
    hash_bits: u32,
    with_pc: bool,
    out: &mut Vec<u16>,
) {
    assert_eq!(obs.len(), kinds.len());
    out.clear();
    for (p, k) in obs.iter().zip(kinds) {
        out.push(tabular_feature(*p, *k, current_addr, hash_bits));
    }
    if with_pc {
        out.push(fold_hash(pc, hash_bits) as u16);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_hash_ranges_and_determinism() {
        for bits in [4u32, 8, 16] {
            for v in [0u64, 1, 0xdead_beef_1234_5678, u64::MAX] {
                let h = fold_hash(v, bits);
                assert!(h < (1 << bits), "{h} out of {bits}-bit range");
                assert_eq!(h, fold_hash(v, bits));
            }
        }
        assert_eq!(fold_hash(42, 64), 42);
    }

    #[test]
    fn fold_hash_distributes() {
        // Folding must not collapse distinct page-sized strides.
        use std::collections::BTreeSet;
        let hs: BTreeSet<u64> = (0..256u64).map(|i| fold_hash(i * 4096, 8)).collect();
        assert!(hs.len() > 100, "too many collisions: {}", hs.len());
    }

    #[test]
    fn spatial_features_are_page_normalized() {
        let cfg = ResembleConfig::default();
        let cur = 0x1_0000u64;
        // One block ahead: 64 / 4096.
        let f = mlp_feature(Some(cur + 64), PredictionKind::Spatial, cur, &cfg);
        assert!((f - 64.0 / 4096.0).abs() < 1e-6);
        // Behind works too (absolute delta).
        let b = mlp_feature(Some(cur - 128), PredictionKind::Spatial, cur, &cfg);
        assert!((b - 128.0 / 4096.0).abs() < 1e-6);
    }

    #[test]
    fn temporal_features_are_hash_normalized() {
        let cfg = ResembleConfig::default();
        let f = mlp_feature(Some(0xdead_beef), PredictionKind::Temporal, 0, &cfg);
        assert!((0.0..1.0).contains(&f));
        let expected = fold_hash(0xdead_beef, 16) as f32 / 65536.0;
        assert!((f - expected).abs() < 1e-9);
    }

    #[test]
    fn missing_predictions_zero_pad() {
        let cfg = ResembleConfig::default();
        assert_eq!(mlp_feature(None, PredictionKind::Spatial, 0, &cfg), 0.0);
        assert_eq!(tabular_feature(None, PredictionKind::Temporal, 0, 8), 0);
    }

    #[test]
    fn full_state_vector_layout() {
        let mut cfg = ResembleConfig::default();
        let kinds = [
            PredictionKind::Spatial,
            PredictionKind::Spatial,
            PredictionKind::Temporal,
            PredictionKind::Temporal,
        ];
        let obs = [Some(0x1040), None, Some(0x99_0000), None];
        let mut s = Vec::new();
        mlp_state(&obs, &kinds, 0x1000, 0x400, &cfg, &mut s);
        assert_eq!(s.len(), 4);
        assert!(s[0] > 0.0 && s[1] == 0.0 && s[2] > 0.0 && s[3] == 0.0);
        cfg.with_pc = true;
        mlp_state(&obs, &kinds, 0x1000, 0x400, &cfg, &mut s);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn tabular_state_vector() {
        let kinds = [PredictionKind::Spatial, PredictionKind::Temporal];
        let obs = [Some(0x2080u64), Some(0xffff_0000)];
        let mut s = Vec::new();
        tabular_state(&obs, &kinds, 0x2000, 0, 8, false, &mut s);
        assert_eq!(s.len(), 2);
        assert!(s.iter().all(|&x| x < 256));
        tabular_state(&obs, &kinds, 0x2000, 0x88, 8, true, &mut s);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn four_bit_hash_compresses_more_than_eight() {
        use std::collections::BTreeSet;
        let addrs: Vec<u64> = (0..4096u64).map(|i| i * 131).collect();
        let h4: BTreeSet<u64> = addrs.iter().map(|&a| fold_hash(a, 4)).collect();
        let h8: BTreeSet<u64> = addrs.iter().map(|&a| fold_hash(a, 8)).collect();
        assert!(h4.len() <= 16);
        assert!(h8.len() > h4.len());
    }
}
