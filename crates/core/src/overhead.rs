//! Analytic overhead models: model size (Table IV), inference latency
//! (Eq. 14 / Table VII), and storage (Table VIII).

use crate::config::ResembleConfig;
use serde::{Deserialize, Serialize};

/// MLP parameter count `SH + HA + H + A` (Table IV).
pub fn mlp_param_count(s: usize, h: usize, a: usize) -> usize {
    s * h + h * a + h + a
}

/// Direct-indexed Q-table entries `2^{BS} · A` (Table IV), saturating.
pub fn table_direct_entries(hash_bits: u32, state_dim: usize, action_dim: usize) -> u128 {
    let exp = hash_bits as u128 * state_dim as u128;
    if exp >= 127 {
        u128::MAX
    } else {
        (1u128 << exp) * action_dim as u128
    }
}

/// Tokenized Q-table entries `2A · #unique-states` (Table IV: one factor
/// of A for the Q row, one for the token-mapping storage).
pub fn table_token_entries(action_dim: usize, unique_states: usize) -> usize {
    2 * action_dim * unique_states
}

/// Per-phase inference latency estimate (Eq. 14), in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyEstimate {
    /// hash: ⌈log2⌈addr_bits / hash_bits⌉⌉ XOR-fold stages
    pub t_hash: u64,
    /// normalization: one constant multiplication
    pub t_norm: u64,
    /// hidden-layer matrix multiply: ⌈1 + log2 S⌉
    pub t_mm_hidden: u64,
    /// output-layer matrix multiply: ⌈1 + log2 H⌉
    pub t_mm_out: u64,
    /// two activation lookups
    pub t_act: u64,
    /// action argmax: ⌈log2 A⌉
    pub t_qv: u64,
}

impl LatencyEstimate {
    /// Evaluate Eq. 14 for a configuration.
    pub fn for_config(cfg: &ResembleConfig) -> Self {
        let fold_words = (cfg.address_bits as f64 / cfg.hash_bits as f64).ceil();
        Self {
            t_hash: fold_words.log2().ceil() as u64,
            t_norm: 1,
            t_mm_hidden: (1.0 + (cfg.input_dim() as f64).log2()).ceil() as u64,
            t_mm_out: (1.0 + (cfg.hidden_dim as f64).log2()).ceil() as u64,
            t_act: 2,
            t_qv: (cfg.action_dim as f64).log2().ceil() as u64,
        }
    }

    /// Total end-to-end latency under complete parallelization.
    pub fn total(&self) -> u64 {
        self.t_hash + self.t_norm + self.t_mm_hidden + self.t_mm_out + self.t_act + self.t_qv
    }
}

/// Storage overhead estimate (Table VIII), in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageEstimate {
    /// Two MLPs at 16-bit fixed point, stored on chip.
    pub mlp_bytes: usize,
    /// Replay memory: R transitions + W-entry prefetch window, off chip.
    pub replay_bytes: usize,
}

impl StorageEstimate {
    /// Evaluate Table VIII for a configuration.
    pub fn for_config(cfg: &ResembleConfig) -> Self {
        let params = mlp_param_count(cfg.input_dim(), cfg.hidden_dim, cfg.action_dim);
        let mlp_bytes = 2 * params * 2; // two nets, 16-bit fixed point
                                        // Each transition: 2 states × (S × 16 b) + action (3 b) + reward (1 b).
        let transition_bits = 2 * cfg.state_dim * 16 + 3 + 1;
        // Prefetch window: W × 58-bit prefetch addresses.
        let window_bits = cfg.window * 58;
        let replay_bytes = (cfg.replay_capacity * transition_bits + window_bits).div_ceil(8);
        Self {
            mlp_bytes,
            replay_bytes,
        }
    }

    /// Total bytes.
    pub fn total(&self) -> usize {
        self.mlp_bytes + self.replay_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_mlp_size() {
        // S=4, H=100, A=5 → 1005 ≈ "1.05K".
        assert_eq!(mlp_param_count(4, 100, 5), 1005);
    }

    #[test]
    fn table_iv_direct_table_sizes() {
        // B=4: 2^16 · 5 = 327,680 ≈ "328K".
        assert_eq!(table_direct_entries(4, 4, 5), 327_680);
        // B=8: 2^32 · 5 ≈ 21.5 G.
        assert_eq!(table_direct_entries(8, 4, 5), 5u128 << 32);
        assert!(table_direct_entries(8, 4, 5) > 21_000_000_000);
    }

    #[test]
    fn table_iv_token_table_scales_with_unique_states() {
        // Table IV quotes 37.3K entries at B=4 → ~3.7K unique states.
        assert_eq!(table_token_entries(5, 3730), 37_300);
        assert_eq!(table_token_entries(5, 59_200), 592_000);
    }

    #[test]
    fn table_vii_hash_and_action_terms_match() {
        let est = LatencyEstimate::for_config(&ResembleConfig::default());
        assert_eq!(est.t_hash, 2); // ⌈log2(64/16)⌉
        assert_eq!(est.t_norm, 1);
        assert_eq!(est.t_act, 2);
        assert_eq!(est.t_qv, 3); // ⌈log2 5⌉
                                 // The literal Eq. 14 terms (⌈1+log2 4⌉ = 3, ⌈1+log2 100⌉ = 8) are
                                 // smaller than the paper's quoted per-phase cycles (5 and 9, which
                                 // include fixed-point multiplier stages); both land near ~22 total.
        assert_eq!(est.t_mm_hidden, 3);
        assert_eq!(est.t_mm_out, 8);
        let total = est.total();
        assert!((15..=22).contains(&total), "total={total}");
    }

    #[test]
    fn table_viii_storage_matches() {
        let est = StorageEstimate::for_config(&ResembleConfig::default());
        // Two 1005-parameter nets at 16-bit ≈ 4.02 KB ("4.2KB").
        assert_eq!(est.mlp_bytes, 4020);
        // 2000 × 132 bits + 256 × 58 bits ≈ 34.9 KB ("34.8KB").
        assert!(
            (33_000..36_500).contains(&est.replay_bytes),
            "{}",
            est.replay_bytes
        );
        assert_eq!(est.total(), est.mlp_bytes + est.replay_bytes);
    }
}
