//! The ReSemble ensemble prefetchers: the MLP/DQN controller
//! ([`ResembleMlp`]) and the tabular variant ([`ResembleTabular`]), each
//! wrapping a [`PrefetcherBank`] and implementing [`Prefetcher`] so the
//! simulator can host them like any hardware prefetcher.
//!
//! Each access executes one iteration of Algorithm 1: collect the bank's
//! suggestions (observation), preprocess to a state vector, update the
//! previous transition's next-state, deliver lazy rewards from the current
//! address, select an action ε-greedily, issue the chosen suggestion (or
//! nothing for NP), and run the online-training tick.

use crate::agent::dqn::{Datapath, DqnAgent};
use crate::agent::tabular::TabularAgent;
use crate::config::ResembleConfig;
use crate::preprocess::{mlp_state, tabular_state};
use crate::replay::ReplayMemory;
use resemble_nn::Matrix;
use resemble_prefetch::{CacheEvent, PredictionKind, Prefetcher, PrefetcherBank};
use resemble_trace::record::block_of;
use resemble_trace::MemAccess;

/// Online statistics of an ensemble controller: per-action counts and
/// windowed rewards (the Table VI / Fig 6 / Fig 7 measurements).
#[derive(Debug, Clone)]
pub struct EnsembleStats {
    window: usize,
    accesses: u64,
    /// cumulative action counts
    pub action_counts: Vec<u64>,
    /// action counts of the current (incomplete) window
    cur_actions: Vec<u32>,
    cur_reward: f64,
    n_in_window: usize,
    /// per-window action counts (Fig 7)
    pub window_actions: Vec<Vec<u32>>,
    /// per-window reward sums (Table VI / Fig 6)
    pub window_rewards: Vec<f64>,
    /// total reward collected
    pub total_reward: f64,
}

impl EnsembleStats {
    /// Track windows of `window` accesses over `action_dim` actions.
    pub fn new(action_dim: usize, window: usize) -> Self {
        assert!(window > 0);
        Self {
            window,
            accesses: 0,
            action_counts: vec![0; action_dim],
            cur_actions: vec![0; action_dim],
            cur_reward: 0.0,
            n_in_window: 0,
            window_actions: Vec::new(),
            window_rewards: Vec::new(),
            total_reward: 0.0,
        }
    }

    /// Record one access's action and the rewards assigned during it.
    pub fn record(&mut self, action: usize, reward_sum: f64) {
        self.accesses += 1;
        self.action_counts[action] += 1;
        self.cur_actions[action] += 1;
        self.cur_reward += reward_sum;
        self.total_reward += reward_sum;
        self.n_in_window += 1;
        if self.n_in_window == self.window {
            self.window_actions.push(std::mem::replace(
                &mut self.cur_actions,
                vec![0; self.action_counts.len()],
            ));
            self.window_rewards.push(self.cur_reward);
            self.cur_reward = 0.0;
            self.n_in_window = 0;
        }
    }

    /// Mean of per-window reward sums (the Table VI statistic).
    pub fn mean_window_reward(&self) -> f64 {
        if self.window_rewards.is_empty() {
            0.0
        } else {
            self.window_rewards.iter().sum::<f64>() / self.window_rewards.len() as f64
        }
    }

    /// Accesses observed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

/// The MLP-based ReSemble ensemble controller.
pub struct ResembleMlp {
    bank: PrefetcherBank,
    kinds: Vec<PredictionKind>,
    agent: DqnAgent,
    replay: ReplayMemory,
    cfg: ResembleConfig,
    seed: u64,
    datapath: Datapath,
    prev_id: Option<u64>,
    obs_buf: Vec<Option<u64>>,
    state_buf: Vec<f32>,
    blocks_buf: Vec<u64>,
    assigned: Vec<(u64, f32)>,
    // --- reusable decision-window buffers (allocation-free steady state) ---
    win_states: Matrix,
    win_q: Matrix,
    win_sugg: Vec<u64>,
    win_spans: Vec<(usize, usize)>,
    /// online learning statistics (Table VI, Figs 6–7)
    pub stats: EnsembleStats,
}

impl ResembleMlp {
    /// Wrap a bank with an MLP controller. `cfg.state_dim` must equal the
    /// bank size.
    pub fn new(bank: PrefetcherBank, cfg: ResembleConfig, seed: u64) -> Self {
        assert_eq!(bank.len(), cfg.state_dim, "bank size must equal state_dim");
        let kinds = bank.kinds();
        Self {
            kinds,
            agent: DqnAgent::new(cfg, seed),
            replay: ReplayMemory::new(cfg.replay_capacity, cfg.window, cfg.input_dim()),
            stats: EnsembleStats::new(cfg.action_dim, 1000),
            cfg,
            seed,
            bank,
            datapath: Datapath::default(),
            prev_id: None,
            obs_buf: Vec::new(),
            state_buf: Vec::new(),
            blocks_buf: Vec::new(),
            assigned: Vec::new(),
            win_states: Matrix::default(),
            win_q: Matrix::default(),
            win_sugg: Vec::new(),
            win_spans: Vec::new(),
        }
    }

    /// The paper's default configuration: BO + SPP + ISB + Domino under an
    /// MLP controller with Table III hyper-parameters.
    pub fn from_paper(seed: u64) -> Self {
        Self::new(
            resemble_prefetch::paper_bank(),
            ResembleConfig::default(),
            seed,
        )
    }

    /// Access the underlying agent (for probes).
    pub fn agent(&self) -> &DqnAgent {
        &self.agent
    }

    /// Mutable agent access, for probes that run inference (Q-value reads
    /// reuse the forward-pass scratch buffers, hence `&mut`).
    pub fn agent_mut(&mut self) -> &mut DqnAgent {
        &mut self.agent
    }

    /// Quantize the controller networks to `bits`-bit fixed point and
    /// freeze training (the §VIII hardware study); returns the RMS
    /// parameter error.
    pub fn quantize_and_freeze(&mut self, bits: u32) -> f32 {
        self.agent.frozen = true;
        self.agent.quantize(bits)
    }

    /// The configuration in use.
    pub fn config(&self) -> &ResembleConfig {
        &self.cfg
    }

    /// Select the DQN training [`Datapath`] (batched GEMM vs the scalar
    /// reference). Results are bit-identical either way; the setting
    /// survives [`Prefetcher::reset`] so perf comparisons can reset
    /// between reps without losing it.
    pub fn set_datapath(&mut self, dp: Datapath) {
        self.datapath = dp;
        self.agent.set_datapath(dp);
    }

    /// The training datapath in use.
    pub fn datapath(&self) -> Datapath {
        self.datapath
    }

    /// Process a run of consecutive accesses in batched decision windows,
    /// calling `emit(index, issued_prefetches)` once per access in order.
    ///
    /// **Bit-identical** to calling [`Prefetcher::on_access`] once per
    /// access: the run is split at role-switch boundaries (the inference
    /// network is constant in between — training touches only the policy
    /// net), each window takes *one* [`resemble_nn::Mlp::forward_batch`]
    /// over all window states, and the per-access bookkeeping (reward
    /// delivery, ε-greedy RNG draws, replay pushes, training ticks) then
    /// replays sequentially in the exact per-access order. This is the
    /// serving hot path of `resemble-serve`, pinned by the
    /// `window_decisions_bit_identical_to_sequential` test below.
    pub fn on_access_window(
        &mut self,
        accesses: &[(MemAccess, bool)],
        mut emit: impl FnMut(usize, &[u64]),
    ) {
        let mut start = 0;
        while start < accesses.len() {
            let bound = self.agent.decision_window_bound().max(1);
            let m = (accesses.len() - start).min(bound);
            let chunk = &accesses[start..start + m];
            // Phase A, then phase B through this controller's own
            // inference net, then phase C — the fused single-session path.
            self.window_prepare(chunk);
            let mut q = std::mem::take(&mut self.win_q);
            self.agent.q_batch_into(&self.win_states, &mut q);
            self.window_commit(chunk, &q, 0, |k, issued| emit(start + k, issued));
            self.win_q = q;
            start += m;
        }
    }

    /// Phase A of one decision window: per access, in order, run the bank
    /// observation (members see every access exactly as in the sequential
    /// path), capture each member's full suggestion list (the bank only
    /// retains the latest access's lists), and preprocess the state row.
    /// None of this depends on the actions still to be chosen, and none of
    /// it touches the agent, replay, or RNG. Returns the window's state
    /// matrix, one row per access.
    ///
    /// This is one half of [`ResembleMlp::on_access_window`], split out so
    /// `resemble-serve` can pool phase B (the batched forward) across
    /// sessions that share frozen inference weights. The contract: the
    /// caller must follow with exactly one [`ResembleMlp::window_commit`]
    /// over the same `chunk`, passing Q rows that are bit-identical to
    /// this controller's inference net forward on the returned states,
    /// before any other call that mutates this controller; `chunk.len()`
    /// must not exceed [`DqnAgent::decision_window_bound`].
    pub fn window_prepare(&mut self, chunk: &[(MemAccess, bool)]) -> &Matrix {
        let members = self.bank.len();
        self.win_states.resize(chunk.len(), self.cfg.input_dim());
        self.win_sugg.clear();
        self.win_spans.clear();
        for (k, (access, hit)) in chunk.iter().enumerate() {
            self.obs_buf.clear();
            self.obs_buf
                .extend_from_slice(self.bank.observe(access, *hit));
            for j in 0..members {
                let sugg = self.bank.suggestions(j);
                let off = self.win_sugg.len();
                self.win_sugg.extend_from_slice(sugg);
                self.win_spans.push((off, sugg.len()));
            }
            mlp_state(
                &self.obs_buf,
                &self.kinds,
                access.addr,
                access.pc,
                &self.cfg,
                &mut self.state_buf,
            );
            self.win_states.row_mut(k).copy_from_slice(&self.state_buf);
        }
        &self.win_states
    }

    /// Phase C of one decision window: sequential per-access bookkeeping
    /// in the exact sequential order — lazy rewards, next-state
    /// completion, ε-greedy selection off the precomputed Q row (same RNG
    /// draw order as the sequential path, since phase A/B draw nothing),
    /// replay push, stats, and training tick. `q.row(row0 + k)` must hold
    /// the inference net's Q-values for access `k` of the
    /// [`ResembleMlp::window_prepare`]d `chunk`; `row0` lets pooled
    /// callers pass a shared Q matrix covering several sessions' windows.
    pub fn window_commit(
        &mut self,
        chunk: &[(MemAccess, bool)],
        q: &Matrix,
        row0: usize,
        mut emit: impl FnMut(usize, &[u64]),
    ) {
        debug_assert!(row0 + chunk.len() <= q.rows(), "Q rows cover the chunk");
        let members = self.bank.len();
        for (k, (access, _)) in chunk.iter().enumerate() {
            let block = block_of(access.addr);
            self.replay.on_access(block, &mut self.assigned);
            let reward_sum: f64 = self.assigned.iter().map(|&(_, r)| r as f64).sum();
            if let Some(pid) = self.prev_id {
                self.replay.set_next_state(pid, self.win_states.row(k));
            }
            let action = self.agent.select_action_from_q(q.row(row0 + k));
            self.blocks_buf.clear();
            let mut issued: &[u64] = &[];
            if action < members {
                let (off, len) = self.win_spans[k * members + action];
                issued = &self.win_sugg[off..off + len];
                self.blocks_buf.extend(issued.iter().map(|&p| block_of(p)));
            }
            self.prev_id = Some(
                self.replay
                    .push(self.win_states.row(k), action, &self.blocks_buf),
            );
            self.stats.record(action, reward_sum);
            self.agent.train_tick(&mut self.replay);
            emit(k, issued);
        }
    }

    /// Phase B through this controller's *own* inference net: forward the
    /// states captured by the last [`ResembleMlp::window_prepare`] into
    /// `q`. This is the unpooled fallback between prepare and commit —
    /// bit-identical to the shared-weight path because a frozen pooled net
    /// is a clone of these same weights.
    pub fn window_forward(&mut self, q: &mut Matrix) {
        let states = std::mem::take(&mut self.win_states);
        self.agent.q_batch_into(&states, q);
        self.win_states = states;
    }

    /// `true` when the agent is frozen (inference only). Frozen
    /// controllers with equal `(config, seed)` have bit-identical,
    /// never-changing inference weights — the property the serve layer's
    /// shared-weight session pool is keyed on.
    pub fn is_frozen(&self) -> bool {
        self.agent.frozen
    }

    /// Serialize the controller's learned state (see
    /// [`DqnAgent::save_checkpoint`]). Bank and replay contents are *not*
    /// included: a warm resume restores the networks and the ε/training
    /// schedule, while prefetcher tables and replay refill online.
    pub fn save_checkpoint<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        self.agent.save_checkpoint(w)
    }

    /// Restore state written by [`ResembleMlp::save_checkpoint`] (see
    /// [`DqnAgent::restore_checkpoint`] for validation semantics).
    pub fn load_checkpoint<R: std::io::Read>(&mut self, r: &mut R) -> std::io::Result<()> {
        self.agent.restore_checkpoint(r)
    }
}

impl Prefetcher for ResembleMlp {
    fn name(&self) -> &'static str {
        match self.datapath {
            Datapath::Batched => "resemble",
            Datapath::PerSample => "resemble_ref",
        }
    }

    fn kind(&self) -> PredictionKind {
        PredictionKind::Temporal // outputs range over the full address space
    }

    fn on_access(&mut self, access: &MemAccess, hit: bool, out: &mut Vec<u64>) {
        let block = block_of(access.addr);
        // Lazy reward delivery from the current address (Alg 1 lines 24–30).
        self.replay.on_access(block, &mut self.assigned);
        let reward_sum: f64 = self.assigned.iter().map(|&(_, r)| r as f64).sum();

        // Observation and state (Eq. 4–6).
        self.obs_buf.clear();
        self.obs_buf
            .extend_from_slice(self.bank.observe(access, hit));
        mlp_state(
            &self.obs_buf,
            &self.kinds,
            access.addr,
            access.pc,
            &self.cfg,
            &mut self.state_buf,
        );

        // Complete the previous transition (Alg 1 line 23).
        if let Some(pid) = self.prev_id {
            self.replay.set_next_state(pid, &self.state_buf);
        }

        // Select and execute the action (Alg 1 lines 10–20). The reward
        // tracks the member's top-1 block; the issued prefetches are the
        // member's full suggestion list.
        let action = self.agent.select_action(&self.state_buf);
        self.blocks_buf.clear();
        if action < self.bank.len() {
            let sugg = self.bank.suggestions(action);
            out.extend_from_slice(sugg);
            self.blocks_buf.extend(sugg.iter().map(|&p| block_of(p)));
        }
        self.prev_id = Some(self.replay.push(&self.state_buf, action, &self.blocks_buf));
        self.stats.record(action, reward_sum);

        // Online training tick (Alg 1 lines 31–39).
        self.agent.train_tick(&mut self.replay);
    }

    fn on_prefetch_fill(&mut self, addr: u64) {
        self.bank.on_prefetch_fill(addr);
    }

    fn on_demand_fill(&mut self, addr: u64) {
        self.bank.on_demand_fill(addr);
    }

    fn on_evict(&mut self, addr: u64, unused_prefetch: bool) {
        self.bank.on_evict(addr, unused_prefetch);
    }

    fn on_cache_events(&mut self, events: &[CacheEvent]) {
        // One virtual dispatch per bank member per drained batch, instead
        // of the default per-event fan-out through the hooks above. Each
        // member still sees the events in occurrence order.
        self.bank.on_cache_events(events);
    }

    fn budget_bytes(&self) -> usize {
        // Controller storage (Table VIII: two 16-bit MLPs on chip) on top
        // of the input prefetchers' own budgets.
        self.bank.budget_bytes() + self.agent.param_count() * 2
    }

    fn reset(&mut self) {
        self.bank.reset();
        self.agent = DqnAgent::new(self.cfg, self.seed);
        self.agent.set_datapath(self.datapath);
        self.replay = ReplayMemory::new(
            self.cfg.replay_capacity,
            self.cfg.window,
            self.cfg.input_dim(),
        );
        self.stats = EnsembleStats::new(self.cfg.action_dim, 1000);
        self.prev_id = None;
    }
}

/// The tabular (Q-table) ReSemble variant, §IV-F.
pub struct ResembleTabular {
    bank: PrefetcherBank,
    kinds: Vec<PredictionKind>,
    agent: TabularAgent,
    cfg: ResembleConfig,
    hash_bits: u32,
    seed: u64,
    obs_buf: Vec<Option<u64>>,
    state_buf: Vec<u16>,
    blocks_buf: Vec<u64>,
    rewards_buf: Vec<f32>,
    /// online learning statistics (Table VI, Figs 6–7)
    pub stats: EnsembleStats,
}

impl ResembleTabular {
    /// Wrap a bank with a tabular controller using `hash_bits`-bit hashing
    /// (4 or 8 in the paper).
    pub fn new(bank: PrefetcherBank, cfg: ResembleConfig, hash_bits: u32, seed: u64) -> Self {
        assert_eq!(bank.len(), cfg.state_dim, "bank size must equal state_dim");
        let kinds = bank.kinds();
        Self {
            kinds,
            agent: TabularAgent::new(cfg, hash_bits, seed),
            stats: EnsembleStats::new(cfg.action_dim, 1000),
            cfg,
            hash_bits,
            seed,
            bank,
            obs_buf: Vec::new(),
            state_buf: Vec::new(),
            blocks_buf: Vec::new(),
            rewards_buf: Vec::new(),
        }
    }

    /// The paper's ReSemble-T: 8-bit hashing over the Table II bank.
    pub fn from_paper(seed: u64) -> Self {
        Self::new(
            resemble_prefetch::paper_bank(),
            ResembleConfig::default(),
            8,
            seed,
        )
    }

    /// The underlying tabular agent (unique-state counts etc.).
    pub fn agent(&self) -> &TabularAgent {
        &self.agent
    }
}

impl Prefetcher for ResembleTabular {
    fn name(&self) -> &'static str {
        "resemble_t"
    }

    fn kind(&self) -> PredictionKind {
        PredictionKind::Temporal
    }

    fn on_access(&mut self, access: &MemAccess, hit: bool, out: &mut Vec<u64>) {
        let block = block_of(access.addr);
        self.agent.on_access(block, &mut self.rewards_buf);
        let reward_sum: f64 = self.rewards_buf.iter().map(|&r| r as f64).sum();

        self.obs_buf.clear();
        self.obs_buf
            .extend_from_slice(self.bank.observe(access, hit));
        tabular_state(
            &self.obs_buf,
            &self.kinds,
            access.addr,
            access.pc,
            self.hash_bits,
            self.cfg.with_pc,
            &mut self.state_buf,
        );
        let token = self.agent.tokenize(&self.state_buf);
        self.agent.set_next_token(token);

        let action = self.agent.select_action(token);
        self.blocks_buf.clear();
        if action < self.bank.len() {
            let sugg = self.bank.suggestions(action);
            out.extend_from_slice(sugg);
            self.blocks_buf.extend(sugg.iter().map(|&p| block_of(p)));
        }
        self.agent.record(token, action, &self.blocks_buf);
        self.stats.record(action, reward_sum);
    }

    fn on_prefetch_fill(&mut self, addr: u64) {
        self.bank.on_prefetch_fill(addr);
    }

    fn on_demand_fill(&mut self, addr: u64) {
        self.bank.on_demand_fill(addr);
    }

    fn on_evict(&mut self, addr: u64, unused_prefetch: bool) {
        self.bank.on_evict(addr, unused_prefetch);
    }

    fn on_cache_events(&mut self, events: &[CacheEvent]) {
        // One virtual dispatch per bank member per drained batch (see
        // `ResembleMlp::on_cache_events`).
        self.bank.on_cache_events(events);
    }

    fn budget_bytes(&self) -> usize {
        // Q-table storage grows with tokenized unique states (Table IV).
        self.bank.budget_bytes() + self.agent.table_entries() * 2
    }

    fn reset(&mut self) {
        self.bank.reset();
        self.agent = TabularAgent::new(self.cfg, self.hash_bits, self.seed);
        self.stats = EnsembleStats::new(self.cfg.action_dim, 1000);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resemble_prefetch::{NextLine, PrefetcherBank};
    use resemble_trace::gen::{PointerChaseGen, StreamGen, TraceSource};

    /// A deliberately bad prefetcher: suggests a far-away block that is
    /// never demanded.
    struct Junk;
    impl Prefetcher for Junk {
        fn name(&self) -> &'static str {
            "junk"
        }
        fn kind(&self) -> PredictionKind {
            PredictionKind::Temporal
        }
        fn on_access(&mut self, a: &MemAccess, _h: bool, out: &mut Vec<u64>) {
            out.push(a.addr ^ 0x5555_5400_0000);
        }
        fn budget_bytes(&self) -> usize {
            0
        }
        fn reset(&mut self) {}
    }

    fn two_bank() -> PrefetcherBank {
        PrefetcherBank::new(vec![Box::new(NextLine::new(1)), Box::new(Junk)])
    }

    fn small_cfg() -> ResembleConfig {
        ResembleConfig {
            state_dim: 2,
            action_dim: 3,
            hidden_dim: 16,
            batch_size: 16,
            window: 64,
            eps_decay: 200.0,
            learning_rate: 0.05,
            ..ResembleConfig::default()
        }
    }

    #[test]
    fn mlp_controller_learns_to_avoid_junk_on_stream() {
        let mut ctl = ResembleMlp::new(two_bank(), small_cfg(), 42);
        let mut src = StreamGen::new(1, 1, 1_000_000, 0).with_write_ratio(0.0);
        let mut out = Vec::new();
        for _ in 0..30_000 {
            let a = src.next_access().unwrap();
            out.clear();
            ctl.on_access(&a, false, &mut out);
        }
        // Late windows: next-line (action 0) should dominate junk (action 1).
        let n = ctl.stats.window_actions.len();
        let late = &ctl.stats.window_actions[n - 5..];
        let a0: u32 = late.iter().map(|w| w[0]).sum();
        let a1: u32 = late.iter().map(|w| w[1]).sum();
        assert!(a0 > 3 * a1, "next_line {a0} vs junk {a1}");
        // Rewards trend positive.
        let late_r: f64 = ctl.stats.window_rewards[n - 5..].iter().sum::<f64>() / 5.0;
        assert!(late_r > 0.0, "late mean window reward {late_r}");
    }

    #[test]
    fn tabular_controller_learns_too() {
        let mut ctl = ResembleTabular::new(two_bank(), small_cfg(), 8, 42);
        let mut src = StreamGen::new(1, 1, 1_000_000, 0).with_write_ratio(0.0);
        let mut out = Vec::new();
        for _ in 0..30_000 {
            let a = src.next_access().unwrap();
            out.clear();
            ctl.on_access(&a, false, &mut out);
        }
        let n = ctl.stats.window_actions.len();
        let late = &ctl.stats.window_actions[n - 5..];
        let a0: u32 = late.iter().map(|w| w[0]).sum();
        let a1: u32 = late.iter().map(|w| w[1]).sum();
        assert!(a0 > 2 * a1, "next_line {a0} vs junk {a1}");
        assert!(ctl.agent().unique_states() > 0);
    }

    #[test]
    fn controller_emits_at_most_one_prefetch() {
        let mut ctl = ResembleMlp::new(two_bank(), small_cfg(), 3);
        let mut src = PointerChaseGen::new(2, 2, 50, 1);
        let mut out = Vec::new();
        for _ in 0..2000 {
            let a = src.next_access().unwrap();
            out.clear();
            ctl.on_access(&a, false, &mut out);
            assert!(out.len() <= 1);
        }
        // All three actions exercised under exploration.
        assert!(ctl.stats.action_counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn window_decisions_bit_identical_to_sequential() {
        // The serving hot path: chunked on_access_window (batched target
        // forwards) must match per-access on_access exactly — decisions,
        // learned parameters, and stats. Chunk sizes deliberately cross
        // role-switch boundaries (I_t = 20) and include batch-of-1.
        let mut seq = ResembleMlp::new(two_bank(), small_cfg(), 42);
        let mut win = ResembleMlp::new(two_bank(), small_cfg(), 42);
        let mut src = StreamGen::new(3, 2, 4096, 0).with_write_ratio(0.1);
        let accesses: Vec<(MemAccess, bool)> = (0..3000)
            .map(|i| (src.next_access().unwrap(), i % 3 == 0))
            .collect();

        let mut seq_out: Vec<Vec<u64>> = Vec::new();
        let mut buf = Vec::new();
        for (a, hit) in &accesses {
            buf.clear();
            seq.on_access(a, *hit, &mut buf);
            seq_out.push(buf.clone());
        }

        let mut win_out: Vec<Vec<u64>> = vec![Vec::new(); accesses.len()];
        let chunk_sizes = [1usize, 7, 64, 3, 20, 41, 2, 128];
        let mut pos = 0;
        let mut ci = 0;
        while pos < accesses.len() {
            let m = chunk_sizes[ci % chunk_sizes.len()].min(accesses.len() - pos);
            win.on_access_window(&accesses[pos..pos + m], |k, issued| {
                win_out[pos + k] = issued.to_vec();
            });
            pos += m;
            ci += 1;
        }

        assert_eq!(seq_out, win_out, "issued prefetches diverged");
        assert_eq!(
            seq.agent().param_bits(),
            win.agent().param_bits(),
            "trained parameters diverged"
        );
        assert_eq!(seq.stats.accesses(), win.stats.accesses());
        assert_eq!(seq.stats.action_counts, win.stats.action_counts);
        assert_eq!(
            seq.stats
                .window_rewards
                .iter()
                .map(|r| r.to_bits())
                .collect::<Vec<_>>(),
            win.stats
                .window_rewards
                .iter()
                .map(|r| r.to_bits())
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn split_prepare_commit_through_shared_net_matches_fused_window() {
        // The serve layer's cross-session pooled path: phase B runs
        // through a *clone* of the frozen inference net (shared by many
        // sessions, states packed into one matrix at arbitrary row
        // offsets), phases A/C through the session's own controller. Must
        // be bit-identical to the fused on_access_window path.
        let mut fused = ResembleMlp::new(two_bank(), small_cfg(), 42);
        fused.agent_mut().frozen = true;
        let mut split = ResembleMlp::new(two_bank(), small_cfg(), 42);
        split.agent_mut().frozen = true;
        let shared = split.agent().inference_net().clone();
        let mut scratch = resemble_nn::BatchScratch::default();

        let mut src = StreamGen::new(3, 2, 4096, 0).with_write_ratio(0.1);
        let accesses: Vec<(MemAccess, bool)> = (0..600)
            .map(|i| (src.next_access().unwrap(), i % 4 == 0))
            .collect();

        let mut fused_out: Vec<Vec<u64>> = vec![Vec::new(); accesses.len()];
        let mut split_out: Vec<Vec<u64>> = vec![Vec::new(); accesses.len()];
        let row0 = 3usize; // simulate other sessions' rows packed ahead
        for (c, chunk) in accesses.chunks(37).enumerate() {
            let pos = c * 37;
            fused.on_access_window(chunk, |k, issued| {
                fused_out[pos + k] = issued.to_vec();
            });
            let states = split.window_prepare(chunk);
            let mut padded = Matrix::zeros(row0 + chunk.len(), states.cols());
            for r in 0..row0 {
                padded.row_mut(r).fill(0.25); // junk rows from "other sessions"
            }
            for r in 0..chunk.len() {
                padded.row_mut(row0 + r).copy_from_slice(states.row(r));
            }
            let q = shared.forward_batch(&padded, &mut scratch);
            split.window_commit(chunk, q, row0, |k, issued| {
                split_out[pos + k] = issued.to_vec();
            });
        }
        assert_eq!(fused_out, split_out, "issued prefetches diverged");
        assert_eq!(fused.agent().param_bits(), split.agent().param_bits());
        assert_eq!(fused.stats.accesses(), split.stats.accesses());
        assert_eq!(fused.stats.action_counts, split.stats.action_counts);
    }

    #[test]
    fn controller_checkpoint_round_trip_is_bit_identical() {
        let mut trained = ResembleMlp::new(two_bank(), small_cfg(), 21);
        let mut src = StreamGen::new(2, 1, 2048, 0);
        let mut out = Vec::new();
        for _ in 0..800 {
            let a = src.next_access().unwrap();
            out.clear();
            trained.on_access(&a, false, &mut out);
        }
        let mut buf = Vec::new();
        trained.save_checkpoint(&mut buf).expect("saves");
        let mut warm = ResembleMlp::new(two_bank(), small_cfg(), 21);
        warm.load_checkpoint(&mut buf.as_slice()).expect("loads");
        assert_eq!(warm.agent().param_bits(), trained.agent().param_bits());
        assert!(!warm.is_frozen());
    }

    #[test]
    fn stats_windows_cover_accesses() {
        let mut ctl = ResembleMlp::new(two_bank(), small_cfg(), 3);
        let mut src = StreamGen::new(5, 2, 512, 1);
        let mut out = Vec::new();
        for _ in 0..3500 {
            let a = src.next_access().unwrap();
            out.clear();
            ctl.on_access(&a, false, &mut out);
        }
        assert_eq!(ctl.stats.accesses(), 3500);
        assert_eq!(ctl.stats.window_rewards.len(), 3); // 1000-access windows
        assert_eq!(ctl.stats.window_actions.len(), 3);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut ctl = ResembleTabular::new(two_bank(), small_cfg(), 8, 1);
        let mut src = StreamGen::new(5, 1, 512, 1);
        let mut out = Vec::new();
        for _ in 0..500 {
            let a = src.next_access().unwrap();
            out.clear();
            ctl.on_access(&a, false, &mut out);
        }
        assert!(ctl.agent().unique_states() > 0);
        ctl.reset();
        assert_eq!(ctl.agent().unique_states(), 0);
        assert_eq!(ctl.stats.accesses(), 0);
    }

    #[test]
    fn paper_constructors_have_paper_dims() {
        let m = ResembleMlp::from_paper(1);
        assert_eq!(m.config().state_dim, 4);
        assert_eq!(m.config().action_dim, 5);
        let t = ResembleTabular::from_paper(1);
        assert_eq!(t.agent().hash_bits(), 8);
    }
}
