//! Non-RL ensemble baselines, principally SBP(E) — the paper's extended
//! Sandbox Prefetcher (§V-C1).
//!
//! SBP(E) evaluates every input prefetcher in a *sandbox*: each member's
//! suggestions are recorded (not issued) in a 256-entry history buffer
//! (replacing the original SBP's Bloom filter, "which provides more
//! accurate filter matching"), and the member whose recent suggestions
//! best match the subsequent demand stream is selected greedily to issue
//! real prefetches. The averaging over the evaluation buffer is exactly
//! what produces the *response lag* the paper's RL controller avoids.

use resemble_prefetch::{PredictionKind, Prefetcher, PrefetcherBank};
use resemble_trace::record::block_of;
use resemble_trace::util::FxHashMap;
use resemble_trace::MemAccess;
use std::collections::VecDeque;

/// Sliding-window sandbox evaluating one prefetcher's suggestion accuracy.
#[derive(Debug, Default)]
struct Sandbox {
    /// (id, block, hit) of recent suggestions, oldest first
    entries: VecDeque<(u64, u64, bool)>,
    /// block → ids of unhit entries
    by_block: FxHashMap<u64, VecDeque<u64>>,
    next_id: u64,
    hits: u32,
    cap: usize,
}

impl Sandbox {
    fn new(cap: usize) -> Self {
        Self {
            cap,
            ..Default::default()
        }
    }

    /// Record a suggestion.
    fn add(&mut self, block: u64) {
        let id = self.next_id;
        self.next_id += 1;
        self.entries.push_back((id, block, false));
        self.by_block.entry(block).or_default().push_back(id);
        while self.entries.len() > self.cap {
            let (old_id, old_block, hit) = self.entries.pop_front().expect("non-empty");
            if hit {
                self.hits -= 1;
            } else if let Some(q) = self.by_block.get_mut(&old_block) {
                q.retain(|&x| x != old_id);
                if q.is_empty() {
                    self.by_block.remove(&old_block);
                }
            }
        }
    }

    /// Observe a demand block: marks the oldest matching unhit suggestion
    /// as a sandbox hit.
    fn observe(&mut self, block: u64) {
        let Some(q) = self.by_block.get_mut(&block) else {
            return;
        };
        let Some(id) = q.pop_front() else { return };
        if q.is_empty() {
            self.by_block.remove(&block);
        }
        let front_id = match self.entries.front() {
            Some(&(f, _, _)) => f,
            None => return,
        };
        let idx = (id - front_id) as usize;
        if let Some(e) = self.entries.get_mut(idx) {
            debug_assert_eq!(e.0, id);
            e.2 = true;
            self.hits += 1;
        }
    }

    /// Fraction of recent suggestions that hit.
    fn accuracy(&self) -> f64 {
        if self.entries.is_empty() {
            0.0
        } else {
            self.hits as f64 / self.entries.len() as f64
        }
    }
}

/// SBP(E): sandbox-evaluated greedy ensemble selection.
pub struct SbpE {
    bank: PrefetcherBank,
    sandboxes: Vec<Sandbox>,
    active: usize,
    buffer_size: usize,
    obs_buf: Vec<Option<u64>>,
    /// per-member selection counts (response-lag analysis)
    pub selections: Vec<u64>,
    /// number of times the active member changed
    pub switches: u64,
}

impl SbpE {
    /// Wrap a bank with a sandbox selector; `buffer_size` is the history
    /// buffer per member (256 in the paper, "the same as a training batch
    /// in the example ReSemble").
    pub fn new(bank: PrefetcherBank, buffer_size: usize) -> Self {
        assert!(buffer_size > 0);
        let n = bank.len();
        Self {
            sandboxes: (0..n).map(|_| Sandbox::new(buffer_size)).collect(),
            active: 0,
            buffer_size,
            obs_buf: Vec::new(),
            selections: vec![0; n],
            switches: 0,
            bank,
        }
    }

    /// The paper's SBP(E): BO + SPP + ISB + Domino, 256-entry buffers.
    pub fn from_paper() -> Self {
        Self::new(resemble_prefetch::paper_bank(), 256)
    }

    /// Currently selected member index.
    pub fn active_member(&self) -> usize {
        self.active
    }

    /// Sandbox accuracy of each member.
    pub fn accuracies(&self) -> Vec<f64> {
        self.sandboxes.iter().map(Sandbox::accuracy).collect()
    }
}

impl Prefetcher for SbpE {
    fn name(&self) -> &'static str {
        "sbp_e"
    }

    fn kind(&self) -> PredictionKind {
        PredictionKind::Temporal
    }

    fn on_access(&mut self, access: &MemAccess, hit: bool, out: &mut Vec<u64>) {
        let block = block_of(access.addr);
        // Evaluate: does this demand validate any sandboxed suggestion?
        for s in &mut self.sandboxes {
            s.observe(block);
        }
        // Collect fresh suggestions and sandbox them all.
        self.obs_buf.clear();
        self.obs_buf
            .extend_from_slice(self.bank.observe(access, hit));
        for (s, p) in self.sandboxes.iter_mut().zip(&self.obs_buf) {
            if let Some(p) = p {
                s.add(block_of(*p));
            }
        }
        // Greedy selection by recent accuracy (ties keep the incumbent —
        // this hysteresis is the source of the paper's "response lag").
        let (mut best, mut best_acc) = (self.active, self.sandboxes[self.active].accuracy());
        for (i, s) in self.sandboxes.iter().enumerate() {
            let acc = s.accuracy();
            if acc > best_acc {
                best = i;
                best_acc = acc;
            }
        }
        if best != self.active {
            self.active = best;
            self.switches += 1;
        }
        self.selections[self.active] += 1;
        if self.obs_buf[self.active].is_some() {
            out.extend_from_slice(self.bank.suggestions(self.active));
        }
    }

    fn on_prefetch_fill(&mut self, addr: u64) {
        self.bank.on_prefetch_fill(addr);
    }

    fn on_demand_fill(&mut self, addr: u64) {
        self.bank.on_demand_fill(addr);
    }

    fn on_evict(&mut self, addr: u64, unused_prefetch: bool) {
        self.bank.on_evict(addr, unused_prefetch);
    }

    fn budget_bytes(&self) -> usize {
        // Bank + per-member history buffers (8 B per entry).
        self.bank.budget_bytes() + self.sandboxes.len() * self.buffer_size * 8
    }

    fn reset(&mut self) {
        self.bank.reset();
        let n = self.sandboxes.len();
        self.sandboxes = (0..n).map(|_| Sandbox::new(self.buffer_size)).collect();
        self.active = 0;
        self.selections = vec![0; n];
        self.switches = 0;
    }
}

/// Always selects one fixed member (per-member upper/lower reference).
pub struct StaticSelect {
    bank: PrefetcherBank,
    member: usize,
    obs_buf: Vec<Option<u64>>,
}

impl StaticSelect {
    /// Select member `member` of `bank` forever.
    pub fn new(bank: PrefetcherBank, member: usize) -> Self {
        assert!(member < bank.len());
        Self {
            bank,
            member,
            obs_buf: Vec::new(),
        }
    }
}

impl Prefetcher for StaticSelect {
    fn name(&self) -> &'static str {
        "static_select"
    }

    fn kind(&self) -> PredictionKind {
        PredictionKind::Temporal
    }

    fn on_access(&mut self, access: &MemAccess, hit: bool, out: &mut Vec<u64>) {
        self.obs_buf.clear();
        self.obs_buf
            .extend_from_slice(self.bank.observe(access, hit));
        if self.obs_buf[self.member].is_some() {
            out.extend_from_slice(self.bank.suggestions(self.member));
        }
    }

    fn on_prefetch_fill(&mut self, addr: u64) {
        self.bank.on_prefetch_fill(addr);
    }

    fn on_demand_fill(&mut self, addr: u64) {
        self.bank.on_demand_fill(addr);
    }

    fn budget_bytes(&self) -> usize {
        self.bank.budget_bytes()
    }

    fn reset(&mut self) {
        self.bank.reset();
    }
}

/// Round-robin selection (a deliberately naive ensemble reference).
pub struct RoundRobinSelect {
    bank: PrefetcherBank,
    next: usize,
    obs_buf: Vec<Option<u64>>,
}

impl RoundRobinSelect {
    /// Rotate through the bank's members, one per access.
    pub fn new(bank: PrefetcherBank) -> Self {
        Self {
            bank,
            next: 0,
            obs_buf: Vec::new(),
        }
    }
}

impl Prefetcher for RoundRobinSelect {
    fn name(&self) -> &'static str {
        "round_robin"
    }

    fn kind(&self) -> PredictionKind {
        PredictionKind::Temporal
    }

    fn on_access(&mut self, access: &MemAccess, hit: bool, out: &mut Vec<u64>) {
        self.obs_buf.clear();
        self.obs_buf
            .extend_from_slice(self.bank.observe(access, hit));
        let m = self.next;
        self.next = (self.next + 1) % self.bank.len();
        if self.obs_buf[m].is_some() {
            out.extend_from_slice(self.bank.suggestions(m));
        }
    }

    fn on_prefetch_fill(&mut self, addr: u64) {
        self.bank.on_prefetch_fill(addr);
    }

    fn on_demand_fill(&mut self, addr: u64) {
        self.bank.on_demand_fill(addr);
    }

    fn budget_bytes(&self) -> usize {
        self.bank.budget_bytes()
    }

    fn reset(&mut self) {
        self.bank.reset();
        self.next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resemble_prefetch::NextLine;
    use resemble_trace::gen::{StreamGen, TraceSource};

    struct Junk;
    impl Prefetcher for Junk {
        fn name(&self) -> &'static str {
            "junk"
        }
        fn kind(&self) -> PredictionKind {
            PredictionKind::Temporal
        }
        fn on_access(&mut self, a: &MemAccess, _h: bool, out: &mut Vec<u64>) {
            out.push(a.addr ^ 0x7777_0000_0000);
        }
        fn budget_bytes(&self) -> usize {
            0
        }
        fn reset(&mut self) {}
    }

    #[test]
    fn sandbox_accuracy_tracks_hits() {
        let mut s = Sandbox::new(4);
        s.add(10);
        s.add(20);
        s.observe(10);
        assert_eq!(s.accuracy(), 0.5);
        // Expiry drops both entry and hit.
        for b in [30, 40, 50, 60] {
            s.add(b);
        }
        assert_eq!(s.accuracy(), 0.0);
    }

    #[test]
    fn sandbox_double_observe_counts_once_per_entry() {
        let mut s = Sandbox::new(8);
        s.add(10);
        s.observe(10);
        s.observe(10); // no second unhit entry
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn sbpe_selects_the_accurate_member_on_stream() {
        let bank = PrefetcherBank::new(vec![Box::new(Junk), Box::new(NextLine::new(1))]);
        let mut sbp = SbpE::new(bank, 64);
        let mut src = StreamGen::new(1, 1, 1_000_000, 0).with_write_ratio(0.0);
        let mut out = Vec::new();
        for _ in 0..2000 {
            let a = src.next_access().unwrap();
            out.clear();
            sbp.on_access(&a, false, &mut out);
        }
        assert_eq!(sbp.active_member(), 1, "accuracies={:?}", sbp.accuracies());
        assert!(sbp.selections[1] > sbp.selections[0]);
    }

    #[test]
    fn sbpe_exhibits_response_lag() {
        // Junk-then-perfect phase change: SBP keeps the stale choice for a
        // while because the sandbox average must catch up.
        let bank = PrefetcherBank::new(vec![Box::new(NextLine::new(1)), Box::new(Junk)]);
        let mut sbp = SbpE::new(bank, 128);
        let mut src = StreamGen::new(2, 1, 1_000_000, 0).with_write_ratio(0.0);
        let mut out = Vec::new();
        // Train on the stream: member 0 (next-line) becomes active.
        for _ in 0..1000 {
            let a = src.next_access().unwrap();
            out.clear();
            sbp.on_access(&a, false, &mut out);
        }
        assert_eq!(sbp.active_member(), 0);
        // Phase change to random traffic: next-line goes stale, but the
        // incumbent must persist for some accesses (the lag).
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut lag = 0;
        for i in 0..500u64 {
            let a = MemAccess::load(i, 0, rng.gen_range(0x1_0000u64..0x100_0000_0000) & !63);
            out.clear();
            sbp.on_access(&a, false, &mut out);
            if sbp.active_member() == 0 {
                lag += 1;
            }
        }
        assert!(lag > 10, "expected response lag, lag={lag}");
    }

    #[test]
    fn static_and_round_robin_select_expected_members() {
        let bank = PrefetcherBank::new(vec![Box::new(NextLine::new(1)), Box::new(Junk)]);
        let mut st = StaticSelect::new(bank, 0);
        let a = MemAccess::load(0, 0, 0x1000);
        let mut out = Vec::new();
        st.on_access(&a, false, &mut out);
        assert_eq!(out, vec![0x1040]);

        let bank = PrefetcherBank::new(vec![Box::new(NextLine::new(1)), Box::new(Junk)]);
        let mut rr = RoundRobinSelect::new(bank);
        out.clear();
        rr.on_access(&a, false, &mut out);
        assert_eq!(out, vec![0x1040]); // member 0 first
        out.clear();
        rr.on_access(&a, false, &mut out);
        assert_eq!(out, vec![0x1000 ^ 0x7777_0000_0000]); // member 1 next
    }
}
