//! ReSemble framework configuration — Table III of the paper.

use serde::{Deserialize, Serialize};

/// Configuration of the ensemble framework (environment + agent columns of
/// Table III). Defaults are the paper's values.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ResembleConfig {
    // --- environment / preprocessing ---
    /// Address width in bits (64).
    pub address_bits: u32,
    /// Block offset bits (6).
    pub block_offset: u32,
    /// Page offset bits (12).
    pub page_offset: u32,
    /// Number of input prefetchers = state dimension S (4).
    pub state_dim: usize,
    /// Action dimension A = S + 1 for "no prefetch" (5).
    pub action_dim: usize,
    /// Hash bits for MLP preprocessing (16).
    pub hash_bits: u32,
    /// Include the hashed PC as an extra state feature (Table VI ablation).
    pub with_pc: bool,

    // --- agent ---
    /// Replay memory capacity R (2000).
    pub replay_capacity: usize,
    /// Prefetch reward window W in accesses (256).
    pub window: usize,
    /// Training batch size (256).
    pub batch_size: usize,
    /// ε-greedy start (0.95).
    pub eps_start: f64,
    /// ε-greedy end (0.005).
    pub eps_end: f64,
    /// ε decay constant (80).
    pub eps_decay: f64,
    /// Policy-net update interval I_p in steps (1).
    pub policy_update_interval: u64,
    /// Target-net role-switch interval I_t in steps (20).
    pub target_update_interval: u64,
    /// Hidden layer width H (100).
    pub hidden_dim: usize,
    /// Reward discount factor γ.
    pub gamma: f32,
    /// SGD learning rate α.
    pub learning_rate: f32,
}

impl Default for ResembleConfig {
    fn default() -> Self {
        Self {
            address_bits: 64,
            block_offset: 6,
            page_offset: 12,
            state_dim: 4,
            action_dim: 5,
            hash_bits: 16,
            with_pc: false,
            replay_capacity: 2000,
            window: 256,
            batch_size: 256,
            eps_start: 0.95,
            eps_end: 0.005,
            eps_decay: 80.0,
            policy_update_interval: 1,
            target_update_interval: 20,
            hidden_dim: 100,
            gamma: 0.9,
            learning_rate: 0.05,
        }
    }
}

impl ResembleConfig {
    /// Configuration for `n` input prefetchers (state dim n, action dim n+1).
    pub fn for_inputs(n: usize) -> Self {
        assert!(n >= 1);
        Self {
            state_dim: n,
            action_dim: n + 1,
            ..Self::default()
        }
    }

    /// A cheaper training configuration for laptop-scale harness runs:
    /// batch 32 instead of 256 (the paper trains the 256-batch on a GPU).
    /// Ablation `ablation_replay` quantifies the difference.
    pub fn fast() -> Self {
        Self {
            batch_size: 32,
            ..Self::default()
        }
    }

    /// ε at a given step (the paper's exponential decay schedule).
    pub fn epsilon(&self, step: u64) -> f64 {
        self.eps_end + (self.eps_start - self.eps_end) * (-(step as f64) / self.eps_decay).exp()
    }

    /// MLP input dimension: S (+1 when the PC feature is on).
    pub fn input_dim(&self) -> usize {
        self.state_dim + usize::from(self.with_pc)
    }

    /// The "no prefetch" action index.
    pub fn np_action(&self) -> usize {
        self.action_dim - 1
    }

    /// Table III rows for the harness printer: (name, value) pairs.
    pub fn table_iii_rows(&self) -> Vec<(String, String)> {
        vec![
            ("Address bit".into(), self.address_bits.to_string()),
            ("Block offset".into(), self.block_offset.to_string()),
            ("Page offset".into(), self.page_offset.to_string()),
            ("State dimension S".into(), self.state_dim.to_string()),
            ("Action dimension A".into(), self.action_dim.to_string()),
            ("Hash bit (for MLP)".into(), self.hash_bits.to_string()),
            ("Replay memory R".into(), self.replay_capacity.to_string()),
            ("Prefetch window size W".into(), self.window.to_string()),
            (
                "Batch size for training".into(),
                self.batch_size.to_string(),
            ),
            ("eps_start".into(), self.eps_start.to_string()),
            ("eps_end".into(), self.eps_end.to_string()),
            ("decay".into(), self.eps_decay.to_string()),
            (
                "Policy net update interval I_p".into(),
                self.policy_update_interval.to_string(),
            ),
            (
                "Target net update interval I_t".into(),
                self.target_update_interval.to_string(),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_iii() {
        let c = ResembleConfig::default();
        assert_eq!(c.address_bits, 64);
        assert_eq!(c.block_offset, 6);
        assert_eq!(c.page_offset, 12);
        assert_eq!(c.state_dim, 4);
        assert_eq!(c.action_dim, 5);
        assert_eq!(c.hash_bits, 16);
        assert_eq!(c.replay_capacity, 2000);
        assert_eq!(c.window, 256);
        assert_eq!(c.batch_size, 256);
        assert_eq!(c.eps_start, 0.95);
        assert_eq!(c.eps_end, 0.005);
        assert_eq!(c.eps_decay, 80.0);
        assert_eq!(c.policy_update_interval, 1);
        assert_eq!(c.target_update_interval, 20);
        assert_eq!(c.hidden_dim, 100);
    }

    #[test]
    fn epsilon_decays_from_start_to_end() {
        let c = ResembleConfig::default();
        assert!((c.epsilon(0) - 0.95).abs() < 1e-9);
        assert!(c.epsilon(100) < c.epsilon(10));
        assert!((c.epsilon(1_000_000) - 0.005).abs() < 1e-9);
    }

    #[test]
    fn input_dim_with_pc() {
        let mut c = ResembleConfig::default();
        assert_eq!(c.input_dim(), 4);
        c.with_pc = true;
        assert_eq!(c.input_dim(), 5);
    }

    #[test]
    fn for_inputs_scales_dims() {
        let c = ResembleConfig::for_inputs(6);
        assert_eq!(c.state_dim, 6);
        assert_eq!(c.action_dim, 7);
        assert_eq!(c.np_action(), 6);
    }

    #[test]
    fn table_iii_renders_14_rows() {
        assert_eq!(ResembleConfig::default().table_iii_rows().len(), 14);
    }
}
