//! Replay memory with the paper's *lazy sampling* mechanism (§IV-D).
//!
//! A transition `(s_t, a_t, p_t, r_t, s_{t+1})` is pushed as soon as the
//! action is taken, but its reward arrives asynchronously from cache
//! feedback. The paper's reward is ±1 on the single issued prefetch; since
//! our ensemble actions issue the selected prefetcher's *full* suggestion
//! list (see `PrefetcherBank::suggestions`), the reward generalizes to the
//! number of issued blocks demanded within the window `W` (+k), or −1 when
//! none is — it degenerates to the paper's ±1 when every member suggests a
//! single address, and aligns the learning signal with the coverage metric
//! the evaluation reports. "No prefetch" still rewards 0 immediately.
//!
//! Only transitions whose reward *and* next state are known ("valid") may
//! be sampled for training — invalid transitions stay pended. This is the
//! paper's answer to the lag of cache feedback.
//!
//! **Storage layout.** States and next-states live in two flat `f32` ring
//! arrays (`capacity × state_dim`), not per-transition `Vec`s: a push is a
//! `copy_from_slice` into the ring (no allocation per access), and the DQN
//! minibatch gather reads contiguous rows straight out of the arrays. The
//! sampleable set is maintained incrementally (swap-remove indexed by an
//! `FxHashMap`) so drawing a batch is O(batch), not an O(live) prune per
//! training step.

use resemble_nn::AlignedVec;
use resemble_trace::util::FxHashMap;
use std::collections::VecDeque;

/// Per-slot transition bookkeeping; the state vectors live in the flat
/// rings owned by [`ReplayMemory`].
#[derive(Debug, Clone, Default)]
struct Slot {
    /// Monotone id of the occupant; doubles as the access timestamp.
    id: u64,
    occupied: bool,
    /// Action index a_t.
    action: usize,
    /// Block numbers of the issued prefetches (allocation reused across
    /// ring laps; empty for NP / padding).
    blocks: Vec<u64>,
    /// Hits observed so far among `blocks`.
    hits: u32,
    /// Reward r_t once finalized.
    reward: Option<f32>,
    /// `true` once s_{t+1} has been written to the next-state ring.
    has_next: bool,
}

/// Borrowed view of one stored transition: state slices point into the
/// replay's flat rings.
#[derive(Debug, Clone, Copy)]
pub struct TransitionView<'a> {
    /// Monotone id; doubles as the access timestamp (one transition per
    /// access).
    pub id: u64,
    /// Preprocessed state vector s_t.
    pub state: &'a [f32],
    /// Action index a_t.
    pub action: usize,
    /// Block numbers of the issued prefetches (empty for NP / padding).
    pub prefetch_blocks: &'a [u64],
    /// Hits observed so far among `prefetch_blocks`.
    pub hits: u32,
    /// Reward r_t once finalized.
    pub reward: Option<f32>,
    /// Next state s_{t+1} once known.
    pub next_state: Option<&'a [f32]>,
}

impl TransitionView<'_> {
    /// Sampleable: reward finalized and next state filled in.
    pub fn is_valid(&self) -> bool {
        self.reward.is_some() && self.next_state.is_some()
    }
}

/// Ring-buffer replay memory with pending-reward tracking and flat state
/// storage.
#[derive(Debug)]
pub struct ReplayMemory {
    capacity: usize,
    state_dim: usize,
    next_id: u64,
    window: u64,
    /// flat `capacity × state_dim` ring of states s_t, 64-byte aligned
    /// for the SIMD minibatch gather
    states: AlignedVec,
    /// flat `capacity × state_dim` ring of next states s_{t+1}
    next_states: AlignedVec,
    slots: Vec<Slot>,
    /// pending ids in order, awaiting reward finalization
    pending: VecDeque<u64>,
    /// block → pending transition ids with that block outstanding
    by_block: FxHashMap<u64, Vec<u64>>,
    /// currently-valid (sampleable) ids, maintained incrementally
    valid_ids: Vec<u64>,
    /// id → index into `valid_ids`, for O(1) swap-removal
    valid_pos: FxHashMap<u64, usize>,
}

impl ReplayMemory {
    /// Replay of `capacity` transitions of `state_dim`-float states with
    /// reward window `window`.
    pub fn new(capacity: usize, window: usize, state_dim: usize) -> Self {
        assert!(capacity > 0 && window > 0 && state_dim > 0);
        Self {
            capacity,
            state_dim,
            next_id: 0,
            window: window as u64,
            states: AlignedVec::zeroed(capacity * state_dim),
            next_states: AlignedVec::zeroed(capacity * state_dim),
            slots: vec![Slot::default(); capacity],
            pending: VecDeque::new(),
            by_block: FxHashMap::default(),
            valid_ids: Vec::new(),
            valid_pos: FxHashMap::default(),
        }
    }

    /// State vector width every pushed transition must match.
    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    /// Number of transitions currently stored.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.occupied).count()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.next_id == 0
    }

    /// Number of currently-valid (sampleable) transitions.
    pub fn valid_len(&self) -> usize {
        self.valid_ids.len()
    }

    #[inline]
    fn slot_of(&self, id: u64) -> usize {
        (id % self.capacity as u64) as usize
    }

    /// Mark `id` sampleable.
    fn mark_valid(&mut self, id: u64) {
        debug_assert!(!self.valid_pos.contains_key(&id));
        self.valid_pos.insert(id, self.valid_ids.len());
        self.valid_ids.push(id);
    }

    /// Drop `id` from the sampleable set (no-op when absent): O(1)
    /// swap-remove keeping `valid_pos` consistent.
    fn unmark_valid(&mut self, id: u64) {
        if let Some(pos) = self.valid_pos.remove(&id) {
            let last = self.valid_ids.len() - 1;
            self.valid_ids.swap_remove(pos);
            if pos <= last {
                if let Some(&moved) = self.valid_ids.get(pos) {
                    self.valid_pos.insert(moved, pos);
                }
            }
        }
    }

    /// Push a new transition; returns its id. An empty `prefetch_blocks`
    /// means NP (or a padded selection): the reward is 0 immediately.
    pub fn push(&mut self, state: &[f32], action: usize, prefetch_blocks: &[u64]) -> u64 {
        assert_eq!(state.len(), self.state_dim, "state width mismatch");
        let id = self.next_id;
        self.next_id += 1;
        let slot = self.slot_of(id);
        // Ring lap: the previous occupant (if any) leaves the sampleable
        // set before its storage is reused. Stale `pending`/`by_block`
        // references are filtered by the id check at their use sites.
        if self.slots[slot].occupied {
            let old = self.slots[slot].id;
            self.unmark_valid(old);
        }
        self.states[slot * self.state_dim..(slot + 1) * self.state_dim].copy_from_slice(state);
        let s = &mut self.slots[slot];
        s.id = id;
        s.occupied = true;
        s.action = action;
        s.blocks.clear();
        s.blocks.extend_from_slice(prefetch_blocks);
        s.hits = 0;
        s.reward = if prefetch_blocks.is_empty() {
            Some(0.0)
        } else {
            None
        };
        s.has_next = false;
        if !prefetch_blocks.is_empty() {
            self.pending.push_back(id);
            for &b in prefetch_blocks {
                self.by_block.entry(b).or_default().push(id);
            }
        }
        id
    }

    /// Fill in s_{t+1} for transition `id` (called at t+1 with the fresh
    /// state).
    pub fn set_next_state(&mut self, id: u64, next_state: &[f32]) {
        assert_eq!(next_state.len(), self.state_dim, "state width mismatch");
        let slot = self.slot_of(id);
        if self.slots[slot].occupied && self.slots[slot].id == id {
            self.next_states[slot * self.state_dim..(slot + 1) * self.state_dim]
                .copy_from_slice(next_state);
            let s = &mut self.slots[slot];
            let newly_valid = !s.has_next && s.reward.is_some();
            s.has_next = true;
            if newly_valid {
                self.mark_valid(id);
            }
        }
    }

    /// Process a demand access to `block`: credits hits to pending
    /// transitions that prefetched it, and finalizes transitions older
    /// than the window (+hits, or −1 when none hit). Returns the
    /// `(id, reward)` pairs finalized or credited this call (hit credits
    /// are reported as +1 each, matching the paper's per-hit feedback).
    pub fn on_access(&mut self, block: u64, assigned: &mut Vec<(u64, f32)>) {
        assigned.clear();
        // Hits: credit each pending transition that prefetched this block.
        if let Some(ids) = self.by_block.remove(&block) {
            for id in ids {
                let slot = self.slot_of(id);
                let s = &mut self.slots[slot];
                if s.occupied && s.id == id && s.reward.is_none() {
                    s.hits += 1;
                    assigned.push((id, 1.0));
                    // All blocks hit: finalize early.
                    if s.hits as usize >= s.blocks.len() {
                        s.reward = Some(s.hits as f32);
                        if s.has_next {
                            self.mark_valid(id);
                        }
                    }
                }
            }
        }
        // Expiry: finalize pending transitions older than `window`.
        let horizon = self.next_id.saturating_sub(self.window);
        while let Some(&id) = self.pending.front() {
            if id >= horizon {
                break;
            }
            self.pending.pop_front();
            let slot = self.slot_of(id);
            let s = &mut self.slots[slot];
            if !(s.occupied && s.id == id && s.reward.is_none()) {
                continue;
            }
            let r = if s.hits > 0 { s.hits as f32 } else { -1.0 };
            s.reward = Some(r);
            if s.hits == 0 {
                assigned.push((id, -1.0));
            }
            let finalize_valid = s.has_next;
            // Drop stale by_block references (borrow of `s` ends here).
            let blocks = std::mem::take(&mut self.slots[slot].blocks);
            for &b in &blocks {
                if let Some(ids) = self.by_block.get_mut(&b) {
                    ids.retain(|&x| x != id);
                    if ids.is_empty() {
                        self.by_block.remove(&b);
                    }
                }
            }
            self.slots[slot].blocks = blocks;
            if finalize_valid {
                self.mark_valid(id);
            }
        }
    }

    /// Lazy sampling: draw up to `batch` ids uniformly (with replacement)
    /// from the valid transitions into `out`, reusing its allocation.
    /// Leaves fewer than `batch` when fewer are valid.
    pub fn sample_into(&self, batch: usize, rng: &mut impl rand::Rng, out: &mut Vec<u64>) {
        out.clear();
        let n = self.valid_ids.len();
        if n == 0 {
            return;
        }
        let take = batch.min(n);
        out.extend((0..take).map(|_| self.valid_ids[rng.gen_range(0..n)]));
    }

    /// Allocating convenience wrapper around [`ReplayMemory::sample_into`].
    pub fn sample_ids(&self, batch: usize, rng: &mut impl rand::Rng) -> Vec<u64> {
        let mut out = Vec::new();
        self.sample_into(batch, rng, &mut out);
        out
    }

    /// Fetch a transition view by id (None if overwritten).
    pub fn get(&self, id: u64) -> Option<TransitionView<'_>> {
        let slot = self.slot_of(id);
        let s = &self.slots[slot];
        if !(s.occupied && s.id == id) {
            return None;
        }
        let range = slot * self.state_dim..(slot + 1) * self.state_dim;
        Some(TransitionView {
            id,
            state: &self.states[range.clone()],
            action: s.action,
            prefetch_blocks: &s.blocks,
            hits: s.hits,
            reward: s.reward,
            next_state: if s.has_next {
                Some(&self.next_states[range])
            } else {
                None
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn st(v: f32) -> Vec<f32> {
        vec![v; 4]
    }

    #[test]
    fn np_transitions_reward_zero_immediately() {
        let mut m = ReplayMemory::new(16, 4, 4);
        let id = m.push(&st(0.0), 4, &[]);
        assert_eq!(m.get(id).unwrap().reward, Some(0.0));
        assert!(!m.get(id).unwrap().is_valid(), "needs next state too");
        m.set_next_state(id, &st(1.0));
        assert!(m.get(id).unwrap().is_valid());
        assert_eq!(m.valid_len(), 1);
    }

    #[test]
    fn single_block_hit_finalizes_plus_one() {
        let mut m = ReplayMemory::new(16, 4, 4);
        let id = m.push(&st(0.0), 0, &[0x99]);
        m.set_next_state(id, &st(1.0));
        let mut assigned = Vec::new();
        m.push(&st(1.0), 4, &[]); // advance time
        m.on_access(0x99, &mut assigned);
        assert_eq!(assigned, vec![(id, 1.0)]);
        assert_eq!(m.get(id).unwrap().reward, Some(1.0));
    }

    #[test]
    fn multi_block_hits_accumulate() {
        let mut m = ReplayMemory::new(64, 8, 4);
        let id = m.push(&st(0.0), 1, &[0x10, 0x11, 0x12]);
        m.set_next_state(id, &st(0.5));
        let mut a = Vec::new();
        m.on_access(0x10, &mut a);
        assert_eq!(m.get(id).unwrap().hits, 1);
        assert!(
            m.get(id).unwrap().reward.is_none(),
            "not final until all hit or expiry"
        );
        m.on_access(0x12, &mut a);
        m.on_access(0x11, &mut a);
        assert_eq!(
            m.get(id).unwrap().reward,
            Some(3.0),
            "all blocks hit finalizes at +3"
        );
    }

    #[test]
    fn partial_hits_finalize_at_expiry_with_hit_count() {
        let mut m = ReplayMemory::new(64, 3, 4);
        let id = m.push(&st(0.0), 1, &[0x10, 0x11]);
        m.set_next_state(id, &st(0.5));
        let mut a = Vec::new();
        m.on_access(0x10, &mut a); // one of two hits
        for i in 0..5 {
            m.push(&st(i as f32), 4, &[]);
            m.on_access(0x1000 + i, &mut a);
        }
        assert_eq!(m.get(id).unwrap().reward, Some(1.0));
    }

    #[test]
    fn expiry_without_hits_rewards_minus_one() {
        let mut m = ReplayMemory::new(64, 4, 4);
        let id = m.push(&st(0.0), 0, &[0x99]);
        m.set_next_state(id, &st(1.0));
        let mut assigned = Vec::new();
        for i in 0..5 {
            m.push(&st(i as f32), 4, &[]);
            m.on_access(0x1 + i, &mut assigned);
        }
        assert_eq!(m.get(id).unwrap().reward, Some(-1.0));
    }

    #[test]
    fn hit_after_expiry_does_not_change_reward() {
        let mut m = ReplayMemory::new(64, 2, 4);
        let id = m.push(&st(0.0), 0, &[0x42]);
        let mut a = Vec::new();
        for i in 0..4 {
            m.push(&st(i as f32), 4, &[]);
            m.on_access(0x1000 + i, &mut a);
        }
        assert_eq!(m.get(id).unwrap().reward, Some(-1.0));
        m.on_access(0x42, &mut a);
        assert_eq!(m.get(id).unwrap().reward, Some(-1.0));
    }

    #[test]
    fn only_valid_transitions_sampled() {
        let mut m = ReplayMemory::new(64, 8, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let v = m.push(&st(0.0), 4, &[]);
        m.set_next_state(v, &st(0.5));
        let p = m.push(&st(1.0), 0, &[0x7]);
        m.set_next_state(p, &st(1.5));
        let ids = m.sample_ids(10, &mut rng);
        assert!(!ids.is_empty());
        assert!(
            ids.iter().all(|&i| i == v),
            "pending transition must not be sampled: {ids:?}"
        );
    }

    #[test]
    fn ring_overwrite_invalidates_old_ids() {
        let mut m = ReplayMemory::new(4, 2, 4);
        let first = m.push(&st(0.0), 4, &[]);
        m.set_next_state(first, &st(0.1));
        for i in 0..8 {
            let id = m.push(&st(i as f32), 4, &[]);
            m.set_next_state(id, &st(0.2));
        }
        assert!(m.get(first).is_none(), "overwritten");
        let mut rng = StdRng::seed_from_u64(2);
        let ids = m.sample_ids(16, &mut rng);
        assert!(ids.iter().all(|&i| m.get(i).is_some()));
        assert!(m.valid_len() <= 4);
    }

    #[test]
    fn multiple_pending_same_block_all_credited() {
        let mut m = ReplayMemory::new(32, 8, 4);
        let a = m.push(&st(0.0), 0, &[0x5]);
        let b = m.push(&st(1.0), 1, &[0x5]);
        m.set_next_state(a, &st(0.1));
        m.set_next_state(b, &st(0.2));
        let mut assigned = Vec::new();
        m.on_access(0x5, &mut assigned);
        assert_eq!(assigned.len(), 2);
        assert_eq!(m.get(a).unwrap().reward, Some(1.0));
        assert_eq!(m.get(b).unwrap().reward, Some(1.0));
    }

    #[test]
    fn len_and_is_empty() {
        let mut m = ReplayMemory::new(8, 4, 4);
        assert!(m.is_empty());
        m.push(&st(0.0), 0, &[]);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn flat_ring_state_roundtrip_and_views() {
        let mut m = ReplayMemory::new(8, 4, 3);
        assert_eq!(m.state_dim(), 3);
        let id = m.push(&[0.1, 0.2, 0.3], 2, &[0x9]);
        let t = m.get(id).unwrap();
        assert_eq!(t.state, &[0.1, 0.2, 0.3]);
        assert_eq!(t.action, 2);
        assert_eq!(t.prefetch_blocks, &[0x9]);
        assert!(t.next_state.is_none());
        m.set_next_state(id, &[0.4, 0.5, 0.6]);
        assert_eq!(m.get(id).unwrap().next_state, Some(&[0.4, 0.5, 0.6][..]));
    }

    #[test]
    fn sample_into_reuses_buffer_without_allocation_growth() {
        let mut m = ReplayMemory::new(64, 4, 2);
        for i in 0..32 {
            let id = m.push(&[i as f32, 0.0], 2, &[]);
            m.set_next_state(id, &[0.0, 0.0]);
        }
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = Vec::new();
        m.sample_into(16, &mut rng, &mut buf);
        assert_eq!(buf.len(), 16);
        let cap = buf.capacity();
        for _ in 0..100 {
            m.sample_into(16, &mut rng, &mut buf);
        }
        assert_eq!(buf.capacity(), cap, "steady-state sampling must not grow");
        assert!(buf.iter().all(|&id| m.get(id).unwrap().is_valid()));
    }

    #[test]
    fn valid_set_stays_consistent_under_ring_churn() {
        let mut m = ReplayMemory::new(8, 3, 2);
        let mut assigned = Vec::new();
        for i in 0..200u64 {
            let blocks = if i % 3 == 0 { vec![i % 16] } else { vec![] };
            let id = m.push(&[i as f32, 1.0], (i % 3) as usize, &blocks);
            m.set_next_state(id, &[0.5, 0.5]);
            m.on_access(i % 16, &mut assigned);
            assert!(m.valid_len() <= 8);
        }
        let mut rng = StdRng::seed_from_u64(9);
        for id in m.sample_ids(64, &mut rng) {
            assert!(m.get(id).unwrap().is_valid());
        }
    }

    #[test]
    #[should_panic(expected = "state width mismatch")]
    fn push_checks_state_width() {
        let mut m = ReplayMemory::new(8, 4, 4);
        let _ = m.push(&[0.0; 3], 0, &[]);
    }
}
