//! Replay memory with the paper's *lazy sampling* mechanism (§IV-D).
//!
//! A transition `(s_t, a_t, p_t, r_t, s_{t+1})` is pushed as soon as the
//! action is taken, but its reward arrives asynchronously from cache
//! feedback. The paper's reward is ±1 on the single issued prefetch; since
//! our ensemble actions issue the selected prefetcher's *full* suggestion
//! list (see `PrefetcherBank::suggestions`), the reward generalizes to the
//! number of issued blocks demanded within the window `W` (+k), or −1 when
//! none is — it degenerates to the paper's ±1 when every member suggests a
//! single address, and aligns the learning signal with the coverage metric
//! the evaluation reports. "No prefetch" still rewards 0 immediately.
//!
//! Only transitions whose reward *and* next state are known ("valid") may
//! be sampled for training — invalid transitions stay pended. This is the
//! paper's answer to the lag of cache feedback.

use resemble_trace::util::FxHashMap;
use std::collections::VecDeque;

/// One stored transition.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Monotone id; doubles as the access timestamp (one transition per
    /// access).
    pub id: u64,
    /// Preprocessed state vector s_t.
    pub state: Vec<f32>,
    /// Action index a_t.
    pub action: usize,
    /// Block numbers of the issued prefetches (empty for NP / padding).
    pub prefetch_blocks: Vec<u64>,
    /// Hits observed so far among `prefetch_blocks`.
    pub hits: u32,
    /// Reward r_t once finalized.
    pub reward: Option<f32>,
    /// Next state s_{t+1} once known.
    pub next_state: Option<Vec<f32>>,
}

impl Transition {
    /// Sampleable: reward finalized and next state filled in.
    pub fn is_valid(&self) -> bool {
        self.reward.is_some() && self.next_state.is_some()
    }
}

/// Ring-buffer replay memory with pending-reward tracking.
#[derive(Debug)]
pub struct ReplayMemory {
    ring: Vec<Option<Transition>>,
    capacity: usize,
    next_id: u64,
    window: u64,
    /// pending ids in order, awaiting reward finalization
    pending: VecDeque<u64>,
    /// block → pending transition ids with that block outstanding
    by_block: FxHashMap<u64, Vec<u64>>,
    /// ids believed valid (lazily pruned)
    valid_ids: Vec<u64>,
}

impl ReplayMemory {
    /// Replay of `capacity` transitions with reward window `window`.
    pub fn new(capacity: usize, window: usize) -> Self {
        assert!(capacity > 0 && window > 0);
        Self {
            ring: (0..capacity).map(|_| None).collect(),
            capacity,
            next_id: 0,
            window: window as u64,
            pending: VecDeque::new(),
            by_block: FxHashMap::default(),
            valid_ids: Vec::new(),
        }
    }

    /// Number of transitions currently stored.
    pub fn len(&self) -> usize {
        self.ring.iter().filter(|t| t.is_some()).count()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.next_id == 0
    }

    /// Number of currently-known valid (sampleable) transitions; prunes
    /// stale bookkeeping as a side effect.
    pub fn valid_len(&mut self) -> usize {
        let ring = &self.ring;
        let cap = self.capacity;
        self.valid_ids.retain(|&id| {
            ring[(id % cap as u64) as usize]
                .as_ref()
                .map(|t| t.id == id && t.is_valid())
                .unwrap_or(false)
        });
        self.valid_ids.len()
    }

    #[inline]
    fn slot(&self, id: u64) -> usize {
        (id % self.capacity as u64) as usize
    }

    /// Push a new transition; returns its id. An empty `prefetch_blocks`
    /// means NP (or a padded selection): the reward is 0 immediately.
    pub fn push(&mut self, state: Vec<f32>, action: usize, prefetch_blocks: &[u64]) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let reward = if prefetch_blocks.is_empty() {
            Some(0.0)
        } else {
            None
        };
        let slot = self.slot(id);
        self.ring[slot] = Some(Transition {
            id,
            state,
            action,
            prefetch_blocks: prefetch_blocks.to_vec(),
            hits: 0,
            reward,
            next_state: None,
        });
        if !prefetch_blocks.is_empty() {
            self.pending.push_back(id);
            for &b in prefetch_blocks {
                self.by_block.entry(b).or_default().push(id);
            }
        }
        id
    }

    /// Fill in s_{t+1} for transition `id` (called at t+1 with the fresh
    /// state).
    pub fn set_next_state(&mut self, id: u64, next_state: &[f32]) {
        let slot = self.slot(id);
        if let Some(t) = self.ring[slot].as_mut() {
            if t.id == id {
                t.next_state = Some(next_state.to_vec());
                if t.is_valid() {
                    self.valid_ids.push(id);
                }
            }
        }
    }

    /// Process a demand access to `block`: credits hits to pending
    /// transitions that prefetched it, and finalizes transitions older
    /// than the window (+hits, or −1 when none hit). Returns the
    /// `(id, reward)` pairs finalized or credited this call (hit credits
    /// are reported as +1 each, matching the paper's per-hit feedback).
    pub fn on_access(&mut self, block: u64, assigned: &mut Vec<(u64, f32)>) {
        assigned.clear();
        // Hits: credit each pending transition that prefetched this block.
        if let Some(ids) = self.by_block.remove(&block) {
            for id in ids {
                let slot = self.slot(id);
                if let Some(t) = self.ring[slot].as_mut() {
                    if t.id == id && t.reward.is_none() {
                        t.hits += 1;
                        assigned.push((id, 1.0));
                        // All blocks hit: finalize early.
                        if t.hits as usize >= t.prefetch_blocks.len() {
                            let r = t.hits as f32;
                            t.reward = Some(r);
                            if t.is_valid() {
                                self.valid_ids.push(id);
                            }
                        }
                    }
                }
            }
        }
        // Expiry: finalize pending transitions older than `window`.
        let horizon = self.next_id.saturating_sub(self.window);
        while let Some(&id) = self.pending.front() {
            if id >= horizon {
                break;
            }
            self.pending.pop_front();
            let slot = self.slot(id);
            let mut leftover: Vec<u64> = Vec::new();
            if let Some(t) = self.ring[slot].as_mut() {
                if t.id == id && t.reward.is_none() {
                    let r = if t.hits > 0 { t.hits as f32 } else { -1.0 };
                    t.reward = Some(r);
                    if t.hits == 0 {
                        assigned.push((id, -1.0));
                    }
                    if t.is_valid() {
                        self.valid_ids.push(id);
                    }
                    leftover.clone_from(&t.prefetch_blocks);
                }
            }
            // Drop stale by_block references.
            for b in leftover {
                if let Some(ids) = self.by_block.get_mut(&b) {
                    ids.retain(|&x| x != id);
                    if ids.is_empty() {
                        self.by_block.remove(&b);
                    }
                }
            }
        }
        // Bound bookkeeping growth.
        if self.valid_ids.len() > 8 * self.capacity {
            self.valid_len();
        }
    }

    /// Lazy sampling: draw up to `batch` ids uniformly from the valid
    /// transitions. Returns fewer when fewer are valid.
    pub fn sample_ids(&mut self, batch: usize, rng: &mut impl rand::Rng) -> Vec<u64> {
        let n = self.valid_len();
        if n == 0 {
            return Vec::new();
        }
        let take = batch.min(n);
        (0..take)
            .map(|_| self.valid_ids[rng.gen_range(0..n)])
            .collect()
    }

    /// Fetch a transition by id (None if overwritten).
    pub fn get(&self, id: u64) -> Option<&Transition> {
        self.ring[self.slot(id)].as_ref().filter(|t| t.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn st(v: f32) -> Vec<f32> {
        vec![v; 4]
    }

    #[test]
    fn np_transitions_reward_zero_immediately() {
        let mut m = ReplayMemory::new(16, 4);
        let id = m.push(st(0.0), 4, &[]);
        assert_eq!(m.get(id).unwrap().reward, Some(0.0));
        assert!(!m.get(id).unwrap().is_valid(), "needs next state too");
        m.set_next_state(id, &st(1.0));
        assert!(m.get(id).unwrap().is_valid());
        assert_eq!(m.valid_len(), 1);
    }

    #[test]
    fn single_block_hit_finalizes_plus_one() {
        let mut m = ReplayMemory::new(16, 4);
        let id = m.push(st(0.0), 0, &[0x99]);
        m.set_next_state(id, &st(1.0));
        let mut assigned = Vec::new();
        m.push(st(1.0), 4, &[]); // advance time
        m.on_access(0x99, &mut assigned);
        assert_eq!(assigned, vec![(id, 1.0)]);
        assert_eq!(m.get(id).unwrap().reward, Some(1.0));
    }

    #[test]
    fn multi_block_hits_accumulate() {
        let mut m = ReplayMemory::new(64, 8);
        let id = m.push(st(0.0), 1, &[0x10, 0x11, 0x12]);
        m.set_next_state(id, &st(0.5));
        let mut a = Vec::new();
        m.on_access(0x10, &mut a);
        assert_eq!(m.get(id).unwrap().hits, 1);
        assert!(
            m.get(id).unwrap().reward.is_none(),
            "not final until all hit or expiry"
        );
        m.on_access(0x12, &mut a);
        m.on_access(0x11, &mut a);
        assert_eq!(
            m.get(id).unwrap().reward,
            Some(3.0),
            "all blocks hit finalizes at +3"
        );
    }

    #[test]
    fn partial_hits_finalize_at_expiry_with_hit_count() {
        let mut m = ReplayMemory::new(64, 3);
        let id = m.push(st(0.0), 1, &[0x10, 0x11]);
        m.set_next_state(id, &st(0.5));
        let mut a = Vec::new();
        m.on_access(0x10, &mut a); // one of two hits
        for i in 0..5 {
            m.push(st(i as f32), 4, &[]);
            m.on_access(0x1000 + i, &mut a);
        }
        assert_eq!(m.get(id).unwrap().reward, Some(1.0));
    }

    #[test]
    fn expiry_without_hits_rewards_minus_one() {
        let mut m = ReplayMemory::new(64, 4);
        let id = m.push(st(0.0), 0, &[0x99]);
        m.set_next_state(id, &st(1.0));
        let mut assigned = Vec::new();
        for i in 0..5 {
            m.push(st(i as f32), 4, &[]);
            m.on_access(0x1 + i, &mut assigned);
        }
        assert_eq!(m.get(id).unwrap().reward, Some(-1.0));
    }

    #[test]
    fn hit_after_expiry_does_not_change_reward() {
        let mut m = ReplayMemory::new(64, 2);
        let id = m.push(st(0.0), 0, &[0x42]);
        let mut a = Vec::new();
        for i in 0..4 {
            m.push(st(i as f32), 4, &[]);
            m.on_access(0x1000 + i, &mut a);
        }
        assert_eq!(m.get(id).unwrap().reward, Some(-1.0));
        m.on_access(0x42, &mut a);
        assert_eq!(m.get(id).unwrap().reward, Some(-1.0));
    }

    #[test]
    fn only_valid_transitions_sampled() {
        let mut m = ReplayMemory::new(64, 8);
        let mut rng = StdRng::seed_from_u64(1);
        let v = m.push(st(0.0), 4, &[]);
        m.set_next_state(v, &st(0.5));
        let p = m.push(st(1.0), 0, &[0x7]);
        m.set_next_state(p, &st(1.5));
        let ids = m.sample_ids(10, &mut rng);
        assert!(!ids.is_empty());
        assert!(
            ids.iter().all(|&i| i == v),
            "pending transition must not be sampled: {ids:?}"
        );
    }

    #[test]
    fn ring_overwrite_invalidates_old_ids() {
        let mut m = ReplayMemory::new(4, 2);
        let first = m.push(st(0.0), 4, &[]);
        m.set_next_state(first, &st(0.1));
        for i in 0..8 {
            let id = m.push(st(i as f32), 4, &[]);
            m.set_next_state(id, &st(0.2));
        }
        assert!(m.get(first).is_none(), "overwritten");
        let mut rng = StdRng::seed_from_u64(2);
        let ids = m.sample_ids(16, &mut rng);
        assert!(ids.iter().all(|&i| m.get(i).is_some()));
        assert!(m.valid_len() <= 4);
    }

    #[test]
    fn multiple_pending_same_block_all_credited() {
        let mut m = ReplayMemory::new(32, 8);
        let a = m.push(st(0.0), 0, &[0x5]);
        let b = m.push(st(1.0), 1, &[0x5]);
        m.set_next_state(a, &st(0.1));
        m.set_next_state(b, &st(0.2));
        let mut assigned = Vec::new();
        m.on_access(0x5, &mut assigned);
        assert_eq!(assigned.len(), 2);
        assert_eq!(m.get(a).unwrap().reward, Some(1.0));
        assert_eq!(m.get(b).unwrap().reward, Some(1.0));
    }

    #[test]
    fn len_and_is_empty() {
        let mut m = ReplayMemory::new(8, 4);
        assert!(m.is_empty());
        m.push(st(0.0), 0, &[]);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }
}
