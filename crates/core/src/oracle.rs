//! Offline oracle selection analysis: the upper bound on what *any*
//! ensemble controller could achieve over a given bank and trace.
//!
//! For every access, the oracle inspects the future and scores each
//! member's top-1 suggestion as a hit if that block is demanded within
//! the reward window `W`. "Oracle hits" counts accesses where at least
//! one member's suggestion hits — a per-access-optimal selector's hit
//! count. Comparing ReSemble's achieved hit rate against this headroom
//! quantifies how much of the ensemble opportunity the learned controller
//! captures (used by the `ablations`-family analyses; not a hardware
//! mechanism — it requires future knowledge).

use resemble_prefetch::PrefetcherBank;
use resemble_trace::record::block_of;
use resemble_trace::util::FxHashMap;
use resemble_trace::MemAccess;

/// Result of an oracle analysis run.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleReport {
    /// Accesses analyzed.
    pub accesses: u64,
    /// Hits if member `i`'s top-1 suggestion were always issued.
    pub per_member_hits: Vec<u64>,
    /// Hits of the per-access optimal selector (any member hits).
    pub oracle_hits: u64,
    /// Accesses where at least one member made *any* suggestion.
    pub covered_accesses: u64,
}

impl OracleReport {
    /// Hit rate of always selecting member `i`.
    pub fn member_hit_rate(&self, i: usize) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.per_member_hits[i] as f64 / self.accesses as f64
        }
    }

    /// Hit rate of the oracle selector.
    pub fn oracle_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.oracle_hits as f64 / self.accesses as f64
        }
    }

    /// Best static member's hit count.
    pub fn best_static_hits(&self) -> u64 {
        self.per_member_hits.iter().copied().max().unwrap_or(0)
    }

    /// The ensemble opportunity: oracle hits beyond the best static member
    /// (what adaptive selection can add over "pick one and stick with it").
    pub fn headroom_hits(&self) -> u64 {
        self.oracle_hits.saturating_sub(self.best_static_hits())
    }
}

/// Run the oracle analysis: feed `trace` through `bank` (cold start),
/// score each member's top-1 suggestions against the following `window`
/// accesses.
pub fn oracle_selection(
    trace: &[MemAccess],
    bank: &mut PrefetcherBank,
    window: usize,
) -> OracleReport {
    assert!(window > 0);
    let n = bank.len();
    // Index: block → ascending positions where it is demanded.
    let mut positions: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    for (i, a) in trace.iter().enumerate() {
        positions
            .entry(block_of(a.addr))
            .or_default()
            .push(i as u32);
    }
    let hits_within = |block: u64, after: usize| -> bool {
        let Some(ps) = positions.get(&block) else {
            return false;
        };
        let idx = ps.partition_point(|&p| p as usize <= after);
        ps.get(idx)
            .map(|&p| (p as usize) <= after + window)
            .unwrap_or(false)
    };
    let mut per_member_hits = vec![0u64; n];
    let mut oracle_hits = 0u64;
    let mut covered = 0u64;
    for (i, a) in trace.iter().enumerate() {
        let obs = bank.observe(a, false);
        let mut any_sugg = false;
        let mut any_hit = false;
        for (m, p) in obs.iter().enumerate() {
            let Some(p) = p else { continue };
            any_sugg = true;
            if hits_within(block_of(*p), i) {
                per_member_hits[m] += 1;
                any_hit = true;
            }
        }
        if any_sugg {
            covered += 1;
        }
        if any_hit {
            oracle_hits += 1;
        }
    }
    OracleReport {
        accesses: trace.len() as u64,
        per_member_hits,
        oracle_hits,
        covered_accesses: covered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resemble_prefetch::{NextLine, PredictionKind, Prefetcher};

    /// Suggests a block `k` accesses ahead in a known ring — perfectly
    /// right or perfectly wrong depending on phase.
    struct PhasePerfect {
        good: bool,
    }
    impl Prefetcher for PhasePerfect {
        fn name(&self) -> &'static str {
            "phase"
        }
        fn kind(&self) -> PredictionKind {
            PredictionKind::Temporal
        }
        fn on_access(&mut self, a: &MemAccess, _h: bool, out: &mut Vec<u64>) {
            if self.good {
                out.push(a.addr + 64); // next block in a unit stream
            } else {
                out.push(a.addr ^ 0xffff_0000_0000);
            }
        }
        fn budget_bytes(&self) -> usize {
            0
        }
        fn reset(&mut self) {}
    }

    fn stream(n: usize) -> Vec<MemAccess> {
        (0..n)
            .map(|i| MemAccess::load(i as u64, 1, 0x10_0000 + i as u64 * 64))
            .collect()
    }

    #[test]
    fn perfect_member_scores_all_but_tail() {
        let trace = stream(500);
        let mut bank = PrefetcherBank::new(vec![
            Box::new(PhasePerfect { good: true }),
            Box::new(PhasePerfect { good: false }),
        ]);
        let r = oracle_selection(&trace, &mut bank, 16);
        assert_eq!(r.accesses, 500);
        assert_eq!(r.per_member_hits[0], 499); // last access's suggestion has no future
        assert_eq!(r.per_member_hits[1], 0);
        assert_eq!(r.oracle_hits, 499);
        assert_eq!(r.headroom_hits(), 0, "one member dominates: no headroom");
        assert_eq!(r.covered_accesses, 500);
    }

    #[test]
    fn complementary_members_create_headroom() {
        // Interleave two streams far apart; NextLine covers both, but a
        // "good only on even blocks" pair shows headroom. Simpler: two
        // members that alternate correctness by access parity.
        struct Alternating {
            phase: bool,
            tick: std::cell::Cell<u64>,
        }
        impl Prefetcher for Alternating {
            fn name(&self) -> &'static str {
                "alt"
            }
            fn kind(&self) -> PredictionKind {
                PredictionKind::Temporal
            }
            fn on_access(&mut self, a: &MemAccess, _h: bool, out: &mut Vec<u64>) {
                let t = self.tick.get();
                self.tick.set(t + 1);
                let right = t.is_multiple_of(2) == self.phase;
                out.push(if right {
                    a.addr + 64
                } else {
                    a.addr ^ 0xeeee_0000_0000
                });
            }
            fn budget_bytes(&self) -> usize {
                0
            }
            fn reset(&mut self) {}
        }
        let trace = stream(400);
        let mut bank = PrefetcherBank::new(vec![
            Box::new(Alternating {
                phase: true,
                tick: Default::default(),
            }),
            Box::new(Alternating {
                phase: false,
                tick: Default::default(),
            }),
        ]);
        let r = oracle_selection(&trace, &mut bank, 16);
        // Each member right half the time; the oracle right ~always.
        assert!(r.per_member_hits[0] <= 201 && r.per_member_hits[0] >= 199);
        assert!(r.oracle_hits >= 398);
        assert!(r.headroom_hits() >= 190, "headroom={}", r.headroom_hits());
    }

    #[test]
    fn real_prefetcher_on_stream() {
        let trace = stream(1000);
        let mut bank = PrefetcherBank::new(vec![Box::new(NextLine::new(1))]);
        let r = oracle_selection(&trace, &mut bank, 8);
        assert!(r.member_hit_rate(0) > 0.99);
        assert!(r.oracle_hit_rate() > 0.99);
    }

    #[test]
    fn empty_trace() {
        let mut bank = PrefetcherBank::new(vec![Box::new(NextLine::new(1))]);
        let r = oracle_selection(&[], &mut bank, 8);
        assert_eq!(r.oracle_hit_rate(), 0.0);
        assert_eq!(r.accesses, 0);
    }
}
