//! # resemble-trace
//!
//! Memory-trace substrate for the ReSemble reproduction: trace record
//! types, synthetic workload generators standing in for SPEC CPU 2006/2017
//! and GAP (see DESIGN.md §1 for the substitution rationale), trace
//! analysis (autocorrelation, the Fig 1 motivation study), and plain-text
//! trace IO.
//!
//! ## Quick example
//!
//! ```
//! use resemble_trace::gen::{app_by_name, TraceSource};
//!
//! let mut app = app_by_name("433.milc", 42).unwrap();
//! let trace = app.source.collect_n(1000);
//! assert_eq!(trace.len(), 1000);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod gen;
pub mod io;
pub mod record;
pub mod util;

pub use gen::TraceSource;
pub use record::{MemAccess, BLOCK_BITS, BLOCK_SIZE, PAGE_BITS, PAGE_SIZE};
