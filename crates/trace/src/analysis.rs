//! Trace analysis used by the Figure 1 motivation study.
//!
//! The paper motivates ensemble prefetching by showing that different
//! applications exhibit very different autocorrelation structure in their
//! LLC miss traces (Fig 1a), that grouping accesses by PC changes that
//! structure (Fig 1b), and that spatial vs temporal prefetchers therefore
//! win on different applications (Fig 1c). This module implements the
//! autocorrelation analysis over block-address series.

use crate::record::MemAccess;
use std::collections::HashMap;

/// Autocorrelation coefficients of a numeric series at lags `1..=max_lag`.
///
/// Uses the standard biased estimator
/// `r(k) = sum_{t} (x_t - mean)(x_{t+k} - mean) / sum_t (x_t - mean)^2`,
/// which is what statistical packages plot in autocorrelation ("ACF") plots.
/// Returns an empty vector when the series is shorter than 2 elements or has
/// zero variance.
pub fn autocorrelation(series: &[f64], max_lag: usize) -> Vec<f64> {
    let n = series.len();
    if n < 2 {
        return Vec::new();
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let denom: f64 = series.iter().map(|x| (x - mean) * (x - mean)).sum();
    if denom == 0.0 {
        return Vec::new();
    }
    let max_lag = max_lag.min(n - 1);
    let mut acf = Vec::with_capacity(max_lag);
    for k in 1..=max_lag {
        let num: f64 = (0..n - k)
            .map(|t| (series[t] - mean) * (series[t + k] - mean))
            .sum();
        acf.push(num / denom);
    }
    acf
}

/// Convert a trace to the block-address series analyzed in Fig 1.
///
/// Absolute addresses are an awkward series to correlate (they are huge and
/// monotone segments dominate), so, like the paper's analysis of "memory
/// access deltas", we analyze the series of block numbers relative to the
/// trace's first block.
pub fn block_series(trace: &[MemAccess]) -> Vec<f64> {
    if trace.is_empty() {
        return Vec::new();
    }
    let base = trace[0].block() as i64;
    trace
        .iter()
        .map(|a| (a.block() as i64 - base) as f64)
        .collect()
}

/// Series of block deltas between consecutive accesses (length n-1).
pub fn delta_series(trace: &[MemAccess]) -> Vec<f64> {
    trace
        .windows(2)
        .map(|w| (w[1].block() as i64).wrapping_sub(w[0].block() as i64) as f64)
        .collect()
}

/// Autocorrelation of the trace's block-address series (Fig 1a).
///
/// The paper's Fig 1 plots are ACFs of the access *values*: streaming apps
/// show high, slowly decaying ACs (trend + periodic interleave), while
/// irregular apps show insignificant spikes.
pub fn trace_autocorrelation(trace: &[MemAccess], max_lag: usize) -> Vec<f64> {
    autocorrelation(&block_series(trace), max_lag)
}

/// Autocorrelation of the block-delta series (useful when the address
/// series is trend-dominated).
pub fn delta_autocorrelation(trace: &[MemAccess], max_lag: usize) -> Vec<f64> {
    autocorrelation(&delta_series(trace), max_lag)
}

/// Per-PC series concatenated in first-appearance order, as block values
/// relative to the trace's first block.
fn pc_grouped_series(trace: &[MemAccess]) -> Vec<f64> {
    if trace.is_empty() {
        return Vec::new();
    }
    let base = trace[0].block() as i64;
    let mut groups: HashMap<u64, Vec<f64>> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();
    for a in trace {
        let e = groups.entry(a.pc).or_insert_with(|| {
            order.push(a.pc);
            Vec::new()
        });
        e.push((a.block() as i64 - base) as f64);
    }
    let mut series = Vec::with_capacity(trace.len());
    for pc in order {
        series.extend(groups.remove(&pc).unwrap_or_default());
    }
    series
}

/// Autocorrelation after grouping the trace by PC (Fig 1b).
///
/// Accesses are grouped by PC, order preserved inside each group, the
/// per-group value series are concatenated (groups ordered by first
/// appearance), and the ACF of the concatenation is returned. This mirrors
/// the paper: "we group the memory accesses by PC while keeping the access
/// order within each PC".
pub fn pc_grouped_autocorrelation(trace: &[MemAccess], max_lag: usize) -> Vec<f64> {
    autocorrelation(&pc_grouped_series(trace), max_lag)
}

/// Summary numbers used to characterize an ACF curve in test assertions and
/// harness tables: the mean absolute coefficient over the first `k` lags and
/// the lag-1 coefficient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcfSummary {
    /// Mean of |r(k)| over the measured lags.
    pub mean_abs: f64,
    /// r(1), the lag-1 autocorrelation.
    pub lag1: f64,
    /// Largest |r(k)| over the measured lags.
    pub peak_abs: f64,
}

/// Summarize an ACF curve. Returns zeros for an empty curve.
pub fn summarize_acf(acf: &[f64]) -> AcfSummary {
    if acf.is_empty() {
        return AcfSummary {
            mean_abs: 0.0,
            lag1: 0.0,
            peak_abs: 0.0,
        };
    }
    let mean_abs = acf.iter().map(|x| x.abs()).sum::<f64>() / acf.len() as f64;
    let peak_abs = acf.iter().map(|x| x.abs()).fold(0.0, f64::max);
    AcfSummary {
        mean_abs,
        lag1: acf[0],
        peak_abs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(i: u64, pc: u64, addr: u64) -> MemAccess {
        MemAccess::load(i, pc, addr)
    }

    #[test]
    fn acf_of_constant_series_is_empty() {
        assert!(autocorrelation(&[3.0; 10], 5).is_empty());
        assert!(autocorrelation(&[1.0], 5).is_empty());
    }

    #[test]
    fn acf_of_periodic_series_peaks_at_period() {
        // Period-4 sawtooth: strong positive ACF at lag 4, negative at lag 2.
        let series: Vec<f64> = (0..400).map(|i| (i % 4) as f64).collect();
        let acf = autocorrelation(&series, 8);
        assert!(acf[3] > 0.9, "lag-4 should be ~1, got {}", acf[3]);
        assert!(
            acf[1] < -0.5,
            "lag-2 should be strongly negative, got {}",
            acf[1]
        );
    }

    #[test]
    fn acf_of_alternating_series() {
        let series: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let acf = autocorrelation(&series, 2);
        assert!(acf[0] < -0.9);
        assert!(acf[1] > 0.9);
    }

    #[test]
    fn delta_series_length_and_values() {
        let t = vec![acc(0, 1, 0x0), acc(1, 1, 0x40), acc(2, 1, 0xc0)];
        let d = delta_series(&t);
        assert_eq!(d, vec![1.0, 2.0]);
    }

    #[test]
    fn stream_trace_has_high_delta_autocorrelation() {
        // Pure stream: delta constant => zero-variance delta series => empty
        // ACF; interleave two strides so the delta series is periodic.
        let mut t = Vec::new();
        for i in 0..500u64 {
            let addr = if i % 2 == 0 {
                0x10000 + (i / 2) * 64
            } else {
                0x80000 + (i / 2) * 128
            };
            t.push(acc(i, 1, addr));
        }
        let acf = delta_autocorrelation(&t, 8);
        // Period-2 interleave => strong lag-2 correlation.
        assert!(
            acf[1] > 0.8,
            "lag-2 delta ACF should be high, got {}",
            acf[1]
        );
        // A single stream's value series is trend-dominated: AC ≈ +1.
        let single: Vec<MemAccess> = (0..500u64).map(|i| acc(i, 1, 0x10000 + i * 64)).collect();
        let v = trace_autocorrelation(&single, 8);
        assert!(
            v[0] > 0.9,
            "value ACF of a stream should be ~1, got {}",
            v[0]
        );
    }

    #[test]
    fn pc_grouping_recovers_per_pc_regularity() {
        // Interleave a periodic PC with random-walking PCs: the grouped
        // series exposes the period that interleaving hides.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut t = Vec::new();
        for i in 0..900u64 {
            let (pc, addr) = match i % 3 {
                0 => (0x400, rng.gen_range(0x1_0000u64..0x200_0000) & !63),
                1 => (0x500, rng.gen_range(0x1_0000u64..0x200_0000) & !63),
                _ => (0x600, 0x11_0000 + (i / 3 % 7) * 0x40_0000), // period 7
            };
            t.push(acc(i, pc, addr));
        }
        let raw = summarize_acf(&trace_autocorrelation(&t, 20));
        let grouped = summarize_acf(&pc_grouped_autocorrelation(&t, 20));
        assert!(
            grouped.peak_abs > raw.peak_abs,
            "grouped {} vs raw {}",
            grouped.peak_abs,
            raw.peak_abs
        );
    }

    #[test]
    fn summarize_acf_handles_empty() {
        let s = summarize_acf(&[]);
        assert_eq!(s.mean_abs, 0.0);
        assert_eq!(s.lag1, 0.0);
    }

    #[test]
    fn block_series_is_relative_to_first() {
        let t = vec![acc(0, 1, 0x4000), acc(1, 1, 0x4040)];
        assert_eq!(block_series(&t), vec![0.0, 1.0]);
        assert!(block_series(&[]).is_empty());
    }
}
