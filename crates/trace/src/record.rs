//! Core trace record types and address arithmetic helpers.
//!
//! A memory trace is a sequence of [`MemAccess`] records, one per retired
//! memory instruction. Addresses are byte addresses in a 64-bit virtual
//! address space; the cache hierarchy operates on 64-byte blocks
//! ([`BLOCK_BITS`]) and spatial prefetchers reason within 4 KiB pages
//! ([`PAGE_BITS`]), matching Table III of the paper.

use serde::{Deserialize, Serialize};

/// log2 of the cache block (line) size in bytes: 64-byte blocks.
pub const BLOCK_BITS: u32 = 6;
/// log2 of the page size in bytes: 4 KiB pages.
pub const PAGE_BITS: u32 = 12;
/// Number of bits of a 64-bit address.
pub const ADDR_BITS: u32 = 64;
/// Cache block size in bytes.
pub const BLOCK_SIZE: u64 = 1 << BLOCK_BITS;
/// Page size in bytes.
pub const PAGE_SIZE: u64 = 1 << PAGE_BITS;
/// Number of cache blocks per page.
pub const BLOCKS_PER_PAGE: u64 = 1 << (PAGE_BITS - BLOCK_BITS);

/// A single memory access as seen by the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemAccess {
    /// Monotonically increasing id of the instruction issuing this access.
    /// Non-memory instructions between two accesses are captured by gaps in
    /// `instr_id`, which the timing simulator charges as single-cycle work.
    pub instr_id: u64,
    /// Program counter of the load/store instruction.
    pub pc: u64,
    /// Byte address referenced.
    pub addr: u64,
    /// `true` for stores, `false` for loads.
    pub is_write: bool,
}

impl MemAccess {
    /// Create a load access.
    pub fn load(instr_id: u64, pc: u64, addr: u64) -> Self {
        Self {
            instr_id,
            pc,
            addr,
            is_write: false,
        }
    }

    /// Create a store access.
    pub fn store(instr_id: u64, pc: u64, addr: u64) -> Self {
        Self {
            instr_id,
            pc,
            addr,
            is_write: true,
        }
    }

    /// Cache-block number of the referenced address.
    #[inline]
    pub fn block(&self) -> u64 {
        block_of(self.addr)
    }

    /// Page number of the referenced address.
    #[inline]
    pub fn page(&self) -> u64 {
        page_of(self.addr)
    }

    /// Block offset within the page, in blocks (0..64 for 4K pages / 64B blocks).
    #[inline]
    pub fn page_block_offset(&self) -> u64 {
        (self.addr >> BLOCK_BITS) & (BLOCKS_PER_PAGE - 1)
    }
}

/// Cache-block number (address >> BLOCK_BITS) of a byte address.
#[inline]
pub fn block_of(addr: u64) -> u64 {
    addr >> BLOCK_BITS
}

/// Byte address of the first byte of a cache block number.
#[inline]
pub fn block_addr(block: u64) -> u64 {
    block << BLOCK_BITS
}

/// Page number (address >> PAGE_BITS) of a byte address.
#[inline]
pub fn page_of(addr: u64) -> u64 {
    addr >> PAGE_BITS
}

/// Align a byte address down to its cache-block base address.
#[inline]
pub fn block_align(addr: u64) -> u64 {
    addr & !(BLOCK_SIZE - 1)
}

/// `true` when two byte addresses fall in the same page.
#[inline]
pub fn same_page(a: u64, b: u64) -> bool {
    page_of(a) == page_of(b)
}

/// Signed distance between two byte addresses, measured in cache blocks.
#[inline]
pub fn block_delta(from: u64, to: u64) -> i64 {
    (block_of(to) as i64).wrapping_sub(block_of(from) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_and_page_arithmetic() {
        let a = 0x1234_5678u64;
        assert_eq!(block_of(a), a >> 6);
        assert_eq!(page_of(a), a >> 12);
        assert_eq!(block_addr(block_of(a)), block_align(a));
        assert_eq!(block_align(a) % BLOCK_SIZE, 0);
    }

    #[test]
    fn same_page_detects_page_crossing() {
        assert!(same_page(0x1000, 0x1fff));
        assert!(!same_page(0x1fff, 0x2000));
    }

    #[test]
    fn block_delta_signed() {
        assert_eq!(block_delta(0x1000, 0x1040), 1);
        assert_eq!(block_delta(0x1040, 0x1000), -1);
        assert_eq!(block_delta(0x1000, 0x1000), 0);
        // Sub-block distances round to the same block.
        assert_eq!(block_delta(0x1000, 0x103f), 0);
    }

    #[test]
    fn access_constructors() {
        let l = MemAccess::load(7, 0x400, 0x8000);
        assert!(!l.is_write);
        let s = MemAccess::store(8, 0x404, 0x8040);
        assert!(s.is_write);
        assert_eq!(s.block(), l.block() + 1);
        assert_eq!(l.page(), s.page());
        assert_eq!(l.page_block_offset(), 0);
        assert_eq!(s.page_block_offset(), 1);
    }

    #[test]
    fn blocks_per_page_consistent() {
        assert_eq!(BLOCKS_PER_PAGE, PAGE_SIZE / BLOCK_SIZE);
    }
}
