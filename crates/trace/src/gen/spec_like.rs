//! Named synthetic applications standing in for the paper's benchmarks.
//!
//! Each name corresponds to a benchmark the paper evaluates; the generator
//! behind it reproduces the *pattern class* the paper's §II analysis (and
//! the broader prefetching literature) attributes to that application —
//! e.g. 433.milc is stream/stride dominated with strong short-lag
//! autocorrelation, while 471.omnetpp and 623.xalancbmk are irregular
//! pointer-chasing workloads whose structure only appears per-PC. See
//! DESIGN.md §1 for the substitution argument.

use super::interleave::{PhasedGen, ProbMixGen};
use super::{GraphGen, GraphKernel, PointerChaseGen, StreamGen, StrideGen, TraceSource};

/// A named application trace source.
pub struct AppTrace {
    /// Benchmark-style name, e.g. `"433.milc"`.
    pub name: &'static str,
    /// The generator producing the app's access stream.
    pub source: Box<dyn TraceSource + Send>,
}

/// All application names known to [`app_by_name`].
pub const APP_NAMES: &[&str] = &[
    "433.milc",
    "433.lbm",
    "429.mcf",
    "462.libquantum",
    "471.omnetpp",
    "602.gcc",
    "621.wrf",
    "623.xalancbmk",
    "654.roms",
    "gap.bfs",
    "gap.pr",
    "gap.cc",
];

/// Construct the generator for a named application.
///
/// Returns `None` for unknown names. The same `(name, seed)` pair always
/// produces an identical trace.
pub fn app_by_name(name: &str, seed: u64) -> Option<AppTrace> {
    let source: Box<dyn TraceSource + Send> = match name {
        // Lattice QCD: dominant unit-stride streams over large arrays with a
        // handful of concurrent streams; spatial prefetchers excel.
        "433.milc" => Box::new(StreamGen::new(seed, 4, 4096, 10).with_write_ratio(0.25)),
        // Lattice Boltzmann: long streams plus fixed larger strides
        // (structure-of-arrays sweeps).
        "433.lbm" => Box::new(ProbMixGen::new(
            vec![
                Box::new(StreamGen::new(seed, 3, 8192, 8)),
                Box::new(StrideGen::new(seed ^ 1, &[3, 3, 5], 2048, 8)),
            ],
            &[0.6, 0.4],
            seed ^ 2,
            8,
        )),
        // mcf: network simplex — pointer chasing over arcs with some
        // strided bookkeeping.
        "429.mcf" => Box::new(ProbMixGen::new(
            vec![
                Box::new(PointerChaseGen::new(seed, 6, 3_500, 6).with_mutation(0.0005)),
                Box::new(StrideGen::new(seed ^ 3, &[2], 512, 6)),
            ],
            &[0.75, 0.25],
            seed ^ 4,
            6,
        )),
        // libquantum: essentially one giant stream.
        "462.libquantum" => Box::new(StreamGen::new(seed, 1, 1 << 16, 12).with_write_ratio(0.3)),
        // omnetpp: discrete event simulation — heavily irregular, strongly
        // PC-localized temporal repetition, slow structural drift.
        "471.omnetpp" => Box::new(
            PointerChaseGen::new(seed, 8, 3_000, 6)
                .with_mutation(0.0005)
                .with_header_interval(3),
        ),
        // gcc: phase-heavy mix of everything.
        "602.gcc" => Box::new(PhasedGen::new(
            vec![
                Box::new(StreamGen::new(seed, 2, 1024, 8)),
                Box::new(PointerChaseGen::new(seed ^ 5, 5, 3_000, 8)),
                Box::new(StrideGen::new(seed ^ 6, &[1, 7], 512, 8)),
            ],
            20_000,
            8,
        )),
        // wrf: weather model — many distinct constant strides (long-lag
        // autocorrelation), plus streams.
        "621.wrf" => Box::new(ProbMixGen::new(
            vec![
                Box::new(StrideGen::new(seed, &[1, 2, 4, 8, 16], 16_384, 10)),
                Box::new(StreamGen::new(seed ^ 7, 2, 2048, 10)),
            ],
            &[0.7, 0.3],
            seed ^ 8,
            10,
        )),
        // xalancbmk: XSLT processor — many small pointer-chase sites with
        // faster drift (DOM rebuilds); weak global, strong per-PC structure.
        "623.xalancbmk" => Box::new(
            PointerChaseGen::new(seed, 12, 1_500, 6)
                .with_mutation(0.001)
                .with_header_interval(3),
        ),
        // roms: ocean model — stream/stride like wrf but stream-heavier
        // (used by the artifact's demo).
        "654.roms" => Box::new(ProbMixGen::new(
            vec![
                Box::new(StreamGen::new(seed, 3, 4096, 10)),
                Box::new(StrideGen::new(seed ^ 9, &[2, 6], 8192, 10)),
            ],
            &[0.6, 0.4],
            seed ^ 10,
            10,
        )),
        // GAP kernels over a 400K-vertex synthetic power-law graph (vertex
        // property arrays ≈ 1.6 MB, edge array ≈ 19 MB: past the harness
        // LLC, with PageRank/CC revisiting arrays every sweep).
        "gap.bfs" => Box::new(GraphGen::new(seed, 400_000, 12, GraphKernel::Bfs, 4)),
        "gap.pr" => Box::new(GraphGen::new(seed, 400_000, 12, GraphKernel::PageRank, 4)),
        "gap.cc" => Box::new(GraphGen::new(
            seed,
            400_000,
            12,
            GraphKernel::ConnectedComponents,
            4,
        )),
        _ => return None,
    };
    // Leak-free static name lookup (names are the canonical strings above).
    let name = APP_NAMES.iter().find(|&&n| n == name)?;
    Some(AppTrace { name, source })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{pc_grouped_autocorrelation, summarize_acf, trace_autocorrelation};

    #[test]
    fn all_names_resolve() {
        for &n in APP_NAMES {
            let app = app_by_name(n, 42).unwrap_or_else(|| panic!("{n} missing"));
            assert_eq!(app.name, n);
        }
        assert!(app_by_name("999.nope", 1).is_none());
    }

    #[test]
    fn apps_are_deterministic() {
        for &n in &["433.milc", "471.omnetpp", "gap.bfs"] {
            let a = app_by_name(n, 7).unwrap().source.collect_n(2000);
            let b = app_by_name(n, 7).unwrap().source.collect_n(2000);
            assert_eq!(a, b, "{n} not deterministic");
        }
    }

    #[test]
    fn milc_has_stronger_autocorrelation_than_omnetpp() {
        // The Fig 1a property: streaming apps show high, slowly decaying
        // ACs; irregular apps show insignificant spikes.
        let milc = app_by_name("433.milc", 3).unwrap().source.collect_n(20_000);
        let omnet = app_by_name("471.omnetpp", 3)
            .unwrap()
            .source
            .collect_n(20_000);
        let m = summarize_acf(&trace_autocorrelation(&milc, 40));
        let o = summarize_acf(&trace_autocorrelation(&omnet, 40));
        assert!(
            m.peak_abs > 3.0 * o.peak_abs,
            "milc peak {} should dwarf omnetpp peak {}",
            m.peak_abs,
            o.peak_abs
        );
    }

    #[test]
    fn omnetpp_gains_structure_when_grouped_by_pc() {
        // The Fig 1b property: PC grouping raises ACF for irregular apps.
        let t = app_by_name("471.omnetpp", 5)
            .unwrap()
            .source
            .collect_n(30_000);
        let raw = summarize_acf(&trace_autocorrelation(&t, 40));
        let grouped = summarize_acf(&pc_grouped_autocorrelation(&t, 40));
        assert!(
            grouped.peak_abs > 3.0 * raw.peak_abs,
            "grouped {} should dwarf raw {}",
            grouped.peak_abs,
            raw.peak_abs
        );
    }

    #[test]
    fn gap_traces_touch_multiple_regions() {
        let t = app_by_name("gap.pr", 9).unwrap().source.collect_n(10_000);
        let regions: std::collections::HashSet<u64> = t.iter().map(|a| a.addr >> 32).collect();
        assert!(regions.len() >= 3, "CSR arrays live in distinct regions");
    }
}
