//! Synthetic workload generators.
//!
//! The paper evaluates on SPEC CPU 2006/2017 and GAP SimPoint traces, which
//! are not redistributable. Per DESIGN.md §1 we substitute synthetic
//! generators that reproduce the *pattern classes* the paper's §II analysis
//! identifies: streaming/strided spatial patterns, PC-localized temporal
//! patterns (pointer chasing), interleaved and phased mixes, and real graph
//! kernels (BFS / PageRank / CC) executed over synthetic graphs whose data
//! structure traversals produce the addresses.
//!
//! Every generator is deterministic given its seed and implements
//! [`TraceSource`], an infinite (or very long) pull-based access stream.

use crate::record::MemAccess;

pub mod graph;
pub mod interleave;
pub mod kernels;
pub mod pointer_chase;
pub mod spec_like;
pub mod stream;
pub mod stride;
pub mod suite;

pub use graph::{CsrGraph, GraphGen, GraphKernel};
pub use interleave::{InterleavedGen, PhasedGen, ProbMixGen};
pub use kernels::{Kernel, KernelGen};
pub use pointer_chase::PointerChaseGen;
pub use spec_like::{app_by_name, AppTrace, APP_NAMES};
pub use stream::StreamGen;
pub use stride::StrideGen;
pub use suite::{suite_by_name, Suite, SUITE_NAMES};

/// A pull-based source of memory accesses.
///
/// Sources are logically infinite: `next_access` may return `None` only for
/// sources wrapping finite recorded traces. Generators hand out
/// monotonically increasing `instr_id`s with gaps standing in for
/// non-memory instructions.
pub trait TraceSource {
    /// Produce the next access, or `None` if the source is exhausted.
    fn next_access(&mut self) -> Option<MemAccess>;

    /// Append up to `n` accesses to `out`, returning how many were
    /// produced. One virtual call covers a whole batch, so hot consumers
    /// (the simulation engines) are not paying dynamic dispatch per
    /// access; replayable sources can override it with a bulk copy.
    fn next_batch(&mut self, out: &mut Vec<MemAccess>, n: usize) -> usize {
        for i in 0..n {
            match self.next_access() {
                Some(a) => out.push(a),
                None => return i,
            }
        }
        n
    }

    /// Collect up to `n` accesses into a vector.
    fn collect_n(&mut self, n: usize) -> Vec<MemAccess> {
        let mut out = Vec::with_capacity(n);
        self.next_batch(&mut out, n);
        out
    }
}

impl<T: TraceSource + ?Sized> TraceSource for Box<T> {
    fn next_access(&mut self) -> Option<MemAccess> {
        (**self).next_access()
    }

    fn next_batch(&mut self, out: &mut Vec<MemAccess>, n: usize) -> usize {
        (**self).next_batch(out, n)
    }
}

/// A finite, replayable trace source over an owned access vector.
#[derive(Debug, Clone)]
pub struct VecSource {
    trace: Vec<MemAccess>,
    pos: usize,
}

impl VecSource {
    /// Wrap a recorded trace.
    pub fn new(trace: Vec<MemAccess>) -> Self {
        Self { trace, pos: 0 }
    }

    /// Rewind to the beginning.
    pub fn rewind(&mut self) {
        self.pos = 0;
    }

    /// Number of accesses remaining.
    pub fn remaining(&self) -> usize {
        self.trace.len() - self.pos
    }
}

impl TraceSource for VecSource {
    fn next_access(&mut self) -> Option<MemAccess> {
        let a = self.trace.get(self.pos).copied();
        if a.is_some() {
            self.pos += 1;
        }
        a
    }

    fn next_batch(&mut self, out: &mut Vec<MemAccess>, n: usize) -> usize {
        let take = n.min(self.trace.len() - self.pos);
        out.extend_from_slice(&self.trace[self.pos..self.pos + take]);
        self.pos += take;
        take
    }
}

/// Shared instruction-id pacing: each access consumes `1 + gap` instruction
/// slots, modelling non-memory instructions between memory operations.
#[derive(Debug, Clone)]
pub(crate) struct InstrClock {
    next_id: u64,
    gap: u64,
}

impl InstrClock {
    pub(crate) fn new(gap: u64) -> Self {
        Self { next_id: 0, gap }
    }

    /// Id for the next memory instruction; advances the clock.
    pub(crate) fn tick(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id = id + 1 + self.gap;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_source_replays_and_exhausts() {
        let t = vec![MemAccess::load(0, 1, 0x40), MemAccess::load(1, 1, 0x80)];
        let mut s = VecSource::new(t.clone());
        assert_eq!(s.collect_n(10), t);
        assert!(s.next_access().is_none());
        s.rewind();
        assert_eq!(s.remaining(), 2);
        assert_eq!(s.next_access(), Some(t[0]));
    }

    #[test]
    fn instr_clock_spacing() {
        let mut c = InstrClock::new(3);
        assert_eq!(c.tick(), 0);
        assert_eq!(c.tick(), 4);
        assert_eq!(c.tick(), 8);
    }
}
