//! GAP-like graph-kernel trace generator.
//!
//! The GAP benchmark suite runs graph kernels (BFS, PageRank, Connected
//! Components, ...) over large graphs. We build a synthetic power-law graph
//! in CSR form, *actually execute* the kernel over it, and record the
//! memory addresses the kernel's array reads/writes would touch: the CSR
//! offsets array, the edge array, and the per-vertex property array each
//! get a base address, and element accesses map to byte addresses. This
//! gives traces with the hallmark GAP structure — semi-sequential edge
//! scans interleaved with data-dependent random vertex-property accesses —
//! without needing the original suite.

use super::{InstrClock, TraceSource};
use crate::record::MemAccess;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Compressed-sparse-row graph.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    /// `offsets[v] .. offsets[v+1]` indexes `edges` for vertex `v`.
    pub offsets: Vec<u32>,
    /// Flattened adjacency lists.
    pub edges: Vec<u32>,
}

impl CsrGraph {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let s = self.offsets[v as usize] as usize;
        let e = self.offsets[v as usize + 1] as usize;
        &self.edges[s..e]
    }

    /// Build a synthetic scale-free-ish graph: each vertex draws `deg`
    /// neighbors where targets are skewed toward low vertex ids
    /// (`id = floor(u^2 * n)` for uniform `u`), approximating the hub
    /// structure of RMAT/Kronecker graphs used by GAP.
    pub fn synthetic(seed: u64, n: usize, avg_degree: usize) -> Self {
        assert!(n >= 2 && avg_degree >= 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut offsets = Vec::with_capacity(n + 1);
        let mut edges = Vec::with_capacity(n * avg_degree);
        offsets.push(0u32);
        for v in 0..n {
            let deg = rng.gen_range(1..=2 * avg_degree);
            for _ in 0..deg {
                let u: f64 = rng.gen();
                let mut t = ((u * u) * n as f64) as usize;
                if t >= n {
                    t = n - 1;
                }
                if t == v {
                    t = (t + 1) % n;
                }
                edges.push(t as u32);
            }
            offsets.push(edges.len() as u32);
        }
        Self { offsets, edges }
    }
}

/// Which graph kernel to trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GraphKernel {
    /// Breadth-first search from rotating sources.
    Bfs,
    /// Power-iteration PageRank (push-free pull formulation).
    PageRank,
    /// Label-propagation connected components.
    ConnectedComponents,
}

use serde::{Deserialize, Serialize};

/// Base addresses of the kernel's arrays in the synthetic address space.
#[derive(Debug, Clone, Copy)]
struct Layout {
    offsets_base: u64,
    edges_base: u64,
    prop_base: u64,
    prop2_base: u64,
}

const U32_SIZE: u64 = 4;
const F32_SIZE: u64 = 4;

/// Trace generator that executes a graph kernel and records its accesses.
pub struct GraphGen {
    graph: CsrGraph,
    kernel: GraphKernel,
    layout: Layout,
    clock: InstrClock,
    buf: VecDeque<(u64, u64, bool)>, // (pc, addr, is_write)
    rng: StdRng,
    /// BFS restart source rotation / PageRank iteration counter.
    round: u64,
    /// Cap on accesses buffered per kernel round, keeping memory bounded.
    round_budget: usize,
}

/// PC values for the kernel's load/store sites; distinct sites let ISB-style
/// PC-localized prefetchers separate the offset scan from property gathers.
mod pcs {
    pub const OFFSETS: u64 = 0x9000;
    pub const EDGES: u64 = 0x9008;
    pub const PROP_READ: u64 = 0x9010;
    pub const PROP_WRITE: u64 = 0x9018;
}

impl GraphGen {
    /// Create a generator over a fresh synthetic graph.
    pub fn new(
        seed: u64,
        n_vertices: usize,
        avg_degree: usize,
        kernel: GraphKernel,
        instr_gap: u64,
    ) -> Self {
        let graph = CsrGraph::synthetic(seed, n_vertices, avg_degree);
        Self::with_graph(graph, kernel, seed ^ 0xDEAD_BEEF, instr_gap)
    }

    /// Create a generator over an existing graph.
    pub fn with_graph(graph: CsrGraph, kernel: GraphKernel, seed: u64, instr_gap: u64) -> Self {
        let layout = Layout {
            offsets_base: 0x1_0000_0000,
            edges_base: 0x2_0000_0000,
            prop_base: 0x3_0000_0000,
            prop2_base: 0x4_0000_0000,
        };
        Self {
            graph,
            kernel,
            layout,
            clock: InstrClock::new(instr_gap),
            buf: VecDeque::new(),
            rng: StdRng::seed_from_u64(seed),
            round: 0,
            round_budget: 1 << 20,
        }
    }

    fn push(&mut self, pc: u64, addr: u64, is_write: bool) {
        if self.buf.len() < self.round_budget {
            self.buf.push_back((pc, addr, is_write));
        }
    }

    fn offsets_addr(&self, v: u32) -> u64 {
        self.layout.offsets_base + v as u64 * U32_SIZE
    }

    fn edges_addr(&self, e: usize) -> u64 {
        self.layout.edges_base + e as u64 * U32_SIZE
    }

    fn prop_addr(&self, v: u32) -> u64 {
        self.layout.prop_base + v as u64 * F32_SIZE
    }

    fn prop2_addr(&self, v: u32) -> u64 {
        self.layout.prop2_base + v as u64 * F32_SIZE
    }

    /// Run one kernel round, filling the access buffer.
    fn run_round(&mut self) {
        match self.kernel {
            GraphKernel::Bfs => self.run_bfs(),
            GraphKernel::PageRank => self.run_pagerank(),
            GraphKernel::ConnectedComponents => self.run_cc(),
        }
        self.round += 1;
    }

    fn run_bfs(&mut self) {
        let n = self.graph.num_vertices();
        let src = (self.rng.gen_range(0..n)) as u32;
        let mut visited = vec![false; n];
        let mut queue = VecDeque::new();
        visited[src as usize] = true;
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            if self.buf.len() >= self.round_budget {
                break;
            }
            // offsets[v], offsets[v+1]
            self.push(pcs::OFFSETS, self.offsets_addr(v), false);
            self.push(pcs::OFFSETS, self.offsets_addr(v + 1), false);
            let s = self.graph.offsets[v as usize] as usize;
            let e = self.graph.offsets[v as usize + 1] as usize;
            for ei in s..e {
                self.push(pcs::EDGES, self.edges_addr(ei), false);
                let t = self.graph.edges[ei];
                self.push(pcs::PROP_READ, self.prop_addr(t), false);
                if !visited[t as usize] {
                    visited[t as usize] = true;
                    self.push(pcs::PROP_WRITE, self.prop_addr(t), true);
                    queue.push_back(t);
                }
            }
        }
    }

    fn run_pagerank(&mut self) {
        let n = self.graph.num_vertices();
        // One pull iteration: for each v, read offsets, scan edges, gather
        // ranks of neighbors, write new rank.
        for v in 0..n as u32 {
            if self.buf.len() >= self.round_budget {
                break;
            }
            self.push(pcs::OFFSETS, self.offsets_addr(v), false);
            self.push(pcs::OFFSETS, self.offsets_addr(v + 1), false);
            let s = self.graph.offsets[v as usize] as usize;
            let e = self.graph.offsets[v as usize + 1] as usize;
            for ei in s..e {
                self.push(pcs::EDGES, self.edges_addr(ei), false);
                let t = self.graph.edges[ei];
                self.push(pcs::PROP_READ, self.prop_addr(t), false);
            }
            self.push(pcs::PROP_WRITE, self.prop2_addr(v), true);
        }
    }

    fn run_cc(&mut self) {
        let n = self.graph.num_vertices();
        let mut labels: Vec<u32> = (0..n as u32).collect();
        // One label-propagation sweep with actual label state so repeated
        // rounds converge (changing access mix over time, like real CC).
        for v in 0..n as u32 {
            if self.buf.len() >= self.round_budget {
                break;
            }
            self.push(pcs::OFFSETS, self.offsets_addr(v), false);
            self.push(pcs::OFFSETS, self.offsets_addr(v + 1), false);
            self.push(pcs::PROP_READ, self.prop_addr(v), false);
            let mut best = labels[v as usize];
            let s = self.graph.offsets[v as usize] as usize;
            let e = self.graph.offsets[v as usize + 1] as usize;
            for ei in s..e {
                self.push(pcs::EDGES, self.edges_addr(ei), false);
                let t = self.graph.edges[ei];
                self.push(pcs::PROP_READ, self.prop_addr(t), false);
                best = best.min(labels[t as usize]);
            }
            if best < labels[v as usize] {
                labels[v as usize] = best;
                self.push(pcs::PROP_WRITE, self.prop_addr(v), true);
            }
        }
    }
}

impl TraceSource for GraphGen {
    fn next_access(&mut self) -> Option<MemAccess> {
        if self.buf.is_empty() {
            self.run_round();
        }
        let (pc, addr, is_write) = self.buf.pop_front()?;
        Some(MemAccess {
            instr_id: self.clock.tick(),
            pc,
            addr,
            is_write,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_well_formed() {
        let g = CsrGraph::synthetic(1, 100, 4);
        assert_eq!(g.offsets.len(), 101);
        assert_eq!(*g.offsets.last().unwrap() as usize, g.edges.len());
        assert!(g.edges.iter().all(|&t| (t as usize) < 100));
        // Offsets monotone.
        assert!(g.offsets.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn no_self_loops() {
        let g = CsrGraph::synthetic(2, 50, 3);
        for v in 0..50u32 {
            assert!(g.neighbors(v).iter().all(|&t| t != v));
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // Low-id vertices should receive far more in-edges than high-id ones.
        let g = CsrGraph::synthetic(3, 1000, 8);
        let mut indeg = vec![0usize; 1000];
        for &t in &g.edges {
            indeg[t as usize] += 1;
        }
        let low: usize = indeg[..100].iter().sum();
        let high: usize = indeg[900..].iter().sum();
        assert!(low > 3 * high, "low={low} high={high}");
    }

    #[test]
    fn bfs_trace_mixes_sequential_and_random() {
        let mut g = GraphGen::new(7, 500, 8, GraphKernel::Bfs, 2);
        let t = g.collect_n(5000);
        assert_eq!(t.len(), 5000);
        // All four PC sites appear.
        let pcs: std::collections::HashSet<u64> = t.iter().map(|a| a.pc).collect();
        assert!(pcs.len() >= 3, "expected multiple load sites, got {pcs:?}");
        // Writes exist (visited marking).
        assert!(t.iter().any(|a| a.is_write));
        // Ids strictly increasing with gap 2.
        assert!(t.windows(2).all(|w| w[1].instr_id == w[0].instr_id + 3));
    }

    #[test]
    fn pagerank_rounds_replay_similar_sequences() {
        let mut g = GraphGen::new(9, 200, 4, GraphKernel::PageRank, 0);
        // A full round length:
        let round: usize = {
            let gg = CsrGraph::synthetic(9, 200, 4);
            (0..200).map(|v| 3 + 2 * gg.neighbors(v as u32).len()).sum()
        };
        let t = g.collect_n(2 * round);
        let a: Vec<u64> = t[..round].iter().map(|x| x.addr).collect();
        let b: Vec<u64> = t[round..].iter().map(|x| x.addr).collect();
        assert_eq!(a, b, "pagerank iterations touch identical addresses");
    }

    #[test]
    fn cc_converges_to_fewer_writes() {
        let mut g = GraphGen::new(11, 300, 6, GraphKernel::ConnectedComponents, 0);
        let t = g.collect_n(50_000);
        let half = t.len() / 2;
        let w_first = t[..half].iter().filter(|a| a.is_write).count();
        let w_last = t[half..].iter().filter(|a| a.is_write).count();
        // Label propagation converges within a round here (labels reset per
        // round), so writes do not increase over time.
        assert!(w_last <= w_first + half / 10);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = GraphGen::new(5, 100, 4, GraphKernel::Bfs, 1).collect_n(1000);
        let b = GraphGen::new(5, 100, 4, GraphKernel::Bfs, 1).collect_n(1000);
        assert_eq!(a, b);
    }
}
