//! Pointer-chasing (irregular temporal) access generator.
//!
//! Models linked-data-structure traversals such as 471.omnetpp's event
//! queues and 623.xalancbmk's DOM walks: each synthetic chase site (PC)
//! repeatedly traverses a fixed random cycle of node addresses. The address
//! sequence has essentially no spatial structure (random placement) but is
//! perfectly *temporally* repetitive, so record-and-replay temporal
//! prefetchers (ISB, Domino) can learn it while spatial prefetchers cannot.

use super::{InstrClock, TraceSource};
use crate::record::{MemAccess, BLOCK_SIZE};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone)]
struct ChaseSite {
    pc: u64,
    /// Node addresses in traversal order (a random cycle).
    ring: Vec<u64>,
    pos: usize,
    /// Hot per-site block (queue head / sentinel) revisited periodically.
    header: u64,
    /// Accesses since the last header touch.
    since_header: u32,
}

/// Generator producing interleaved pointer chases, one cycle per PC.
#[derive(Debug, Clone)]
pub struct PointerChaseGen {
    rng: StdRng,
    sites: Vec<ChaseSite>,
    clock: InstrClock,
    accesses: u64,
    /// Probability per access of a "mutation": one link of the current ring
    /// is rewired to a fresh node, modelling structure updates that slowly
    /// age out recorded temporal history.
    mutation_prob: f64,
    /// Every `header_interval`-th access of a site touches its hot header
    /// block instead of advancing the ring (0 = off). Models event-queue
    /// head checks: it gives each PC short-lag structure (the paper's
    /// Fig 1b observation) while the header stays cache-hot.
    header_interval: u32,
    write_ratio: f64,
}

impl PointerChaseGen {
    /// Create `n_sites` chase sites each over a ring of `ring_len` nodes.
    pub fn new(seed: u64, n_sites: usize, ring_len: usize, instr_gap: u64) -> Self {
        assert!(n_sites > 0 && ring_len > 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let sites = (0..n_sites)
            .map(|i| {
                let mut ring: Vec<u64> = (0..ring_len)
                    .map(|_| rng.gen_range(0x100_000u64..0x4000_0000) * BLOCK_SIZE)
                    .collect();
                ring.shuffle(&mut rng);
                // Headers live in a distinct (heap-metadata-like) region.
                let header = rng.gen_range(0x10_000u64..0x20_000) * BLOCK_SIZE;
                ChaseSite {
                    pc: 0x2000 + 16 * i as u64,
                    ring,
                    pos: 0,
                    header,
                    since_header: 0,
                }
            })
            .collect();
        Self {
            rng,
            sites,
            clock: InstrClock::new(instr_gap),
            accesses: 0,
            mutation_prob: 0.0,
            header_interval: 0,
            write_ratio: 0.05,
        }
    }

    /// Touch the per-site header block every `interval` accesses (0 = off).
    pub fn with_header_interval(mut self, interval: u32) -> Self {
        self.header_interval = interval;
        self
    }

    /// Enable slow structural mutation (default off).
    pub fn with_mutation(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob));
        self.mutation_prob = prob;
        self
    }

    /// Set the store fraction (default 0.05).
    pub fn with_write_ratio(mut self, r: f64) -> Self {
        assert!((0.0..=1.0).contains(&r));
        self.write_ratio = r;
        self
    }
}

impl TraceSource for PointerChaseGen {
    fn next_access(&mut self) -> Option<MemAccess> {
        let id = self.clock.tick();
        // Sites fire in random order (event-driven programs do not
        // round-robin their traversals); per-PC order stays exact.
        let s_idx = self.rng.gen_range(0..self.sites.len());
        self.accesses += 1;
        if self.mutation_prob > 0.0 && self.rng.gen_bool(self.mutation_prob) {
            let site = &mut self.sites[s_idx];
            let victim = self.rng.gen_range(0..site.ring.len());
            site.ring[victim] = self.rng.gen_range(0x100_000u64..0x4000_0000) * BLOCK_SIZE;
        }
        let header_interval = self.header_interval;
        let site = &mut self.sites[s_idx];
        site.since_header += 1;
        let addr = if header_interval > 0 && site.since_header >= header_interval {
            site.since_header = 0;
            site.header
        } else {
            let a = site.ring[site.pos];
            site.pos = (site.pos + 1) % site.ring.len();
            a
        };
        let is_write = self.rng.gen_bool(self.write_ratio);
        Some(MemAccess {
            instr_id: id,
            pc: site.pc,
            addr,
            is_write,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_repeats_exactly_without_mutation() {
        let mut g = PointerChaseGen::new(3, 1, 50, 0);
        let t = g.collect_n(200);
        for i in 0..150 {
            assert_eq!(t[i].addr, t[i + 50].addr, "ring should repeat at period 50");
        }
    }

    #[test]
    fn interleaved_sites_keep_per_pc_period() {
        let mut g = PointerChaseGen::new(3, 4, 25, 1);
        let t = g.collect_n(400);
        use std::collections::HashMap;
        let mut per_pc: HashMap<u64, Vec<u64>> = HashMap::new();
        for a in &t {
            per_pc.entry(a.pc).or_default().push(a.addr);
        }
        assert_eq!(per_pc.len(), 4);
        for (_, seq) in per_pc {
            for i in 0..seq.len().saturating_sub(25) {
                assert_eq!(seq[i], seq[i + 25]);
            }
        }
    }

    #[test]
    fn mutation_changes_ring_over_time() {
        let mut g = PointerChaseGen::new(3, 1, 20, 0).with_mutation(0.2);
        let t = g.collect_n(2000);
        let first: Vec<u64> = t[..20].iter().map(|a| a.addr).collect();
        let last: Vec<u64> = t[1980..].iter().map(|a| a.addr).collect();
        assert_ne!(first, last, "mutation should rewire the ring eventually");
    }

    #[test]
    fn addresses_are_spatially_scattered() {
        let mut g = PointerChaseGen::new(5, 1, 64, 0);
        let t = g.collect_n(64);
        // Consecutive deltas should rarely be +-1 block.
        let near = t
            .windows(2)
            .filter(|w| {
                let d = (w[1].block() as i64 - w[0].block() as i64).abs();
                d <= 1
            })
            .count();
        assert!(
            near < 4,
            "pointer chase should not look like a stream, near={near}"
        );
    }

    #[test]
    fn header_interval_inserts_hot_block() {
        let mut g = PointerChaseGen::new(3, 1, 100, 0).with_header_interval(2);
        let t = g.collect_n(40);
        // Every second access is the same header block.
        let headers: Vec<u64> = t.iter().skip(1).step_by(2).map(|a| a.addr).collect();
        assert!(headers.windows(2).all(|w| w[0] == w[1]), "{headers:?}");
        // Ring accesses still advance.
        assert_ne!(t[0].addr, t[2].addr);
    }

    #[test]
    fn deterministic() {
        let a = PointerChaseGen::new(77, 2, 30, 2).collect_n(100);
        let b = PointerChaseGen::new(77, 2, 30, 2).collect_n(100);
        assert_eq!(a, b);
    }
}
