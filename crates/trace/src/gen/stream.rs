//! Streaming (sequential) access generator.
//!
//! Models unit-block streams such as array scans in 433.milc or 433.lbm:
//! several concurrent streams each walk forward block by block through their
//! own region, occasionally re-seeding to a new region (modelling a new
//! array or a new outer-loop iteration). Streams are the canonical prey of
//! spatial prefetchers (next-line, BO).

use super::{InstrClock, TraceSource};
use crate::record::{MemAccess, BLOCK_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One forward stream walking a region.
#[derive(Debug, Clone)]
struct Stream {
    pc: u64,
    cur: u64,
    remaining: u64,
}

/// Generator producing `n_streams` interleaved forward block streams.
#[derive(Debug, Clone)]
pub struct StreamGen {
    rng: StdRng,
    streams: Vec<Stream>,
    clock: InstrClock,
    accesses: u64,
    /// Mean stream length (in blocks) before re-seeding.
    stream_len: u64,
    /// Fraction of accesses that are writes.
    write_ratio: f64,
    region_top: u64,
}

impl StreamGen {
    /// Create a stream generator.
    ///
    /// * `n_streams` — number of concurrent streams (round-robin interleaved)
    /// * `stream_len` — blocks walked before a stream jumps to a new region
    /// * `instr_gap` — non-memory instructions between accesses
    pub fn new(seed: u64, n_streams: usize, stream_len: u64, instr_gap: u64) -> Self {
        assert!(n_streams > 0, "need at least one stream");
        assert!(stream_len > 0, "stream length must be positive");
        let mut g = Self {
            rng: StdRng::seed_from_u64(seed),
            streams: Vec::with_capacity(n_streams),
            clock: InstrClock::new(instr_gap),
            accesses: 0,
            stream_len,
            write_ratio: 0.2,
            region_top: 0x1_0000_0000,
        };
        for i in 0..n_streams {
            let s = g.fresh_stream(0x400 + 4 * i as u64);
            g.streams.push(s);
        }
        g
    }

    /// Set the fraction of accesses that are stores (default 0.2).
    pub fn with_write_ratio(mut self, r: f64) -> Self {
        assert!((0.0..=1.0).contains(&r));
        self.write_ratio = r;
        self
    }

    fn fresh_stream(&mut self, pc: u64) -> Stream {
        // New region, page aligned, far from others with high probability.
        let base = (self.rng.gen_range(0x1000..self.region_top / BLOCK_SIZE)) * BLOCK_SIZE;
        let len = self.stream_len / 2 + self.rng.gen_range(0..self.stream_len.max(2));
        Stream {
            pc,
            cur: base,
            remaining: len,
        }
    }
}

impl TraceSource for StreamGen {
    fn next_access(&mut self) -> Option<MemAccess> {
        // Round-robin over streams keyed off a private access counter so the
        // interleave is stable regardless of instr gaps.
        let id = self.clock.tick();
        let s_idx = (self.accesses as usize) % self.streams.len();
        self.accesses += 1;
        let pc;
        let addr;
        {
            let s = &mut self.streams[s_idx];
            pc = s.pc;
            addr = s.cur;
            s.cur += BLOCK_SIZE;
            s.remaining -= 1;
        }
        if self.streams[s_idx].remaining == 0 {
            let npc = self.streams[s_idx].pc;
            self.streams[s_idx] = self.fresh_stream(npc);
        }
        let is_write = self.rng.gen_bool(self.write_ratio);
        Some(MemAccess {
            instr_id: id,
            pc,
            addr,
            is_write,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::block_of;

    #[test]
    fn single_stream_is_sequential() {
        let mut g = StreamGen::new(1, 1, 10_000, 0).with_write_ratio(0.0);
        let t = g.collect_n(100);
        for w in t.windows(2) {
            assert_eq!(block_of(w[1].addr), block_of(w[0].addr) + 1);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = StreamGen::new(42, 4, 256, 3).collect_n(500);
        let b = StreamGen::new(42, 4, 256, 3).collect_n(500);
        assert_eq!(a, b);
        let c = StreamGen::new(43, 4, 256, 3).collect_n(500);
        assert_ne!(a, c);
    }

    #[test]
    fn multiple_streams_use_distinct_pcs() {
        let mut g = StreamGen::new(7, 3, 128, 1);
        let t = g.collect_n(300);
        let pcs: std::collections::HashSet<u64> = t.iter().map(|a| a.pc).collect();
        assert_eq!(pcs.len(), 3);
    }

    #[test]
    fn streams_reseed_after_length() {
        let mut g = StreamGen::new(9, 1, 4, 0);
        let t = g.collect_n(64);
        // With stream_len 4 there must be at least one non-+1 jump.
        let jumps = t
            .windows(2)
            .filter(|w| block_of(w[1].addr) != block_of(w[0].addr) + 1)
            .count();
        assert!(jumps > 0);
    }

    #[test]
    fn write_ratio_respected_roughly() {
        let mut g = StreamGen::new(11, 2, 1000, 0).with_write_ratio(0.5);
        let t = g.collect_n(4000);
        let writes = t.iter().filter(|a| a.is_write).count();
        assert!((1600..2400).contains(&writes), "writes={writes}");
    }
}
