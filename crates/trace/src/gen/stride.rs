//! Strided access generator.
//!
//! Models per-PC constant-stride loops such as column-major array sweeps in
//! 621.wrf: each synthetic load site (PC) walks its region with its own
//! stride (in blocks), producing long-lag autocorrelation when strides
//! differ. Strides larger than one defeat a pure next-line prefetcher but
//! are learnable by BO/SPP/VLDP.

use super::{InstrClock, TraceSource};
use crate::record::{MemAccess, BLOCK_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone)]
struct StridedSite {
    pc: u64,
    base: u64,
    stride_blocks: i64,
    pos: i64,
    len: i64,
}

/// Generator producing interleaved constant-stride walks, one per PC.
#[derive(Debug, Clone)]
pub struct StrideGen {
    rng: StdRng,
    sites: Vec<StridedSite>,
    clock: InstrClock,
    accesses: u64,
    loop_len: i64,
    write_ratio: f64,
}

impl StrideGen {
    /// Create a stride generator with `strides` one walk per entry; each
    /// stride is in cache blocks and may be negative (backward walk).
    pub fn new(seed: u64, strides: &[i64], loop_len: i64, instr_gap: u64) -> Self {
        assert!(!strides.is_empty(), "need at least one stride site");
        assert!(loop_len > 0);
        assert!(strides.iter().all(|&s| s != 0), "strides must be non-zero");
        let mut rng = StdRng::seed_from_u64(seed);
        let sites = strides
            .iter()
            .enumerate()
            .map(|(i, &s)| StridedSite {
                pc: 0x1000 + 8 * i as u64,
                base: rng.gen_range(0x10_000u64..0x1000_0000) * BLOCK_SIZE,
                stride_blocks: s,
                pos: 0,
                len: loop_len,
            })
            .collect();
        Self {
            rng,
            sites,
            clock: InstrClock::new(instr_gap),
            accesses: 0,
            loop_len,
            write_ratio: 0.1,
        }
    }

    /// Set the store fraction (default 0.1).
    pub fn with_write_ratio(mut self, r: f64) -> Self {
        assert!((0.0..=1.0).contains(&r));
        self.write_ratio = r;
        self
    }
}

impl TraceSource for StrideGen {
    fn next_access(&mut self) -> Option<MemAccess> {
        let id = self.clock.tick();
        let s_idx = (self.accesses as usize) % self.sites.len();
        self.accesses += 1;
        let loop_len = self.loop_len;
        let site = &mut self.sites[s_idx];
        let offset_blocks = site.pos * site.stride_blocks;
        let addr = (site.base as i64 + offset_blocks * BLOCK_SIZE as i64) as u64;
        site.pos += 1;
        if site.pos >= site.len {
            // Loop restart: return to base (classic inner loop re-entry).
            site.pos = 0;
            site.len = loop_len;
            // Occasionally move to a new array (outer loop step).
            if self.rng.gen_bool(0.25) {
                self.sites[s_idx].base = self.rng.gen_range(0x10_000u64..0x1000_0000) * BLOCK_SIZE;
            }
        }
        let is_write = self.rng.gen_bool(self.write_ratio);
        Some(MemAccess {
            instr_id: id,
            pc: self.sites[s_idx].pc,
            addr,
            is_write,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::block_of;

    #[test]
    fn single_site_walks_with_stride() {
        let mut g = StrideGen::new(5, &[3], 1000, 0);
        let t = g.collect_n(50);
        for w in t.windows(2) {
            assert_eq!(block_of(w[1].addr) as i64 - block_of(w[0].addr) as i64, 3);
        }
    }

    #[test]
    fn negative_stride_walks_backward() {
        let mut g = StrideGen::new(5, &[-2], 1000, 0);
        let t = g.collect_n(20);
        for w in t.windows(2) {
            assert_eq!(block_of(w[1].addr) as i64 - block_of(w[0].addr) as i64, -2);
        }
    }

    #[test]
    fn per_pc_strides_are_constant_under_interleave() {
        let mut g = StrideGen::new(5, &[1, 4, -7], 100_000, 2);
        let t = g.collect_n(300);
        // Per-PC delta is the PC's stride.
        use std::collections::HashMap;
        let mut last: HashMap<u64, u64> = HashMap::new();
        let mut per_pc: HashMap<u64, Vec<i64>> = HashMap::new();
        for a in &t {
            if let Some(prev) = last.insert(a.pc, a.addr) {
                per_pc
                    .entry(a.pc)
                    .or_default()
                    .push(block_of(a.addr) as i64 - block_of(prev) as i64);
            }
        }
        for (pc, deltas) in per_pc {
            let first = deltas[0];
            assert!(deltas.iter().all(|&d| d == first), "pc {pc:#x} deltas vary");
        }
    }

    #[test]
    fn loop_restarts_break_the_stride() {
        let mut g = StrideGen::new(99, &[2], 8, 0);
        let t = g.collect_n(64);
        // Every 8th boundary is a restart: the delta there is a jump back to
        // base (or to a fresh region), never the regular +2-block stride.
        for r in (7..63).step_by(8) {
            let d = block_of(t[r + 1].addr) as i64 - block_of(t[r].addr) as i64;
            assert_ne!(d, 2, "restart at {r} should break the stride");
        }
        // And within a loop body the stride holds.
        let d = block_of(t[1].addr) as i64 - block_of(t[0].addr) as i64;
        assert_eq!(d, 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_stride_rejected() {
        let _ = StrideGen::new(1, &[0], 10, 0);
    }
}
