//! Benchmark suites grouping the named applications, mirroring the paper's
//! evaluation over SPEC CPU 2006, SPEC CPU 2017, and GAP.

use super::spec_like::{app_by_name, AppTrace};

/// A benchmark suite: a name plus its member applications.
#[derive(Debug, Clone, Copy)]
pub struct Suite {
    /// Suite name as used in Table VI ("SPEC 06", "SPEC 17", "GAP").
    pub name: &'static str,
    /// Member application names resolvable via [`app_by_name`].
    pub apps: &'static [&'static str],
}

/// All suite names known to [`suite_by_name`].
pub const SUITE_NAMES: &[&str] = &["SPEC 06", "SPEC 17", "GAP"];

/// The three suites of the paper's evaluation.
pub const SUITES: &[Suite] = &[
    Suite {
        name: "SPEC 06",
        apps: &[
            "433.milc",
            "433.lbm",
            "429.mcf",
            "462.libquantum",
            "471.omnetpp",
        ],
    },
    Suite {
        name: "SPEC 17",
        apps: &["602.gcc", "621.wrf", "623.xalancbmk", "654.roms"],
    },
    Suite {
        name: "GAP",
        apps: &["gap.bfs", "gap.pr", "gap.cc"],
    },
];

/// Look up a suite by name.
pub fn suite_by_name(name: &str) -> Option<&'static Suite> {
    SUITES.iter().find(|s| s.name == name)
}

impl Suite {
    /// Instantiate every member app with the given seed.
    pub fn instantiate(&self, seed: u64) -> Vec<AppTrace> {
        self.apps
            .iter()
            .map(|n| app_by_name(n, seed).expect("suite members are valid app names"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_resolve() {
        for &n in SUITE_NAMES {
            let s = suite_by_name(n).unwrap();
            assert!(!s.apps.is_empty());
        }
        assert!(suite_by_name("SPEC 95").is_none());
    }

    #[test]
    fn suite_members_are_valid_apps() {
        for s in SUITES {
            let apps = s.instantiate(1);
            assert_eq!(apps.len(), s.apps.len());
        }
    }

    #[test]
    fn suites_cover_twelve_apps_without_overlap() {
        let mut all: Vec<&str> = SUITES.iter().flat_map(|s| s.apps.iter().copied()).collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "apps must not repeat across suites");
        assert_eq!(n, 12);
    }
}
